//! Property tests: the assembler and disassembler are inverses.

use preexec_isa::{assemble, Inst, Op, Program, Reg};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

/// An arbitrary instruction whose branch/jump targets are small (patched
/// to be in range after program assembly).
fn inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (reg(), reg(), reg()).prop_map(|(d, s, t)| Inst::rtype(Op::Add, d, s, t)),
        (reg(), reg(), reg()).prop_map(|(d, s, t)| Inst::rtype(Op::Mul, d, s, t)),
        (reg(), reg(), reg()).prop_map(|(d, s, t)| Inst::rtype(Op::Xor, d, s, t)),
        (reg(), reg(), -4096i64..4096).prop_map(|(d, s, i)| Inst::itype(Op::Addi, d, s, i)),
        (reg(), reg(), 0i64..64).prop_map(|(d, s, i)| Inst::itype(Op::Sll, d, s, i)),
        (reg(), -100_000i64..100_000).prop_map(|(d, i)| Inst::li(d, i)),
        (reg(), reg()).prop_map(|(d, s)| Inst::mov(d, s)),
        (reg(), reg(), -256i64..256).prop_map(|(d, b, o)| Inst::load(Op::Ld, d, b, o)),
        (reg(), reg(), -256i64..256).prop_map(|(d, b, o)| Inst::load(Op::Lw, d, b, o)),
        (reg(), reg(), -256i64..256).prop_map(|(v, b, o)| Inst::store(Op::Sd, v, b, o)),
        (reg(), reg(), 0u32..4).prop_map(|(s, t, tgt)| Inst::branch(Op::Beq, s, t, tgt)),
        (reg(), reg(), 0u32..4).prop_map(|(s, t, tgt)| Inst::branch(Op::Blt, s, t, tgt)),
        (0u32..4).prop_map(|t| Inst::jump(Op::J, t)),
        reg().prop_map(Inst::jr),
        Just(Inst::nop()),
    ]
}

fn program(insts: Vec<Inst>) -> Program {
    let mut p = Program::new("prop");
    let len = insts.len().max(1) as u32;
    for mut i in insts {
        if let Some(t) = i.target {
            i.target = Some(t % len);
        }
        p.push(i);
    }
    p
}

proptest! {
    /// Disassembling a program and re-assembling it reproduces it.
    #[test]
    fn disassemble_assemble_roundtrip(insts in prop::collection::vec(inst(), 1..40)) {
        let original = program(insts);
        // Program's Display prefixes each line with `#NN: `, which the
        // assembler would treat as a comment; strip the prefixes (and the
        // header line) to recover plain assembly text.
        let text: String = original
            .to_string()
            .lines()
            .skip(1)
            .map(|l| l.split_once(": ").map(|(_, rest)| rest).unwrap_or(l))
            .collect::<Vec<_>>()
            .join("\n");
        let reassembled = assemble("prop", &text).expect("disassembly must assemble");
        prop_assert_eq!(original.len(), reassembled.len());
        for pc in 0..original.len() as u32 {
            prop_assert_eq!(original.inst(pc), reassembled.inst(pc), "pc {}", pc);
        }
    }

    /// Every instruction's def/use sets never mention the zero register.
    #[test]
    fn def_use_never_r0(i in inst()) {
        prop_assert!(i.def().map_or(true, |r| !r.is_zero()));
        prop_assert!(i.uses().all(|r| !r.is_zero()));
    }

    /// Display never panics and never produces empty text.
    #[test]
    fn display_total(i in inst()) {
        prop_assert!(!i.to_string().is_empty());
    }
}
