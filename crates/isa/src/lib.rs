//! PERI — the **P**re-**E**xecution **RI**SC instruction set.
//!
//! This crate defines the small RISC ISA used throughout the pre-execution
//! thread-selection framework: registers, opcodes, instructions, programs
//! (code plus initialized data), a text assembler, a programmatic builder,
//! and a disassembler.
//!
//! The ISA is modeled on the MIPS/Alpha-flavored listing in Figure 1 of
//! Roth & Sohi, *A Quantitative Framework for Automated Pre-Execution
//! Thread Selection* (2002). It is deliberately simple: 32 architectural
//! registers (plus 32 assembler temporaries available to generated p-thread
//! bodies), a load/store architecture, and instruction-index program
//! counters. Everything downstream — the functional simulator, the slicer,
//! the aggregate-advantage model and the timing simulator — consumes these
//! types.
//!
//! # Example
//!
//! ```
//! use preexec_isa::assemble;
//!
//! let program = assemble(
//!     "sum_loop",
//!     r#"
//!         li   r4, 0          # i = 0
//!         li   r9, 0          # sum = 0
//!     loop:
//!         bge  r4, r1, done
//!         ld   r8, 0(r5)      # load element
//!         add  r9, r9, r8
//!         addi r5, r5, 8
//!         addi r4, r4, 1
//!         j    loop
//!     done:
//!         halt
//!     "#,
//! ).unwrap();
//! assert_eq!(program.len(), 9);
//! ```

pub mod asm;
pub mod builder;
pub mod error;
pub mod inst;
pub mod op;
pub mod program;
pub mod reg;

pub use asm::{assemble, AsmError};
pub use builder::{BuildError, ProgramBuilder};
pub use error::IsaError;
pub use inst::Inst;
pub use op::{Op, OpClass};
pub use program::{DataSegment, Program};
pub use reg::Reg;

/// A program counter: the index of an instruction within a [`Program`].
///
/// PERI programs address instructions by index rather than by byte address;
/// one instruction occupies one PC slot. This keeps every downstream
/// component (tracer, slicer, slice tree, timing simulator) free of
/// instruction-encoding concerns without losing anything the framework
/// cares about.
pub type Pc = u32;
