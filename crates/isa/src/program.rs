//! Programs: an instruction sequence plus initialized data segments.

use crate::{Inst, Pc};
use std::fmt;

/// A contiguous block of initialized memory, loaded before execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSegment {
    /// Base byte address of the segment.
    pub base: u64,
    /// The segment's initial contents.
    pub bytes: Vec<u8>,
}

impl DataSegment {
    /// Creates a segment at `base` with the given contents.
    pub fn new(base: u64, bytes: Vec<u8>) -> DataSegment {
        DataSegment { base, bytes }
    }

    /// The exclusive end address of the segment.
    pub fn end(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }
}

/// A complete PERI program: code, initialized data, and an entry point.
///
/// Instructions are addressed by index ([`Pc`]); execution starts at
/// [`Program::entry`] and ends when a `halt` retires (or when the driver's
/// instruction budget runs out).
///
/// # Example
///
/// ```
/// use preexec_isa::{Inst, Program, Reg};
///
/// let mut p = Program::new("tiny");
/// p.push(Inst::li(Reg::new(1), 7));
/// p.push(Inst::halt());
/// p.add_data(0x1000, vec![1, 2, 3, 4]);
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.data_segments()[0].end(), 0x1004);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
    data: Vec<DataSegment>,
    entry: Pc,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Program {
        Program { name: name.into(), insts: Vec::new(), data: Vec::new(), entry: 0 }
    }

    /// The program's name (used in experiment reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry PC (defaults to 0).
    pub fn entry(&self) -> Pc {
        self.entry
    }

    /// Sets the entry PC.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of range for the current instruction count.
    pub fn set_entry(&mut self, entry: Pc) {
        assert!(
            (entry as usize) < self.insts.len().max(1),
            "entry {entry} out of range"
        );
        self.entry = entry;
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Appends an instruction, returning its PC.
    pub fn push(&mut self, inst: Inst) -> Pc {
        let pc = self.insts.len() as Pc;
        self.insts.push(inst);
        pc
    }

    /// The instruction at `pc`, or `None` if out of range.
    #[inline]
    pub fn get(&self, pc: Pc) -> Option<&Inst> {
        self.insts.get(pc as usize)
    }

    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn inst(&self, pc: Pc) -> &Inst {
        &self.insts[pc as usize]
    }

    /// All instructions in PC order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Adds an initialized data segment.
    ///
    /// Segments may not overlap; this is validated here so that loaders can
    /// apply them in any order.
    ///
    /// # Panics
    ///
    /// Panics if the new segment overlaps an existing one.
    pub fn add_data(&mut self, base: u64, bytes: Vec<u8>) {
        let new = DataSegment::new(base, bytes);
        for seg in &self.data {
            let overlap = new.base < seg.end() && seg.base < new.end();
            assert!(
                !overlap,
                "data segment [{:#x},{:#x}) overlaps existing [{:#x},{:#x})",
                new.base,
                new.end(),
                seg.base,
                seg.end()
            );
        }
        self.data.push(new);
    }

    /// The program's initialized data segments.
    pub fn data_segments(&self) -> &[DataSegment] {
        &self.data
    }

    /// Validates internal consistency: every branch/jump target is in range.
    ///
    /// # Errors
    ///
    /// Returns the PC of the first instruction with an out-of-range target.
    pub fn validate(&self) -> Result<(), Pc> {
        for (pc, inst) in self.insts.iter().enumerate() {
            if let Some(t) = inst.target {
                if (t as usize) >= self.insts.len() {
                    return Err(pc as Pc);
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    /// Disassembles the whole program, one instruction per line with PCs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; program `{}` ({} instructions)", self.name, self.insts.len())?;
        for (pc, inst) in self.insts.iter().enumerate() {
            writeln!(f, "#{pc:02}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Reg};

    fn two_inst_program() -> Program {
        let mut p = Program::new("t");
        p.push(Inst::li(Reg::new(1), 1));
        p.push(Inst::halt());
        p
    }

    #[test]
    fn push_returns_sequential_pcs() {
        let mut p = Program::new("t");
        assert_eq!(p.push(Inst::nop()), 0);
        assert_eq!(p.push(Inst::nop()), 1);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn get_and_inst() {
        let p = two_inst_program();
        assert_eq!(p.get(0).unwrap().op, Op::Li);
        assert_eq!(p.inst(1).op, Op::Halt);
        assert!(p.get(2).is_none());
    }

    #[test]
    fn validate_catches_bad_target() {
        let mut p = two_inst_program();
        p.push(Inst::jump(Op::J, 99));
        assert_eq!(p.validate(), Err(2));
    }

    #[test]
    fn validate_ok() {
        let mut p = two_inst_program();
        p.push(Inst::jump(Op::J, 0));
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_data_rejected() {
        let mut p = Program::new("t");
        p.add_data(0x100, vec![0; 16]);
        p.add_data(0x108, vec![0; 16]);
    }

    #[test]
    fn adjacent_data_ok() {
        let mut p = Program::new("t");
        p.add_data(0x100, vec![0; 16]);
        p.add_data(0x110, vec![0; 16]);
        assert_eq!(p.data_segments().len(), 2);
    }

    #[test]
    fn display_includes_pcs() {
        let p = two_inst_program();
        let text = p.to_string();
        assert!(text.contains("#00: li r1, 1"));
        assert!(text.contains("#01: halt"));
    }
}
