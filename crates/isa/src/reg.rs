//! Register names.

use std::fmt;

/// Number of architectural registers visible to programs.
pub const NUM_ARCH_REGS: usize = 32;

/// Total register namespace, including the 32 temporaries (`t0`–`t31`,
/// indices 32–63) that p-thread merging may allocate when it must rename a
/// duplicated computation. Ordinary programs never touch these.
pub const NUM_REGS: usize = 64;

/// A PERI register.
///
/// Registers `r0`–`r31` are architectural; `r0` is hardwired to zero, as in
/// MIPS. Registers with indices 32–63 are *merge temporaries*: extra names
/// available to automatically generated p-thread bodies so that the merging
/// pass can duplicate a computation without clobbering the registers of the
/// other computations sharing the p-thread (paper §3.3).
///
/// # Example
///
/// ```
/// use preexec_isa::Reg;
///
/// let r5 = Reg::new(5);
/// assert_eq!(r5.index(), 5);
/// assert!(Reg::ZERO.is_zero());
/// assert!(!r5.is_temp());
/// assert!(Reg::new(40).is_temp());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero register `r0`.
    pub const ZERO: Reg = Reg(0);

    /// The conventional link register (`r31`), written by `jal`.
    pub const LINK: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_REGS` (64).
    #[inline]
    pub fn new(index: u8) -> Reg {
        assert!(
            (index as usize) < NUM_REGS,
            "register index {index} out of range (0..{NUM_REGS})"
        );
        Reg(index)
    }

    /// Creates a register from its index, returning `None` if out of range.
    #[inline]
    pub fn try_new(index: u8) -> Option<Reg> {
        if (index as usize) < NUM_REGS {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The register's index, in `0..64`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register `r0`.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Whether this is a merge temporary (`t0`–`t31`, indices 32–63).
    #[inline]
    pub fn is_temp(self) -> bool {
        self.0 >= NUM_ARCH_REGS as u8
    }

    /// The `n`-th merge temporary.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[inline]
    pub fn temp(n: u8) -> Reg {
        assert!(n < 32, "temporary index {n} out of range (0..32)");
        Reg(NUM_ARCH_REGS as u8 + n)
    }

    /// Iterates over all architectural registers (`r0`–`r31`).
    pub fn arch_regs() -> impl Iterator<Item = Reg> {
        (0..NUM_ARCH_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_temp() {
            write!(f, "t{}", self.0 - NUM_ARCH_REGS as u8)
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert_eq!(Reg::ZERO.index(), 0);
        assert!(!Reg::new(1).is_zero());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg::new(7).to_string(), "r7");
        assert_eq!(Reg::new(31).to_string(), "r31");
        assert_eq!(Reg::temp(0).to_string(), "t0");
        assert_eq!(Reg::temp(31).to_string(), "t31");
    }

    #[test]
    fn temps_start_at_32() {
        assert_eq!(Reg::temp(0).index(), 32);
        assert!(Reg::temp(5).is_temp());
        assert!(!Reg::new(31).is_temp());
    }

    #[test]
    fn try_new_bounds() {
        assert!(Reg::try_new(63).is_some());
        assert!(Reg::try_new(64).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(64);
    }

    #[test]
    fn arch_regs_iterates_32() {
        let regs: Vec<Reg> = Reg::arch_regs().collect();
        assert_eq!(regs.len(), 32);
        assert_eq!(regs[0], Reg::ZERO);
        assert_eq!(regs[31], Reg::LINK);
    }
}
