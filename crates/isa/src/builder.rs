//! A programmatic program builder with forward label references.
//!
//! The synthetic workloads construct their code with this builder rather
//! than with assembly text: it is type-checked, supports computed constants
//! (array sizes, strides), and resolves labels that are defined after use.

use crate::{DataSegment, Inst, Op, Pc, Program, Reg};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An error produced when finishing a [`ProgramBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A control instruction referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            BuildError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl Error for BuildError {}

/// Builds a [`Program`] incrementally, resolving labels at [`build`] time.
///
/// # Example
///
/// ```
/// use preexec_isa::{ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new("count");
/// let (i, n) = (Reg::new(1), Reg::new(2));
/// b.li(n, 10);
/// b.label("top");
/// b.bge(i, n, "done");
/// b.addi(i, i, 1);
/// b.j("top");
/// b.label("done");
/// b.halt();
/// let p = b.build().unwrap();
/// assert_eq!(p.len(), 5);
/// ```
///
/// [`build`]: ProgramBuilder::build
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Inst>,
    labels: HashMap<String, Pc>,
    fixups: Vec<(usize, String)>,
    data: Vec<DataSegment>,
    duplicate: Option<String>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            insts: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            data: Vec::new(),
            duplicate: None,
        }
    }

    /// The PC the next instruction will occupy.
    pub fn here(&self) -> Pc {
        self.insts.len() as Pc
    }

    /// Defines `label` at the current position.
    pub fn label(&mut self, label: impl Into<String>) -> &mut Self {
        let label = label.into();
        if self.labels.insert(label.clone(), self.here()).is_some() {
            self.duplicate.get_or_insert(label);
        }
        self
    }

    /// Appends a raw instruction, returning its PC.
    pub fn push(&mut self, inst: Inst) -> Pc {
        let pc = self.here();
        self.insts.push(inst);
        pc
    }

    /// Adds an initialized data segment (see [`Program::add_data`]).
    pub fn data(&mut self, base: u64, bytes: Vec<u8>) -> &mut Self {
        self.data.push(DataSegment::new(base, bytes));
        self
    }

    fn control(&mut self, inst: Inst, label: &str) -> Pc {
        let pc = self.push(inst);
        self.fixups.push((pc as usize, label.to_string()));
        pc
    }

    /// Finishes the program, resolving every label reference.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if any referenced label is undefined or any
    /// label was defined more than once.
    pub fn build(self) -> Result<Program, BuildError> {
        if let Some(l) = self.duplicate {
            return Err(BuildError::DuplicateLabel(l));
        }
        let mut program = Program::new(self.name);
        let mut insts = self.insts;
        for (idx, label) in &self.fixups {
            let &target = self
                .labels
                .get(label)
                .ok_or_else(|| BuildError::UndefinedLabel(label.clone()))?;
            insts[*idx].target = Some(target);
        }
        for inst in insts {
            program.push(inst);
        }
        for seg in self.data {
            program.add_data(seg.base, seg.bytes);
        }
        debug_assert_eq!(program.validate(), Ok(()));
        Ok(program)
    }

    // --- convenience emitters -------------------------------------------

    /// Emits `li rd, imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) -> Pc {
        self.push(Inst::li(rd, imm))
    }

    /// Emits `mov rd, rs`.
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> Pc {
        self.push(Inst::mov(rd, rs))
    }

    /// Emits a three-register ALU op.
    pub fn rtype(&mut self, op: Op, rd: Reg, rs: Reg, rt: Reg) -> Pc {
        self.push(Inst::rtype(op, rd, rs, rt))
    }

    /// Emits an immediate ALU op.
    pub fn itype(&mut self, op: Op, rd: Reg, rs: Reg, imm: i64) -> Pc {
        self.push(Inst::itype(op, rd, rs, imm))
    }

    /// Emits `add rd, rs, rt`.
    pub fn add(&mut self, rd: Reg, rs: Reg, rt: Reg) -> Pc {
        self.rtype(Op::Add, rd, rs, rt)
    }

    /// Emits `sub rd, rs, rt`.
    pub fn sub(&mut self, rd: Reg, rs: Reg, rt: Reg) -> Pc {
        self.rtype(Op::Sub, rd, rs, rt)
    }

    /// Emits `mul rd, rs, rt`.
    pub fn mul(&mut self, rd: Reg, rs: Reg, rt: Reg) -> Pc {
        self.rtype(Op::Mul, rd, rs, rt)
    }

    /// Emits `and rd, rs, rt`.
    pub fn and(&mut self, rd: Reg, rs: Reg, rt: Reg) -> Pc {
        self.rtype(Op::And, rd, rs, rt)
    }

    /// Emits `or rd, rs, rt`.
    pub fn or(&mut self, rd: Reg, rs: Reg, rt: Reg) -> Pc {
        self.rtype(Op::Or, rd, rs, rt)
    }

    /// Emits `xor rd, rs, rt`.
    pub fn xor(&mut self, rd: Reg, rs: Reg, rt: Reg) -> Pc {
        self.rtype(Op::Xor, rd, rs, rt)
    }

    /// Emits `addi rd, rs, imm`.
    pub fn addi(&mut self, rd: Reg, rs: Reg, imm: i64) -> Pc {
        self.itype(Op::Addi, rd, rs, imm)
    }

    /// Emits `andi rd, rs, imm`.
    pub fn andi(&mut self, rd: Reg, rs: Reg, imm: i64) -> Pc {
        self.itype(Op::Andi, rd, rs, imm)
    }

    /// Emits `xori rd, rs, imm`.
    pub fn xori(&mut self, rd: Reg, rs: Reg, imm: i64) -> Pc {
        self.itype(Op::Xori, rd, rs, imm)
    }

    /// Emits `sll rd, rs, imm`.
    pub fn sll(&mut self, rd: Reg, rs: Reg, imm: i64) -> Pc {
        self.itype(Op::Sll, rd, rs, imm)
    }

    /// Emits `srl rd, rs, imm`.
    pub fn srl(&mut self, rd: Reg, rs: Reg, imm: i64) -> Pc {
        self.itype(Op::Srl, rd, rs, imm)
    }

    /// Emits `slti rd, rs, imm`.
    pub fn slti(&mut self, rd: Reg, rs: Reg, imm: i64) -> Pc {
        self.itype(Op::Slti, rd, rs, imm)
    }

    /// Emits `ld rd, offset(base)`.
    pub fn ld(&mut self, rd: Reg, offset: i64, base: Reg) -> Pc {
        self.push(Inst::load(Op::Ld, rd, base, offset))
    }

    /// Emits `lw rd, offset(base)`.
    pub fn lw(&mut self, rd: Reg, offset: i64, base: Reg) -> Pc {
        self.push(Inst::load(Op::Lw, rd, base, offset))
    }

    /// Emits `lb rd, offset(base)`.
    pub fn lb(&mut self, rd: Reg, offset: i64, base: Reg) -> Pc {
        self.push(Inst::load(Op::Lb, rd, base, offset))
    }

    /// Emits `sd value, offset(base)`.
    pub fn sd(&mut self, value: Reg, offset: i64, base: Reg) -> Pc {
        self.push(Inst::store(Op::Sd, value, base, offset))
    }

    /// Emits `sw value, offset(base)`.
    pub fn sw(&mut self, value: Reg, offset: i64, base: Reg) -> Pc {
        self.push(Inst::store(Op::Sw, value, base, offset))
    }

    /// Emits `sb value, offset(base)`.
    pub fn sb(&mut self, value: Reg, offset: i64, base: Reg) -> Pc {
        self.push(Inst::store(Op::Sb, value, base, offset))
    }

    /// Emits `beq rs, rt, label`.
    pub fn beq(&mut self, rs: Reg, rt: Reg, label: &str) -> Pc {
        self.control(Inst::branch(Op::Beq, rs, rt, 0), label)
    }

    /// Emits `bne rs, rt, label`.
    pub fn bne(&mut self, rs: Reg, rt: Reg, label: &str) -> Pc {
        self.control(Inst::branch(Op::Bne, rs, rt, 0), label)
    }

    /// Emits `blt rs, rt, label`.
    pub fn blt(&mut self, rs: Reg, rt: Reg, label: &str) -> Pc {
        self.control(Inst::branch(Op::Blt, rs, rt, 0), label)
    }

    /// Emits `bge rs, rt, label`.
    pub fn bge(&mut self, rs: Reg, rt: Reg, label: &str) -> Pc {
        self.control(Inst::branch(Op::Bge, rs, rt, 0), label)
    }

    /// Emits `ble rs, rt, label`.
    pub fn ble(&mut self, rs: Reg, rt: Reg, label: &str) -> Pc {
        self.control(Inst::branch(Op::Ble, rs, rt, 0), label)
    }

    /// Emits `bgt rs, rt, label`.
    pub fn bgt(&mut self, rs: Reg, rt: Reg, label: &str) -> Pc {
        self.control(Inst::branch(Op::Bgt, rs, rt, 0), label)
    }

    /// Emits `j label`.
    pub fn j(&mut self, label: &str) -> Pc {
        self.control(Inst::jump(Op::J, 0), label)
    }

    /// Emits `jal label`.
    pub fn jal(&mut self, label: &str) -> Pc {
        self.control(Inst::jump(Op::Jal, 0), label)
    }

    /// Emits `jr rs`.
    pub fn jr(&mut self, rs: Reg) -> Pc {
        self.push(Inst::jr(rs))
    }

    /// Emits `nop`.
    pub fn nop(&mut self) -> Pc {
        self.push(Inst::nop())
    }

    /// Emits `halt`.
    pub fn halt(&mut self) -> Pc {
        self.push(Inst::halt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels() {
        let mut b = ProgramBuilder::new("t");
        b.label("top");
        b.j("bottom"); // forward reference
        b.j("top"); // backward reference
        b.label("bottom");
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.inst(0).target, Some(2));
        assert_eq!(p.inst(1).target, Some(0));
    }

    #[test]
    fn undefined_label_errors() {
        let mut b = ProgramBuilder::new("t");
        b.j("nowhere");
        assert_eq!(
            b.build(),
            Err(BuildError::UndefinedLabel("nowhere".to_string()))
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut b = ProgramBuilder::new("t");
        b.label("x");
        b.nop();
        b.label("x");
        b.halt();
        assert_eq!(b.build(), Err(BuildError::DuplicateLabel("x".to_string())));
    }

    #[test]
    fn data_segments_flow_through() {
        let mut b = ProgramBuilder::new("t");
        b.halt();
        b.data(0x2000, vec![9; 8]);
        let p = b.build().unwrap();
        assert_eq!(p.data_segments().len(), 1);
        assert_eq!(p.data_segments()[0].base, 0x2000);
    }

    #[test]
    fn emitters_produce_expected_shapes() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::new(1), 5);
        b.ld(Reg::new(2), 8, Reg::new(1));
        b.sd(Reg::new(2), 0, Reg::new(1));
        b.beq(Reg::new(1), Reg::new(2), "end");
        b.label("end");
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.inst(1).to_string(), "ld r2, 8(r1)");
        assert_eq!(p.inst(2).to_string(), "sd r2, 0(r1)");
        assert_eq!(p.inst(3).target, Some(4));
    }

    #[test]
    fn here_tracks_position() {
        let mut b = ProgramBuilder::new("t");
        assert_eq!(b.here(), 0);
        b.nop();
        assert_eq!(b.here(), 1);
    }
}
