//! The crate-level error umbrella.

use crate::asm::AsmError;
use crate::builder::BuildError;
use std::error::Error;
use std::fmt;

/// Any error the ISA layer can produce: assembling source text or
/// building a program from the programmatic builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// Assembler error (line-numbered).
    Asm(AsmError),
    /// Program-builder error (label resolution).
    Build(BuildError),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::Asm(e) => e.fmt(f),
            IsaError::Build(e) => e.fmt(f),
        }
    }
}

impl Error for IsaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IsaError::Asm(e) => Some(e),
            IsaError::Build(e) => Some(e),
        }
    }
}

impl From<AsmError> for IsaError {
    fn from(e: AsmError) -> IsaError {
        IsaError::Asm(e)
    }
}

impl From<BuildError> for IsaError {
    fn from(e: BuildError) -> IsaError {
        IsaError::Build(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_both_sources() {
        let a: IsaError = crate::assemble("t", "frobnicate r1").unwrap_err().into();
        assert!(matches!(a, IsaError::Asm(_)));
        assert!(a.source().is_some());
        let b: IsaError = BuildError::UndefinedLabel("x".into()).into();
        assert!(b.to_string().contains("undefined label"));
    }
}
