//! Instructions: opcode plus operands, with def/use extraction.

use crate::{Op, OpClass, Pc, Reg};
use std::fmt;

/// A PERI instruction.
///
/// One fixed shape covers every opcode; fields that a given opcode does not
/// use are `None`/zero. Use the shape-specific constructors
/// ([`Inst::rtype`], [`Inst::itype`], [`Inst::load`], [`Inst::store`],
/// [`Inst::branch`], …) rather than building the struct by hand — they
/// enforce the operand shape each opcode expects.
///
/// # Example
///
/// ```
/// use preexec_isa::{Inst, Op, Reg};
///
/// // addi r7, r7, #drugs   (instruction #08 from the paper's Figure 1)
/// let i = Inst::itype(Op::Addi, Reg::new(7), Reg::new(7), 4096);
/// assert_eq!(i.def(), Some(Reg::new(7)));
/// assert_eq!(i.uses().collect::<Vec<_>>(), vec![Reg::new(7)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The opcode.
    pub op: Op,
    /// Destination register, if the instruction writes one.
    pub rd: Option<Reg>,
    /// First source register (the base register for memory ops).
    pub rs1: Option<Reg>,
    /// Second source register (the stored value for stores; the right-hand
    /// comparand for branches).
    pub rs2: Option<Reg>,
    /// Immediate operand or memory-offset, if any.
    pub imm: i64,
    /// Branch or jump target (an instruction index), if any.
    pub target: Option<Pc>,
}

impl Inst {
    /// Three-register ALU instruction: `op rd, rs, rt`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not an ALU-class opcode taking two register sources.
    pub fn rtype(op: Op, rd: Reg, rs: Reg, rt: Reg) -> Inst {
        assert!(
            matches!(
                op,
                Op::Add
                    | Op::Sub
                    | Op::And
                    | Op::Or
                    | Op::Xor
                    | Op::Nor
                    | Op::Sllv
                    | Op::Srlv
                    | Op::Slt
                    | Op::Sltu
                    | Op::Mul
            ),
            "{op} is not a three-register ALU opcode"
        );
        Inst { op, rd: Some(rd), rs1: Some(rs), rs2: Some(rt), imm: 0, target: None }
    }

    /// Immediate ALU instruction: `op rd, rs, imm`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not an immediate ALU opcode.
    pub fn itype(op: Op, rd: Reg, rs: Reg, imm: i64) -> Inst {
        assert!(
            matches!(
                op,
                Op::Addi
                    | Op::Andi
                    | Op::Ori
                    | Op::Xori
                    | Op::Sll
                    | Op::Srl
                    | Op::Sra
                    | Op::Slti
            ),
            "{op} is not an immediate ALU opcode"
        );
        Inst { op, rd: Some(rd), rs1: Some(rs), rs2: None, imm, target: None }
    }

    /// Load instruction: `op rd, offset(base)`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a load.
    pub fn load(op: Op, rd: Reg, base: Reg, offset: i64) -> Inst {
        assert!(op.is_load(), "{op} is not a load");
        Inst { op, rd: Some(rd), rs1: Some(base), rs2: None, imm: offset, target: None }
    }

    /// Store instruction: `op value, offset(base)`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a store.
    pub fn store(op: Op, value: Reg, base: Reg, offset: i64) -> Inst {
        assert!(op.is_store(), "{op} is not a store");
        Inst { op, rd: None, rs1: Some(base), rs2: Some(value), imm: offset, target: None }
    }

    /// Conditional branch: `op rs, rt, target`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a conditional branch.
    pub fn branch(op: Op, rs: Reg, rt: Reg, target: Pc) -> Inst {
        assert!(op.is_branch(), "{op} is not a conditional branch");
        Inst { op, rd: None, rs1: Some(rs), rs2: Some(rt), imm: 0, target: Some(target) }
    }

    /// Direct jump: `j target` or `jal target`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is neither `J` nor `Jal`.
    pub fn jump(op: Op, target: Pc) -> Inst {
        assert!(matches!(op, Op::J | Op::Jal), "{op} is not a direct jump");
        let rd = if op == Op::Jal { Some(Reg::LINK) } else { None };
        Inst { op, rd, rs1: None, rs2: None, imm: 0, target: Some(target) }
    }

    /// Indirect jump: `jr rs`.
    pub fn jr(rs: Reg) -> Inst {
        Inst { op: Op::Jr, rd: None, rs1: Some(rs), rs2: None, imm: 0, target: None }
    }

    /// Load immediate: `li rd, imm`.
    pub fn li(rd: Reg, imm: i64) -> Inst {
        Inst { op: Op::Li, rd: Some(rd), rs1: None, rs2: None, imm, target: None }
    }

    /// Register move: `mov rd, rs`.
    pub fn mov(rd: Reg, rs: Reg) -> Inst {
        Inst { op: Op::Mov, rd: Some(rd), rs1: Some(rs), rs2: None, imm: 0, target: None }
    }

    /// `nop`.
    pub fn nop() -> Inst {
        Inst { op: Op::Nop, rd: None, rs1: None, rs2: None, imm: 0, target: None }
    }

    /// `halt`.
    pub fn halt() -> Inst {
        Inst { op: Op::Halt, rd: None, rs1: None, rs2: None, imm: 0, target: None }
    }

    /// The register this instruction defines, if any.
    ///
    /// Writes to the hardwired-zero register are architectural no-ops and
    /// reported as `None`, so dependence tracking never chains through `r0`.
    #[inline]
    pub fn def(&self) -> Option<Reg> {
        match self.rd {
            Some(r) if !r.is_zero() => Some(r),
            _ => None,
        }
    }

    /// Iterates over the registers this instruction reads.
    ///
    /// The hardwired-zero register is excluded: it always reads as zero and
    /// never creates a data dependence.
    pub fn uses(&self) -> impl Iterator<Item = Reg> + '_ {
        [self.rs1, self.rs2]
            .into_iter()
            .flatten()
            .filter(|r| !r.is_zero())
    }

    /// The opcode's class (convenience for `self.op.class()`).
    #[inline]
    pub fn class(&self) -> OpClass {
        self.op.class()
    }

    /// Whether the instruction is a memory operation.
    #[inline]
    pub fn is_mem(&self) -> bool {
        self.op.is_load() || self.op.is_store()
    }
}

impl fmt::Display for Inst {
    /// Disassembles the instruction in assembler syntax, e.g.
    /// `lw r8, 0(r7)` or `bge r4, r1, 14`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.op.mnemonic();
        match self.op.class() {
            OpClass::Load => write!(
                f,
                "{m} {}, {}({})",
                self.rd.expect("load has rd"),
                self.imm,
                self.rs1.expect("load has base")
            ),
            OpClass::Store => write!(
                f,
                "{m} {}, {}({})",
                self.rs2.expect("store has value"),
                self.imm,
                self.rs1.expect("store has base")
            ),
            OpClass::Branch => write!(
                f,
                "{m} {}, {}, {}",
                self.rs1.expect("branch has rs"),
                self.rs2.expect("branch has rt"),
                self.target.expect("branch has target")
            ),
            OpClass::Jump => match self.op {
                Op::Jr => write!(f, "{m} {}", self.rs1.expect("jr has rs")),
                _ => write!(f, "{m} {}", self.target.expect("jump has target")),
            },
            OpClass::Other => f.write_str(m),
            _ => match self.op {
                Op::Li => write!(f, "{m} {}, {}", self.rd.expect("li has rd"), self.imm),
                Op::Mov => write!(
                    f,
                    "{m} {}, {}",
                    self.rd.expect("mov has rd"),
                    self.rs1.expect("mov has rs")
                ),
                Op::Add
                | Op::Sub
                | Op::And
                | Op::Or
                | Op::Xor
                | Op::Nor
                | Op::Sllv
                | Op::Srlv
                | Op::Slt
                | Op::Sltu
                | Op::Mul => write!(
                    f,
                    "{m} {}, {}, {}",
                    self.rd.expect("rtype has rd"),
                    self.rs1.expect("rtype has rs"),
                    self.rs2.expect("rtype has rt")
                ),
                _ => write!(
                    f,
                    "{m} {}, {}, {}",
                    self.rd.expect("itype has rd"),
                    self.rs1.expect("itype has rs"),
                    self.imm
                ),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_use_alu() {
        let i = Inst::rtype(Op::Add, Reg::new(9), Reg::new(9), Reg::new(8));
        assert_eq!(i.def(), Some(Reg::new(9)));
        let uses: Vec<Reg> = i.uses().collect();
        assert_eq!(uses, vec![Reg::new(9), Reg::new(8)]);
    }

    #[test]
    fn def_use_load_store() {
        let l = Inst::load(Op::Lw, Reg::new(8), Reg::new(7), 0);
        assert_eq!(l.def(), Some(Reg::new(8)));
        assert_eq!(l.uses().collect::<Vec<_>>(), vec![Reg::new(7)]);

        let s = Inst::store(Op::Sw, Reg::new(8), Reg::new(7), 4);
        assert_eq!(s.def(), None);
        assert_eq!(s.uses().collect::<Vec<_>>(), vec![Reg::new(7), Reg::new(8)]);
    }

    #[test]
    fn zero_register_creates_no_deps() {
        let i = Inst::rtype(Op::Add, Reg::ZERO, Reg::ZERO, Reg::new(3));
        assert_eq!(i.def(), None);
        assert_eq!(i.uses().collect::<Vec<_>>(), vec![Reg::new(3)]);
    }

    #[test]
    fn jal_defines_link() {
        let i = Inst::jump(Op::Jal, 42);
        assert_eq!(i.def(), Some(Reg::LINK));
        assert_eq!(i.target, Some(42));
    }

    #[test]
    fn branch_operands() {
        let i = Inst::branch(Op::Bge, Reg::new(4), Reg::new(1), 14);
        assert_eq!(i.def(), None);
        assert_eq!(i.uses().collect::<Vec<_>>(), vec![Reg::new(4), Reg::new(1)]);
        assert_eq!(i.target, Some(14));
    }

    #[test]
    fn display_matches_assembler_syntax() {
        assert_eq!(
            Inst::load(Op::Lw, Reg::new(8), Reg::new(7), 0).to_string(),
            "lw r8, 0(r7)"
        );
        assert_eq!(
            Inst::store(Op::Sd, Reg::new(2), Reg::new(3), -8).to_string(),
            "sd r2, -8(r3)"
        );
        assert_eq!(
            Inst::branch(Op::Beq, Reg::new(6), Reg::new(2), 11).to_string(),
            "beq r6, r2, 11"
        );
        assert_eq!(Inst::jump(Op::J, 0).to_string(), "j 0");
        assert_eq!(Inst::jr(Reg::new(31)).to_string(), "jr r31");
        assert_eq!(Inst::li(Reg::new(4), -3).to_string(), "li r4, -3");
        assert_eq!(Inst::mov(Reg::new(4), Reg::new(5)).to_string(), "mov r4, r5");
        assert_eq!(
            Inst::itype(Op::Sll, Reg::new(7), Reg::new(7), 2).to_string(),
            "sll r7, r7, 2"
        );
        assert_eq!(Inst::nop().to_string(), "nop");
        assert_eq!(Inst::halt().to_string(), "halt");
    }

    #[test]
    #[should_panic(expected = "not a load")]
    fn load_ctor_validates() {
        let _ = Inst::load(Op::Sw, Reg::new(1), Reg::new(2), 0);
    }

    #[test]
    #[should_panic(expected = "not a conditional branch")]
    fn branch_ctor_validates() {
        let _ = Inst::branch(Op::J, Reg::new(1), Reg::new(2), 0);
    }
}
