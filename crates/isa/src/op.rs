//! Opcodes and opcode classification.

use std::fmt;

/// A PERI opcode.
///
/// The set follows the paper's Figure-1 listing (`lw`, `sll`, `addi`, `beq`,
/// `bge`, `j`, …) extended with the handful of operations the synthetic
/// workloads need (`mul`, logical ops, byte/doubleword memory ops).
///
/// Loads and stores come in three widths: byte (`Lb`/`Sb`), 32-bit word
/// (`Lw`/`Sw`, sign-extending), and 64-bit doubleword (`Ld`/`Sd`).
/// Registers are 64-bit throughout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Op {
    // Three-register ALU.
    /// `add rd, rs, rt` — `rd = rs + rt` (wrapping).
    Add,
    /// `sub rd, rs, rt` — `rd = rs - rt` (wrapping).
    Sub,
    /// `and rd, rs, rt` — bitwise AND.
    And,
    /// `or rd, rs, rt` — bitwise OR.
    Or,
    /// `xor rd, rs, rt` — bitwise XOR.
    Xor,
    /// `nor rd, rs, rt` — bitwise NOR.
    Nor,
    /// `sllv rd, rs, rt` — shift left logical by register amount (mod 64).
    Sllv,
    /// `srlv rd, rs, rt` — shift right logical by register amount (mod 64).
    Srlv,
    /// `slt rd, rs, rt` — `rd = (rs < rt) as signed`.
    Slt,
    /// `sltu rd, rs, rt` — `rd = (rs < rt) as unsigned`.
    Sltu,
    /// `mul rd, rs, rt` — low 64 bits of the signed product.
    Mul,

    // Immediate ALU.
    /// `addi rd, rs, imm` — `rd = rs + imm` (wrapping).
    Addi,
    /// `andi rd, rs, imm` — bitwise AND with immediate.
    Andi,
    /// `ori rd, rs, imm` — bitwise OR with immediate.
    Ori,
    /// `xori rd, rs, imm` — bitwise XOR with immediate.
    Xori,
    /// `sll rd, rs, imm` — shift left logical by immediate (mod 64).
    Sll,
    /// `srl rd, rs, imm` — shift right logical by immediate (mod 64).
    Srl,
    /// `sra rd, rs, imm` — shift right arithmetic by immediate (mod 64).
    Sra,
    /// `slti rd, rs, imm` — `rd = (rs < imm) as signed`.
    Slti,
    /// `li rd, imm` — load immediate.
    Li,
    /// `mov rd, rs` — register move (target of register-move elimination).
    Mov,

    // Memory.
    /// `lb rd, imm(rs)` — load sign-extended byte.
    Lb,
    /// `lbu rd, imm(rs)` — load zero-extended byte.
    Lbu,
    /// `lw rd, imm(rs)` — load sign-extended 32-bit word.
    Lw,
    /// `ld rd, imm(rs)` — load 64-bit doubleword.
    Ld,
    /// `sb rt, imm(rs)` — store low byte of `rt`.
    Sb,
    /// `sw rt, imm(rs)` — store low 32 bits of `rt`.
    Sw,
    /// `sd rt, imm(rs)` — store 64-bit `rt`.
    Sd,

    // Control.
    /// `beq rs, rt, target` — branch if equal.
    Beq,
    /// `bne rs, rt, target` — branch if not equal.
    Bne,
    /// `blt rs, rt, target` — branch if signed less-than.
    Blt,
    /// `bge rs, rt, target` — branch if signed greater-or-equal.
    Bge,
    /// `ble rs, rt, target` — branch if signed less-or-equal.
    Ble,
    /// `bgt rs, rt, target` — branch if signed greater-than.
    Bgt,
    /// `j target` — unconditional jump.
    J,
    /// `jal target` — jump and link (`r31 = pc + 1`).
    Jal,
    /// `jr rs` — jump to register.
    Jr,

    // Misc.
    /// `nop` — no operation.
    Nop,
    /// `halt` — stop the program.
    Halt,
}

/// Coarse classification of an opcode, used by the slicer, the SCDH model
/// and the timing simulator's scheduling logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU operation (including `li`/`mov`).
    IntAlu,
    /// Integer multiply (longer latency).
    IntMul,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump (direct or indirect).
    Jump,
    /// `nop`/`halt`.
    Other,
}

impl Op {
    /// The opcode's class.
    ///
    /// ```
    /// use preexec_isa::{Op, OpClass};
    /// assert_eq!(Op::Lw.class(), OpClass::Load);
    /// assert_eq!(Op::Beq.class(), OpClass::Branch);
    /// ```
    pub fn class(self) -> OpClass {
        use Op::*;
        match self {
            Add | Sub | And | Or | Xor | Nor | Sllv | Srlv | Slt | Sltu | Addi | Andi | Ori
            | Xori | Sll | Srl | Sra | Slti | Li | Mov => OpClass::IntAlu,
            Mul => OpClass::IntMul,
            Lb | Lbu | Lw | Ld => OpClass::Load,
            Sb | Sw | Sd => OpClass::Store,
            Beq | Bne | Blt | Bge | Ble | Bgt => OpClass::Branch,
            J | Jal | Jr => OpClass::Jump,
            Nop | Halt => OpClass::Other,
        }
    }

    /// Whether this opcode reads memory.
    #[inline]
    pub fn is_load(self) -> bool {
        self.class() == OpClass::Load
    }

    /// Whether this opcode writes memory.
    #[inline]
    pub fn is_store(self) -> bool {
        self.class() == OpClass::Store
    }

    /// Whether this opcode is a conditional branch.
    #[inline]
    pub fn is_branch(self) -> bool {
        self.class() == OpClass::Branch
    }

    /// Whether this opcode unconditionally transfers control.
    #[inline]
    pub fn is_jump(self) -> bool {
        self.class() == OpClass::Jump
    }

    /// Whether this opcode can redirect the PC (branch or jump).
    #[inline]
    pub fn is_control(self) -> bool {
        matches!(self.class(), OpClass::Branch | OpClass::Jump)
    }

    /// Access width in bytes for memory operations, `None` otherwise.
    pub fn mem_width(self) -> Option<u8> {
        use Op::*;
        match self {
            Lb | Lbu | Sb => Some(1),
            Lw | Sw => Some(4),
            Ld | Sd => Some(8),
            _ => None,
        }
    }

    /// Nominal execution latency in cycles, excluding any memory access.
    ///
    /// These are the unit latencies assumed by the paper's working example
    /// (all ops 1 cycle) except integer multiply, which is modeled at 3
    /// cycles as in the timing simulator. Loads add address generation plus
    /// cache access on top of this in the timing model; the SCDH analytical
    /// model uses [`Op::scdh_latency`] instead.
    pub fn exec_latency(self) -> u32 {
        match self.class() {
            OpClass::IntMul => 3,
            _ => 1,
        }
    }

    /// Latency used by the sequencing-constrained dataflow-height model.
    ///
    /// The paper's working example assumes unit latency for every operation
    /// (§3.1: "All operations have unit latency"); cache-miss latency is
    /// added separately by the model for the targeted load.
    pub fn scdh_latency(self) -> u32 {
        match self.class() {
            OpClass::IntMul => 3,
            _ => 1,
        }
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Op::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Nor => "nor",
            Sllv => "sllv",
            Srlv => "srlv",
            Slt => "slt",
            Sltu => "sltu",
            Mul => "mul",
            Addi => "addi",
            Andi => "andi",
            Ori => "ori",
            Xori => "xori",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Slti => "slti",
            Li => "li",
            Mov => "mov",
            Lb => "lb",
            Lbu => "lbu",
            Lw => "lw",
            Ld => "ld",
            Sb => "sb",
            Sw => "sw",
            Sd => "sd",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Ble => "ble",
            Bgt => "bgt",
            J => "j",
            Jal => "jal",
            Jr => "jr",
            Nop => "nop",
            Halt => "halt",
        }
    }

    /// Parses a mnemonic back into an opcode.
    pub fn from_mnemonic(s: &str) -> Option<Op> {
        use Op::*;
        Some(match s {
            "add" => Add,
            "sub" => Sub,
            "and" => And,
            "or" => Or,
            "xor" => Xor,
            "nor" => Nor,
            "sllv" => Sllv,
            "srlv" => Srlv,
            "slt" => Slt,
            "sltu" => Sltu,
            "mul" => Mul,
            "addi" => Addi,
            "andi" => Andi,
            "ori" => Ori,
            "xori" => Xori,
            "sll" => Sll,
            "srl" => Srl,
            "sra" => Sra,
            "slti" => Slti,
            "li" => Li,
            "mov" => Mov,
            "lb" => Lb,
            "lbu" => Lbu,
            "lw" => Lw,
            "ld" => Ld,
            "sb" => Sb,
            "sw" => Sw,
            "sd" => Sd,
            "beq" => Beq,
            "bne" => Bne,
            "blt" => Blt,
            "bge" => Bge,
            "ble" => Ble,
            "bgt" => Bgt,
            "j" => J,
            "jal" => Jal,
            "jr" => Jr,
            "nop" => Nop,
            "halt" => Halt,
            _ => return None,
        })
    }

    /// All opcodes, for exhaustive property tests.
    pub fn all() -> &'static [Op] {
        use Op::*;
        &[
            Add, Sub, And, Or, Xor, Nor, Sllv, Srlv, Slt, Sltu, Mul, Addi, Andi, Ori, Xori, Sll,
            Srl, Sra, Slti, Li, Mov, Lb, Lbu, Lw, Ld, Sb, Sw, Sd, Beq, Bne, Blt, Bge, Ble, Bgt, J,
            Jal, Jr, Nop, Halt,
        ]
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_round_trip() {
        for &op in Op::all() {
            assert_eq!(Op::from_mnemonic(op.mnemonic()), Some(op), "{op:?}");
        }
    }

    #[test]
    fn unknown_mnemonic() {
        assert_eq!(Op::from_mnemonic("frobnicate"), None);
        assert_eq!(Op::from_mnemonic(""), None);
    }

    #[test]
    fn classes() {
        assert_eq!(Op::Add.class(), OpClass::IntAlu);
        assert_eq!(Op::Mul.class(), OpClass::IntMul);
        assert_eq!(Op::Ld.class(), OpClass::Load);
        assert_eq!(Op::Sd.class(), OpClass::Store);
        assert_eq!(Op::Bne.class(), OpClass::Branch);
        assert_eq!(Op::Jr.class(), OpClass::Jump);
        assert_eq!(Op::Halt.class(), OpClass::Other);
    }

    #[test]
    fn memory_widths() {
        assert_eq!(Op::Lb.mem_width(), Some(1));
        assert_eq!(Op::Lw.mem_width(), Some(4));
        assert_eq!(Op::Sd.mem_width(), Some(8));
        assert_eq!(Op::Add.mem_width(), None);
    }

    #[test]
    fn control_predicates() {
        assert!(Op::Beq.is_control());
        assert!(Op::J.is_control());
        assert!(Op::J.is_jump());
        assert!(!Op::J.is_branch());
        assert!(Op::Bge.is_branch());
        assert!(!Op::Add.is_control());
    }

    #[test]
    fn latencies() {
        assert_eq!(Op::Add.exec_latency(), 1);
        assert_eq!(Op::Mul.exec_latency(), 3);
        for &op in Op::all() {
            assert!(op.exec_latency() >= 1);
            assert!(op.scdh_latency() >= 1);
        }
    }
}
