//! A two-pass text assembler for PERI.
//!
//! Syntax, one instruction per line:
//!
//! ```text
//! label:                 ; labels may share a line with an instruction
//!     addi r5, r5, 16    ; r-type / i-type: op rd, rs[, rt|imm]
//!     lw   r8, 0(r7)     ; memory: op reg, offset(base)
//!     beq  r6, r2, label ; branches: op rs, rt, label|pc
//!     j    label
//!     jr   r31
//!     li   r4, 100
//!     halt
//! ```
//!
//! Comments run from `#` or `;` to end of line. Immediates are decimal or
//! `0x` hexadecimal, optionally negative. Registers are `r0`–`r31` or merge
//! temporaries `t0`–`t31`.

use crate::{Inst, Op, Pc, Program, Reg};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An assembly error, with the 1-based source line where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assembly error at line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

/// Assembles PERI source text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] pinpointing the offending source line for unknown
/// mnemonics, malformed operands, bad register names, duplicate labels, or
/// references to undefined labels.
///
/// # Example
///
/// ```
/// use preexec_isa::assemble;
///
/// let p = assemble("loop", "top: addi r1, r1, 1\n j top\n halt").unwrap();
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.inst(1).target, Some(0));
/// ```
pub fn assemble(name: &str, source: &str) -> Result<Program, AsmError> {
    let mut labels: HashMap<String, Pc> = HashMap::new();
    let mut lines: Vec<(usize, String)> = Vec::new();

    // Pass 1: strip comments, peel labels, record instruction lines.
    let mut pc: Pc = 0;
    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let mut text = raw;
        if let Some(i) = text.find(['#', ';']) {
            text = &text[..i];
        }
        let mut text = text.trim();
        while let Some(colon) = text.find(':') {
            let label = text[..colon].trim();
            if label.is_empty() || !is_ident(label) {
                return Err(err(lineno, format!("malformed label `{}`", &text[..colon])));
            }
            if labels.insert(label.to_string(), pc).is_some() {
                return Err(err(lineno, format!("duplicate label `{label}`")));
            }
            text = text[colon + 1..].trim();
        }
        if !text.is_empty() {
            lines.push((lineno, text.to_string()));
            pc += 1;
        }
    }

    // Pass 2: parse instructions.
    let mut program = Program::new(name);
    for (lineno, text) in &lines {
        let inst = parse_inst(*lineno, text, &labels)?;
        program.push(inst);
    }
    if let Err(bad_pc) = program.validate() {
        return Err(err(
            lines[bad_pc as usize].0,
            format!("branch target out of range in `{}`", lines[bad_pc as usize].1),
        ));
    }
    Ok(program)
}

fn err(line: usize, message: String) -> AsmError {
    AsmError { line, message }
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn parse_inst(line: usize, text: &str, labels: &HashMap<String, Pc>) -> Result<Inst, AsmError> {
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let op = Op::from_mnemonic(mnemonic)
        .ok_or_else(|| err(line, format!("unknown mnemonic `{mnemonic}`")))?;
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };

    let want = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(line, format!("`{mnemonic}` expects {n} operands, got {}", ops.len())))
        }
    };

    use Op::*;
    match op {
        Add | Sub | And | Or | Xor | Nor | Sllv | Srlv | Slt | Sltu | Mul => {
            want(3)?;
            Ok(Inst::rtype(
                op,
                parse_reg(line, ops[0])?,
                parse_reg(line, ops[1])?,
                parse_reg(line, ops[2])?,
            ))
        }
        Addi | Andi | Ori | Xori | Sll | Srl | Sra | Slti => {
            want(3)?;
            Ok(Inst::itype(
                op,
                parse_reg(line, ops[0])?,
                parse_reg(line, ops[1])?,
                parse_imm(line, ops[2])?,
            ))
        }
        Li => {
            want(2)?;
            Ok(Inst::li(parse_reg(line, ops[0])?, parse_imm(line, ops[1])?))
        }
        Mov => {
            want(2)?;
            Ok(Inst::mov(parse_reg(line, ops[0])?, parse_reg(line, ops[1])?))
        }
        Lb | Lbu | Lw | Ld => {
            want(2)?;
            let (offset, base) = parse_mem(line, ops[1])?;
            Ok(Inst::load(op, parse_reg(line, ops[0])?, base, offset))
        }
        Sb | Sw | Sd => {
            want(2)?;
            let (offset, base) = parse_mem(line, ops[1])?;
            Ok(Inst::store(op, parse_reg(line, ops[0])?, base, offset))
        }
        Beq | Bne | Blt | Bge | Ble | Bgt => {
            want(3)?;
            Ok(Inst::branch(
                op,
                parse_reg(line, ops[0])?,
                parse_reg(line, ops[1])?,
                parse_target(line, ops[2], labels)?,
            ))
        }
        J | Jal => {
            want(1)?;
            Ok(Inst::jump(op, parse_target(line, ops[0], labels)?))
        }
        Jr => {
            want(1)?;
            Ok(Inst::jr(parse_reg(line, ops[0])?))
        }
        Nop => {
            want(0)?;
            Ok(Inst::nop())
        }
        Halt => {
            want(0)?;
            Ok(Inst::halt())
        }
    }
}

fn parse_reg(line: usize, s: &str) -> Result<Reg, AsmError> {
    let (prefix, num) = s.split_at(1.min(s.len()));
    let base = match prefix {
        "r" => 0u8,
        "t" => 32u8,
        _ => return Err(err(line, format!("bad register `{s}`"))),
    };
    let n: u8 = num
        .parse()
        .map_err(|_| err(line, format!("bad register `{s}`")))?;
    if n >= 32 {
        return Err(err(line, format!("bad register `{s}` (index must be 0..32)")));
    }
    Ok(Reg::new(base + n))
}

fn parse_imm(line: usize, s: &str) -> Result<i64, AsmError> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| err(line, format!("bad immediate `{s}`")))?;
    Ok(if neg { -value } else { value })
}

fn parse_mem(line: usize, s: &str) -> Result<(i64, Reg), AsmError> {
    let open = s
        .find('(')
        .ok_or_else(|| err(line, format!("bad memory operand `{s}` (want offset(base))")))?;
    let close = s
        .rfind(')')
        .filter(|&c| c > open)
        .ok_or_else(|| err(line, format!("bad memory operand `{s}` (missing `)`)")))?;
    let offset_text = s[..open].trim();
    let offset = if offset_text.is_empty() {
        0
    } else {
        parse_imm(line, offset_text)?
    };
    let base = parse_reg(line, s[open + 1..close].trim())?;
    Ok((offset, base))
}

fn parse_target(line: usize, s: &str, labels: &HashMap<String, Pc>) -> Result<Pc, AsmError> {
    if let Some(&pc) = labels.get(s) {
        return Ok(pc);
    }
    if s.chars().all(|c| c.is_ascii_digit()) {
        return s
            .parse()
            .map_err(|_| err(line, format!("bad target `{s}`")));
    }
    Err(err(line, format!("undefined label `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpClass;

    /// The paper's Figure-1 pharmacy loop, verbatim instruction shapes.
    pub const PHARMACY: &str = r#"
    loop:
        bge  r4, r1, exit       # 00: i >= N_XACT?
        lw   r6, 0(r5)          # 01: coverage = xact[i].coverage
        beq  r6, r2, induct     # 02: coverage == FULL -> continue
        bne  r6, r3, generic    # 03: coverage != PARTIAL -> generic
        lw   r7, 4(r5)          # 04: drug_id = xact[i].drug_id
        j    merge              # 05
    generic:
        lw   r7, 8(r5)          # 06: drug_id = xact[i].generic_drug_id
    merge:
        sll  r7, r7, 2          # 07
        addi r7, r7, 4096       # 08: + &drugs
        lw   r8, 0(r7)          # 09: price (the problem load)
        add  r9, r9, r8         # 10: todays_take +=
    induct:
        addi r5, r5, 16         # 11: xact++
        addi r4, r4, 1          # 12: i++
        j    loop               # 13
    exit:
        halt                    # 14
    "#;

    #[test]
    fn pharmacy_loop_assembles() {
        let p = assemble("pharmacy", PHARMACY).unwrap();
        assert_eq!(p.len(), 15);
        // #00 bge -> exit (14)
        assert_eq!(p.inst(0).op, Op::Bge);
        assert_eq!(p.inst(0).target, Some(14));
        // #02 beq -> induct (11)
        assert_eq!(p.inst(2).target, Some(11));
        // #03 bne -> generic (6)
        assert_eq!(p.inst(3).target, Some(6));
        // #09 is the problem load
        assert_eq!(p.inst(9).class(), OpClass::Load);
        assert_eq!(p.inst(9).imm, 0);
        // #13 jumps back to 0
        assert_eq!(p.inst(13).target, Some(0));
    }

    #[test]
    fn numeric_targets() {
        let p = assemble("t", "beq r1, r2, 1\n halt").unwrap();
        assert_eq!(p.inst(0).target, Some(1));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("t", "li r1, 0x10\n addi r2, r2, -5\n halt").unwrap();
        assert_eq!(p.inst(0).imm, 16);
        assert_eq!(p.inst(1).imm, -5);
    }

    #[test]
    fn negative_memory_offset() {
        let p = assemble("t", "ld r1, -8(r2)\n halt").unwrap();
        assert_eq!(p.inst(0).imm, -8);
    }

    #[test]
    fn bare_paren_memory_operand() {
        let p = assemble("t", "ld r1, (r2)\n halt").unwrap();
        assert_eq!(p.inst(0).imm, 0);
    }

    #[test]
    fn temporaries_parse() {
        let p = assemble("t", "mov t0, r5\n halt").unwrap();
        assert_eq!(p.inst(0).rd, Some(Reg::temp(0)));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("t", "nop\nbogus r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("t", "a: nop\na: nop\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn undefined_label_rejected() {
        let e = assemble("t", "j nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined"));
    }

    #[test]
    fn wrong_operand_count() {
        let e = assemble("t", "add r1, r2\n").unwrap_err();
        assert!(e.message.contains("expects 3"));
    }

    #[test]
    fn bad_register_rejected() {
        let e = assemble("t", "add r1, r2, r32\n").unwrap_err();
        assert!(e.message.contains("bad register"));
    }

    #[test]
    fn labels_on_own_line() {
        let p = assemble("t", "start:\n  nop\n  j start\n halt").unwrap();
        assert_eq!(p.inst(1).target, Some(0));
    }

    #[test]
    fn comments_stripped() {
        let p = assemble("t", "nop # a comment\nnop ; another\n").unwrap();
        assert_eq!(p.len(), 2);
    }
}
