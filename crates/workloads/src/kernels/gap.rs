//! `gap` analogue: dereferencing a pointer array over a shuffled heap.
//!
//! SPEC's `gap` (group theory) walks bags/lists of heap objects. The
//! pointer array itself is scanned sequentially (prefetch-friendly), but
//! the objects it points to are scattered — their loads miss and defy
//! stride prediction, while their addresses are one sequential load away:
//! induction-unrolled p-threads cover them well.

use crate::util::{table_bytes, Lcg};
use crate::InputSet;
use preexec_isa::{Program, ProgramBuilder, Reg};

/// Objects for train: 256 K × 32 B = 8 MB arena.
const TRAIN_OBJECTS: usize = 256 * 1024;
/// Dereferences for train.
const TRAIN_ITERS: i64 = 80_000;

/// Builds the kernel for `input`.
pub fn build(input: InputSet) -> Program {
    let objects = input.scale(TRAIN_OBJECTS, 0.0625);
    let iters = match input {
        InputSet::Test => TRAIN_ITERS / 8,
        _ => TRAIN_ITERS,
    };
    let mut rng = Lcg::new(0x6761_7000 ^ input.seed()); // "gap"
    let arena_base = super::table_base(0);
    let ptr_base = super::table_base(1);

    // Shuffled object order: pointer i references a random object.
    let mut order: Vec<u64> = (0..objects as u64).collect();
    for i in (1..objects).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        order.swap(i, j);
    }
    let ptrs: Vec<u64> = (0..iters as usize)
        .map(|i| arena_base + order[i % objects] * 32)
        .collect();
    let arena: Vec<u8> = (0..objects * 32).map(|_| rng.below(256) as u8).collect();

    let mut b = ProgramBuilder::new("gap");
    let (pp, i, n, p, v, w, acc) = (
        Reg::new(1),
        Reg::new(2),
        Reg::new(3),
        Reg::new(4),
        Reg::new(5),
        Reg::new(6),
        Reg::new(9),
    );
    b.li(pp, ptr_base as i64);
    b.li(i, 0);
    b.li(n, iters);
    b.label("top");
    b.bge(i, n, "done");
    b.ld(p, 0, pp); // pointer (sequential scan, prefetch-friendly)
    b.ld(v, 0, p); // the problem load: object field
    b.ld(w, 8, p); // same object, usually same line
    b.add(acc, acc, v);
    b.add(acc, acc, w);
    b.sd(acc, 16, p); // write a field back
    b.addi(pp, pp, 8);
    b.addi(i, i, 1);
    b.j("top");
    b.label("done");
    b.halt();
    b.data(arena_base, arena);
    b.data(ptr_base, table_bytes(&ptrs));
    b.build().expect("gap kernel builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_func::{run_trace, TraceConfig};

    #[test]
    fn builds_and_validates() {
        for input in InputSet::all() {
            assert_eq!(build(input).validate(), Ok(()));
        }
    }

    #[test]
    fn object_loads_miss_pointer_array_mostly_hits() {
        let p = build(InputSet::Train);
        let cfg = TraceConfig { max_steps: 400_000, ..TraceConfig::default() };
        let stats = run_trace(&p, &cfg, |_| {});
        assert!(stats.l2_misses > 5_000);
        // Problem load is the object dereference (`ld r5, 0(r4)`).
        let top = stats.problem_loads()[0];
        assert_eq!(p.inst(top.0).to_string(), "ld r5, 0(r4)");
        // The pointer-array load misses at most once per line (8 ptrs).
        let ptr_site = stats
            .load_sites
            .iter()
            .find(|(&pc, _)| p.inst(pc).to_string() == "ld r4, 0(r1)")
            .map(|(_, s)| *s)
            .expect("pointer load site");
        assert!(ptr_site.l2_misses * 4 < ptr_site.execs);
    }
}
