//! `bzip2` analogue: data-dependent permutation indices into a big table.
//!
//! SPEC's `bzip2` builds Burrows–Wheeler permutations whose table indices
//! are computed from the input bytes — unpredictable addresses, but the
//! computation is short and runs off a sequential byte stream, so
//! p-threads can race ahead easily: good coverage expected.

use crate::util::Lcg;
use crate::InputSet;
use preexec_isa::{Program, ProgramBuilder, Reg};

/// Input stream for train: 1 MB of bytes.
const TRAIN_STREAM: usize = 1 << 20;
/// Work table for train: 64 K × 64 B = 4 MB.
const TRAIN_LINES: usize = 64 * 1024;
/// Iterations (bytes consumed) for train.
const TRAIN_ITERS: i64 = 80_000;

/// Builds the kernel for `input`.
pub fn build(input: InputSet) -> Program {
    let stream_len = input.scale(TRAIN_STREAM, 0.25);
    let lines = input.scale(TRAIN_LINES, 0.125); // test: 512 KB, > L2
    let iters = match input {
        InputSet::Test => TRAIN_ITERS / 8,
        _ => TRAIN_ITERS,
    };
    let mut rng = Lcg::new(0x627a_6970 ^ input.seed()); // "bzip"
    let stream: Vec<u8> = (0..stream_len).map(|_| rng.below(256) as u8).collect();
    let table: Vec<u8> = (0..lines * 64).map(|_| rng.below(256) as u8).collect();
    let sbase = super::table_base(0);
    let tbase = super::table_base(1);
    let mask = (lines - 1) as i64;

    let mut b = ProgramBuilder::new("bzip2");
    let (sb, tb, i, n, pb, byte, idx, t, a, v, acc) = (
        Reg::new(1),
        Reg::new(2),
        Reg::new(3),
        Reg::new(4),
        Reg::new(5),
        Reg::new(6),
        Reg::new(7),
        Reg::new(8),
        Reg::new(9),
        Reg::new(10),
        Reg::new(11),
    );
    b.li(sb, sbase as i64);
    b.li(tb, tbase as i64);
    b.li(i, 0);
    b.li(n, iters);
    b.mov(pb, sb);
    b.li(idx, 0);
    b.label("top");
    b.bge(i, n, "done");
    b.lb(byte, 0, pb); // sequential byte (mostly L1 hits)
    b.sll(t, idx, 5); // idx = (idx*31 + byte) & mask
    b.sub(t, t, idx);
    b.add(t, t, byte);
    b.andi(idx, t, mask);
    b.sll(a, idx, 6); // table line address
    b.add(a, a, tb);
    b.ld(v, 0, a); // the problem load
    b.add(acc, acc, v);
    // Frequency-table bookkeeping: a dependent chain the p-thread gets to
    // skip (bzip2's per-symbol MTF/rank update work).
    for _ in 0..8 {
        b.addi(acc, acc, 1);
    }
    b.sll(acc, acc, 1);
    b.srl(acc, acc, 1);
    b.addi(pb, pb, 1);
    b.addi(i, i, 1);
    b.j("top");
    b.label("done");
    b.halt();
    b.data(sbase, stream);
    b.data(tbase, table);
    b.build().expect("bzip2 kernel builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_func::{run_trace, TraceConfig};

    #[test]
    fn builds_and_validates() {
        for input in InputSet::all() {
            assert_eq!(build(input).validate(), Ok(()));
        }
    }

    #[test]
    fn table_load_dominates_misses() {
        let p = build(InputSet::Train);
        let cfg = TraceConfig { max_steps: 400_000, ..TraceConfig::default() };
        let stats = run_trace(&p, &cfg, |_| {});
        assert!(stats.l2_misses > 5_000, "misses {}", stats.l2_misses);
        // The table load (not the byte load) is the problem load.
        let top = stats.problem_loads()[0];
        let inst = p.inst(top.0);
        assert_eq!(inst.to_string(), "ld r10, 0(r9)");
    }

    #[test]
    fn byte_stream_mostly_hits() {
        let p = build(InputSet::Train);
        let cfg = TraceConfig { max_steps: 400_000, ..TraceConfig::default() };
        let stats = run_trace(&p, &cfg, |_| {});
        // The lb site must have a tiny miss ratio (1 per 32 bytes at L1).
        let lb_site = stats
            .load_sites
            .iter()
            .find(|(&pc, _)| p.inst(pc).op == preexec_isa::Op::Lb)
            .map(|(_, s)| *s)
            .expect("lb site present");
        assert!(lb_site.l2_misses * 20 < lb_site.execs);
    }
}
