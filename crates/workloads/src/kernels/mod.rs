//! The ten kernels, one module per SPEC2000int benchmark analogue.
//!
//! Every kernel follows the same conventions:
//! - `build(input)` returns a complete [`preexec_isa::Program`] with its
//!   data image, deterministic in `(kernel, input)`;
//! - problem tables are sized well beyond the 256 KB L2 for `Train`/`Alt`
//!   (except the `Test` inputs of `twolf` and `vpr.p`, which fit, as in
//!   the paper's Figure-7 observation);
//! - data is generated with the crate-local seeded LCG so runs are
//!   reproducible without external files;
//! - registers `r1..r27` are used freely; `r28..r31` are left untouched.

pub mod bzip2;
pub mod crafty;
pub mod gap;
pub mod gcc;
pub mod mcf;
pub mod parser;
pub mod twolf;
pub mod vortex;
pub mod vpr_place;
pub mod vpr_route;

/// Base address of the first data table; kernels space their tables far
/// apart so segments never collide.
pub(crate) const DATA_BASE: u64 = 0x0100_0000;

/// Spacing between tables (64 MB): larger than any table.
pub(crate) const TABLE_STRIDE: u64 = 0x0400_0000;

/// The address of table `i`.
pub(crate) fn table_base(i: u64) -> u64 {
    DATA_BASE + i * TABLE_STRIDE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_bases_are_spaced() {
        assert!(table_base(1) - table_base(0) >= 32 * 1024 * 1024);
    }
}
