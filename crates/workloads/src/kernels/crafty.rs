//! `crafty` analogue: transposition-table probing with data-dependent
//! branches.
//!
//! SPEC's `crafty` (chess) probes a hash table with Zobrist keys and
//! branches on search state; its main thread is mispredict-bound, which
//! the paper notes causes full-coverage *under*-estimation (the slow main
//! thread gives p-threads extra slack). The hash chain is pure ALU, so
//! p-threads can compute probe addresses arbitrarily far ahead.

use crate::util::Lcg;
use crate::InputSet;
use preexec_isa::{Program, ProgramBuilder, Reg};

/// Transposition table for train: 64 K lines = 4 MB.
const TRAIN_LINES: usize = 64 * 1024;
/// Probes for train.
const TRAIN_ITERS: i64 = 50_000;

/// Builds the kernel for `input`.
pub fn build(input: InputSet) -> Program {
    let lines = input.scale(TRAIN_LINES, 0.125);
    let iters = match input {
        InputSet::Test => TRAIN_ITERS / 8,
        _ => TRAIN_ITERS,
    };
    let mut rng = Lcg::new(0x6372_6166 ^ input.seed()); // "craf"
    let table: Vec<u8> = (0..lines * 64).map(|_| rng.below(256) as u8).collect();
    let tbase = super::table_base(0);
    let mask = (lines - 1) as i64;

    let mut b = ProgramBuilder::new("crafty");
    let (tb, i, n, h, k1, k2, idx, a, v, t, acc, acc2) = (
        Reg::new(1),
        Reg::new(2),
        Reg::new(3),
        Reg::new(4),
        Reg::new(5),
        Reg::new(6),
        Reg::new(7),
        Reg::new(8),
        Reg::new(9),
        Reg::new(10),
        Reg::new(11),
        Reg::new(12),
    );
    b.li(tb, tbase as i64);
    b.li(i, 0);
    b.li(n, iters);
    b.li(h, 0x9e3779b97f4a7c15u64 as i64);
    b.li(k1, 6364136223846793005u64 as i64);
    b.li(k2, 1442695040888963407u64 as i64);
    b.label("top");
    b.bge(i, n, "done");
    // Zobrist-ish mixing: an LCG step plus xor-shift (pure ALU, so a
    // p-thread can run it ahead of the main thread).
    b.mul(h, h, k1);
    b.add(h, h, k2);
    b.srl(t, h, 29);
    b.xor(h, h, t);
    // Probe address.
    b.srl(idx, h, 33);
    b.andi(idx, idx, mask);
    b.sll(a, idx, 6);
    b.add(a, a, tb);
    b.ld(v, 0, a); // the problem load: TT probe
    // Data-dependent branches on the probed entry (mispredict-heavy).
    b.andi(t, v, 1);
    b.beq(t, Reg::ZERO, "miss1");
    b.add(acc, acc, v);
    b.j("next1");
    b.label("miss1");
    b.addi(acc2, acc2, 1);
    b.label("next1");
    b.andi(t, v, 2);
    b.beq(t, Reg::ZERO, "next2");
    b.xor(acc, acc, v);
    b.label("next2");
    b.addi(i, i, 1);
    b.j("top");
    b.label("done");
    b.halt();
    b.data(tbase, table);
    b.build().expect("crafty kernel builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_func::{run_trace, TraceConfig};

    #[test]
    fn builds_and_validates() {
        for input in InputSet::all() {
            assert_eq!(build(input).validate(), Ok(()));
        }
    }

    #[test]
    fn probes_miss_and_branches_are_data_dependent() {
        let p = build(InputSet::Train);
        let cfg = TraceConfig { max_steps: 500_000, ..TraceConfig::default() };
        let stats = run_trace(&p, &cfg, |_| {});
        assert!(stats.l2_misses > 5_000, "misses {}", stats.l2_misses);
        // Taken rate of conditional branches is mixed (neither ~0 nor ~1),
        // the signature of data-dependent branching.
        let rate = stats.taken_branches as f64 / stats.branches as f64;
        assert!(rate > 0.2 && rate < 0.8, "taken rate {rate}");
    }
}
