//! `gcc` analogue: variable-stride record walking.
//!
//! SPEC's `gcc` traverses irregular in-memory IR structures where the next
//! record's position is computed from header fields of the current one — a
//! "semi-chase": serialized like a pointer chase, but with a short ALU
//! computation between hops and branches on record kinds. Coverage is
//! moderate: p-threads must re-execute the hop computation.

use crate::util::Lcg;
use crate::InputSet;
use preexec_isa::{Program, ProgramBuilder, Reg};

/// Record region for train: 8 MB.
const TRAIN_REGION: usize = 8 * 1024 * 1024;
/// Record hops for train.
const TRAIN_ITERS: i64 = 60_000;

/// Builds the kernel for `input`.
pub fn build(input: InputSet) -> Program {
    let region = input.scale(TRAIN_REGION, 0.0625);
    let iters = match input {
        InputSet::Test => TRAIN_ITERS / 8,
        _ => TRAIN_ITERS,
    };
    let mut rng = Lcg::new(0x6763_6300 ^ input.seed()); // "gcc"
    let bytes: Vec<u8> = (0..region).map(|_| rng.below(256) as u8).collect();
    let base = super::table_base(0);
    let mask = (region - 1) as i64;

    let mut b = ProgramBuilder::new("gcc");
    let (rb, i, n, pos, a, hdr, t, acc, acc2) = (
        Reg::new(1),
        Reg::new(2),
        Reg::new(3),
        Reg::new(4),
        Reg::new(5),
        Reg::new(6),
        Reg::new(7),
        Reg::new(9),
        Reg::new(10),
    );
    b.li(rb, base as i64);
    b.li(i, 0);
    b.li(n, iters);
    b.li(pos, 0);
    b.label("top");
    b.bge(i, n, "done");
    b.add(a, rb, pos);
    b.ld(hdr, 0, a); // the problem load: record header
    // Next position: header-dependent stride of 64..4096+64 bytes.
    b.andi(t, hdr, 63);
    b.sll(t, t, 6);
    b.addi(t, t, 64);
    b.add(pos, pos, t);
    b.andi(pos, pos, mask & !63);
    // Branch on record kind.
    b.andi(t, hdr, 7);
    b.beq(t, Reg::ZERO, "rare");
    b.add(acc, acc, hdr);
    b.j("next");
    b.label("rare");
    b.xor(acc2, acc2, hdr);
    b.label("next");
    b.addi(i, i, 1);
    b.j("top");
    b.label("done");
    b.halt();
    b.data(base, bytes);
    b.build().expect("gcc kernel builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_func::{run_trace, TraceConfig};

    #[test]
    fn builds_and_validates() {
        for input in InputSet::all() {
            assert_eq!(build(input).validate(), Ok(()));
        }
    }

    #[test]
    fn record_walk_misses() {
        let p = build(InputSet::Train);
        let cfg = TraceConfig { max_steps: 400_000, ..TraceConfig::default() };
        let stats = run_trace(&p, &cfg, |_| {});
        // Average stride ~2 KB over 8 MB: most hops land on fresh lines.
        assert!(stats.l2_misses > 5_000, "misses {}", stats.l2_misses);
    }

    #[test]
    fn position_stays_aligned_and_bounded() {
        // The masked, 64-aligned position never leaves the region: the
        // final accumulators must be deterministic.
        let p1 = build(InputSet::Train);
        let p2 = build(InputSet::Train);
        assert_eq!(p1, p2);
    }
}
