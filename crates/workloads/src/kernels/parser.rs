//! `parser` analogue: hash-bucket lookups followed by short linked-list
//! walks.
//!
//! SPEC's `parser` does dictionary lookups: a hash (pure ALU) selects a
//! bucket, then a short chain of nodes is compared. The bucket-head load
//! is fully computable ahead; the chain nodes are serialized behind it.
//! The paper lists `parser` among the scope-sensitive programs: the hash
//! computation sits far from the loads it feeds.

use crate::util::{table_bytes, Lcg};
use crate::InputSet;
use preexec_isa::{Program, ProgramBuilder, Reg};

/// Buckets for train: 64 K heads (512 KB head table).
const TRAIN_BUCKETS: usize = 64 * 1024;
/// Nodes for train: 192 K × 32 B = 6 MB arena.
const TRAIN_NODES: usize = 192 * 1024;
/// Lookups for train.
const TRAIN_ITERS: i64 = 40_000;

/// Builds the kernel for `input`.
pub fn build(input: InputSet) -> Program {
    let buckets = input.scale(TRAIN_BUCKETS, 0.125);
    let nodes = input.scale(TRAIN_NODES, 0.125);
    let iters = match input {
        InputSet::Test => TRAIN_ITERS / 8,
        _ => TRAIN_ITERS,
    };
    let mut rng = Lcg::new(0x7061_7273 ^ input.seed()); // "pars"
    let heads_base = super::table_base(0);
    let arena_base = super::table_base(1);

    // Scatter nodes over the arena and chain them into buckets.
    let mut order: Vec<u64> = (0..nodes as u64).collect();
    for i in (1..nodes).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        order.swap(i, j);
    }
    let mut heads = vec![0u64; buckets];
    let mut arena = vec![0u64; nodes * 4]; // [key, next, val, pad]
    for (k, &slot) in order.iter().enumerate() {
        let bucket = k % buckets;
        let addr = arena_base + slot * 32;
        arena[slot as usize * 4] = rng.next_u64(); // key
        arena[slot as usize * 4 + 1] = heads[bucket]; // next (old head)
        arena[slot as usize * 4 + 2] = rng.below(1 << 20); // value
        heads[bucket] = addr;
    }

    let mut b = ProgramBuilder::new("parser");
    let (hb, i, n, w, k1, k2, hash, a, p, key, t, acc) = (
        Reg::new(1),
        Reg::new(2),
        Reg::new(3),
        Reg::new(4),
        Reg::new(5),
        Reg::new(6),
        Reg::new(7),
        Reg::new(8),
        Reg::new(9),
        Reg::new(10),
        Reg::new(11),
        Reg::new(12),
    );
    b.li(hb, heads_base as i64);
    b.li(i, 0);
    b.li(n, iters);
    b.li(w, 0x243f6a8885a308d3u64 as i64);
    b.li(k1, 6364136223846793005u64 as i64);
    b.li(k2, 1442695040888963407u64 as i64);
    b.label("top");
    b.bge(i, n, "done");
    // Next "word" and its hash (pure ALU).
    b.mul(w, w, k1);
    b.add(w, w, k2);
    b.srl(hash, w, 33);
    b.andi(hash, hash, (buckets - 1) as i64);
    b.sll(a, hash, 3);
    b.add(a, a, hb);
    b.ld(p, 0, a); // the problem load: bucket head
    // Walk up to the whole chain comparing keys.
    b.label("walk");
    b.beq(p, Reg::ZERO, "next");
    b.ld(key, 0, p); // node key (serialized chain load)
    b.xor(t, key, w);
    b.andi(t, t, 4095);
    b.beq(t, Reg::ZERO, "found");
    b.ld(p, 8, p); // follow the chain
    b.j("walk");
    b.label("found");
    b.ld(t, 16, p); // value
    b.add(acc, acc, t);
    b.label("next");
    b.addi(i, i, 1);
    b.j("top");
    b.label("done");
    b.halt();
    b.data(heads_base, table_bytes(&heads));
    b.data(arena_base, table_bytes(&arena));
    b.build().expect("parser kernel builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_func::{run_trace, TraceConfig};

    #[test]
    fn builds_and_validates() {
        for input in InputSet::all() {
            assert_eq!(build(input).validate(), Ok(()));
        }
    }

    #[test]
    fn lookups_miss_on_heads_and_chains() {
        let p = build(InputSet::Train);
        let cfg = TraceConfig { max_steps: 600_000, ..TraceConfig::default() };
        let stats = run_trace(&p, &cfg, |_| {});
        assert!(stats.l2_misses > 4_000, "misses {}", stats.l2_misses);
        // At least two distinct miss sites: head load and chain loads.
        assert!(stats.problem_loads().len() >= 2);
    }

    #[test]
    fn chains_average_a_few_nodes() {
        // 192K nodes over 64K buckets: mean chain length 3.
        let p = build(InputSet::Train);
        let cfg = TraceConfig { max_steps: 600_000, ..TraceConfig::default() };
        let stats = run_trace(&p, &cfg, |_| {});
        let head_pc = stats
            .load_sites
            .iter()
            .find(|(&pc, _)| p.inst(pc).to_string() == "ld r9, 0(r8)")
            .map(|(&pc, _)| pc)
            .expect("head site");
        let key_pc = stats
            .load_sites
            .iter()
            .find(|(&pc, _)| p.inst(pc).to_string() == "ld r10, 0(r9)")
            .map(|(&pc, _)| pc)
            .expect("key site");
        let heads = stats.load_sites[&head_pc].execs as f64;
        let keys = stats.load_sites[&key_pc].execs as f64;
        let mean = keys / heads;
        assert!(mean > 1.2 && mean < 4.0, "mean chain walk {mean}");
    }
}
