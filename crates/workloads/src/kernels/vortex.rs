//! `vortex` analogue: multi-level object-database indirection.
//!
//! SPEC's `vortex` is an object database whose lookups traverse several
//! levels of mapping tables before reaching the object. Each level's
//! address depends on the previous level's loaded value, so covering the
//! deepest load requires a p-thread long enough to carry the whole chain —
//! `vortex` is the paper's example of a benchmark that keeps benefiting
//! from relaxed length constraints (Figure 4).

use crate::util::{table_bytes, Lcg};
use crate::InputSet;
use preexec_isa::{Program, ProgramBuilder, Reg};

/// Index table for train: 128 K entries (1 MB).
const TRAIN_INDEX: usize = 128 * 1024;
/// Object table for train: 64 K lines = 4 MB.
const TRAIN_OBJECTS: usize = 64 * 1024;
/// Field table for train: 64 K lines = 4 MB.
const TRAIN_FIELDS: usize = 64 * 1024;
/// Lookups for train.
const TRAIN_ITERS: i64 = 45_000;

/// Builds the kernel for `input`.
pub fn build(input: InputSet) -> Program {
    let n_index = input.scale(TRAIN_INDEX, 0.125);
    let n_obj = input.scale(TRAIN_OBJECTS, 0.125);
    let n_fld = input.scale(TRAIN_FIELDS, 0.125);
    let iters = match input {
        InputSet::Test => TRAIN_ITERS / 8,
        _ => TRAIN_ITERS,
    };
    let mut rng = Lcg::new(0x766f_7274 ^ input.seed()); // "vort"
    let idx_base = super::table_base(0);
    let obj_base = super::table_base(1);
    let fld_base = super::table_base(2);

    let index: Vec<u64> = (0..n_index).map(|_| rng.below(n_obj as u64)).collect();
    // Object lines: first doubleword holds a field id.
    let mut objects = vec![0u64; n_obj * 8];
    for i in 0..n_obj {
        objects[i * 8] = rng.below(n_fld as u64);
        objects[i * 8 + 1] = rng.below(1 << 30);
    }
    let fields: Vec<u8> = (0..n_fld * 64).map(|_| rng.below(256) as u8).collect();

    let mut b = ProgramBuilder::new("vortex");
    let (ib, ob, fb, i, n, s, k1, k2, h, a, o, q, f, acc) = (
        Reg::new(1),
        Reg::new(2),
        Reg::new(3),
        Reg::new(4),
        Reg::new(5),
        Reg::new(6),
        Reg::new(7),
        Reg::new(8),
        Reg::new(9),
        Reg::new(10),
        Reg::new(11),
        Reg::new(12),
        Reg::new(13),
        Reg::new(14),
    );
    b.li(ib, idx_base as i64);
    b.li(ob, obj_base as i64);
    b.li(fb, fld_base as i64);
    b.li(i, 0);
    b.li(n, iters);
    b.li(s, 0x452821e638d01377u64 as i64);
    b.li(k1, 6364136223846793005u64 as i64);
    b.li(k2, 1442695040888963407u64 as i64);
    b.label("top");
    b.bge(i, n, "done");
    // Level 0: a random key into the index table.
    b.mul(s, s, k1);
    b.add(s, s, k2);
    b.srl(h, s, 33);
    b.andi(h, h, (n_index - 1) as i64);
    b.sll(a, h, 3);
    b.add(a, a, ib);
    b.ld(o, 0, a); // level-1 load: object id
    // Level 1 -> 2: object line.
    b.sll(a, o, 6);
    b.add(a, a, ob);
    b.ld(q, 0, a); // level-2 load: field id
    b.ld(f, 8, a); // same line: a payload word
    b.add(acc, acc, f);
    // Level 2 -> 3: field line (the deepest problem load).
    b.sll(a, q, 6);
    b.add(a, a, fb);
    b.ld(f, 0, a); // level-3 load
    b.add(acc, acc, f);
    b.addi(i, i, 1);
    b.j("top");
    b.label("done");
    b.halt();
    b.data(idx_base, table_bytes(&index));
    b.data(obj_base, table_bytes(&objects));
    b.data(fld_base, fields);
    b.build().expect("vortex kernel builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_func::{run_trace, TraceConfig};

    #[test]
    fn builds_and_validates() {
        for input in InputSet::all() {
            assert_eq!(build(input).validate(), Ok(()));
        }
    }

    #[test]
    fn three_levels_of_misses() {
        let p = build(InputSet::Train);
        let cfg = TraceConfig { max_steps: 600_000, ..TraceConfig::default() };
        let stats = run_trace(&p, &cfg, |_| {});
        assert!(stats.l2_misses > 8_000, "misses {}", stats.l2_misses);
        // Both the object and field loads must be significant miss sites.
        let sites = stats.problem_loads();
        assert!(sites.len() >= 2, "expected multi-level misses: {sites:?}");
    }
}
