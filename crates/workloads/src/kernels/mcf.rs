//! `mcf` analogue: pointer chasing with per-hop control divergence.
//!
//! SPEC's `mcf` runs network simplex over a huge arc/node graph; its
//! delinquent loads chase pointers whose addresses are serialized *and*
//! whose computations cross data-dependent branches — every hop picks one
//! of several successor fields. A backward slice that spans `k` hops
//! therefore corresponds to only one of `2^k` control paths: deep static
//! p-threads cover exponentially few misses and launch uselessly often
//! (the paper's "useless p-threads of the second kind"), which is why the
//! paper covers only ~10% of `mcf`'s misses. This kernel reproduces that
//! structure: each 64-byte node holds two successor indices and a
//! data-dependent selector bit.

use crate::util::{cyclic_permutation, table_bytes, Lcg};
use crate::InputSet;
use preexec_isa::{Program, ProgramBuilder, Reg};

/// Node count for the train input: 128 K nodes × 64 B = 8 MB.
const TRAIN_NODES: usize = 128 * 1024;
/// Chase hops for the train input.
const TRAIN_HOPS: i64 = 70_000;

/// Builds the kernel for `input`.
pub fn build(input: InputSet) -> Program {
    let nodes = input.scale(TRAIN_NODES, 0.0625); // test: 512 KB, still > L2
    let hops = match input {
        InputSet::Test => TRAIN_HOPS / 8,
        _ => TRAIN_HOPS,
    };
    let mut rng = Lcg::new(0x6d6366 ^ input.seed()); // "mcf"
    // Two independent successor permutations: whichever field is followed,
    // the walk keeps visiting fresh nodes.
    let succ_a = cyclic_permutation(nodes, &mut rng);
    let succ_b = cyclic_permutation(nodes, &mut rng);

    // Node layout (64 B): [succ_a, succ_b, selector, cost, ...pad].
    let mut table = vec![0u64; nodes * 8];
    for i in 0..nodes {
        table[i * 8] = succ_a[i];
        table[i * 8 + 1] = succ_b[i];
        table[i * 8 + 2] = rng.below(2);
        table[i * 8 + 3] = rng.below(1000);
    }
    let base = super::table_base(0);

    let mut b = ProgramBuilder::new("mcf");
    let (nbase, i, n, cur, addr, sel, cost, acc, s, k1, k2, bit) = (
        Reg::new(1),
        Reg::new(2),
        Reg::new(3),
        Reg::new(4),
        Reg::new(5),
        Reg::new(6),
        Reg::new(7),
        Reg::new(9),
        Reg::new(10),
        Reg::new(11),
        Reg::new(12),
        Reg::new(13),
    );
    b.li(nbase, base as i64);
    b.li(i, 0);
    b.li(n, hops);
    b.li(cur, 0);
    b.li(s, 0x853c49e6748fea9bu64 as i64);
    b.li(k1, 6364136223846793005u64 as i64);
    b.li(k2, 1442695040888963407u64 as i64);
    b.label("top");
    b.bge(i, n, "done");
    b.sll(addr, cur, 6);
    b.add(addr, addr, nbase);
    b.ld(sel, 16, addr); // the problem load: selector (first touch misses)
    b.ld(cost, 24, addr); // same line: cost
    b.add(acc, acc, cost);
    // Mix the node's selector with a per-visit pseudo-random bit so the
    // walk never collapses into a short functional-graph cycle.
    b.mul(s, s, k1);
    b.add(s, s, k2);
    b.srl(bit, s, 33);
    b.andi(bit, bit, 1);
    b.xor(sel, sel, bit);
    b.andi(sel, sel, 1);
    // Data-dependent successor choice: the control divergence that makes
    // deep slices cover exponentially few misses.
    b.beq(sel, Reg::ZERO, "path_b");
    b.ld(cur, 0, addr); // successor A
    b.j("cont");
    b.label("path_b");
    b.ld(cur, 8, addr); // successor B
    b.label("cont");
    b.addi(i, i, 1);
    b.j("top");
    b.label("done");
    b.halt();
    b.data(base, table_bytes(&table));
    b.build().expect("mcf kernel builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_func::{run_trace, TraceConfig};

    #[test]
    fn builds_for_all_inputs() {
        for input in InputSet::all() {
            let p = build(input);
            assert_eq!(p.validate(), Ok(()));
            assert!(!p.data_segments().is_empty());
        }
    }

    #[test]
    fn chase_misses_heavily() {
        let p = build(InputSet::Train);
        let cfg = TraceConfig { max_steps: 400_000, ..TraceConfig::default() };
        let stats = run_trace(&p, &cfg, |_| {});
        let mpki = stats.l2_mpki();
        assert!(mpki > 40.0, "mcf must be miss-dominated, got {mpki} mpki");
        // The selector load (pc 6, first touch of each node line)
        // dominates the misses.
        let top = stats.problem_loads()[0];
        assert_eq!(p.inst(top.0).to_string(), "ld r6, 16(r5)");
    }

    #[test]
    fn successor_branch_is_data_dependent() {
        let p = build(InputSet::Train);
        let cfg = TraceConfig { max_steps: 400_000, ..TraceConfig::default() };
        let stats = run_trace(&p, &cfg, |_| {});
        // Roughly half the nodes take each successor path. Conditional
        // branches: loop bge (never taken until end) + selector beq.
        let rate = stats.taken_branches as f64 / stats.branches as f64;
        assert!(rate > 0.2 && rate < 0.5, "selector split broken: {rate}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(build(InputSet::Train), build(InputSet::Train));
        assert_ne!(build(InputSet::Train), build(InputSet::Alt));
    }
}
