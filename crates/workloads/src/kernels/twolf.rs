//! `twolf` analogue: sparse miss computations in a placement loop.
//!
//! SPEC's `twolf` (standard-cell placement) computes cell indices early in
//! a long iteration and dereferences them much later, with unrelated work
//! in between. The paper calls this structure out explicitly: *"sparse
//! computations which can achieve latency tolerance with small
//! computations, but need large windows to 'see' these computations"* —
//! `twolf` is scope-sensitive. Its `test` working set fits in the L2
//! (Figure 7: no p-threads selected in the static scenario).

use crate::util::Lcg;
use crate::InputSet;
use preexec_isa::{Program, ProgramBuilder, Reg};

/// Cell-position table for train: 64 K lines = 4 MB.
const TRAIN_LINES: usize = 64 * 1024;
/// Swap evaluations for train.
const TRAIN_ITERS: i64 = 30_000;

/// Builds the kernel for `input`.
pub fn build(input: InputSet) -> Program {
    // Test input fits in the 256 KB L2: 1.5 K lines = 96 KB.
    let lines = input.scale(TRAIN_LINES, 0.0234);
    let iters = match input {
        InputSet::Test => TRAIN_ITERS / 4, // enough to amortize cold misses
        _ => TRAIN_ITERS,
    };
    let mut rng = Lcg::new(0x7477_6f6c ^ input.seed()); // "twol"
    let table: Vec<u8> = (0..lines * 64).map(|_| rng.below(256) as u8).collect();
    let tbase = super::table_base(0);
    let mask = (lines - 1) as i64;

    let mut b = ProgramBuilder::new("twolf");
    let (tb, i, n, s, k1, k2, idx1, idx2, a, v, t, acc) = (
        Reg::new(1),
        Reg::new(2),
        Reg::new(3),
        Reg::new(4),
        Reg::new(5),
        Reg::new(6),
        Reg::new(7),
        Reg::new(8),
        Reg::new(9),
        Reg::new(10),
        Reg::new(11),
        Reg::new(12),
    );
    b.li(tb, tbase as i64);
    b.li(i, 0);
    b.li(n, iters);
    b.li(s, 0x2545f4914f6cdd1du64 as i64);
    b.li(k1, 6364136223846793005u64 as i64);
    b.li(k2, 1442695040888963407u64 as i64);
    b.label("top");
    b.bge(i, n, "done");
    // Pick two cells EARLY (short, cheap computations).
    b.mul(s, s, k1);
    b.add(s, s, k2);
    b.srl(idx1, s, 33);
    b.andi(idx1, idx1, mask);
    b.srl(idx2, s, 13);
    b.andi(idx2, idx2, mask);
    // ... then a long stretch of unrelated cost arithmetic (the sparse
    // gap the slicer must see across).
    for k in 0..24 {
        b.addi(acc, acc, (k % 7) + 1);
    }
    // ... and only now dereference the cells computed above.
    b.sll(a, idx1, 6);
    b.add(a, a, tb);
    b.ld(v, 0, a); // problem load 1
    b.add(acc, acc, v);
    b.sll(a, idx2, 6);
    b.add(a, a, tb);
    b.ld(t, 0, a); // problem load 2
    b.add(acc, acc, t);
    b.addi(i, i, 1);
    b.j("top");
    b.label("done");
    b.halt();
    b.data(tbase, table);
    b.build().expect("twolf kernel builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_func::{run_trace, TraceConfig};

    #[test]
    fn builds_and_validates() {
        for input in InputSet::all() {
            assert_eq!(build(input).validate(), Ok(()));
        }
    }

    #[test]
    fn train_misses_test_fits_l2() {
        let cfg = TraceConfig { max_steps: 600_000, ..TraceConfig::default() };
        let train = run_trace(&build(InputSet::Train), &cfg, |_| {});
        assert!(train.l2_misses > 4_000, "train misses {}", train.l2_misses);
        let test = run_trace(&build(InputSet::Test), &cfg, |_| {});
        // 96 KB working set in a 256 KB L2: only cold misses.
        assert!(
            (test.l2_misses as f64) < 0.10 * test.loads as f64,
            "test input must be L2-resident: {} misses / {} loads",
            test.l2_misses,
            test.loads
        );
    }

    #[test]
    fn computation_is_sparse() {
        // The two problem loads sit ~24 instructions after the index
        // computation: iteration length must exceed 30.
        let p = build(InputSet::Train);
        let cfg = TraceConfig { max_steps: 100_000, ..TraceConfig::default() };
        let stats = run_trace(&p, &cfg, |_| {});
        let iters = stats.insts / 40; // approximate
        assert!(iters > 1000);
    }
}
