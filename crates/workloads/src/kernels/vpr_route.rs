//! `vpr.route` analogue: single indirection off a sequential frontier.
//!
//! VPR's router expands a wavefront: it scans a frontier array (sequential,
//! prefetch-friendly) of routing-resource ids and touches each one's cost
//! entry (scattered, missing). The address computation is one sequential
//! load plus shift/add — maximally computable ahead, which is why the
//! paper covers 82% of `vpr.p`/`vpr.r`-class misses with p-threads. This
//! is the suite's best-case kernel.

use crate::util::{table_bytes, Lcg};
use crate::InputSet;
use preexec_isa::{Program, ProgramBuilder, Reg};

/// Frontier entries for train.
const TRAIN_FRONTIER: usize = 80_000;
/// Cost-table lines for train: 128 K = 8 MB.
const TRAIN_COST: usize = 128 * 1024;

/// Builds the kernel for `input`.
pub fn build(input: InputSet) -> Program {
    let frontier_len = match input {
        InputSet::Test => TRAIN_FRONTIER / 8,
        _ => TRAIN_FRONTIER,
    };
    let cost_lines = input.scale(TRAIN_COST, 0.03125); // test: 256 KB-ish
    let mut rng = Lcg::new(0x7670_7272 ^ input.seed()); // "vprr"
    let f_base = super::table_base(0);
    let c_base = super::table_base(1);

    let frontier: Vec<u64> = (0..frontier_len)
        .map(|_| rng.below(cost_lines as u64))
        .collect();
    let cost: Vec<u8> = (0..cost_lines * 64).map(|_| rng.below(256) as u8).collect();

    let mut b = ProgramBuilder::new("vpr.r");
    let (fb, cb, i, n, pf, idx, a, c, t, acc) = (
        Reg::new(1),
        Reg::new(2),
        Reg::new(3),
        Reg::new(4),
        Reg::new(5),
        Reg::new(6),
        Reg::new(7),
        Reg::new(8),
        Reg::new(9),
        Reg::new(10),
    );
    b.li(fb, f_base as i64);
    b.li(cb, c_base as i64);
    b.li(i, 0);
    b.li(n, frontier_len as i64);
    b.mov(pf, fb);
    b.label("top");
    b.bge(i, n, "done");
    b.ld(idx, 0, pf); // frontier entry (sequential)
    b.sll(a, idx, 6);
    b.add(a, a, cb);
    b.ld(c, 0, a); // the problem load: cost entry
    // Relax-or-skip on the loaded cost: a data-dependent branch. VPR's
    // router is mispredict-heavy (the paper groups vpr.r with crafty and
    // gcc), which serializes the *main* thread behind each miss while the
    // control-less p-thread runs ahead unimpeded.
    b.andi(t, c, 1);
    b.beq(t, Reg::ZERO, "skip");
    b.add(acc, acc, c);
    b.j("cont");
    b.label("skip");
    b.xor(acc, acc, c);
    b.label("cont");
    b.addi(pf, pf, 8);
    b.addi(i, i, 1);
    b.j("top");
    b.label("done");
    b.halt();
    b.data(f_base, table_bytes(&frontier));
    b.data(c_base, cost);
    b.build().expect("vpr.r kernel builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_func::{run_trace, TraceConfig};

    #[test]
    fn builds_and_validates() {
        for input in InputSet::all() {
            assert_eq!(build(input).validate(), Ok(()));
        }
    }

    #[test]
    fn cost_load_misses_frontier_mostly_hits() {
        let p = build(InputSet::Train);
        let cfg = TraceConfig { max_steps: 500_000, ..TraceConfig::default() };
        let stats = run_trace(&p, &cfg, |_| {});
        assert!(stats.l2_misses > 5_000, "misses {}", stats.l2_misses);
        let top = stats.problem_loads()[0];
        assert_eq!(p.inst(top.0).to_string(), "ld r8, 0(r7)");
        let frontier_site = stats
            .load_sites
            .iter()
            .find(|(&pc, _)| p.inst(pc).to_string() == "ld r6, 0(r5)")
            .map(|(_, s)| *s)
            .expect("frontier site");
        assert!(frontier_site.l2_misses * 4 < frontier_site.execs);
    }
}
