//! `vpr.place` analogue: two-level netlist indirection with a small test
//! working set.
//!
//! VPR's placer evaluates random swaps by walking net → pin → position
//! tables. Two levels of indirection off an ALU-computable net id. Its
//! `test` netlist is small — in the paper, small enough that the L2 holds
//! it and the static-profile scenario selects no p-threads.

use crate::util::{table_bytes, Lcg};
use crate::InputSet;
use preexec_isa::{Program, ProgramBuilder, Reg};

/// Nets for train: 64 K.
const TRAIN_NETS: usize = 64 * 1024;
/// Pin-position lines for train: 64 K = 4 MB.
const TRAIN_POS: usize = 64 * 1024;
/// Swap evaluations for train.
const TRAIN_ITERS: i64 = 35_000;

/// Builds the kernel for `input`.
pub fn build(input: InputSet) -> Program {
    // Test: nets 1K (8 KB) + positions 1K lines (64 KB) fits the L2.
    let nets = input.scale(TRAIN_NETS, 0.0156);
    let pos_lines = input.scale(TRAIN_POS, 0.0156);
    let iters = match input {
        InputSet::Test => TRAIN_ITERS / 8,
        _ => TRAIN_ITERS,
    };
    let mut rng = Lcg::new(0x7670_7270 ^ input.seed()); // "vprp"
    let net_base = super::table_base(0);
    let pos_base = super::table_base(1);

    // Net table: each net names two pins (packed in one doubleword pair).
    let mut net_tbl = vec![0u64; nets * 2];
    for i in 0..nets {
        net_tbl[i * 2] = rng.below(pos_lines as u64);
        net_tbl[i * 2 + 1] = rng.below(pos_lines as u64);
    }
    let positions: Vec<u8> = (0..pos_lines * 64).map(|_| rng.below(256) as u8).collect();

    let mut b = ProgramBuilder::new("vpr.p");
    let (nb, pb, i, n, s, k1, k2, net, a, p1, p2, x, y, acc) = (
        Reg::new(1),
        Reg::new(2),
        Reg::new(3),
        Reg::new(4),
        Reg::new(5),
        Reg::new(6),
        Reg::new(7),
        Reg::new(8),
        Reg::new(9),
        Reg::new(10),
        Reg::new(11),
        Reg::new(12),
        Reg::new(13),
        Reg::new(14),
    );
    b.li(nb, net_base as i64);
    b.li(pb, pos_base as i64);
    b.li(i, 0);
    b.li(n, iters);
    b.li(s, 0xb5297a4d3f84d5b5u64 as i64);
    b.li(k1, 6364136223846793005u64 as i64);
    b.li(k2, 1442695040888963407u64 as i64);
    b.label("top");
    b.bge(i, n, "done");
    // Random net id (ALU).
    b.mul(s, s, k1);
    b.add(s, s, k2);
    b.srl(net, s, 33);
    b.andi(net, net, (nets - 1) as i64);
    // Level 1: the net's two pins.
    b.sll(a, net, 4);
    b.add(a, a, nb);
    b.ld(p1, 0, a);
    b.ld(p2, 8, a);
    // Level 2: each pin's position line (the problem loads).
    b.sll(a, p1, 6);
    b.add(a, a, pb);
    b.ld(x, 0, a);
    b.sll(a, p2, 6);
    b.add(a, a, pb);
    b.ld(y, 0, a);
    // Cost arithmetic.
    b.sub(x, x, y);
    b.mul(x, x, x);
    b.add(acc, acc, x);
    b.addi(i, i, 1);
    b.j("top");
    b.label("done");
    b.halt();
    b.data(net_base, table_bytes(&net_tbl));
    b.data(pos_base, positions);
    b.build().expect("vpr.p kernel builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_func::{run_trace, TraceConfig};

    #[test]
    fn builds_and_validates() {
        for input in InputSet::all() {
            assert_eq!(build(input).validate(), Ok(()));
        }
    }

    #[test]
    fn train_misses_test_fits_l2() {
        let cfg = TraceConfig { max_steps: 600_000, ..TraceConfig::default() };
        let train = run_trace(&build(InputSet::Train), &cfg, |_| {});
        assert!(train.l2_misses > 4_000, "train misses {}", train.l2_misses);
        let test = run_trace(&build(InputSet::Test), &cfg, |_| {});
        assert!(
            (test.l2_misses as f64) < 0.10 * test.loads as f64,
            "test input must be L2-resident: {} misses / {} loads",
            test.l2_misses,
            test.loads
        );
    }
}
