//! The benchmark suite registry.

use crate::kernels;
use crate::InputSet;
use preexec_isa::Program;

/// One benchmark of the suite.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// The benchmark's name, matching the paper's Table 1 column.
    pub name: &'static str,
    builder: fn(InputSet) -> Program,
}

impl Workload {
    /// Builds the benchmark's program for `input`.
    pub fn build(&self, input: InputSet) -> Program {
        (self.builder)(input)
    }
}

/// The ten benchmark/input combinations of the paper's Table 1, in the
/// paper's order: bzip2, crafty, gap, gcc, mcf, parser, twolf, vortex,
/// vpr.p, vpr.r.
///
/// # Example
///
/// ```
/// use preexec_workloads::{suite, InputSet};
///
/// for w in suite() {
///     let p = w.build(InputSet::Train);
///     assert!(p.len() > 10, "{} too small", w.name);
/// }
/// ```
pub fn suite() -> Vec<Workload> {
    vec![
        Workload { name: "bzip2", builder: kernels::bzip2::build },
        Workload { name: "crafty", builder: kernels::crafty::build },
        Workload { name: "gap", builder: kernels::gap::build },
        Workload { name: "gcc", builder: kernels::gcc::build },
        Workload { name: "mcf", builder: kernels::mcf::build },
        Workload { name: "parser", builder: kernels::parser::build },
        Workload { name: "twolf", builder: kernels::twolf::build },
        Workload { name: "vortex", builder: kernels::vortex::build },
        Workload { name: "vpr.p", builder: kernels::vpr_place::build },
        Workload { name: "vpr.r", builder: kernels::vpr_route::build },
    ]
}

/// Finds a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    suite().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_func::{run_trace, TraceConfig};

    #[test]
    fn ten_workloads_in_paper_order() {
        let names: Vec<&str> = suite().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec!["bzip2", "crafty", "gap", "gcc", "mcf", "parser", "twolf", "vortex", "vpr.p", "vpr.r"]
        );
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("mcf").is_some());
        assert!(by_name("eon").is_none());
    }

    #[test]
    fn every_workload_runs_and_misses_on_train() {
        let cfg = TraceConfig { max_steps: 300_000, ..TraceConfig::default() };
        for w in suite() {
            let p = w.build(InputSet::Train);
            assert_eq!(p.validate(), Ok(()), "{}", w.name);
            let stats = run_trace(&p, &cfg, |_| {});
            assert_eq!(stats.total_steps, 300_000, "{} halted early", w.name);
            assert!(
                stats.l2_misses > 500,
                "{} produced too few L2 misses: {}",
                w.name,
                stats.l2_misses
            );
        }
    }

    #[test]
    fn every_workload_halts_eventually() {
        // Use the (smaller) test inputs so the full runs stay quick.
        let cfg = TraceConfig::default();
        for w in suite() {
            let p = w.build(InputSet::Test);
            let stats = run_trace(&p, &cfg, |_| {});
            assert!(
                stats.total_steps < cfg.max_steps,
                "{} did not halt",
                w.name
            );
        }
    }

    #[test]
    fn inputs_differ() {
        for w in suite() {
            assert_ne!(
                w.build(InputSet::Train),
                w.build(InputSet::Alt),
                "{} alt input identical to train",
                w.name
            );
        }
    }
}
