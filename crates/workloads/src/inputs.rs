//! Input datasets: train, test, and an alternate train-scale input.

/// Which input dataset a kernel is built with.
///
/// Mirrors the paper's §4.4 input-dataset experiment (Figure 7): p-threads
/// are normally selected and measured on `Train`; the *static* selection
/// scenario selects on `Test` profiles (smaller working sets — for
/// `twolf` and `vpr.p` small enough to fit the L2, which makes the static
/// scenario select no p-threads at all); `Alt` is a same-scale input with
/// different data, modeling a different run of the same program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InputSet {
    /// The reference (measurement) input.
    #[default]
    Train,
    /// A reduced input, as shipped for compile-time profiling.
    Test,
    /// A different same-scale input (different seed/distribution).
    Alt,
}

impl InputSet {
    /// A deterministic per-input seed component.
    pub fn seed(self) -> u64 {
        match self {
            InputSet::Train => 0x7261_696e,
            InputSet::Test => 0x7465_7374,
            InputSet::Alt => 0x616c_7400,
        }
    }

    /// Scales a train-sized table: test inputs use `test_fraction`
    /// (at least 64 entries, rounded **down** to a power of two so that
    /// `size - 1` masks stay dense), alt inputs keep train scale.
    pub fn scale(self, train_size: usize, test_fraction: f64) -> usize {
        match self {
            InputSet::Train | InputSet::Alt => train_size,
            InputSet::Test => {
                let raw = ((train_size as f64 * test_fraction) as usize).max(64);
                // Previous power of two.
                1usize << (usize::BITS - 1 - raw.leading_zeros())
            }
        }
    }

    /// All input sets.
    pub fn all() -> [InputSet; 3] {
        [InputSet::Train, InputSet::Test, InputSet::Alt]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            InputSet::Train => "train",
            InputSet::Test => "test",
            InputSet::Alt => "alt",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ() {
        assert_ne!(InputSet::Train.seed(), InputSet::Test.seed());
        assert_ne!(InputSet::Train.seed(), InputSet::Alt.seed());
    }

    #[test]
    fn scaling() {
        assert_eq!(InputSet::Train.scale(1000, 0.1), 1000);
        assert_eq!(InputSet::Alt.scale(1000, 0.1), 1000);
        assert_eq!(InputSet::Test.scale(1000, 0.1), 64); // 100 rounded down to pow2
        assert_eq!(InputSet::Test.scale(100, 0.01), 64); // floor
    }

    #[test]
    fn names() {
        assert_eq!(InputSet::Train.name(), "train");
        assert_eq!(InputSet::Test.name(), "test");
        assert_eq!(InputSet::Alt.name(), "alt");
    }
}
