//! Synthetic SPEC2000int-like workload kernels.
//!
//! The paper evaluates on ten SPEC2000 integer benchmark/input
//! combinations (Table 1). SPEC binaries and the Alpha toolchain are not
//! reproducible here, so this crate provides ten synthetic kernels — one
//! per benchmark — each engineered to exhibit its namesake's *problem-load
//! class*: the property of its L2 misses that determines how pre-execution
//! behaves on it (see DESIGN.md §4 for the substitution argument).
//!
//! | kernel  | memory-behavior class | expected pre-execution behavior |
//! |---------|----------------------|--------------------------------|
//! | `bzip2` | data-dependent permutation indices over a big table | computable ahead → good coverage |
//! | `crafty`| hash probes + data-dependent branches | coverage good, main thread mispredict-bound |
//! | `gap`   | pointer-array dereference (shuffled heap) | induction-unrolled p-threads, good coverage |
//! | `gcc`   | variable-stride record walking | semi-serialized, moderate coverage |
//! | `mcf`   | pure pointer chase over a huge graph | serialized → low coverage |
//! | `parser`| hash heads + short linked-list walks | heads covered, chains partially |
//! | `twolf` | sparse computations (index computed far before use) | scope-sensitive |
//! | `vortex`| three-level object indirection | length-sensitive |
//! | `vpr.p` | two-level netlist indirection, small working set on test input | L2-resident test input selects no p-threads |
//! | `vpr.r` | single indirection off a sequential frontier | highest coverage |
//!
//! Each kernel builds for three [`InputSet`]s: `Train` (the measurement
//! input), `Test` (smaller, for the Figure-7 static-selection scenario;
//! `twolf`/`vpr.p` test working sets fit in the L2, as in the paper), and
//! `Alt` (same scale as train, different seed — a different run of the
//! same program).
//!
//! # Example
//!
//! ```
//! use preexec_workloads::{suite, InputSet};
//!
//! let workloads = suite();
//! assert_eq!(workloads.len(), 10);
//! let mcf = workloads.iter().find(|w| w.name == "mcf").unwrap();
//! let program = mcf.build(InputSet::Train);
//! assert!(program.validate().is_ok());
//! ```

pub mod inputs;
pub mod kernels;
pub mod suite;
pub(crate) mod util;

pub use inputs::InputSet;
pub use suite::{by_name, suite, Workload};
