//! Deterministic data-generation helpers (seeded LCG, shuffles, tables).

/// A 64-bit linear congruential generator (Knuth's MMIX constants).
/// Deterministic and dependency-free; used for all workload data.
#[derive(Debug, Clone)]
pub struct Lcg(pub u64);

impl Lcg {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Lcg {
        Lcg(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Output mixing: the high bits are the good ones.
        self.0 >> 1 ^ self.0 >> 33
    }

    /// Uniform value in `0..bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

/// A random cyclic permutation of `0..n` (Sattolo's algorithm): following
/// `perm[perm[...]]` visits every element before repeating — the ideal
/// pointer-chase substrate (no short cycles).
pub fn cyclic_permutation(n: usize, rng: &mut Lcg) -> Vec<u64> {
    let mut idx: Vec<u64> = (0..n as u64).collect();
    for i in (1..n).rev() {
        let j = rng.below(i as u64) as usize;
        idx.swap(i, j);
    }
    // idx is now a random ordering; link each element to the next.
    let mut perm = vec![0u64; n];
    for k in 0..n {
        perm[idx[k] as usize] = idx[(k + 1) % n];
    }
    perm
}

/// Serializes a `u64` table into little-endian bytes.
pub fn table_bytes(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_deterministic() {
        let mut a = Lcg::new(7);
        let mut b = Lcg::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn lcg_below_in_range() {
        let mut r = Lcg::new(42);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn cyclic_permutation_is_one_cycle() {
        let mut r = Lcg::new(3);
        let n = 257;
        let p = cyclic_permutation(n, &mut r);
        let mut seen = vec![false; n];
        let mut cur = 0usize;
        for _ in 0..n {
            assert!(!seen[cur], "cycle shorter than n");
            seen[cur] = true;
            cur = p[cur] as usize;
        }
        assert_eq!(cur, 0, "must return to start after n hops");
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn table_bytes_layout() {
        let b = table_bytes(&[1, 0x0102]);
        assert_eq!(b.len(), 16);
        assert_eq!(b[0], 1);
        assert_eq!(b[8], 2);
        assert_eq!(b[9], 1);
    }
}
