//! Dynamic instruction records — the unit of the execution trace.

use preexec_isa::{Inst, Pc};
use preexec_mem::MemLevel;

/// One retired dynamic instruction.
///
/// This is the record the tracer hands to its sink for every instruction
/// executed in an "on" sampling phase. It carries everything the backward
/// slicer and the statistics collector need: the static identity (`pc`,
/// `inst`), the dynamic sequence number (`seq`, counted over emitted
/// instructions), and for memory operations, the effective address and the
/// hierarchy level that serviced the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInst {
    /// Position in the emitted dynamic instruction stream (0-based).
    pub seq: u64,
    /// Static PC of the instruction.
    pub pc: Pc,
    /// The static instruction itself (copied for sink convenience).
    pub inst: Inst,
    /// Effective address, for loads and stores.
    pub addr: Option<u64>,
    /// Which level serviced the access, for loads and stores.
    pub level: Option<MemLevel>,
    /// For conditional branches: whether the branch was taken.
    pub taken: bool,
    /// The value written to the destination register, if any (used by
    /// p-thread seed-value extraction and by debugging tools).
    pub result: i64,
}

impl DynInst {
    /// Whether this record is a load that missed the L2.
    pub fn is_l2_miss_load(&self) -> bool {
        self.inst.op.is_load() && self.level == Some(MemLevel::Memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_isa::{Op, Reg};

    #[test]
    fn l2_miss_predicate() {
        let load = Inst::load(Op::Ld, Reg::new(1), Reg::new(2), 0);
        let mut d = DynInst {
            seq: 0,
            pc: 0,
            inst: load,
            addr: Some(0x100),
            level: Some(MemLevel::Memory),
            taken: false,
            result: 0,
        };
        assert!(d.is_l2_miss_load());
        d.level = Some(MemLevel::L2);
        assert!(!d.is_l2_miss_load());
        d.inst = Inst::store(Op::Sd, Reg::new(1), Reg::new(2), 0);
        d.level = Some(MemLevel::Memory);
        assert!(!d.is_l2_miss_load()); // stores never count
    }
}
