//! The sandboxed p-thread interpreter.
//!
//! P-threads are speculative by construction (paper §2): they race ahead
//! of the main thread on registers seeded from possibly-stale state, so a
//! p-thread body must be able to compute bad addresses, execute corrupted
//! instructions, or spin through an oversized slice *without disturbing
//! the committed program*. This module provides the architectural
//! reference for that contract: a p-thread executes against a private
//! register file and a private store buffer, never writes memory, and any
//! fault **squashes** the p-thread — terminating it with a
//! [`SquashReason`] — rather than propagating a panic.
//!
//! The timing simulator (`preexec_timing`) enforces the same contract in
//! its launch path and reuses [`SquashReason`] for its squash accounting.

use crate::exec;
use preexec_isa::reg::NUM_REGS;
use preexec_isa::{Inst, Op, OpClass};
use preexec_mem::Memory;
use std::collections::HashMap;
use std::fmt;

/// P-thread loads beyond this address are treated as wild speculative
/// addresses and squash the p-thread (a 48-bit virtual address space,
/// matching common 64-bit implementations). The architectural memory is
/// sparse and would accept any address; the guard exists so that a
/// poisoned pointer chase is *counted* as a fault instead of silently
/// fetching zeros forever.
pub const PTHREAD_ADDR_LIMIT: u64 = 1 << 48;

/// Why a speculative p-thread was squashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SquashReason {
    /// A body instruction's opcode does not belong to the class its
    /// encoding claims (e.g. a load opcode in an ALU slot).
    InvalidOpcode,
    /// A body instruction's operands are inconsistent (missing width,
    /// missing register) — typically a corrupted slice file.
    Malformed,
    /// A load computed an address outside the speculative address space
    /// ([`PTHREAD_ADDR_LIMIT`]) — typically a poisoned live-in register.
    BadAddress,
    /// The per-launch step watchdog ran out before the body finished.
    BudgetExhausted,
}

impl fmt::Display for SquashReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SquashReason::InvalidOpcode => "invalid opcode",
            SquashReason::Malformed => "malformed instruction",
            SquashReason::BadAddress => "out-of-range address",
            SquashReason::BudgetExhausted => "step budget exhausted",
        };
        f.write_str(s)
    }
}

/// How a sandboxed p-thread run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PThreadOutcome {
    /// The body ran to its end.
    Completed,
    /// The body was squashed at `at` (body index) for `reason`.
    Squashed {
        /// Index of the faulting body instruction.
        at: usize,
        /// The fault class.
        reason: SquashReason,
    },
}

/// The result of a sandboxed p-thread run.
#[derive(Debug, Clone)]
pub struct PThreadRun {
    /// Completion or squash.
    pub outcome: PThreadOutcome,
    /// Body instructions actually executed.
    pub executed: usize,
    /// Addresses the body's loads touched, in order — the prefetch
    /// candidates a launch would have generated.
    pub load_addrs: Vec<u64>,
    /// Final private register file.
    pub regs: [i64; NUM_REGS],
}

impl PThreadRun {
    /// The squash reason, if the run did not complete.
    pub fn squash_reason(&self) -> Option<SquashReason> {
        match self.outcome {
            PThreadOutcome::Completed => None,
            PThreadOutcome::Squashed { reason, .. } => Some(reason),
        }
    }
}

/// Executes a p-thread `body` in a sandbox: private registers seeded from
/// `seed_regs`, read-only architectural memory, stores buffered privately,
/// control-flow inert, and every fault converted into a squash.
///
/// `step_budget` is the per-launch watchdog: a body longer than the budget
/// is squashed with [`SquashReason::BudgetExhausted`] once the budget is
/// spent. This function never panics and always terminates.
pub fn run_pthread(
    body: &[Inst],
    seed_regs: &[i64; NUM_REGS],
    mem: &Memory,
    step_budget: usize,
) -> PThreadRun {
    let mut regs = *seed_regs;
    let mut store_buffer: HashMap<u64, (i64, u8)> = HashMap::new();
    let mut load_addrs = Vec::new();

    for (i, inst) in body.iter().enumerate() {
        if i >= step_budget {
            return PThreadRun {
                outcome: PThreadOutcome::Squashed { at: i, reason: SquashReason::BudgetExhausted },
                executed: i,
                load_addrs,
                regs,
            };
        }
        let squash = |at, reason, executed, load_addrs: &Vec<u64>, regs: &[i64; NUM_REGS]| PThreadRun {
            outcome: PThreadOutcome::Squashed { at, reason },
            executed,
            load_addrs: load_addrs.clone(),
            regs: *regs,
        };
        let a = inst.rs1.map_or(0, |r| regs[r.index()]);
        let b = inst.rs2.map_or(0, |r| regs[r.index()]);
        let mut result = 0i64;
        let mut writes_def = true;
        match inst.class() {
            OpClass::IntAlu | OpClass::IntMul => match exec::try_alu(inst.op, a, b, inst.imm) {
                Ok(v) => result = v,
                Err(_) => return squash(i, SquashReason::InvalidOpcode, i, &load_addrs, &regs),
            },
            OpClass::Load => {
                let addr = exec::effective_address(a, inst.imm);
                if addr >= PTHREAD_ADDR_LIMIT {
                    return squash(i, SquashReason::BadAddress, i, &load_addrs, &regs);
                }
                let Some(width) = inst.op.mem_width() else {
                    return squash(i, SquashReason::Malformed, i, &load_addrs, &regs);
                };
                load_addrs.push(addr);
                result = match store_buffer.get(&addr) {
                    Some(&(v, w)) if w == width => v,
                    _ => match inst.op {
                        Op::Lb => mem.read_u8(addr) as i8 as i64,
                        Op::Lbu => mem.read_u8(addr) as i64,
                        Op::Lw => mem.read_u32(addr) as i32 as i64,
                        Op::Ld => mem.read_u64(addr) as i64,
                        _ => return squash(i, SquashReason::Malformed, i, &load_addrs, &regs),
                    },
                };
            }
            OpClass::Store => {
                // Speculative: buffered privately, never written to memory.
                let addr = exec::effective_address(a, inst.imm);
                let Some(width) = inst.op.mem_width() else {
                    return squash(i, SquashReason::Malformed, i, &load_addrs, &regs);
                };
                store_buffer.insert(addr, (b, width));
                writes_def = false;
            }
            // Bodies are control-less; control flow is inert (including
            // jal's link write — the sandbox must not disturb seeded state
            // it did not compute).
            OpClass::Branch | OpClass::Jump | OpClass::Other => writes_def = false,
        }
        if writes_def {
            if let Some(def) = inst.def() {
                regs[def.index()] = result;
            }
        }
    }

    PThreadRun {
        outcome: PThreadOutcome::Completed,
        executed: body.len(),
        load_addrs,
        regs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_isa::Reg;

    fn seed() -> [i64; NUM_REGS] {
        let mut r = [0i64; NUM_REGS];
        r[1] = 0x1000;
        r
    }

    #[test]
    fn completes_and_reports_load_addrs() {
        let body = vec![
            Inst::itype(Op::Addi, Reg::new(1), Reg::new(1), 8),
            Inst::load(Op::Ld, Reg::new(2), Reg::new(1), 0),
        ];
        let run = run_pthread(&body, &seed(), &Memory::new(), 64);
        assert_eq!(run.outcome, PThreadOutcome::Completed);
        assert_eq!(run.load_addrs, vec![0x1008]);
        assert_eq!(run.executed, 2);
    }

    #[test]
    fn stores_stay_private() {
        let mut mem = Memory::new();
        mem.write_u64(0x1000, 7);
        let body = vec![
            Inst::store(Op::Sd, Reg::new(1), Reg::new(1), 0), // sd r1 -> 0(r1)
            Inst::load(Op::Ld, Reg::new(2), Reg::new(1), 0),
        ];
        let run = run_pthread(&body, &seed(), &mem, 64);
        assert_eq!(run.outcome, PThreadOutcome::Completed);
        // The load forwarded the speculative store...
        assert_eq!(run.regs[2], 0x1000);
        // ...but architectural memory is untouched.
        assert_eq!(mem.read_u64(0x1000), 7);
    }

    #[test]
    fn wild_address_squashes() {
        let mut r = seed();
        r[1] = -1; // poisoned live-in: address 0xffff_ffff_ffff_ffff
        let body = vec![Inst::load(Op::Ld, Reg::new(2), Reg::new(1), 0)];
        let run = run_pthread(&body, &r, &Memory::new(), 64);
        assert_eq!(run.squash_reason(), Some(SquashReason::BadAddress));
        assert!(run.load_addrs.is_empty());
    }

    #[test]
    fn budget_squashes_oversized_bodies() {
        let body = vec![Inst::itype(Op::Addi, Reg::new(1), Reg::new(1), 1); 100];
        let run = run_pthread(&body, &seed(), &Memory::new(), 10);
        assert_eq!(run.squash_reason(), Some(SquashReason::BudgetExhausted));
        assert_eq!(run.executed, 10);
    }

    #[test]
    fn control_flow_is_inert() {
        let body = vec![
            Inst::branch(Op::Beq, Reg::new(1), Reg::new(1), 0),
            Inst::jump(Op::J, 0),
            Inst::itype(Op::Addi, Reg::new(3), Reg::new(1), 1),
        ];
        let run = run_pthread(&body, &seed(), &Memory::new(), 64);
        assert_eq!(run.outcome, PThreadOutcome::Completed);
        assert_eq!(run.regs[3], 0x1001); // fell straight through
    }
}
