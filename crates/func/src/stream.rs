//! Streaming trace transport: fixed-size [`DynInst`] chunks over a
//! bounded SPSC channel with backpressure.
//!
//! [`run_trace`](crate::run_trace) drives its sink from the tracing
//! thread, so trace generation and trace consumption are serialized.
//! [`try_run_trace_chunked`] splits them: a producer thread runs the
//! functional simulator and batches emitted instructions into fixed-size
//! chunks; the calling thread consumes chunks in order. The channel
//! holds at most `channel_chunks` chunks, so a slow consumer stalls the
//! producer (backpressure) instead of letting the trace accumulate —
//! peak memory in flight is bounded by `(channel_chunks + 2) ×
//! chunk_insts` records (the queue, the producer's working buffer, and
//! the chunk the consumer is processing) regardless of trace length.
//!
//! Chunk buffers are recycled through a free list, so a steady-state run
//! allocates a handful of buffers total, not one per chunk.
//!
//! Determinism: the consumer sees exactly the byte sequence a direct
//! [`run_trace`](crate::run_trace) sink would see, in the same order —
//! chunking changes batching, never content. [`StreamStats`] counters
//! (stall times, chunk counts) are observational and feed nothing back
//! into the trace.

use crate::{try_run_trace, DynInst, ExecError, RunStats, TraceConfig};
use preexec_isa::Program;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Geometry of the streaming transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Instructions per chunk. Zero is clamped to one.
    pub chunk_insts: usize,
    /// Chunks the channel may hold before the producer stalls. Zero is
    /// clamped to one.
    pub channel_chunks: usize,
}

impl Default for StreamConfig {
    /// 4096-instruction chunks, 4 in flight: large enough to amortize
    /// channel synchronization to noise, small enough that the in-flight
    /// window stays a rounding error next to the slicing window.
    fn default() -> StreamConfig {
        StreamConfig { chunk_insts: 4096, channel_chunks: 4 }
    }
}

/// What one chunked run measured about its own transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Chunks delivered to the consumer (including a final partial one).
    pub chunks: u64,
    /// Total instructions delivered.
    pub emitted: u64,
    /// Peak chunks queued in the channel at once (≤ `channel_chunks`).
    pub peak_chunks: usize,
    /// Wall-clock time the producer spent blocked on a full channel.
    pub producer_stall_us: u64,
    /// Wall-clock time the consumer spent blocked on an empty channel.
    pub consumer_stall_us: u64,
}

/// Shared channel state. The mutex region is tiny (queue pointers only);
/// chunk contents are moved, never copied, under the lock.
struct ChannelState {
    queue: VecDeque<Vec<DynInst>>,
    free: Vec<Vec<DynInst>>,
    peak: usize,
    done: bool,
}

/// The bounded SPSC chunk channel.
struct Channel {
    state: Mutex<ChannelState>,
    /// Producer waits here when the queue is full.
    space: Condvar,
    /// Consumer waits here when the queue is empty.
    data: Condvar,
    cap: usize,
}

/// Recovers from mutex poisoning: the state is a pair of plain queues,
/// always internally consistent, and a panicked peer is surfaced by the
/// scope join rather than hidden behind a second panic here.
fn locked(m: &Mutex<ChannelState>) -> MutexGuard<'_, ChannelState> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Channel {
    fn new(cap: usize) -> Channel {
        Channel {
            state: Mutex::new(ChannelState {
                queue: VecDeque::with_capacity(cap),
                free: Vec::new(),
                peak: 0,
                done: false,
            }),
            space: Condvar::new(),
            data: Condvar::new(),
            cap,
        }
    }

    /// Enqueues a full chunk, blocking while the channel is at capacity,
    /// and hands back a recycled buffer for the next chunk.
    fn send(&self, chunk: Vec<DynInst>, stall_us: &mut u64) -> Vec<DynInst> {
        let mut st = locked(&self.state);
        while st.queue.len() >= self.cap {
            let t = Instant::now();
            st = self.space.wait(st).unwrap_or_else(PoisonError::into_inner);
            *stall_us += elapsed_us(t);
        }
        st.queue.push_back(chunk);
        st.peak = st.peak.max(st.queue.len());
        let buf = st.free.pop().unwrap_or_default();
        drop(st);
        self.data.notify_one();
        buf
    }

    /// Marks the stream finished (no more chunks will arrive).
    fn finish(&self) {
        locked(&self.state).done = true;
        self.data.notify_one();
    }

    /// Dequeues the next chunk, blocking while the channel is empty;
    /// `None` once the stream is finished and drained.
    fn recv(&self, stall_us: &mut u64) -> Option<Vec<DynInst>> {
        let mut st = locked(&self.state);
        loop {
            if let Some(chunk) = st.queue.pop_front() {
                drop(st);
                self.space.notify_one();
                return Some(chunk);
            }
            if st.done {
                return None;
            }
            let t = Instant::now();
            st = self.data.wait(st).unwrap_or_else(PoisonError::into_inner);
            *stall_us += elapsed_us(t);
        }
    }

    /// Returns a consumed chunk's buffer to the free list.
    fn release(&self, mut chunk: Vec<DynInst>) {
        chunk.clear();
        let mut st = locked(&self.state);
        // The steady state needs at most cap + 2 buffers; anything beyond
        // that is a transient and can be dropped.
        if st.free.len() <= self.cap + 1 {
            st.free.push(chunk);
        }
    }

    fn peak(&self) -> usize {
        locked(&self.state).peak
    }
}

fn elapsed_us(t: Instant) -> u64 {
    t.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// Runs `program` on a producer thread, streaming the emitted trace to
/// `on_chunk` on the calling thread in fixed-size chunks with bounded
/// buffering (see the module docs for the memory bound).
///
/// `on_chunk` receives every emitted [`DynInst`] exactly once, in
/// emission order, batched into chunks of `stream.chunk_insts` (the last
/// chunk may be shorter). The concatenation of all chunks is identical
/// to the sink sequence of [`try_run_trace`] under the same
/// [`TraceConfig`].
///
/// # Errors
///
/// Returns [`ExecError`] exactly as [`try_run_trace`] would. Chunks
/// emitted before the fault are still delivered to `on_chunk` (the
/// traced prefix is valid), mirroring the partial-progress semantics of
/// the batch path's sink.
///
/// # Panics
///
/// A panic in `on_chunk` or inside the tracer propagates to the caller,
/// like a serial loop's would.
pub fn try_run_trace_chunked(
    program: &Program,
    config: &TraceConfig,
    stream: &StreamConfig,
    mut on_chunk: impl FnMut(&[DynInst]),
) -> Result<(RunStats, StreamStats), ExecError> {
    let chunk_insts = stream.chunk_insts.max(1);
    let chan = Channel::new(stream.channel_chunks.max(1));
    let mut stats = StreamStats::default();

    let run = std::thread::scope(|s| {
        let chan = &chan;
        let producer = s.spawn(move || {
            let mut stall_us = 0u64;
            let mut buf: Vec<DynInst> = Vec::with_capacity(chunk_insts);
            let run = try_run_trace(program, config, |d| {
                buf.push(*d);
                if buf.len() == chunk_insts {
                    let full = std::mem::take(&mut buf);
                    buf = chan.send(full, &mut stall_us);
                    if buf.capacity() < chunk_insts {
                        buf.reserve_exact(chunk_insts - buf.capacity());
                    }
                }
            });
            if !buf.is_empty() {
                let _ = chan.send(buf, &mut stall_us);
            }
            chan.finish();
            (run, stall_us)
        });

        while let Some(chunk) = chan.recv(&mut stats.consumer_stall_us) {
            stats.chunks += 1;
            stats.emitted += chunk.len() as u64;
            on_chunk(&chunk);
            chan.release(chunk);
        }
        producer.join().unwrap_or_else(|e| std::panic::resume_unwind(e))
    });

    stats.peak_chunks = chan.peak();
    stats.producer_stall_us = run.1;
    run.0.map(|run_stats| (run_stats, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_isa::assemble;

    /// A loop long enough to span many chunks.
    fn long_loop() -> Program {
        assemble(
            "stream",
            "li r1, 0x10000\n li r2, 0\n li r3, 4096\n\
             top: bge r2, r3, done\n\
             ld r4, 0(r1)\n addi r1, r1, 8\n addi r2, r2, 1\n j top\n\
             done: halt",
        )
        .unwrap()
    }

    #[test]
    fn chunked_stream_matches_direct_sink() {
        let p = long_loop();
        let cfg = TraceConfig::default();
        let mut direct: Vec<DynInst> = Vec::new();
        let direct_stats = crate::run_trace(&p, &cfg, |d| direct.push(*d));

        let stream = StreamConfig { chunk_insts: 100, channel_chunks: 3 };
        let mut chunked: Vec<DynInst> = Vec::new();
        let (run_stats, sstats) =
            try_run_trace_chunked(&p, &cfg, &stream, |c| chunked.extend_from_slice(c))
                .expect("chunked trace");

        assert_eq!(chunked, direct, "chunking must not change the trace");
        assert_eq!(
            format!("{run_stats:?}"),
            format!("{direct_stats:?}"),
            "run statistics must match"
        );
        assert_eq!(sstats.emitted, direct.len() as u64);
        assert_eq!(sstats.chunks, (direct.len() as u64).div_ceil(100));
        assert!(sstats.peak_chunks <= 3, "peak {} over cap", sstats.peak_chunks);
    }

    #[test]
    fn every_chunk_but_the_last_is_full() {
        let p = long_loop();
        let stream = StreamConfig { chunk_insts: 128, channel_chunks: 2 };
        let mut sizes: Vec<usize> = Vec::new();
        try_run_trace_chunked(&p, &TraceConfig::default(), &stream, |c| sizes.push(c.len()))
            .expect("chunked trace");
        let (last, body) = sizes.split_last().expect("at least one chunk");
        assert!(body.iter().all(|&n| n == 128));
        assert!(*last >= 1 && *last <= 128);
    }

    #[test]
    fn zero_geometry_is_clamped() {
        let p = long_loop();
        let stream = StreamConfig { chunk_insts: 0, channel_chunks: 0 };
        let mut n = 0u64;
        let (stats, sstats) =
            try_run_trace_chunked(&p, &TraceConfig::default(), &stream, |c| n += c.len() as u64)
                .expect("chunked trace");
        assert_eq!(n, stats.insts);
        assert_eq!(sstats.chunks, stats.insts, "chunk size clamps to 1");
    }

    #[test]
    fn slow_consumer_applies_backpressure() {
        let p = long_loop();
        // One chunk in flight and a consumer that dawdles: the producer
        // must block rather than buffer the trace.
        let stream = StreamConfig { chunk_insts: 512, channel_chunks: 1 };
        let mut chunks = 0u64;
        let (_, sstats) = try_run_trace_chunked(&p, &TraceConfig::default(), &stream, |_| {
            chunks += 1;
            if chunks <= 4 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        })
        .expect("chunked trace");
        assert!(sstats.peak_chunks <= 1);
        assert!(
            sstats.producer_stall_us > 0,
            "producer never stalled against a sleeping consumer"
        );
    }

    #[test]
    fn emitted_budget_respected_through_chunks() {
        let p = long_loop();
        let cfg = TraceConfig { max_emitted: Some(777), ..TraceConfig::default() };
        let stream = StreamConfig { chunk_insts: 100, channel_chunks: 2 };
        let mut n = 0u64;
        let (_, sstats) =
            try_run_trace_chunked(&p, &cfg, &stream, |c| n += c.len() as u64).expect("trace");
        assert_eq!(n, 777);
        assert_eq!(sstats.emitted, 777);
    }
}
