//! Program-phase detection over per-chunk trace statistics.
//!
//! The streaming trace path (DESIGN.md §10) already delivers the dynamic
//! instruction stream in fixed-size chunks; each chunk boundary is a
//! natural observation point for phase behaviour. [`PhaseDetector`]
//! consumes one `(insts, l2_misses)` summary per chunk and declares a
//! phase shift when the chunk-level miss rate departs from the running
//! mean of the current phase and *stays* departed — a hysteresis rule
//! that makes single-chunk noise (a cold-start burst, one unlucky chunk)
//! invisible.
//!
//! The detector is deterministic: its decisions depend only on the chunk
//! summaries, which themselves depend only on the trace content and the
//! configured chunk size — never on thread count, timing, or allocation
//! behaviour. The adaptive selection pipeline relies on this to keep its
//! bit-identical-at-any-thread-count contract.
//!
//! Boundary placement is *prospective*: a shift is confirmed on the
//! chunk that completes the deviation run, and the new phase begins with
//! that chunk. The `confirm - 1` deviating chunks before it stay
//! attributed to the old phase — a deliberate trade that keeps detection
//! single-pass (no retroactive re-binning of already-sliced
//! instructions) at the cost of a bounded, documented boundary smear.

/// Tuning knobs for [`PhaseDetector`]. All integer-valued so configs
/// round-trip exactly through the wire protocol and the WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseConfig {
    /// Relative miss-rate deviation (in permille of the current phase
    /// mean) a chunk must exceed to count toward a shift. 500 = a chunk
    /// deviates when its miss rate differs from the phase mean by more
    /// than 50%.
    pub threshold_permille: u64,
    /// Consecutive deviating chunks required to confirm a shift.
    pub confirm: u64,
    /// Minimum chunks a phase must span before a shift out of it can be
    /// declared (hysteresis against rapid oscillation).
    pub min_phase_chunks: u64,
}

impl Default for PhaseConfig {
    fn default() -> PhaseConfig {
        PhaseConfig { threshold_permille: 500, confirm: 2, min_phase_chunks: 4 }
    }
}

impl PhaseConfig {
    /// `true` when every knob is in its valid range (all must be ≥ 1:
    /// a zero threshold would split on noise, zero confirm/min-chunks
    /// would make the hysteresis vacuous).
    pub fn is_valid(&self) -> bool {
        self.threshold_permille >= 1 && self.confirm >= 1 && self.min_phase_chunks >= 1
    }
}

/// One chunk's trace summary, as fed to [`PhaseDetector::observe_chunk`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ChunkSummary {
    /// Measured (post-warm-up) instructions in the chunk.
    pub insts: u64,
    /// L2-miss loads among them.
    pub l2_misses: u64,
}

/// Streaming hysteresis detector for miss-rate phase shifts.
///
/// Feed one [`ChunkSummary`] per streamed chunk; [`observe_chunk`]
/// returns `true` exactly when a new phase begins *with* that chunk.
///
/// [`observe_chunk`]: Self::observe_chunk
#[derive(Debug)]
pub struct PhaseDetector {
    cfg: PhaseConfig,
    /// Accumulated stats of the current phase (conforming chunks only).
    phase_insts: u64,
    phase_misses: u64,
    phase_chunks: u64,
    /// The in-flight deviation run: stats of consecutive deviating
    /// chunks not yet folded into the phase mean (so a forming new
    /// phase cannot drag the old mean toward itself).
    run_insts: u64,
    run_misses: u64,
    run_chunks: u64,
    phases: u64,
}

impl PhaseDetector {
    /// A detector with the given knobs. Invalid knobs (see
    /// [`PhaseConfig::is_valid`]) are clamped up to 1 rather than
    /// rejected — the detector is an internal stage; config validation
    /// happens at the policy layer.
    pub fn new(cfg: PhaseConfig) -> PhaseDetector {
        let cfg = PhaseConfig {
            threshold_permille: cfg.threshold_permille.max(1),
            confirm: cfg.confirm.max(1),
            min_phase_chunks: cfg.min_phase_chunks.max(1),
        };
        PhaseDetector {
            cfg,
            phase_insts: 0,
            phase_misses: 0,
            phase_chunks: 0,
            run_insts: 0,
            run_misses: 0,
            run_chunks: 0,
            phases: 1,
        }
    }

    /// Number of phases seen so far (≥ 1: the trace always starts in
    /// phase 0).
    pub fn phases(&self) -> u64 {
        self.phases
    }

    /// Whether `chunk` deviates from the current phase mean. Both sides
    /// are compared as exact integer cross-products — no division, no
    /// float rounding: `|r_c − r_p| > threshold·r_p` with
    /// `r = misses/insts` becomes
    /// `|m_c·i_p − m_p·i_c|·1000 > threshold_permille·m_p·i_c`, plus an
    /// absolute floor of 1 miss per 1024 chunk instructions so an
    /// all-zero phase mean still admits a shift into a missing phase.
    fn deviates(&self, chunk: ChunkSummary) -> bool {
        if chunk.insts == 0 {
            return false;
        }
        let (ip, mp) = (self.phase_insts as u128, self.phase_misses as u128);
        let (ic, mc) = (chunk.insts as u128, chunk.l2_misses as u128);
        if ip == 0 {
            return false;
        }
        let diff = (mc * ip).abs_diff(mp * ic);
        // Relative test against the phase mean...
        let relative = diff * 1000 > (self.cfg.threshold_permille as u128) * mp * ic;
        // ...with an absolute floor: the rate gap itself must exceed
        // 1/1024 miss per instruction, or a 0-miss phase would split on
        // a single stray miss.
        let absolute = diff * 1024 > ip * ic;
        relative && absolute
    }

    /// Observes one chunk summary. Returns `true` when a phase shift is
    /// confirmed — the new phase begins with this chunk.
    pub fn observe_chunk(&mut self, chunk: ChunkSummary) -> bool {
        let eligible = self.phase_chunks >= self.cfg.min_phase_chunks;
        if eligible && self.deviates(chunk) {
            self.run_insts += chunk.insts;
            self.run_misses += chunk.l2_misses;
            self.run_chunks += 1;
            if self.run_chunks >= self.cfg.confirm {
                // Confirmed: the deviation run becomes the seed of the
                // new phase's statistics.
                self.phase_insts = self.run_insts;
                self.phase_misses = self.run_misses;
                self.phase_chunks = self.run_chunks;
                self.run_insts = 0;
                self.run_misses = 0;
                self.run_chunks = 0;
                self.phases += 1;
                return true;
            }
            return false;
        }
        // Conforming chunk: any pending run was noise, not a shift.
        // Its stats are *discarded*, not absorbed — folding an outlier
        // spike into the phase mean would drag the mean off the true
        // rate and later misclassify perfectly ordinary chunks.
        self.phase_insts += chunk.insts;
        self.phase_misses += chunk.l2_misses;
        self.phase_chunks += 1;
        self.run_insts = 0;
        self.run_misses = 0;
        self.run_chunks = 0;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(det: &mut PhaseDetector, chunks: &[(u64, u64)]) -> Vec<usize> {
        chunks
            .iter()
            .enumerate()
            .filter(|&(_, &(insts, misses))| {
                det.observe_chunk(ChunkSummary { insts, l2_misses: misses })
            })
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn constant_rate_traces_never_split() {
        // The ISSUE's contract: no false phase splits on constant-rate
        // traces, however long.
        for rate in [0u64, 1, 40, 400] {
            let chunks: Vec<(u64, u64)> = (0..256).map(|_| (4096, 4096 * rate / 1000)).collect();
            let mut det = PhaseDetector::new(PhaseConfig::default());
            let splits = feed(&mut det, &chunks);
            assert!(splits.is_empty(), "rate {rate}/1000 split at {splits:?}");
            assert_eq!(det.phases(), 1);
        }
    }

    #[test]
    fn small_jitter_below_threshold_never_splits() {
        // ±20% oscillation around 100 misses/chunk stays below the 50%
        // default threshold.
        let chunks: Vec<(u64, u64)> =
            (0..128).map(|i| (4096, if i % 2 == 0 { 80 } else { 120 })).collect();
        let mut det = PhaseDetector::new(PhaseConfig::default());
        assert!(feed(&mut det, &chunks).is_empty());
    }

    #[test]
    fn single_step_function_splits_exactly_once() {
        // 32 chunks at 10 misses, then 32 at 200: one shift, confirmed
        // on the second deviating chunk (confirm = 2).
        let mut chunks = vec![(4096u64, 10u64); 32];
        chunks.extend(vec![(4096, 200); 32]);
        let mut det = PhaseDetector::new(PhaseConfig::default());
        let splits = feed(&mut det, &chunks);
        assert_eq!(splits, vec![33], "new phase begins on the confirming chunk");
        assert_eq!(det.phases(), 2);
    }

    #[test]
    fn step_down_to_zero_misses_also_splits() {
        let mut chunks = vec![(4096u64, 300u64); 16];
        chunks.extend(vec![(4096, 0); 16]);
        let mut det = PhaseDetector::new(PhaseConfig::default());
        assert_eq!(feed(&mut det, &chunks), vec![17]);
    }

    #[test]
    fn two_steps_split_twice() {
        let mut chunks = vec![(4096u64, 10u64); 16];
        chunks.extend(vec![(4096, 200); 16]);
        chunks.extend(vec![(4096, 10); 16]);
        let mut det = PhaseDetector::new(PhaseConfig::default());
        let splits = feed(&mut det, &chunks);
        assert_eq!(splits.len(), 2, "splits at {splits:?}");
        assert_eq!(det.phases(), 3);
    }

    #[test]
    fn one_chunk_spike_is_hysteresis_filtered() {
        // A single deviating chunk dissolves back into the phase.
        let mut chunks = vec![(4096u64, 10u64); 16];
        chunks[8] = (4096, 400);
        let mut det = PhaseDetector::new(PhaseConfig::default());
        assert!(feed(&mut det, &chunks).is_empty());
        assert_eq!(det.phases(), 1);
    }

    #[test]
    fn young_phases_cannot_split() {
        // min_phase_chunks gates shifts out of a freshly started phase:
        // with a large floor, even a clean step cannot confirm.
        let mut chunks = vec![(4096u64, 10u64); 8];
        chunks.extend(vec![(4096, 200); 8]);
        let cfg = PhaseConfig { min_phase_chunks: 64, ..PhaseConfig::default() };
        let mut det = PhaseDetector::new(cfg);
        assert!(feed(&mut det, &chunks).is_empty());
    }

    #[test]
    fn empty_and_zero_inst_chunks_are_inert() {
        let mut det = PhaseDetector::new(PhaseConfig::default());
        for _ in 0..64 {
            assert!(!det.observe_chunk(ChunkSummary::default()));
        }
        assert_eq!(det.phases(), 1);
    }

    #[test]
    fn invalid_knobs_clamp_to_one() {
        let det = PhaseDetector::new(PhaseConfig {
            threshold_permille: 0,
            confirm: 0,
            min_phase_chunks: 0,
        });
        assert_eq!(det.cfg.threshold_permille, 1);
        assert_eq!(det.cfg.confirm, 1);
        assert_eq!(det.cfg.min_phase_chunks, 1);
        assert!(!PhaseConfig { confirm: 0, ..PhaseConfig::default() }.is_valid());
        assert!(PhaseConfig::default().is_valid());
    }

    #[test]
    fn detection_is_chunk_content_deterministic() {
        // Same summaries, same decisions — twice through the same data
        // yields identical split indices.
        let chunks: Vec<(u64, u64)> =
            (0..96).map(|i| (4096, if i / 24 % 2 == 0 { 15 } else { 180 })).collect();
        let mut a = PhaseDetector::new(PhaseConfig::default());
        let mut b = PhaseDetector::new(PhaseConfig::default());
        assert_eq!(feed(&mut a, &chunks), feed(&mut b, &chunks));
    }
}
