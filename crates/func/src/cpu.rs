//! The architectural CPU: register state plus a single-step interpreter.

use crate::{exec, ExecError};
use preexec_isa::{Inst, Op, OpClass, Pc, Program, Reg};
use preexec_isa::reg::NUM_REGS;
use preexec_mem::MemBus;

/// The architectural outcome of stepping one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// PC of the instruction that executed.
    pub pc: Pc,
    /// The instruction that executed.
    pub inst: Inst,
    /// Effective address, for memory operations.
    pub addr: Option<u64>,
    /// Whether a conditional branch was taken.
    pub taken: bool,
    /// Value written to the destination register (0 if none).
    pub result: i64,
    /// Whether the instruction was `halt`.
    pub halted: bool,
}

/// Architectural CPU state: 64 registers (32 architectural + 32 merge
/// temporaries) and a program counter.
///
/// The CPU interprets one instruction per [`Cpu::step`] against a
/// [`Memory`]. It performs no timing and no cache classification — the
/// tracer layers those on top.
///
/// # Example
///
/// ```
/// use preexec_func::Cpu;
/// use preexec_isa::assemble;
/// use preexec_mem::Memory;
///
/// let p = assemble("t", "li r1, 2\nli r2, 3\nadd r3, r1, r2\nhalt").unwrap();
/// let mut cpu = Cpu::new(&p);
/// let mut mem = Memory::new();
/// while !cpu.halted() {
///     cpu.step(&p, &mut mem);
/// }
/// assert_eq!(cpu.reg(preexec_isa::Reg::new(3)), 5);
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [i64; NUM_REGS],
    pc: Pc,
    halted: bool,
}

impl Cpu {
    /// Creates a CPU positioned at the program's entry with zeroed registers.
    pub fn new(program: &Program) -> Cpu {
        Cpu { regs: [0; NUM_REGS], pc: program.entry(), halted: false }
    }

    /// The current PC.
    pub fn pc(&self) -> Pc {
        self.pc
    }

    /// Whether a `halt` has retired (or the PC ran off the end of the code).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Reads a register. `r0` always reads zero.
    #[inline]
    pub fn reg(&self, r: Reg) -> i64 {
        self.regs[r.index()]
    }

    /// Writes a register. Writes to `r0` are discarded.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: i64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// A snapshot of the full register file — used to seed p-thread
    /// contexts with main-thread values at launch.
    pub fn snapshot_regs(&self) -> [i64; NUM_REGS] {
        self.regs
    }

    /// Executes the instruction at the current PC, returning a typed error
    /// instead of panicking on a halted CPU or a malformed instruction.
    ///
    /// Memory operations read/write `mem` architecturally; the caller is
    /// responsible for any cache classification (see the tracer). The bus
    /// is generic so the normal tracer (backed by [`preexec_mem::Memory`])
    /// and the checkpoint replayer (backed by a copy-on-write overlay)
    /// execute exactly the same interpreter — determinism of replay
    /// cannot drift from the interpreter it replays.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::CpuHalted`] if the CPU has already halted, and
    /// [`ExecError::Malformed`] if the instruction's operands are
    /// inconsistent with its opcode class (which cannot happen for
    /// instructions built through [`preexec_isa`]'s constructors, but can
    /// for hand-assembled or corrupted ones).
    pub fn try_step<M: MemBus>(
        &mut self,
        program: &Program,
        mem: &mut M,
    ) -> Result<StepOutcome, ExecError> {
        if self.halted {
            return Err(ExecError::CpuHalted);
        }
        let pc = self.pc;
        let malformed = |reason| ExecError::Malformed { pc, reason };
        let inst = match program.get(pc) {
            Some(i) => *i,
            None => {
                // Running off the end of the code behaves as halt.
                self.halted = true;
                return Ok(StepOutcome {
                    pc,
                    inst: Inst::halt(),
                    addr: None,
                    taken: false,
                    result: 0,
                    halted: true,
                });
            }
        };

        let mut next_pc = pc + 1;
        let mut addr = None;
        let mut taken = false;
        let mut result = 0i64;

        match inst.class() {
            OpClass::IntAlu | OpClass::IntMul => {
                let a = inst.rs1.map_or(0, |r| self.reg(r));
                let b = inst.rs2.map_or(0, |r| self.reg(r));
                result = exec::try_alu(inst.op, a, b, inst.imm)?;
                let rd = inst.rd.ok_or(malformed("ALU op without rd"))?;
                self.set_reg(rd, result);
            }
            OpClass::Load => {
                let base = self.reg(inst.rs1.ok_or(malformed("load without base"))?);
                let ea = exec::effective_address(base, inst.imm);
                addr = Some(ea);
                result = match inst.op {
                    Op::Lb => mem.read_u8(ea) as i8 as i64,
                    Op::Lbu => mem.read_u8(ea) as i64,
                    Op::Lw => mem.read_u32(ea) as i32 as i64,
                    Op::Ld => mem.read_u64(ea) as i64,
                    _ => return Err(malformed("unknown load width")),
                };
                let rd = inst.rd.ok_or(malformed("load without rd"))?;
                self.set_reg(rd, result);
            }
            OpClass::Store => {
                let base = self.reg(inst.rs1.ok_or(malformed("store without base"))?);
                let value = self.reg(inst.rs2.ok_or(malformed("store without value"))?);
                let ea = exec::effective_address(base, inst.imm);
                addr = Some(ea);
                match inst.op {
                    Op::Sb => mem.write_u8(ea, value as u8),
                    Op::Sw => mem.write_u32(ea, value as u32),
                    Op::Sd => mem.write_u64(ea, value as u64),
                    _ => return Err(malformed("unknown store width")),
                }
            }
            OpClass::Branch => {
                let a = self.reg(inst.rs1.ok_or(malformed("branch without rs"))?);
                let b = self.reg(inst.rs2.ok_or(malformed("branch without rt"))?);
                taken = exec::try_branch_taken(inst.op, a, b)?;
                if taken {
                    next_pc = inst.target.ok_or(malformed("branch without target"))?;
                }
            }
            OpClass::Jump => match inst.op {
                Op::J => next_pc = inst.target.ok_or(malformed("jump without target"))?,
                Op::Jal => {
                    result = (pc + 1) as i64;
                    self.set_reg(Reg::LINK, result);
                    next_pc = inst.target.ok_or(malformed("jump without target"))?;
                }
                Op::Jr => {
                    next_pc = self.reg(inst.rs1.ok_or(malformed("jr without rs"))?) as Pc;
                }
                _ => return Err(malformed("unknown jump form")),
            },
            OpClass::Other => {
                if inst.op == Op::Halt {
                    self.halted = true;
                }
            }
        }

        self.pc = next_pc;
        Ok(StepOutcome { pc, inst, addr, taken, result, halted: self.halted })
    }

    /// Infallible [`try_step`](Self::try_step) for the hot trace loop,
    /// where the caller guards `halted()` and the program came from the
    /// assembler (so instructions are well-formed by construction).
    ///
    /// # Panics
    ///
    /// Panics if the CPU is already halted or the instruction is
    /// malformed.
    pub fn step<M: MemBus>(&mut self, program: &Program, mem: &mut M) -> StepOutcome {
        match self.try_step(program, mem) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_isa::assemble;
    use preexec_mem::Memory;

    fn run(src: &str) -> (Cpu, Memory) {
        let p = assemble("t", src).unwrap();
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        for seg in p.data_segments() {
            mem.write_slice(seg.base, &seg.bytes);
        }
        let mut steps = 0;
        while !cpu.halted() {
            cpu.step(&p, &mut mem);
            steps += 1;
            assert!(steps < 100_000, "runaway program");
        }
        (cpu, mem)
    }

    #[test]
    fn arithmetic_program() {
        let (cpu, _) = run("li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt");
        assert_eq!(cpu.reg(Reg::new(3)), 42);
    }

    #[test]
    fn loop_with_branch() {
        let (cpu, _) = run(
            "li r1, 10\nli r2, 0\nli r3, 0\n\
             top: bge r2, r1, done\n add r3, r3, r2\n addi r2, r2, 1\n j top\n\
             done: halt",
        );
        assert_eq!(cpu.reg(Reg::new(3)), 45); // 0+1+...+9
    }

    #[test]
    fn loads_and_stores() {
        let (cpu, mem) = run(
            "li r1, 0x100\nli r2, -1\nsd r2, 0(r1)\nld r3, 0(r1)\n\
             sw r2, 8(r1)\nlw r4, 8(r1)\nsb r2, 16(r1)\nlbu r5, 16(r1)\nlb r6, 16(r1)\nhalt",
        );
        assert_eq!(cpu.reg(Reg::new(3)), -1);
        assert_eq!(cpu.reg(Reg::new(4)), -1); // lw sign-extends
        assert_eq!(cpu.reg(Reg::new(5)), 255); // lbu zero-extends
        assert_eq!(cpu.reg(Reg::new(6)), -1); // lb sign-extends
        assert_eq!(mem.read_u64(0x100), u64::MAX);
    }

    #[test]
    fn jal_and_jr() {
        let (cpu, _) = run(
            "jal sub\n li r2, 99\n halt\n\
             sub: li r1, 5\n jr r31",
        );
        assert_eq!(cpu.reg(Reg::new(1)), 5);
        assert_eq!(cpu.reg(Reg::new(2)), 99); // returned and continued
    }

    #[test]
    fn r0_stays_zero() {
        let (cpu, _) = run("li r0, 7\nadd r0, r0, r0\nhalt");
        assert_eq!(cpu.reg(Reg::ZERO), 0);
    }

    #[test]
    fn running_off_the_end_halts() {
        let p = assemble("t", "nop").unwrap();
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        cpu.step(&p, &mut mem);
        let out = cpu.step(&p, &mut mem);
        assert!(out.halted);
        assert!(cpu.halted());
    }

    #[test]
    fn step_outcome_reports_address() {
        let p = assemble("t", "li r1, 0x40\nld r2, 8(r1)\nhalt").unwrap();
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        cpu.step(&p, &mut mem);
        let out = cpu.step(&p, &mut mem);
        assert_eq!(out.addr, Some(0x48));
    }

    #[test]
    fn branch_taken_flag() {
        let p = assemble("t", "li r1, 1\nbeq r1, r1, 3\nnop\nhalt").unwrap();
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        cpu.step(&p, &mut mem);
        let out = cpu.step(&p, &mut mem);
        assert!(out.taken);
        assert_eq!(cpu.pc(), 3);
    }

    #[test]
    #[should_panic(expected = "halted")]
    fn stepping_halted_cpu_panics() {
        let p = assemble("t", "halt").unwrap();
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        cpu.step(&p, &mut mem);
        cpu.step(&p, &mut mem);
    }

    #[test]
    fn try_step_reports_halted_as_error() {
        let p = assemble("t", "halt").unwrap();
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        assert!(cpu.try_step(&p, &mut mem).is_ok());
        assert_eq!(cpu.try_step(&p, &mut mem), Err(ExecError::CpuHalted));
        // The error is sticky but side-effect free: state is unchanged.
        assert!(cpu.halted());
    }
}
