//! The trace driver: functional execution + cache classification + sampling.

use crate::{Cpu, DynInst, ExecError, Phase, RunStats, Sampling};
use preexec_isa::{OpClass, Program};
use preexec_mem::{FuncHierarchy, HierarchyConfig, MemBus, Memory};

/// Configuration for a trace run.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Cache geometry used for hit/miss classification.
    pub hierarchy: HierarchyConfig,
    /// Off / warm-up / on sampling schedule.
    pub sampling: Sampling,
    /// Hard cap on total architectural steps (off + warm + on). The run
    /// stops at this budget even if the program has not halted.
    pub max_steps: u64,
    /// Optional cap on *measured* (emitted) instructions.
    pub max_emitted: Option<u64>,
}

impl Default for TraceConfig {
    /// Paper-default caches, always-on sampling, a 100 M-step safety cap.
    fn default() -> TraceConfig {
        TraceConfig {
            hierarchy: HierarchyConfig::paper_default(),
            sampling: Sampling::always_on(),
            max_steps: 100_000_000,
            max_emitted: None,
        }
    }
}

/// Runs `program` to completion (or budget), streaming a [`DynInst`] for
/// every instruction retired in an "on" sampling phase to `sink`, and
/// returns the accumulated [`RunStats`].
///
/// Semantics per phase (paper §4.1):
/// - **Off**: architectural execution only; caches untouched; nothing
///   emitted.
/// - **Warm**: caches accessed (warmed) but nothing emitted or counted.
/// - **On**: caches accessed, [`DynInst`] emitted, statistics counted.
///
/// # Example
///
/// ```
/// use preexec_func::{run_trace, TraceConfig};
/// use preexec_isa::assemble;
///
/// let p = assemble("t", "li r1, 0x4000\nld r2, 0(r1)\nld r3, 0(r1)\nhalt").unwrap();
/// let mut misses = 0;
/// let stats = run_trace(&p, &TraceConfig::default(), |d| {
///     if d.is_l2_miss_load() { misses += 1 }
/// });
/// assert_eq!(misses, 1); // second load hits
/// assert_eq!(stats.l2_misses, 1);
/// ```
pub fn run_trace(
    program: &Program,
    config: &TraceConfig,
    sink: impl FnMut(&DynInst),
) -> RunStats {
    match try_run_trace(program, config, sink) {
        Ok(stats) => stats,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`run_trace`]: returns a typed [`ExecError`] instead of
/// panicking if a malformed instruction is encountered mid-trace.
///
/// The step watchdog (`config.max_steps`) is *not* an error: hitting it
/// ends the run normally with [`RunStats::timed_out`] set, since the
/// prefix traced so far is valid and usable.
///
/// # Errors
///
/// Returns [`ExecError::Malformed`] if execution reaches an instruction
/// whose operands are inconsistent with its opcode class (possible only
/// for programs not built through the assembler).
pub fn try_run_trace(
    program: &Program,
    config: &TraceConfig,
    mut sink: impl FnMut(&DynInst),
) -> Result<RunStats, ExecError> {
    let mut mem = Memory::new();
    for seg in program.data_segments() {
        mem.write_slice(seg.base, &seg.bytes);
    }
    let mut state = TraceState {
        cpu: Cpu::new(program),
        mem,
        hierarchy: FuncHierarchy::new(config.hierarchy),
        stats: RunStats::new(),
        emitted: 0,
    };
    run_trace_loop(program, config, &mut state, |_| {}, |d| {
        sink(d);
        true
    })?;
    Ok(state.stats)
}

/// The full mutable state of an in-flight trace run. One loop
/// ([`run_trace_loop`]) drives every trace path — the plain tracer, the
/// checkpoint recorder, and the checkpoint replayer — over this state, so
/// a replay resumed from a snapshot of it is exact by construction.
pub(crate) struct TraceState<M> {
    pub cpu: Cpu,
    pub mem: M,
    pub hierarchy: FuncHierarchy,
    pub stats: RunStats,
    /// Measured ("on"-phase) instructions emitted so far — the `seq` of
    /// the next emitted [`DynInst`].
    pub emitted: u64,
}

/// The trace loop shared by tracing, checkpoint recording, and replay.
///
/// `at_loop_top` is called once per iteration before the step executes —
/// the checkpoint recorder snapshots there, so a snapshot captures the
/// state *before* the instruction whose `seq` equals the snapshot's
/// `emitted`. `sink` receives every emitted instruction and returns
/// whether to continue (replay stops at an interval boundary this way).
pub(crate) fn run_trace_loop<M: MemBus>(
    program: &Program,
    config: &TraceConfig,
    state: &mut TraceState<M>,
    mut at_loop_top: impl FnMut(&mut TraceState<M>),
    mut sink: impl FnMut(&DynInst) -> bool,
) -> Result<(), ExecError> {
    while !state.cpu.halted() {
        if state.stats.total_steps >= config.max_steps {
            // Watchdog: the program did not halt within its step budget.
            state.stats.timed_out = true;
            break;
        }
        if let Some(cap) = config.max_emitted {
            if state.emitted >= cap {
                break;
            }
        }
        at_loop_top(state);
        let phase = config.sampling.phase(state.stats.total_steps);
        let out = state.cpu.try_step(program, &mut state.mem)?;
        state.stats.total_steps += 1;
        if phase == Phase::Off {
            continue;
        }
        // Warm and On both touch the caches.
        let level = out.addr.map(|a| {
            let is_write = out.inst.op.is_store();
            state.hierarchy.access(a, is_write)
        });
        if phase == Phase::Warm {
            continue;
        }
        // On: count and emit.
        state.stats.insts += 1;
        match out.inst.class() {
            OpClass::Load => {
                let level = level
                    .ok_or(ExecError::Malformed { pc: out.pc, reason: "load without address" })?;
                state.stats.record_load(out.pc, level);
            }
            OpClass::Store => {
                let level = level
                    .ok_or(ExecError::Malformed { pc: out.pc, reason: "store without address" })?;
                state.stats.record_store(level);
            }
            OpClass::Branch => {
                state.stats.branches += 1;
                if out.taken {
                    state.stats.taken_branches += 1;
                }
            }
            _ => {}
        }
        let d = DynInst {
            seq: state.emitted,
            pc: out.pc,
            inst: out.inst,
            addr: out.addr,
            level,
            taken: out.taken,
            result: out.result,
        };
        state.emitted += 1;
        if !sink(&d) {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_isa::assemble;

    /// A loop that streams over 64 KB (beyond the tiny L2 in
    /// `HierarchyConfig::tiny`) so every new line misses.
    fn streaming_loop() -> Program {
        assemble(
            "stream",
            "li r1, 0x10000\n li r2, 0\n li r3, 8192\n\
             top: bge r2, r3, done\n\
             ld r4, 0(r1)\n addi r1, r1, 8\n addi r2, r2, 1\n j top\n\
             done: halt",
        )
        .unwrap()
    }

    #[test]
    fn l2_misses_once_per_line() {
        let config = TraceConfig {
            hierarchy: HierarchyConfig::paper_default(),
            ..TraceConfig::default()
        };
        let stats = run_trace(&streaming_loop(), &config, |_| {});
        // 8192 loads x 8B = 64KB = 1024 L2 lines (64B each), all cold.
        assert_eq!(stats.loads, 8192);
        assert_eq!(stats.l2_misses, 1024);
        // L1 lines are 32B -> 2048 L1 misses.
        assert_eq!(stats.l1d_misses, 2048);
    }

    #[test]
    fn seq_numbers_are_dense() {
        let mut next = 0;
        run_trace(&streaming_loop(), &TraceConfig::default(), |d| {
            assert_eq!(d.seq, next);
            next += 1;
        });
        assert!(next > 0);
    }

    #[test]
    fn step_budget_respected() {
        let config = TraceConfig { max_steps: 100, ..TraceConfig::default() };
        let stats = run_trace(&streaming_loop(), &config, |_| {});
        assert_eq!(stats.total_steps, 100);
        assert!(stats.timed_out, "watchdog cutoff must be flagged");
    }

    #[test]
    fn halting_run_is_not_timed_out() {
        let stats = run_trace(&streaming_loop(), &TraceConfig::default(), |_| {});
        assert!(!stats.timed_out);
    }

    #[test]
    fn emitted_budget_respected() {
        let config = TraceConfig { max_emitted: Some(7), ..TraceConfig::default() };
        let mut n = 0;
        run_trace(&streaming_loop(), &config, |_| n += 1);
        assert_eq!(n, 7);
    }

    #[test]
    fn off_phase_emits_nothing_and_skips_caches() {
        // off=30, warm=0, on=10: the first 30 instructions (which include
        // all the cold misses of the first lines) are skipped entirely.
        let config = TraceConfig {
            sampling: Sampling::new(1_000_000, 0, 10),
            ..TraceConfig::default()
        };
        let stats = run_trace(&streaming_loop(), &config, |_| {});
        assert_eq!(stats.insts, 0); // program shorter than off phase
        assert_eq!(stats.l2_misses, 0);
        assert!(stats.total_steps > 0);
    }

    #[test]
    fn warm_phase_warms_caches() {
        // Two-pass program: touch a line, then re-touch it. With the first
        // touch in warm-up and the second in "on", the second is a hit.
        let p = assemble(
            "t",
            "li r1, 0x4000\n ld r2, 0(r1)\n ld r3, 0(r1)\n halt",
        )
        .unwrap();
        // warm = 2 (li + first ld), on = rest.
        let config = TraceConfig {
            sampling: Sampling::new(0, 2, 100),
            ..TraceConfig::default()
        };
        let stats = run_trace(&p, &config, |_| {});
        assert_eq!(stats.loads, 1); // only the second load measured
        assert_eq!(stats.l2_misses, 0); // and it hit, thanks to warm-up
    }

    #[test]
    fn stats_match_emitted_stream() {
        let mut loads = 0;
        let stats = run_trace(&streaming_loop(), &TraceConfig::default(), |d| {
            if d.inst.op.is_load() {
                loads += 1;
            }
        });
        assert_eq!(stats.loads, loads);
        // 3 setup + 8192 iterations x (bge, ld, addi, addi, j) + final bge + halt.
        assert_eq!(stats.insts, 3 + 8192 * 5 + 1 + 1);
    }
}
