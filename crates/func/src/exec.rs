//! Pure operation semantics, shared by the functional simulator, the
//! timing simulator's execution stage, and the p-thread interpreter.
//!
//! Each operation has a fallible form (`try_alu`, `try_branch_taken`) that
//! returns a typed [`ExecError`] on a class mismatch — the form speculative
//! paths (the p-thread sandbox) must use — and an infallible fast-path
//! wrapper (`alu`, `branch_taken`) for callers that have already matched on
//! the opcode class.

use crate::ExecError;
use preexec_isa::Op;

/// Computes the result of an ALU operation.
///
/// `a` is the first source (`rs1`), `b` the second (`rs2` for r-type ops),
/// and `imm` the immediate (i-type ops). Exactly one of `b`/`imm` is
/// meaningful per opcode; passing zero for the unused one is conventional.
///
/// # Errors
///
/// Returns [`ExecError::NotAlu`] if `op` is not an ALU-class opcode.
#[inline]
pub fn try_alu(op: Op, a: i64, b: i64, imm: i64) -> Result<i64, ExecError> {
    use Op::*;
    Ok(match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Nor => !(a | b),
        Sllv => ((a as u64) << (b as u64 & 63)) as i64,
        Srlv => ((a as u64) >> (b as u64 & 63)) as i64,
        Slt => (a < b) as i64,
        Sltu => ((a as u64) < (b as u64)) as i64,
        Mul => a.wrapping_mul(b),
        Addi => a.wrapping_add(imm),
        Andi => a & imm,
        Ori => a | imm,
        Xori => a ^ imm,
        Sll => ((a as u64) << (imm as u64 & 63)) as i64,
        Srl => ((a as u64) >> (imm as u64 & 63)) as i64,
        Sra => a >> (imm as u64 & 63),
        Slti => (a < imm) as i64,
        Li => imm,
        Mov => a,
        _ => return Err(ExecError::NotAlu(op)),
    })
}

/// Infallible [`try_alu`] for callers that already matched the class.
///
/// # Panics
///
/// Panics if `op` is not an ALU-class opcode.
#[inline]
pub fn alu(op: Op, a: i64, b: i64, imm: i64) -> i64 {
    match try_alu(op, a, b, imm) {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

/// Evaluates a conditional branch: does `op` with sources `a`, `b` take?
///
/// # Errors
///
/// Returns [`ExecError::NotBranch`] if `op` is not a conditional branch.
#[inline]
pub fn try_branch_taken(op: Op, a: i64, b: i64) -> Result<bool, ExecError> {
    use Op::*;
    Ok(match op {
        Beq => a == b,
        Bne => a != b,
        Blt => a < b,
        Bge => a >= b,
        Ble => a <= b,
        Bgt => a > b,
        _ => return Err(ExecError::NotBranch(op)),
    })
}

/// Infallible [`try_branch_taken`] for callers that already matched the
/// class.
///
/// # Panics
///
/// Panics if `op` is not a conditional branch.
#[inline]
pub fn branch_taken(op: Op, a: i64, b: i64) -> bool {
    match try_branch_taken(op, a, b) {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

/// Computes the effective address of a memory operation.
#[inline]
pub fn effective_address(base: i64, offset: i64) -> u64 {
    base.wrapping_add(offset) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(alu(Op::Add, 2, 3, 0), 5);
        assert_eq!(alu(Op::Sub, 2, 3, 0), -1);
        assert_eq!(alu(Op::Mul, -4, 3, 0), -12);
        assert_eq!(alu(Op::Add, i64::MAX, 1, 0), i64::MIN); // wrapping
    }

    #[test]
    fn logic() {
        assert_eq!(alu(Op::And, 0b1100, 0b1010, 0), 0b1000);
        assert_eq!(alu(Op::Or, 0b1100, 0b1010, 0), 0b1110);
        assert_eq!(alu(Op::Xor, 0b1100, 0b1010, 0), 0b0110);
        assert_eq!(alu(Op::Nor, 0, 0, 0), -1);
    }

    #[test]
    fn shifts() {
        assert_eq!(alu(Op::Sll, 1, 0, 4), 16);
        assert_eq!(alu(Op::Srl, -1, 0, 60), 15); // logical
        assert_eq!(alu(Op::Sra, -16, 0, 2), -4); // arithmetic
        assert_eq!(alu(Op::Sllv, 1, 5, 0), 32);
        assert_eq!(alu(Op::Sll, 1, 0, 64), 1); // shift amount mod 64
    }

    #[test]
    fn comparisons() {
        assert_eq!(alu(Op::Slt, -1, 1, 0), 1);
        assert_eq!(alu(Op::Sltu, -1, 1, 0), 0); // unsigned: -1 is huge
        assert_eq!(alu(Op::Slti, 3, 0, 5), 1);
    }

    #[test]
    fn moves() {
        assert_eq!(alu(Op::Li, 0, 0, 42), 42);
        assert_eq!(alu(Op::Mov, 7, 0, 0), 7);
    }

    #[test]
    fn branches() {
        assert!(branch_taken(Op::Beq, 1, 1));
        assert!(!branch_taken(Op::Beq, 1, 2));
        assert!(branch_taken(Op::Bne, 1, 2));
        assert!(branch_taken(Op::Blt, -5, 0));
        assert!(branch_taken(Op::Bge, 0, 0));
        assert!(branch_taken(Op::Ble, 0, 0));
        assert!(branch_taken(Op::Bgt, 1, 0));
        assert!(!branch_taken(Op::Bgt, 0, 0));
    }

    #[test]
    fn addressing() {
        assert_eq!(effective_address(0x1000, 8), 0x1008);
        assert_eq!(effective_address(0x1000, -8), 0xff8);
    }

    #[test]
    #[should_panic(expected = "not an ALU opcode")]
    fn alu_rejects_non_alu() {
        let _ = alu(Op::Lw, 0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "not a conditional branch")]
    fn branch_rejects_non_branch() {
        let _ = branch_taken(Op::J, 0, 0);
    }

    #[test]
    fn try_forms_return_typed_errors() {
        assert_eq!(try_alu(Op::Lw, 0, 0, 0), Err(ExecError::NotAlu(Op::Lw)));
        assert_eq!(try_branch_taken(Op::J, 0, 0), Err(ExecError::NotBranch(Op::J)));
        assert_eq!(try_alu(Op::Add, 2, 3, 0), Ok(5));
        assert_eq!(try_branch_taken(Op::Beq, 1, 1), Ok(true));
    }
}
