//! Typed errors for functional execution.
//!
//! Pre-execution is speculative by construction: p-threads run ahead of
//! the committed program on possibly-stale state, so every fault that the
//! interpreter can encounter must be representable as a value rather than
//! a panic. `ExecError` is that representation for the functional layer;
//! the timing simulator maps these same faults to squashes (see
//! `preexec_timing`).

use preexec_isa::{Op, Pc};
use std::error::Error;
use std::fmt;

/// A fault raised by the functional execution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// An ALU evaluation was requested for a non-ALU opcode.
    NotAlu(Op),
    /// A branch evaluation was requested for a non-branch opcode.
    NotBranch(Op),
    /// A halted CPU was stepped.
    CpuHalted,
    /// An instruction's encoding is inconsistent with its opcode class
    /// (e.g. an ALU op without a destination register).
    Malformed {
        /// PC of the offending instruction.
        pc: Pc,
        /// What was missing or inconsistent.
        reason: &'static str,
    },
    /// The architectural step budget was exhausted before the program
    /// halted (watchdog).
    StepBudgetExhausted {
        /// The configured budget that ran out.
        budget: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NotAlu(op) => write!(f, "{op} is not an ALU opcode"),
            ExecError::NotBranch(op) => write!(f, "{op} is not a conditional branch"),
            ExecError::CpuHalted => write!(f, "stepping a halted CPU"),
            ExecError::Malformed { pc, reason } => {
                write!(f, "malformed instruction at pc {pc}: {reason}")
            }
            ExecError::StepBudgetExhausted { budget } => {
                write!(f, "step budget of {budget} exhausted before halt (watchdog)")
            }
        }
    }
}

impl Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_fault() {
        assert!(ExecError::NotAlu(Op::Lw).to_string().contains("not an ALU"));
        assert!(ExecError::NotBranch(Op::J).to_string().contains("not a conditional branch"));
        assert!(ExecError::CpuHalted.to_string().contains("halted"));
        assert!(ExecError::Malformed { pc: 3, reason: "no rd" }.to_string().contains("pc 3"));
        assert!(ExecError::StepBudgetExhausted { budget: 10 }
            .to_string()
            .contains("watchdog"));
    }
}
