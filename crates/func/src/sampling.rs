//! Cyclic off / warm-up / on sampling, as in the paper's §4.1.
//!
//! "All simulation tools exploit sampling, cycling through off
//! (fast-forwarding), warm-up (caches and branch predictor only) and on
//! (full detail) phases at regular intervals."

/// The sampling phase a given dynamic instruction falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Fast-forward: execute architecturally, touch no models.
    Off,
    /// Warm models (caches, predictors) but record nothing.
    Warm,
    /// Full detail: record trace events / simulate timing.
    On,
}

/// A cyclic sampling schedule: `off` instructions fast-forwarded, then
/// `warm` instructions of warm-up, then `on` instructions of full detail,
/// repeating.
///
/// The paper samples 100 M of every 1 B instructions with 10 M-instruction
/// warm-up; our scaled default (see `TraceConfig`) keeps the same 10:1:89
/// spirit at laptop scale. A schedule with `off == 0 && warm == 0` is
/// always-on.
///
/// # Example
///
/// ```
/// use preexec_func::{Phase, Sampling};
///
/// let s = Sampling::new(5, 2, 3);
/// assert_eq!(s.phase(0), Phase::Off);
/// assert_eq!(s.phase(5), Phase::Warm);
/// assert_eq!(s.phase(7), Phase::On);
/// assert_eq!(s.phase(10), Phase::Off); // cycle repeats
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampling {
    off: u64,
    warm: u64,
    on: u64,
}

impl Sampling {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if `on` is zero (a schedule that never measures is a bug).
    pub fn new(off: u64, warm: u64, on: u64) -> Sampling {
        assert!(on > 0, "sampling schedule must have a nonzero `on` phase");
        Sampling { off, warm, on }
    }

    /// An always-on schedule (no fast-forwarding, no warm-up).
    pub fn always_on() -> Sampling {
        Sampling { off: 0, warm: 0, on: u64::MAX }
    }

    /// Total instructions per cycle of the schedule.
    pub fn period(&self) -> u64 {
        self.off.saturating_add(self.warm).saturating_add(self.on)
    }

    /// The phase of the `n`-th dynamic instruction (0-based).
    pub fn phase(&self, n: u64) -> Phase {
        if self.off == 0 && self.warm == 0 {
            return Phase::On;
        }
        let pos = n % self.period();
        if pos < self.off {
            Phase::Off
        } else if pos < self.off + self.warm {
            Phase::Warm
        } else {
            Phase::On
        }
    }

    /// Fraction of instructions measured (`on / period`).
    pub fn duty_cycle(&self) -> f64 {
        if self.off == 0 && self.warm == 0 {
            1.0
        } else {
            self.on as f64 / self.period() as f64
        }
    }
}

impl Default for Sampling {
    /// Defaults to always-on.
    fn default() -> Sampling {
        Sampling::always_on()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_never_cycles() {
        let s = Sampling::always_on();
        for n in [0u64, 1, 1_000_000, u64::MAX - 1] {
            assert_eq!(s.phase(n), Phase::On);
        }
        assert_eq!(s.duty_cycle(), 1.0);
    }

    #[test]
    fn phases_in_order() {
        let s = Sampling::new(10, 5, 85);
        assert_eq!(s.period(), 100);
        assert_eq!(s.phase(0), Phase::Off);
        assert_eq!(s.phase(9), Phase::Off);
        assert_eq!(s.phase(10), Phase::Warm);
        assert_eq!(s.phase(14), Phase::Warm);
        assert_eq!(s.phase(15), Phase::On);
        assert_eq!(s.phase(99), Phase::On);
        assert_eq!(s.phase(100), Phase::Off);
    }

    #[test]
    fn duty_cycle() {
        let s = Sampling::new(890, 10, 100);
        assert!((s.duty_cycle() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_off_nonzero_warm() {
        let s = Sampling::new(0, 2, 2);
        assert_eq!(s.phase(0), Phase::Warm);
        assert_eq!(s.phase(2), Phase::On);
        assert_eq!(s.phase(4), Phase::Warm);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_on_rejected() {
        let _ = Sampling::new(1, 1, 0);
    }
}
