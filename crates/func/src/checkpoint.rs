//! Periodic lightweight checkpoints of a trace run.
//!
//! The on-demand slicing mode (DESIGN.md §17) replaces the O(scope)
//! slicing window with O(checkpoint + chunk) state: during the trace,
//! [`try_run_trace_checkpointed`] snapshots the architectural state every
//! `checkpoint_every` *emitted* instructions — registers + PC, the pages
//! dirtied since the previous snapshot, the cache hierarchy, and the
//! statistics counters. A snapshot is everything [`crate::replay`] needs
//! to re-execute the trace deterministically from that point, which is
//! how dynamic slices are reconstructed on demand instead of being held
//! in memory for the whole trace.
//!
//! Checkpoints are aligned to emitted-instruction counts (`seq` space),
//! so checkpoint `i` is taken immediately before the instruction with
//! `seq == i * checkpoint_every` executes, and the replay of interval
//! `i` reproduces exactly the emitted instructions
//! `[i * checkpoint_every, (i + 1) * checkpoint_every)`.

use crate::tracer::{run_trace_loop, TraceState};
use crate::{Cpu, DynInst, ExecError, RunStats, TraceConfig};
use preexec_mem::{FuncHierarchy, MemBus, Memory, MEM_PAGE_SHIFT, MEM_PAGE_SIZE};
use std::collections::BTreeSet;

/// A [`Memory`] wrapper that records which pages have been written since
/// the last checkpoint. Reads delegate untouched; the set is drained at
/// every snapshot.
struct TrackedMem {
    mem: Memory,
    dirty: BTreeSet<u64>,
}

impl TrackedMem {
    fn new(mem: Memory) -> TrackedMem {
        TrackedMem { mem, dirty: BTreeSet::new() }
    }

    #[inline]
    fn mark(&mut self, addr: u64, width: u64) {
        let first = addr >> MEM_PAGE_SHIFT;
        let last = addr.saturating_add(width - 1) >> MEM_PAGE_SHIFT;
        for p in first..=last {
            self.dirty.insert(p);
        }
    }

    /// Snapshots every dirtied page's current content and clears the set.
    fn take_dirty(&mut self) -> Vec<(u64, Box<[u8; MEM_PAGE_SIZE]>)> {
        let dirty = std::mem::take(&mut self.dirty);
        dirty
            .into_iter()
            .filter_map(|p| self.mem.page_bytes(p).map(|bytes| (p, Box::new(*bytes))))
            .collect()
    }
}

impl MemBus for TrackedMem {
    #[inline]
    fn read_u8(&self, addr: u64) -> u8 {
        self.mem.read_u8(addr)
    }
    #[inline]
    fn read_u32(&self, addr: u64) -> u32 {
        self.mem.read_u32(addr)
    }
    #[inline]
    fn read_u64(&self, addr: u64) -> u64 {
        self.mem.read_u64(addr)
    }
    #[inline]
    fn write_u8(&mut self, addr: u64, value: u8) {
        self.mark(addr, 1);
        self.mem.write_u8(addr, value);
    }
    #[inline]
    fn write_u32(&mut self, addr: u64, value: u32) {
        self.mark(addr, 4);
        self.mem.write_u32(addr, value);
    }
    #[inline]
    fn write_u64(&mut self, addr: u64, value: u64) {
        self.mark(addr, 8);
        self.mem.write_u64(addr, value);
    }
}

/// One snapshot of the trace state, taken immediately before the
/// instruction with `seq == emitted` executed.
pub struct Checkpoint {
    /// Emitted instructions when the snapshot was taken — the `seq` of
    /// the first instruction a replay from here emits.
    pub emitted: u64,
    /// Architectural steps (including off/warm phases) when taken.
    pub total_steps: u64,
    pub(crate) cpu: Cpu,
    pub(crate) hierarchy: FuncHierarchy,
    pub(crate) stats: RunStats,
    /// Pages dirtied since the previous checkpoint, content as of this
    /// one, sorted by page index.
    pub(crate) pages: Vec<(u64, Box<[u8; MEM_PAGE_SIZE]>)>,
}

impl Checkpoint {
    /// The recorded content of `page` at this checkpoint, if it was
    /// dirtied in the preceding interval.
    pub(crate) fn page(&self, page: u64) -> Option<&[u8; MEM_PAGE_SIZE]> {
        self.pages
            .binary_search_by_key(&page, |&(p, _)| p)
            .ok()
            .map(|i| &*self.pages[i].1)
    }

    /// Bytes of snapshot payload held (dirty pages only).
    pub fn page_bytes_held(&self) -> usize {
        self.pages.len() * MEM_PAGE_SIZE
    }
}

/// The checkpoint record of one trace run: the snapshot cadence, the
/// total emitted-instruction count, and one [`Checkpoint`] per
/// `checkpoint_every` emitted instructions (the first at `seq` 0).
pub struct CheckpointTrace {
    checkpoint_every: u64,
    emitted: u64,
    checkpoints: Vec<Checkpoint>,
}

impl CheckpointTrace {
    /// The snapshot cadence in emitted instructions.
    pub fn checkpoint_every(&self) -> u64 {
        self.checkpoint_every
    }

    /// Total instructions the recorded run emitted.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Number of checkpoints recorded.
    pub fn num_checkpoints(&self) -> usize {
        self.checkpoints.len()
    }

    /// The checkpoint interval containing `seq` — also the index of the
    /// checkpoint a replay reconstructing `seq` starts from. `seq` must
    /// be below [`emitted`](Self::emitted).
    pub fn interval_of(&self, seq: u64) -> usize {
        ((seq / self.checkpoint_every) as usize).min(self.checkpoints.len().saturating_sub(1))
    }

    /// First emitted `seq` of checkpoint interval `idx`.
    pub fn interval_start(&self, idx: usize) -> u64 {
        idx as u64 * self.checkpoint_every
    }

    /// One-past-the-last emitted `seq` of checkpoint interval `idx`.
    pub fn interval_end(&self, idx: usize) -> u64 {
        (self.interval_start(idx) + self.checkpoint_every).min(self.emitted)
    }

    pub(crate) fn checkpoint(&self, idx: usize) -> &Checkpoint {
        &self.checkpoints[idx]
    }

    /// Total bytes of dirty-page payload across all checkpoints (the
    /// dominant term of the record's memory footprint).
    pub fn page_bytes_held(&self) -> usize {
        self.checkpoints.iter().map(Checkpoint::page_bytes_held).sum()
    }
}

/// [`crate::try_run_trace`] plus checkpoint recording: emits the same
/// [`DynInst`] stream and returns the same [`RunStats`], and additionally
/// returns a [`CheckpointTrace`] from which any part of the run can be
/// re-executed deterministically (see [`crate::replay`]).
///
/// `checkpoint_every` is clamped to at least 1. The initial data-segment
/// image is *not* recorded (the replayer reloads it from the program), so
/// snapshots hold only pages the program itself dirtied.
///
/// # Errors
///
/// Same as [`crate::try_run_trace`].
pub fn try_run_trace_checkpointed(
    program: &preexec_isa::Program,
    config: &TraceConfig,
    checkpoint_every: u64,
    mut sink: impl FnMut(&DynInst),
) -> Result<(RunStats, CheckpointTrace), ExecError> {
    let every = checkpoint_every.max(1);
    let mut mem = Memory::new();
    for seg in program.data_segments() {
        mem.write_slice(seg.base, &seg.bytes);
    }
    let mut state = TraceState {
        cpu: Cpu::new(program),
        mem: TrackedMem::new(mem),
        hierarchy: FuncHierarchy::new(config.hierarchy),
        stats: RunStats::new(),
        emitted: 0,
    };
    let mut checkpoints: Vec<Checkpoint> = Vec::new();
    run_trace_loop(
        program,
        config,
        &mut state,
        |st| {
            // Snapshot at the first loop-top where the *next* emitted
            // instruction opens a new interval (off/warm steps in between
            // re-enter with the same `emitted` but `len` has advanced).
            if checkpoints.len() as u64 * every == st.emitted {
                checkpoints.push(Checkpoint {
                    emitted: st.emitted,
                    total_steps: st.stats.total_steps,
                    cpu: st.cpu.clone(),
                    hierarchy: st.hierarchy.clone(),
                    stats: st.stats.clone(),
                    pages: st.mem.take_dirty(),
                });
            }
        },
        |d| {
            sink(d);
            true
        },
    )?;
    Ok((
        state.stats,
        CheckpointTrace { checkpoint_every: every, emitted: state.emitted, checkpoints },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::try_run_trace;
    use preexec_isa::assemble;

    fn chase() -> preexec_isa::Program {
        assemble(
            "t",
            "li r1, 0x100000\n li r2, 0\n li r3, 512\n\
             top: bge r2, r3, done\n\
             ld r4, 0(r1)\n sd r2, 8(r1)\n addi r1, r1, 64\n addi r2, r2, 1\n j top\n\
             done: halt",
        )
        .unwrap()
    }

    #[test]
    fn checkpointed_run_matches_plain_trace() {
        let p = chase();
        let config = TraceConfig::default();
        let mut plain: Vec<String> = Vec::new();
        let s1 = try_run_trace(&p, &config, |d| plain.push(format!("{d:?}"))).unwrap();
        let mut ck: Vec<String> = Vec::new();
        let (s2, trace) =
            try_run_trace_checkpointed(&p, &config, 128, |d| ck.push(format!("{d:?}"))).unwrap();
        assert_eq!(plain, ck);
        assert_eq!(format!("{s1:?}"), format!("{s2:?}"));
        assert_eq!(trace.emitted(), plain.len() as u64);
        // One checkpoint per opened 128-instruction interval.
        assert_eq!(trace.num_checkpoints() as u64, trace.emitted().div_ceil(128));
    }

    #[test]
    fn checkpoints_align_to_cadence() {
        let p = chase();
        let (_, trace) =
            try_run_trace_checkpointed(&p, &TraceConfig::default(), 100, |_| {}).unwrap();
        for i in 0..trace.num_checkpoints() {
            assert_eq!(trace.checkpoint(i).emitted, i as u64 * 100);
            assert_eq!(trace.interval_start(i), i as u64 * 100);
            assert!(trace.interval_end(i) <= trace.emitted());
        }
        assert_eq!(trace.interval_of(0), 0);
        assert_eq!(trace.interval_of(99), 0);
        assert_eq!(trace.interval_of(100), 1);
    }

    #[test]
    fn zero_cadence_is_clamped() {
        let p = chase();
        let (_, trace) =
            try_run_trace_checkpointed(&p, &TraceConfig::default(), 0, |_| {}).unwrap();
        assert_eq!(trace.checkpoint_every(), 1);
    }

    #[test]
    fn snapshots_record_only_dirtied_pages() {
        let p = chase();
        let (_, trace) =
            try_run_trace_checkpointed(&p, &TraceConfig::default(), 512, |_| {}).unwrap();
        // The store walks 512 * 64 B = 32 KB = 8 pages total; no snapshot
        // holds anywhere near the whole image.
        for i in 0..trace.num_checkpoints() {
            assert!(trace.checkpoint(i).page_bytes_held() <= 16 * MEM_PAGE_SIZE);
        }
    }
}
