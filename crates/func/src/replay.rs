//! Deterministic re-execution from a [`Checkpoint`](crate::CheckpointTrace).
//!
//! A [`Replayer`] owns a program, its trace configuration, the
//! [`CheckpointTrace`] recorded by
//! [`try_run_trace_checkpointed`](crate::try_run_trace_checkpointed), and
//! the program's *initial* memory image (data segments only). To replay
//! from checkpoint `i` it seeds the shared trace loop with clones of the
//! snapshot's CPU, hierarchy, and statistics, and runs against a
//! copy-on-write [`ReplayMemory`] whose reads resolve, newest first,
//! through: pages written during this replay, then the dirty-page records
//! of checkpoints `i, i-1, …, 0`, then the initial image. Because the
//! interpreter, the cache model, and the loop driving them are the very
//! same code the recording run executed, the replay emits byte-identical
//! [`DynInst`]s — determinism is by construction, not by a parallel
//! implementation kept in sync.

use crate::checkpoint::CheckpointTrace;
use crate::tracer::{run_trace_loop, TraceState};
use crate::{DynInst, ExecError, RunStats, TraceConfig};
use preexec_isa::Program;
use preexec_mem::{MemBus, Memory, MEM_PAGE_SHIFT, MEM_PAGE_SIZE};
use std::collections::HashMap;

const PAGE_MASK: u64 = (MEM_PAGE_SIZE - 1) as u64;

/// Copy-on-write memory view for a replay starting at checkpoint
/// `ckpt_idx`: reads fall through overlay → checkpoint dirty-page records
/// (newest not after `ckpt_idx` wins) → initial data-segment image; writes
/// go to an overlay page seeded from that same resolution.
struct ReplayMemory<'a> {
    trace: &'a CheckpointTrace,
    initial: &'a Memory,
    ckpt_idx: usize,
    overlay: HashMap<u64, Box<[u8; MEM_PAGE_SIZE]>>,
}

impl<'a> ReplayMemory<'a> {
    fn new(trace: &'a CheckpointTrace, initial: &'a Memory, ckpt_idx: usize) -> ReplayMemory<'a> {
        ReplayMemory { trace, initial, ckpt_idx, overlay: HashMap::new() }
    }

    /// The page content as of checkpoint `ckpt_idx`, ignoring the overlay.
    /// Checkpoint `j` records a page only if it was dirtied in interval
    /// `j-1..j`, so the newest record at or before `ckpt_idx` is the
    /// content at the snapshot instant.
    fn base_page(&self, page: u64) -> Option<&'a [u8; MEM_PAGE_SIZE]> {
        for j in (0..=self.ckpt_idx).rev() {
            if let Some(bytes) = self.trace.checkpoint(j).page(page) {
                return Some(bytes);
            }
        }
        self.initial.page_bytes(page)
    }

    #[inline]
    fn byte(&self, addr: u64) -> u8 {
        let page = addr >> MEM_PAGE_SHIFT;
        let off = (addr & PAGE_MASK) as usize;
        if let Some(p) = self.overlay.get(&page) {
            return p[off];
        }
        self.base_page(page).map_or(0, |p| p[off])
    }

    fn overlay_page(&mut self, addr: u64) -> &mut [u8; MEM_PAGE_SIZE] {
        let page = addr >> MEM_PAGE_SHIFT;
        if !self.overlay.contains_key(&page) {
            let seeded = match self.base_page(page) {
                Some(bytes) => Box::new(*bytes),
                None => Box::new([0u8; MEM_PAGE_SIZE]),
            };
            self.overlay.insert(page, seeded);
        }
        self.overlay.get_mut(&page).expect("overlay page just inserted")
    }

    fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.byte(addr.wrapping_add(i as u64));
        }
        out
    }

    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            let a = addr.wrapping_add(i as u64);
            self.overlay_page(a)[(a & PAGE_MASK) as usize] = b;
        }
    }
}

impl MemBus for ReplayMemory<'_> {
    #[inline]
    fn read_u8(&self, addr: u64) -> u8 {
        self.byte(addr)
    }
    #[inline]
    fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes::<4>(addr))
    }
    #[inline]
    fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes::<8>(addr))
    }
    #[inline]
    fn write_u8(&mut self, addr: u64, value: u8) {
        self.write_bytes(addr, &[value]);
    }
    #[inline]
    fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }
    #[inline]
    fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }
}

/// Deterministic re-executor over a recorded [`CheckpointTrace`].
///
/// # Example
///
/// ```
/// use preexec_func::{try_run_trace_checkpointed, Replayer, TraceConfig};
/// use preexec_isa::assemble;
///
/// let p = assemble(
///     "t",
///     "li r1, 0x1000\nli r2, 9\nsd r2, 0(r1)\nld r3, 0(r1)\nadd r4, r3, r3\nhalt",
/// )
/// .unwrap();
/// let config = TraceConfig::default();
/// let (stats, trace) = try_run_trace_checkpointed(&p, &config, 2, |_| {}).unwrap();
/// let replayer = Replayer::new(&p, &config, &trace);
/// // Replaying from any checkpoint reconstructs the identical suffix.
/// let replayed = replayer.try_replay(1, |_| true).unwrap();
/// assert_eq!(format!("{stats:?}"), format!("{replayed:?}"));
/// ```
pub struct Replayer<'a> {
    program: &'a Program,
    config: &'a TraceConfig,
    trace: &'a CheckpointTrace,
    /// The pre-run memory image (data segments), built once.
    initial: Memory,
}

impl<'a> Replayer<'a> {
    /// Builds a replayer for `trace`, reconstructing the initial
    /// data-segment image from `program`. `program` and `config` must be
    /// the ones the recording run used — the trace stores neither.
    pub fn new(program: &'a Program, config: &'a TraceConfig, trace: &'a CheckpointTrace) -> Replayer<'a> {
        let mut initial = Memory::new();
        for seg in program.data_segments() {
            initial.write_slice(seg.base, &seg.bytes);
        }
        Replayer { program, config, trace, initial }
    }

    /// The trace being replayed.
    pub fn trace(&self) -> &'a CheckpointTrace {
        self.trace
    }

    /// Re-executes from checkpoint `from_ckpt`, feeding every re-emitted
    /// [`DynInst`] (starting at `seq == from_ckpt * checkpoint_every`) to
    /// `sink` until the run ends or `sink` returns `false`. Returns the
    /// accumulated [`RunStats`] — identical to the recording run's if
    /// replayed to completion.
    ///
    /// # Panics
    ///
    /// Panics if `from_ckpt` is out of range.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Malformed`] only if the recording run did —
    /// replay executes the same instruction stream.
    pub fn try_replay(
        &self,
        from_ckpt: usize,
        mut sink: impl FnMut(&DynInst) -> bool,
    ) -> Result<RunStats, ExecError> {
        let ckpt = self.trace.checkpoint(from_ckpt);
        let mut state = TraceState {
            cpu: ckpt.cpu.clone(),
            mem: ReplayMemory::new(self.trace, &self.initial, from_ckpt),
            hierarchy: ckpt.hierarchy.clone(),
            stats: ckpt.stats.clone(),
            emitted: ckpt.emitted,
        };
        run_trace_loop(self.program, self.config, &mut state, |_| {}, |d| sink(d))?;
        Ok(state.stats)
    }

    /// Instructions replayed by a full [`try_replay`](Self::try_replay)
    /// from `from_ckpt` (used by callers to pick the cheapest checkpoint).
    pub fn tail_len(&self, from_ckpt: usize) -> u64 {
        self.trace.emitted() - self.trace.checkpoint(from_ckpt).emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{try_run_trace, try_run_trace_checkpointed, Sampling};
    use preexec_isa::assemble;

    /// A store-then-reload loop whose values depend on earlier stores, so
    /// any memory-reconstruction bug changes the emitted `result`s.
    fn feedback_loop() -> Program {
        assemble(
            "t",
            "li r1, 0x100000\n li r2, 0\n li r3, 300\n li r5, 1\n\
             top: bge r2, r3, done\n\
             ld r4, 0(r1)\n add r5, r5, r4\n sd r5, 8(r1)\n\
             addi r1, r1, 8\n addi r2, r2, 1\n j top\n\
             done: halt",
        )
        .unwrap()
    }

    fn record(
        config: &TraceConfig,
        every: u64,
    ) -> (Vec<String>, RunStats, CheckpointTrace) {
        let p = feedback_loop();
        let mut emitted = Vec::new();
        let (stats, trace) =
            try_run_trace_checkpointed(&p, config, every, |d| emitted.push(format!("{d:?}")))
                .unwrap();
        (emitted, stats, trace)
    }

    #[test]
    fn full_replay_from_every_checkpoint_matches() {
        let p = feedback_loop();
        let config = TraceConfig::default();
        let (emitted, stats, trace) = record(&config, 64);
        let replayer = Replayer::new(&p, &config, &trace);
        for i in 0..trace.num_checkpoints() {
            let start = trace.checkpoint(i).emitted as usize;
            let mut tail = Vec::new();
            let rstats = replayer.try_replay(i, |d| {
                tail.push(format!("{d:?}"));
                true
            })
            .unwrap();
            assert_eq!(tail, emitted[start..], "from checkpoint {i}");
            assert_eq!(format!("{rstats:?}"), format!("{stats:?}"), "from checkpoint {i}");
        }
    }

    #[test]
    fn early_stop_replays_exact_interval() {
        let p = feedback_loop();
        let config = TraceConfig::default();
        let (emitted, _, trace) = record(&config, 64);
        let replayer = Replayer::new(&p, &config, &trace);
        let i = 3;
        let (start, end) = (trace.interval_start(i), trace.interval_end(i));
        let mut got = Vec::new();
        replayer
            .try_replay(i, |d| {
                got.push(format!("{d:?}"));
                d.seq + 1 < end
            })
            .unwrap();
        assert_eq!(got, emitted[start as usize..end as usize]);
    }

    #[test]
    fn replay_under_sampling_schedule_matches() {
        // Off/warm phases exercise the total_steps-based phase clock: the
        // snapshot restores total_steps, so the schedule re-aligns.
        let config = TraceConfig {
            sampling: Sampling::new(57, 23, 41),
            ..TraceConfig::default()
        };
        let p = feedback_loop();
        let (emitted, stats, trace) = record(&config, 32);
        let replayer = Replayer::new(&p, &config, &trace);
        for i in [0, trace.num_checkpoints() / 2, trace.num_checkpoints() - 1] {
            let start = trace.checkpoint(i).emitted as usize;
            let mut tail = Vec::new();
            let rstats = replayer
                .try_replay(i, |d| {
                    tail.push(format!("{d:?}"));
                    true
                })
                .unwrap();
            assert_eq!(tail, emitted[start..], "from checkpoint {i}");
            assert_eq!(format!("{rstats:?}"), format!("{stats:?}"));
        }
    }

    #[test]
    fn checkpointed_stream_matches_plain_trace_under_sampling() {
        let config = TraceConfig {
            sampling: Sampling::new(13, 7, 29),
            ..TraceConfig::default()
        };
        let p = feedback_loop();
        let mut plain = Vec::new();
        try_run_trace(&p, &config, |d| plain.push(format!("{d:?}"))).unwrap();
        let (emitted, _, _) = record(&config, 32);
        assert_eq!(emitted, plain);
    }
}
