//! Functional simulation and tracing.
//!
//! This crate is the "functional cache simulator" of the paper's §4.1: it
//! executes PERI programs architecturally, classifies every data access
//! against a two-level cache hierarchy, and streams [`DynInst`] records —
//! the dynamic instruction trace — to a sink (normally the backward slicer).
//!
//! It also implements the paper's cyclic *off / warm-up / on* sampling and
//! collects the per-program statistics reported in Table 1.
//!
//! # Example
//!
//! ```
//! use preexec_func::{run_trace, TraceConfig};
//! use preexec_isa::assemble;
//!
//! let p = assemble("t", "li r1, 4\nli r2, 0\ntop: addi r2, r2, 1\nblt r2, r1, top\nhalt").unwrap();
//! let mut count = 0;
//! let stats = run_trace(&p, &TraceConfig::default(), |_d| count += 1);
//! assert_eq!(stats.insts, count);
//! assert_eq!(stats.insts, 2 + 4 * 2 + 1); // setup + 4 iterations of 2 + halt
//! ```

pub mod checkpoint;
pub mod cpu;
pub mod dyninst;
pub mod error;
pub mod exec;
pub mod phase;
pub mod pthread;
pub mod replay;
pub mod sampling;
pub mod stats;
pub mod stream;
pub mod tracer;

pub use checkpoint::{try_run_trace_checkpointed, Checkpoint, CheckpointTrace};
pub use cpu::{Cpu, StepOutcome};
pub use dyninst::DynInst;
pub use error::ExecError;
pub use phase::{ChunkSummary, PhaseConfig, PhaseDetector};
pub use pthread::{run_pthread, PThreadOutcome, PThreadRun, SquashReason, PTHREAD_ADDR_LIMIT};
pub use replay::Replayer;
pub use sampling::{Phase, Sampling};
pub use stats::{LoadSiteStats, RunStats};
pub use stream::{try_run_trace_chunked, StreamConfig, StreamStats};
pub use tracer::{run_trace, try_run_trace, TraceConfig};
