//! Per-run statistics, the raw material of the paper's Table 1.

use preexec_isa::Pc;
use preexec_mem::MemLevel;
use std::collections::BTreeMap;

/// Per-static-load statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadSiteStats {
    /// Dynamic executions of this static load (in "on" phases).
    pub execs: u64,
    /// How many of those missed the L1.
    pub l1_misses: u64,
    /// How many missed the L2 — the events p-threads target.
    pub l2_misses: u64,
}

/// Statistics accumulated over the measured ("on") portion of a trace.
///
/// These correspond to the columns of the paper's Table 1: instruction
/// count, loads, L2 misses — plus the extra detail (per-site miss counts,
/// branch statistics) that the selection pipeline and experiments use.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Dynamic instructions measured (emitted to the sink).
    pub insts: u64,
    /// Total architectural steps, including off/warm-up phases.
    pub total_steps: u64,
    /// Loads measured.
    pub loads: u64,
    /// Stores measured.
    pub stores: u64,
    /// Conditional branches measured.
    pub branches: u64,
    /// Taken conditional branches measured.
    pub taken_branches: u64,
    /// Measured accesses that missed the L1 data cache.
    pub l1d_misses: u64,
    /// Measured loads that missed the L2.
    pub l2_misses: u64,
    /// Per-static-load breakdown.
    pub load_sites: BTreeMap<Pc, LoadSiteStats>,
    /// Whether the run was cut off by the step watchdog (`max_steps`)
    /// rather than halting on its own. A timed-out trace is still usable —
    /// everything counted up to the cutoff is valid — but downstream
    /// consumers can surface the truncation.
    pub timed_out: bool,
}

impl RunStats {
    /// Creates zeroed statistics.
    pub fn new() -> RunStats {
        RunStats::default()
    }

    /// Records a measured load at `pc` serviced by `level`.
    pub fn record_load(&mut self, pc: Pc, level: MemLevel) {
        self.loads += 1;
        let site = self.load_sites.entry(pc).or_default();
        site.execs += 1;
        if level != MemLevel::L1 {
            self.l1d_misses += 1;
            site.l1_misses += 1;
        }
        if level.is_l2_miss() {
            self.l2_misses += 1;
            site.l2_misses += 1;
        }
    }

    /// Records a measured store serviced by `level`.
    pub fn record_store(&mut self, level: MemLevel) {
        self.stores += 1;
        if level != MemLevel::L1 {
            self.l1d_misses += 1;
        }
    }

    /// L2 misses per thousand measured instructions.
    pub fn l2_mpki(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.l2_misses as f64 * 1000.0 / self.insts as f64
        }
    }

    /// The static loads responsible for L2 misses, heaviest first.
    pub fn problem_loads(&self) -> Vec<(Pc, LoadSiteStats)> {
        let mut v: Vec<(Pc, LoadSiteStats)> = self
            .load_sites
            .iter()
            .filter(|(_, s)| s.l2_misses > 0)
            .map(|(&pc, &s)| (pc, s))
            .collect();
        v.sort_by(|a, b| b.1.l2_misses.cmp(&a.1.l2_misses).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_recording() {
        let mut s = RunStats::new();
        s.record_load(5, MemLevel::L1);
        s.record_load(5, MemLevel::Memory);
        s.record_load(7, MemLevel::L2);
        assert_eq!(s.loads, 3);
        assert_eq!(s.l1d_misses, 2);
        assert_eq!(s.l2_misses, 1);
        assert_eq!(s.load_sites[&5].execs, 2);
        assert_eq!(s.load_sites[&5].l2_misses, 1);
        assert_eq!(s.load_sites[&7].l1_misses, 1);
    }

    #[test]
    fn problem_loads_sorted_by_misses() {
        let mut s = RunStats::new();
        for _ in 0..3 {
            s.record_load(9, MemLevel::Memory);
        }
        s.record_load(4, MemLevel::Memory);
        s.record_load(2, MemLevel::L1); // not a problem load
        let pl = s.problem_loads();
        assert_eq!(pl.len(), 2);
        assert_eq!(pl[0].0, 9);
        assert_eq!(pl[1].0, 4);
    }

    #[test]
    fn mpki() {
        let mut s = RunStats::new();
        s.insts = 2000;
        s.l2_misses = 3;
        assert!((s.l2_mpki() - 1.5).abs() < 1e-12);
        let empty = RunStats::new();
        assert_eq!(empty.l2_mpki(), 0.0);
    }
}
