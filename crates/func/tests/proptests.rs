//! Property tests: the CPU interpreter agrees with the pure operation
//! semantics, and sampling schedules partition the instruction stream.

use preexec_func::exec;
use preexec_func::{Cpu, Phase, Sampling};
use preexec_isa::{Inst, Op, Program, Reg};
use preexec_mem::Memory;
use proptest::prelude::*;

fn alu_op() -> impl Strategy<Value = Op> {
    prop::sample::select(vec![
        Op::Add,
        Op::Sub,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Nor,
        Op::Slt,
        Op::Sltu,
        Op::Mul,
    ])
}

proptest! {
    /// Stepping an r-type instruction through the CPU produces exactly
    /// `exec::alu` of the source values.
    #[test]
    fn cpu_matches_alu_semantics(op in alu_op(), a in any::<i64>(), b in any::<i64>()) {
        let mut p = Program::new("t");
        p.push(Inst::li(Reg::new(1), a));
        p.push(Inst::li(Reg::new(2), b));
        p.push(Inst::rtype(op, Reg::new(3), Reg::new(1), Reg::new(2)));
        p.push(Inst::halt());
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        while !cpu.halted() {
            cpu.step(&p, &mut mem);
        }
        prop_assert_eq!(cpu.reg(Reg::new(3)), exec::alu(op, a, b, 0));
    }

    /// Memory round trip through the CPU at every width.
    #[test]
    fn cpu_memory_round_trip(addr in 0u64..1_000_000, value in any::<i64>()) {
        let mut p = Program::new("t");
        p.push(Inst::li(Reg::new(1), addr as i64));
        p.push(Inst::li(Reg::new(2), value));
        p.push(Inst::store(Op::Sd, Reg::new(2), Reg::new(1), 0));
        p.push(Inst::load(Op::Ld, Reg::new(3), Reg::new(1), 0));
        p.push(Inst::halt());
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        while !cpu.halted() {
            cpu.step(&p, &mut mem);
        }
        prop_assert_eq!(cpu.reg(Reg::new(3)), value);
    }

    /// Branch semantics: the CPU takes a branch exactly when
    /// `exec::branch_taken` says so.
    #[test]
    fn cpu_matches_branch_semantics(
        op in prop::sample::select(vec![Op::Beq, Op::Bne, Op::Blt, Op::Bge, Op::Ble, Op::Bgt]),
        a in -100i64..100,
        b in -100i64..100,
    ) {
        let mut p = Program::new("t");
        p.push(Inst::li(Reg::new(1), a));
        p.push(Inst::li(Reg::new(2), b));
        p.push(Inst::branch(op, Reg::new(1), Reg::new(2), 4));
        p.push(Inst::li(Reg::new(3), 1)); // fallthrough marker
        p.push(Inst::halt());
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        while !cpu.halted() {
            cpu.step(&p, &mut mem);
        }
        let fell_through = cpu.reg(Reg::new(3)) == 1;
        prop_assert_eq!(!fell_through, exec::branch_taken(op, a, b));
    }

    /// Over any window, phase counts match the schedule's arithmetic.
    #[test]
    fn sampling_partitions(off in 0u64..50, warm in 0u64..50, on in 1u64..50) {
        let s = Sampling::new(off, warm, on);
        let period = s.period();
        let mut counts = [0u64; 3];
        for n in 0..period * 3 {
            match s.phase(n) {
                Phase::Off => counts[0] += 1,
                Phase::Warm => counts[1] += 1,
                Phase::On => counts[2] += 1,
            }
        }
        prop_assert_eq!(counts[0], off * 3);
        prop_assert_eq!(counts[1], warm * 3);
        prop_assert_eq!(counts[2], on * 3);
    }
}
