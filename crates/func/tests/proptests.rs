//! Property tests: the CPU interpreter agrees with the pure operation
//! semantics, sampling schedules partition the instruction stream, and
//! checkpointed re-execution reproduces the recording run exactly.

use preexec_func::exec;
use preexec_func::{try_run_trace_checkpointed, Cpu, Phase, Replayer, Sampling, TraceConfig};
use preexec_isa::{Inst, Op, Program, ProgramBuilder, Reg};
use preexec_mem::Memory;
use proptest::prelude::*;

fn alu_op() -> impl Strategy<Value = Op> {
    prop::sample::select(vec![
        Op::Add,
        Op::Sub,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Nor,
        Op::Slt,
        Op::Sltu,
        Op::Mul,
    ])
}

proptest! {
    /// Stepping an r-type instruction through the CPU produces exactly
    /// `exec::alu` of the source values.
    #[test]
    fn cpu_matches_alu_semantics(op in alu_op(), a in any::<i64>(), b in any::<i64>()) {
        let mut p = Program::new("t");
        p.push(Inst::li(Reg::new(1), a));
        p.push(Inst::li(Reg::new(2), b));
        p.push(Inst::rtype(op, Reg::new(3), Reg::new(1), Reg::new(2)));
        p.push(Inst::halt());
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        while !cpu.halted() {
            cpu.step(&p, &mut mem);
        }
        prop_assert_eq!(cpu.reg(Reg::new(3)), exec::alu(op, a, b, 0));
    }

    /// Memory round trip through the CPU at every width.
    #[test]
    fn cpu_memory_round_trip(addr in 0u64..1_000_000, value in any::<i64>()) {
        let mut p = Program::new("t");
        p.push(Inst::li(Reg::new(1), addr as i64));
        p.push(Inst::li(Reg::new(2), value));
        p.push(Inst::store(Op::Sd, Reg::new(2), Reg::new(1), 0));
        p.push(Inst::load(Op::Ld, Reg::new(3), Reg::new(1), 0));
        p.push(Inst::halt());
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        while !cpu.halted() {
            cpu.step(&p, &mut mem);
        }
        prop_assert_eq!(cpu.reg(Reg::new(3)), value);
    }

    /// Branch semantics: the CPU takes a branch exactly when
    /// `exec::branch_taken` says so.
    #[test]
    fn cpu_matches_branch_semantics(
        op in prop::sample::select(vec![Op::Beq, Op::Bne, Op::Blt, Op::Bge, Op::Ble, Op::Bgt]),
        a in -100i64..100,
        b in -100i64..100,
    ) {
        let mut p = Program::new("t");
        p.push(Inst::li(Reg::new(1), a));
        p.push(Inst::li(Reg::new(2), b));
        p.push(Inst::branch(op, Reg::new(1), Reg::new(2), 4));
        p.push(Inst::li(Reg::new(3), 1)); // fallthrough marker
        p.push(Inst::halt());
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        while !cpu.halted() {
            cpu.step(&p, &mut mem);
        }
        let fell_through = cpu.reg(Reg::new(3)) == 1;
        prop_assert_eq!(!fell_through, exec::branch_taken(op, a, b));
    }

    /// Over any window, phase counts match the schedule's arithmetic.
    #[test]
    fn sampling_partitions(off in 0u64..50, warm in 0u64..50, on in 1u64..50) {
        let s = Sampling::new(off, warm, on);
        let period = s.period();
        let mut counts = [0u64; 3];
        for n in 0..period * 3 {
            match s.phase(n) {
                Phase::Off => counts[0] += 1,
                Phase::Warm => counts[1] += 1,
                Phase::On => counts[2] += 1,
            }
        }
        prop_assert_eq!(counts[0], off * 3);
        prop_assert_eq!(counts[1], warm * 3);
        prop_assert_eq!(counts[2], on * 3);
    }
}

/// A randomized pointer-chase kernel with a store/reload side channel:
/// walks a cyclic permutation over a `2^table_pow`-entry successor table
/// (odd stride ⇒ a single full cycle), spills a running accumulator to a
/// scratch slot and reloads it next iteration (cross-iteration memory
/// dependence through the dirty-page set), with seed-dependent ALU
/// filler. The loop is unbounded — the step budget terminates it.
fn chase_program(seed: u64, table_pow: u32, stride: u64, filler: u8) -> Program {
    let n = 1u64 << table_pow;
    let stride = stride | 1; // odd ⇒ coprime with a power of two
    let table: Vec<u8> = (0..n)
        .flat_map(|i| ((i + stride) % n).to_le_bytes())
        .collect();
    let base = 0x1000_0000u64;
    let scratch = 0x2000_0000u64;

    let (tbase, cur, addr, acc, s, sp) = (
        Reg::new(1),
        Reg::new(2),
        Reg::new(3),
        Reg::new(4),
        Reg::new(5),
        Reg::new(6),
    );
    let mut b = ProgramBuilder::new("chase");
    b.li(tbase, base as i64);
    b.li(cur, (seed % n) as i64);
    b.li(s, (seed | 1) as i64);
    b.li(sp, scratch as i64);
    b.label("top");
    b.sll(addr, cur, 3);
    b.add(addr, addr, tbase);
    b.ld(cur, 0, addr);
    b.sd(acc, 0, sp); // spill …
    for k in 0..(filler % 4) {
        match k {
            0 => b.add(acc, acc, cur),
            1 => b.xor(s, s, acc),
            2 => b.mul(s, s, cur),
            _ => b.srl(acc, s, 7),
        };
    }
    b.ld(acc, 0, sp); // … and reload across the filler
    b.j("top");
    b.data(base, table);
    b.build().expect("chase kernel builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Replaying from *every* checkpoint of a checkpointed trace
    /// reproduces the recording run exactly: the same final [`RunStats`]
    /// (including the per-site load breakdown — Debug equality is field
    /// equality) and the same emitted-instruction tail, over randomized
    /// programs, checkpoint cadences, step budgets, and sampling
    /// schedules.
    #[test]
    fn replay_from_every_checkpoint_reproduces_the_recording_run(
        seed in any::<u64>(),
        table_pow in 8u32..12,          // 2 KB .. 32 KB footprint
        stride in 1u64..512,
        filler in any::<u8>(),
        every in 1u64..1500,
        budget in 500u64..4_000,
        off in 0u64..40,
        warm in 0u64..40,
        on in 1u64..60,
    ) {
        let p = chase_program(seed, table_pow, stride, filler);
        let config = TraceConfig {
            sampling: Sampling::new(off, warm, on),
            max_steps: budget,
            ..TraceConfig::default()
        };
        let mut full: Vec<String> = Vec::new();
        let (stats, trace) =
            try_run_trace_checkpointed(&p, &config, every, |d| full.push(format!("{d:?}")))
                .expect("recording run");
        prop_assert_eq!(full.len() as u64, trace.emitted());
        let stats_key = format!("{stats:?}");
        let replayer = Replayer::new(&p, &config, &trace);
        for i in 0..trace.num_checkpoints() {
            let start = trace.interval_start(i) as usize;
            let mut tail: Vec<String> = Vec::new();
            let rstats = replayer
                .try_replay(i, |d| {
                    tail.push(format!("{d:?}"));
                    true
                })
                .expect("replay runs");
            prop_assert_eq!(
                format!("{rstats:?}"),
                stats_key.clone(),
                "stats diverge replaying from checkpoint {}", i
            );
            prop_assert_eq!(
                &tail[..],
                &full[start..],
                "emitted stream diverges replaying from checkpoint {}", i
            );
        }
    }
}
