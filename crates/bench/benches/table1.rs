//! Regenerates the paper's Table 1 (benchmark characterization) under Criterion timing.

use criterion::{criterion_group, criterion_main, Criterion};
use preexec_bench::BENCH_BUDGET;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("table1", |b| b.iter(|| std::hint::black_box(preexec_experiments::tables::table1(BENCH_BUDGET))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
