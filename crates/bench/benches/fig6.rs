//! Regenerates the paper's Figure 6 (selection granularity) under Criterion timing.

use criterion::{criterion_group, criterion_main, Criterion};
use preexec_bench::BENCH_BUDGET;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("fig6", |b| b.iter(|| std::hint::black_box(preexec_experiments::figures::fig6(BENCH_BUDGET))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
