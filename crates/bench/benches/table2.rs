//! Regenerates the paper's Table 2 (primary results + model validation) under Criterion timing.

use criterion::{criterion_group, criterion_main, Criterion};
use preexec_bench::BENCH_BUDGET;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("table2", |b| b.iter(|| std::hint::black_box(preexec_experiments::tables::table2(BENCH_BUDGET))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
