//! Regenerates the sec. 4.5 processor-width cross-validation under Criterion timing.

use criterion::{criterion_group, criterion_main, Criterion};
use preexec_bench::BENCH_BUDGET;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("width_xval");
    g.sample_size(10);
    g.bench_function("width_xval", |b| b.iter(|| std::hint::black_box(preexec_experiments::figures::width_xval(BENCH_BUDGET / 2))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
