//! Micro-benchmarks of the framework's own primitives: tracing+slicing
//! throughput, slice-tree selection, body optimization, and the timing
//! simulator — the costs a user of the library actually pays.

use criterion::{criterion_group, criterion_main, Criterion};
use preexec_bench::{build, forest_for};
use preexec_core::{optimize_body, select_pthreads, Body, BodyInst, SelectionParams};
use preexec_func::{run_trace, TraceConfig};
use preexec_isa::{Inst, Op, Reg};
use preexec_slice::SliceForestBuilder;
use preexec_timing::{simulate, SimConfig};

fn bench_trace_and_slice(c: &mut Criterion) {
    let p = build("vpr.r");
    c.bench_function("trace_and_slice_40k", |b| {
        b.iter(|| {
            let mut builder = SliceForestBuilder::new(1024, 32);
            let cfg = TraceConfig { max_steps: 40_000, ..TraceConfig::default() };
            run_trace(&p, &cfg, |d| builder.observe(d));
            std::hint::black_box(builder.finish())
        })
    });
}

fn bench_selection(c: &mut Criterion) {
    let p = build("vortex");
    let forest = forest_for(&p, 40_000);
    let params = SelectionParams { ipc: 0.6, ..SelectionParams::default() };
    c.bench_function("select_pthreads", |b| {
        b.iter(|| std::hint::black_box(select_pthreads(&forest, &params)))
    });
}

fn bench_optimizer(c: &mut Criterion) {
    // A 24-instruction induction-unrolled body: the common optimizer input.
    let mut insts = Vec::new();
    for i in 0..22 {
        insts.push(BodyInst {
            inst: Inst::itype(Op::Addi, Reg::new(1), Reg::new(1), 8),
            deps: if i == 0 { vec![] } else { vec![i - 1] },
            mt_dist: i as f64 * 9.0,
        });
    }
    insts.push(BodyInst {
        inst: Inst::load(Op::Ld, Reg::new(2), Reg::new(1), 0),
        deps: vec![21],
        mt_dist: 200.0,
    });
    insts.push(BodyInst {
        inst: Inst::load(Op::Ld, Reg::new(3), Reg::new(2), 0),
        deps: vec![22],
        mt_dist: 201.0,
    });
    let body = Body::new(insts);
    c.bench_function("optimize_24_inst_body", |b| {
        b.iter(|| std::hint::black_box(optimize_body(&body)))
    });
}

fn bench_timing_sim(c: &mut Criterion) {
    let p = build("crafty");
    let cfg = SimConfig { max_insts: 40_000, ..SimConfig::default() };
    let mut g = c.benchmark_group("timing");
    g.sample_size(10);
    g.bench_function("timing_sim_40k_insts", |b| {
        b.iter(|| std::hint::black_box(simulate(&p, &[], &cfg)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_trace_and_slice,
    bench_selection,
    bench_optimizer,
    bench_timing_sim
);
criterion_main!(benches);
