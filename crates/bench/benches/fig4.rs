//! Regenerates the paper's Figure 4 (slicing scope x p-thread length) under Criterion timing.

use criterion::{criterion_group, criterion_main, Criterion};
use preexec_bench::BENCH_BUDGET;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("fig4", |b| b.iter(|| std::hint::black_box(preexec_experiments::figures::fig4(BENCH_BUDGET))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
