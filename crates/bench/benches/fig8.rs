//! Regenerates the paper's Figure 8 (memory-latency cross-validation) under Criterion timing.

use criterion::{criterion_group, criterion_main, Criterion};
use preexec_bench::BENCH_BUDGET;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("fig8", |b| b.iter(|| std::hint::black_box(preexec_experiments::figures::fig8(BENCH_BUDGET / 2))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
