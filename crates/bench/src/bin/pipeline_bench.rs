//! `pipeline-bench` — end-to-end pipeline benchmark with per-stage
//! wall-clock, serial versus N-thread.
//!
//! Runs one workload through trace+slice, base sim, and selection twice
//! — once with `Parallelism::serial()`, once with `--threads N` — and
//! emits `BENCH_pipeline.json` with per-stage timings plus the
//! parallel stages' internal [`ParStats`] counters and an `obs` section
//! (the [`preexec_obs`] registry's per-stage histograms and counters,
//! accumulated across both runs). The two runs are also compared for
//! bit-identity, so every benchmark run doubles as a determinism check
//! (DESIGN.md §11).
//!
//! Usage: `pipeline-bench [--workload NAME] [--budget B] [--threads N]
//!         [--out PATH]`
//!
//! Defaults: `vpr.r`, 60 000 instructions, one thread per core,
//! `BENCH_pipeline.json`. Exit codes: 0 success, 2 usage error, 1
//! pipeline or I/O failure (including a serial/parallel mismatch, which
//! would mean a determinism bug).

use preexec_bench::build;
use preexec_experiments::{
    try_base_sim, try_select_par, try_trace_and_slice_warm_par, ParStats, Parallelism,
    PipelineConfig,
};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    workload: String,
    budget: u64,
    threads: usize,
    out: String,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        workload: "vpr.r".to_string(),
        budget: 60_000,
        threads: std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get),
        out: "BENCH_pipeline.json".to_string(),
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--workload" => args.workload = value("--workload")?,
            "--budget" => {
                let v = value("--budget")?;
                args.budget = v.parse().map_err(|_| format!("bad budget `{v}`"))?;
            }
            "--threads" => {
                let v = value("--threads")?;
                args.threads = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad thread count `{v}`"))?;
            }
            "--out" => args.out = value("--out")?,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(args)
}

/// One timed stage pair: serial and parallel wall-clock microseconds.
struct StagePair {
    serial_us: u128,
    par_us: u128,
    par_stats: ParStats,
}

impl StagePair {
    fn speedup(&self) -> f64 {
        if self.par_us == 0 {
            1.0
        } else {
            self.serial_us as f64 / self.par_us as f64
        }
    }
}

fn par_stats_json(out: &mut String, s: &ParStats) {
    let _ = write!(
        out,
        r#"{{"wall_us":{},"busy_us":{},"threads":{},"items":{},"speedup":{:.3}}}"#,
        s.wall_us,
        s.busy_us,
        s.threads,
        s.items,
        s.speedup()
    );
}

/// Appends the global metrics registry's view of the run: every
/// `stage.*` latency histogram (count, total, p99 bound) plus the
/// pipeline's counters, accumulated across both the serial and the
/// parallel leg.
fn obs_json(out: &mut String) {
    let snap = preexec_obs::global().snapshot();
    out.push_str(r#"{"stages_hist_us":{"#);
    let mut first = true;
    for (name, h) in snap.histograms.iter().filter(|(n, _)| n.starts_with("stage.")) {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            r#""{name}":{{"count":{},"sum_us":{},"p99_us":{}}}"#,
            h.count(),
            h.sum_us(),
            h.quantile_us(0.99),
        );
    }
    out.push_str(r#"},"counters":{"#);
    let mut first = true;
    for (name, v) in &snap.counters {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, r#""{name}":{v}"#);
    }
    out.push_str("}}");
}

fn run(args: &Args) -> Result<(), String> {
    let program = build(&args.workload);
    let cfg = PipelineConfig::paper_default(args.budget);
    let par = Parallelism::new(args.threads);

    // Trace + slice, serial then parallel. The trace itself is inherently
    // serial (it is one dependent instruction stream); the tree
    // construction behind it is the parallel part, and ParStats covers
    // exactly that fan-out.
    let t = Instant::now();
    let (f_serial, stats, _) = try_trace_and_slice_warm_par(
        &program,
        cfg.scope,
        cfg.max_slice_len,
        cfg.budget,
        cfg.warmup,
        Parallelism::serial(),
    )
    .map_err(|e| format!("serial trace: {e}"))?;
    let slice_serial_us = t.elapsed().as_micros();
    let t = Instant::now();
    let (f_par, _, slice_stats) = try_trace_and_slice_warm_par(
        &program,
        cfg.scope,
        cfg.max_slice_len,
        cfg.budget,
        cfg.warmup,
        par,
    )
    .map_err(|e| format!("parallel trace: {e}"))?;
    let slice = StagePair {
        serial_us: slice_serial_us,
        par_us: t.elapsed().as_micros(),
        par_stats: slice_stats,
    };
    if preexec_slice::write_forest(&f_serial) != preexec_slice::write_forest(&f_par) {
        return Err(format!(
            "slice forests differ between --threads 1 and --threads {}",
            args.threads
        ));
    }

    // Base sim: always serial (cycle-accurate state machine); timed so
    // the report shows the full pipeline's stage balance.
    let t = Instant::now();
    let base = try_base_sim(&program, &cfg).map_err(|e| format!("base sim: {e}"))?;
    let base_us = t.elapsed().as_micros();

    // Selection (scoring + per-tree fixed points), serial then parallel.
    let t = Instant::now();
    let (sel_serial, _) = try_select_par(&f_serial, &cfg, base.ipc(), Parallelism::serial())
        .map_err(|e| format!("serial select: {e}"))?;
    let select_serial_us = t.elapsed().as_micros();
    let t = Instant::now();
    let (sel_par, select_stats) = try_select_par(&f_par, &cfg, base.ipc(), par)
        .map_err(|e| format!("parallel select: {e}"))?;
    let select = StagePair {
        serial_us: select_serial_us,
        par_us: t.elapsed().as_micros(),
        par_stats: select_stats,
    };
    if format!("{sel_serial:?}") != format!("{sel_par:?}") {
        return Err(format!(
            "selections differ between --threads 1 and --threads {}",
            args.threads
        ));
    }

    // The acceptance metric: combined wall-clock of the two
    // parallelizable stages, serial over parallel.
    let combined = (slice.serial_us + select.serial_us) as f64
        / (slice.par_us + select.par_us).max(1) as f64;

    let mut json = String::new();
    let _ = write!(
        json,
        r#"{{"workload":"{}","budget":{},"threads":{},"trace":{{"insts":{},"l2_misses":{},"trees":{}}},"stages_us":{{"trace_slice_serial":{},"trace_slice_par":{},"base_sim":{},"select_serial":{},"select_par":{}}},"slice_stage":"#,
        args.workload,
        args.budget,
        args.threads,
        stats.insts,
        stats.l2_misses,
        f_serial.num_trees(),
        slice.serial_us,
        slice.par_us,
        base_us,
        select.serial_us,
        select.par_us,
    );
    par_stats_json(&mut json, &slice.par_stats);
    json.push_str(r#","select_stage":"#);
    par_stats_json(&mut json, &select.par_stats);
    let _ = write!(
        json,
        r#","speedup":{{"trace_slice":{:.3},"select":{:.3},"slice_score_combined":{:.3}}},"pthreads":{},"obs":"#,
        slice.speedup(),
        select.speedup(),
        combined,
        sel_serial.pthreads.len(),
    );
    obs_json(&mut json);
    json.push('}');
    json.push('\n');
    std::fs::write(&args.out, &json).map_err(|e| format!("writing {}: {e}", args.out))?;

    eprintln!(
        "pipeline-bench: {} @ {} insts, {} threads: slice {:.2}x, select {:.2}x, combined {:.2}x -> {}",
        args.workload,
        args.budget,
        args.threads,
        slice.speedup(),
        select.speedup(),
        combined,
        args.out
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("pipeline-bench: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("pipeline-bench: {msg}");
            ExitCode::FAILURE
        }
    }
}
