//! `pipeline-bench` — end-to-end pipeline benchmark with per-stage
//! wall-clock, serial versus N-thread, batch versus streaming.
//!
//! Runs one workload through the [`Pipeline`] builder three ways — batch
//! serial, batch `--threads N`, and streaming — and emits two reports:
//!
//! - `BENCH_pipeline.json`: per-stage timings, the parallel stages'
//!   internal [`ParStats`] counters, and an `obs` section (the
//!   [`preexec_obs`] registry's per-stage histograms, counters, and
//!   gauges accumulated across the runs);
//! - `BENCH_stream.json`: batch versus streaming trace wall clock plus a
//!   peak-memory proxy in instruction records (the full trace length the
//!   batch path conceptually materializes versus the streaming path's
//!   measured `stream.peak_window_insts` high-water mark), the transport
//!   counters, and the same `obs` section;
//! - `BENCH_score.json`: the two-tier scoring comparison — exact
//!   (screening off) versus screened selection over the same forest,
//!   best-of-5 wall clock of the `stage.score`/`stage.screen` spans from
//!   the obs registry, the screen's pruned/survivor counters, and the
//!   screened-vs-exact bit-identity verdict;
//! - `BENCH_reexec.json`: the on-demand re-execution slicing leg —
//!   windowed versus checkpointed trace wall clock, the checkpoint and
//!   re-executed-instruction counts, the peak resident detail
//!   high-water mark, and the ondemand-vs-windowed bit-identity verdict;
//! - `BENCH_adaptive.json`: the phase-adaptive selection leg — the full
//!   adaptive pipeline's wall clock, the per-phase policy choices and
//!   payoffs, the static-vs-adaptive p-thread counts, the serial-vs-N
//!   bit-identity verdict, and the global-forest identity with the
//!   windowed batch leg.
//!
//! Every timed stage leg (trace serial/parallel/streaming/on-demand and
//! the finish stages behind the select timings) is best-of-5 — single
//! shots confound scheduler noise with stage cost.
//!
//! All legs are compared for bit-identity, so every benchmark run
//! doubles as a determinism check (DESIGN.md §11) covering the thread
//! axis, the batch/streaming axis, the slicing-mode axis, and the
//! screening axis (§16).
//!
//! Usage: `pipeline-bench [--workload NAME] [--budget B] [--threads N]
//!         [--out PATH] [--stream-out PATH] [--score-out PATH]
//!         [--reexec-out PATH] [--adaptive-out PATH] [--check]`
//!
//! Defaults: `vpr.r`, 60 000 instructions, one thread per core,
//! `BENCH_pipeline.json`, `BENCH_stream.json`, `BENCH_score.json`,
//! `BENCH_reexec.json`, `BENCH_adaptive.json`. Exit codes: 0 success, 2
//! usage error — or, under `--check`, a screened score stage slower than
//! the exact one (a screening perf regression), an on-demand peak
//! residency at or above the configured scope (the bounded-memory
//! contract), or an adaptive payoff below the static payoff (the
//! chooser's ties-keep-static contract) — and 1 pipeline or I/O failure
//! (including any leg mismatch, which would mean a determinism bug).

use preexec_bench::build;
use preexec_core::{try_select_pthreads_stats, ScreenStats, Selection, SelectionParams};
use preexec_experiments::{
    AdaptiveConfig, ParStats, Parallelism, Pipeline, PipelineConfig, PolicySpec, SlicingMode,
};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// Iterations per timed leg; the minimum is reported (best-of-N damps
/// scheduler noise without averaging in cold-cache outliers).
const BEST_OF: usize = 5;

struct Args {
    workload: String,
    budget: u64,
    threads: usize,
    out: String,
    stream_out: String,
    score_out: String,
    reexec_out: String,
    adaptive_out: String,
    check: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        workload: "vpr.r".to_string(),
        budget: 60_000,
        threads: std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get),
        out: "BENCH_pipeline.json".to_string(),
        stream_out: "BENCH_stream.json".to_string(),
        score_out: "BENCH_score.json".to_string(),
        reexec_out: "BENCH_reexec.json".to_string(),
        adaptive_out: "BENCH_adaptive.json".to_string(),
        check: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--workload" => args.workload = value("--workload")?,
            "--budget" => {
                let v = value("--budget")?;
                args.budget = v.parse().map_err(|_| format!("bad budget `{v}`"))?;
            }
            "--threads" => {
                let v = value("--threads")?;
                args.threads = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad thread count `{v}`"))?;
            }
            "--out" => args.out = value("--out")?,
            "--stream-out" => args.stream_out = value("--stream-out")?,
            "--score-out" => args.score_out = value("--score-out")?,
            "--reexec-out" => args.reexec_out = value("--reexec-out")?,
            "--adaptive-out" => args.adaptive_out = value("--adaptive-out")?,
            "--check" => args.check = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(args)
}

/// One timed stage pair: serial and parallel wall-clock microseconds.
struct StagePair {
    serial_us: u128,
    par_us: u128,
    par_stats: ParStats,
}

impl StagePair {
    fn speedup(&self) -> f64 {
        if self.par_us == 0 {
            1.0
        } else {
            self.serial_us as f64 / self.par_us as f64
        }
    }
}

fn par_stats_json(out: &mut String, s: &ParStats) {
    let _ = write!(
        out,
        r#"{{"wall_us":{},"busy_us":{},"threads":{},"items":{},"speedup":{:.3}}}"#,
        s.wall_us,
        s.busy_us,
        s.threads,
        s.items,
        s.speedup()
    );
}

/// Sum of one obs latency histogram's recorded microseconds (0 when the
/// span never fired). Snapshot deltas around a leg isolate that leg's
/// contribution to the cumulative registry.
fn hist_sum_us(name: &str) -> u64 {
    let snap = preexec_obs::global().snapshot();
    snap.histograms.iter().find(|(n, _)| n == name).map_or(0, |(_, h)| h.sum_us())
}

/// Current value of one obs counter (0 when it never fired).
fn counter_val(name: &str) -> u64 {
    let snap = preexec_obs::global().snapshot();
    snap.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
}

/// Runs `f` [`BEST_OF`] times and returns the fastest iteration's wall
/// clock and result. All timed legs are deterministic, so keeping the
/// fastest run's output loses nothing.
fn best_of_us<T>(mut f: impl FnMut() -> Result<T, String>) -> Result<(u128, T), String> {
    let mut best: Option<(u128, T)> = None;
    for _ in 0..BEST_OF {
        let t = Instant::now();
        let v = f()?;
        let us = t.elapsed().as_micros();
        if best.as_ref().is_none_or(|(b, _)| us < *b) {
            best = Some((us, v));
        }
    }
    best.ok_or_else(|| "timed leg ran no iterations".to_string())
}

/// One timed selection leg for the two-tier scoring comparison: the
/// `stage.score` + `stage.screen` wall clock (obs-snapshot delta,
/// best-of-5), the selection itself for the bit-identity check, and the
/// screen's candidate counters.
struct ScoreLeg {
    total_us: u64,
    score_us: u64,
    screen_us: u64,
    selection: Selection,
    screen: ScreenStats,
}

fn score_leg(
    forest: &preexec_slice::SliceForest,
    params: &SelectionParams,
    screening: bool,
) -> Result<ScoreLeg, String> {
    let mut best: Option<ScoreLeg> = None;
    for _ in 0..BEST_OF {
        let score0 = hist_sum_us("stage.score");
        let screen0 = hist_sum_us("stage.screen");
        let (selection, _, screen) =
            try_select_pthreads_stats(forest, params, Parallelism::serial(), screening)
                .map_err(|e| format!("score leg (screening={screening}): {e}"))?;
        let score_us = hist_sum_us("stage.score") - score0;
        let screen_us = hist_sum_us("stage.screen") - screen0;
        let leg = ScoreLeg {
            total_us: score_us + screen_us,
            score_us,
            screen_us,
            selection,
            screen,
        };
        if best.as_ref().is_none_or(|b| leg.total_us < b.total_us) {
            best = Some(leg);
        }
    }
    best.ok_or_else(|| "score leg ran no iterations".to_string())
}

/// Appends the global metrics registry's view of the run: every
/// `stage.*` latency histogram (count, total, p99 bound) plus the
/// pipeline's counters and gauges, accumulated across all legs so far.
fn obs_json(out: &mut String) {
    let snap = preexec_obs::global().snapshot();
    out.push_str(r#"{"stages_hist_us":{"#);
    let mut first = true;
    for (name, h) in snap.histograms.iter().filter(|(n, _)| n.starts_with("stage.")) {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            r#""{name}":{{"count":{},"sum_us":{},"p99_us":{}}}"#,
            h.count(),
            h.sum_us(),
            h.quantile_us(0.99),
        );
    }
    out.push_str(r#"},"counters":{"#);
    let mut first = true;
    for (name, v) in &snap.counters {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, r#""{name}":{v}"#);
    }
    out.push_str(r#"},"gauges":{"#);
    let mut first = true;
    for (name, v) in &snap.gauges {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, r#""{name}":{v}"#);
    }
    out.push_str("}}");
}

fn run(args: &Args) -> Result<u8, String> {
    let program = build(&args.workload);
    let cfg = PipelineConfig::paper_default(args.budget);
    let par = Parallelism::new(args.threads);

    // Trace + slice, serial then parallel, best-of-N each. The trace
    // itself is inherently serial (it is one dependent instruction
    // stream); the tree construction behind it is the parallel part, and
    // ParStats covers exactly that fan-out.
    let (slice_serial_us, arts_serial) = best_of_us(|| {
        Pipeline::new(&program)
            .config(cfg)
            .trace()
            .map_err(|e| format!("serial trace: {e}"))
    })?;
    let (slice_par_us, arts_par) = best_of_us(|| {
        Pipeline::new(&program)
            .config(cfg)
            .parallelism(par)
            .trace()
            .map_err(|e| format!("parallel trace: {e}"))
    })?;
    let slice = StagePair {
        serial_us: slice_serial_us,
        par_us: slice_par_us,
        par_stats: arts_par.par,
    };
    let forest_bytes = preexec_slice::write_forest(&arts_serial.forest);
    if forest_bytes != preexec_slice::write_forest(&arts_par.forest) {
        return Err(format!(
            "slice forests differ between --threads 1 and --threads {}",
            args.threads
        ));
    }

    // The streaming leg: bounded-memory transport, producer/consumer
    // overlap instead of the deferred tree fan-out.
    let stream_spec = PolicySpec { cfg, streaming: true, ..PolicySpec::default() };
    let (stream_us, arts_stream) = best_of_us(|| {
        Pipeline::new(&program)
            .policy(stream_spec)
            .trace()
            .map_err(|e| format!("streaming trace: {e}"))
    })?;
    let sstats = arts_stream
        .stream
        .ok_or("streaming trace reported no transport stats")?;
    if forest_bytes != preexec_slice::write_forest(&arts_stream.forest) {
        return Err("slice forests differ between batch and --stream".to_string());
    }

    // The on-demand re-execution leg: checkpointed trace + interval
    // replay instead of a resident window. The cadence is an eighth of
    // the scope so the replayer's detail cache (4 intervals) stays
    // strictly under one windowed scope — the bounded-memory contract
    // `--check` gates on.
    let checkpoint_every = (cfg.scope as u64 / 8).max(1);
    let ckpt0 = counter_val("checkpoint.count");
    let reexec0 = counter_val("reexec.insts");
    let reexec_spec = PolicySpec {
        cfg,
        slicing: SlicingMode::OnDemand { checkpoint_every },
        ..PolicySpec::default()
    };
    let (reexec_us, arts_reexec) = best_of_us(|| {
        Pipeline::new(&program)
            .policy(reexec_spec)
            .trace()
            .map_err(|e| format!("on-demand trace: {e}"))
    })?;
    // The leg runs BEST_OF identical iterations; per-run counts are the
    // accumulated deltas split evenly.
    let checkpoints = (counter_val("checkpoint.count") - ckpt0) / BEST_OF as u64;
    let reexec_insts = (counter_val("reexec.insts") - reexec0) / BEST_OF as u64;
    let peak_resident = {
        let snap = preexec_obs::global().snapshot();
        snap.gauges
            .iter()
            .find(|(n, _)| n == "reexec.peak_resident_insts")
            .map_or(0, |(_, v)| *v)
    };
    if forest_bytes != preexec_slice::write_forest(&arts_reexec.forest) {
        return Err("slice forests differ between windowed and ondemand slicing".to_string());
    }

    // Finish from the traced artifacts, serial then parallel: base sim,
    // selection, assisted sim, each timed by the builder, best-of-N per
    // stage.
    let stats = arts_serial.stats;
    let serial_forest = arts_serial.forest;
    let (mut base_us, mut select_serial_us) = (u64::MAX, u64::MAX);
    let mut out_serial = None;
    for _ in 0..BEST_OF {
        let o = Pipeline::new(&program)
            .config(cfg)
            .artifacts(serial_forest.clone(), stats.clone())
            .run()
            .map_err(|e| format!("serial finish: {e}"))?;
        base_us = base_us.min(o.stage_us.base_sim);
        select_serial_us = select_serial_us.min(o.stage_us.select);
        out_serial = Some(o);
    }
    let out_serial = out_serial.ok_or("serial finish ran no iterations")?;
    let mut select_par_us = u64::MAX;
    let mut out_par = None;
    for _ in 0..BEST_OF {
        let o = Pipeline::new(&program)
            .config(cfg)
            .parallelism(par)
            .artifacts(arts_par.forest.clone(), arts_par.stats.clone())
            .run()
            .map_err(|e| format!("parallel finish: {e}"))?;
        select_par_us = select_par_us.min(o.stage_us.select);
        out_par = Some(o);
    }
    let out_par = out_par.ok_or("parallel finish ran no iterations")?;
    let base_us = u128::from(base_us);
    let select = StagePair {
        serial_us: u128::from(select_serial_us),
        par_us: u128::from(select_par_us),
        par_stats: out_par.par.select,
    };
    if format!("{:?}", out_serial.result) != format!("{:?}", out_par.result) {
        return Err(format!(
            "results differ between --threads 1 and --threads {}",
            args.threads
        ));
    }

    // The acceptance metric: combined wall-clock of the two
    // parallelizable stages, serial over parallel.
    let combined = (slice.serial_us + select.serial_us) as f64
        / (slice.par_us + select.par_us).max(1) as f64;

    let mut json = String::new();
    let _ = write!(
        json,
        r#"{{"workload":"{}","budget":{},"threads":{},"trace":{{"insts":{},"l2_misses":{},"trees":{}}},"stages_us":{{"trace_slice_serial":{},"trace_slice_par":{},"base_sim":{},"select_serial":{},"select_par":{}}},"slice_stage":"#,
        args.workload,
        args.budget,
        args.threads,
        stats.insts,
        stats.l2_misses,
        out_serial.forest.num_trees(),
        slice.serial_us,
        slice.par_us,
        base_us,
        select.serial_us,
        select.par_us,
    );
    par_stats_json(&mut json, &slice.par_stats);
    json.push_str(r#","select_stage":"#);
    par_stats_json(&mut json, &select.par_stats);
    let _ = write!(
        json,
        r#","speedup":{{"trace_slice":{:.3},"select":{:.3},"slice_score_combined":{:.3}}},"pthreads":{},"obs":"#,
        slice.speedup(),
        select.speedup(),
        combined,
        out_serial.result.selection.pthreads.len(),
    );
    obs_json(&mut json);
    json.push('}');
    json.push('\n');
    std::fs::write(&args.out, &json).map_err(|e| format!("writing {}: {e}", args.out))?;

    // The streaming report: batch vs streaming wall clock and the
    // peak-memory proxy. `batch.peak_insts_proxy` is the number of trace
    // records a fully-materialized run holds (every architectural step
    // emits at most one); `stream.peak_insts_proxy` is the measured
    // window + in-flight-chunk high-water mark.
    let stream_speedup = if stream_us == 0 {
        1.0
    } else {
        slice.serial_us as f64 / stream_us as f64
    };
    let mut sjson = String::new();
    let _ = write!(
        sjson,
        r#"{{"workload":"{}","budget":{},"batch":{{"wall_us":{},"peak_insts_proxy":{}}},"stream":{{"wall_us":{},"peak_insts_proxy":{},"chunks":{},"backpressure_stalls_us":{},"consumer_stalls_us":{}}},"speedup":{:.3},"identical":true,"obs":"#,
        args.workload,
        args.budget,
        slice.serial_us,
        stats.total_steps,
        stream_us,
        sstats.peak_window_insts,
        sstats.chunks,
        sstats.backpressure_stalls_us,
        sstats.consumer_stalls_us,
        stream_speedup,
    );
    obs_json(&mut sjson);
    sjson.push('}');
    sjson.push('\n');
    std::fs::write(&args.stream_out, &sjson)
        .map_err(|e| format!("writing {}: {e}", args.stream_out))?;

    // The two-tier scoring leg: exact (screening off) versus screened
    // selection over the same forest, under the parameters the pipeline
    // itself derived (measured base IPC, clamped the way `select_stage`
    // clamps it). Serial on both sides so the comparison is pure
    // scoring work, not thread scheduling.
    let params = SelectionParams {
        ipc: out_serial.result.base.ipc().clamp(0.05, SelectionParams::default().bw_seq),
        ..SelectionParams::default()
    };
    let exact = score_leg(&out_serial.forest, &params, false)?;
    let screened = score_leg(&out_serial.forest, &params, true)?;
    // Exactness is a hard contract, not a perf preference: a divergence
    // is a correctness bug and fails the run outright (exit 1).
    if format!("{:?}", exact.selection) != format!("{:?}", screened.selection) {
        return Err("screened selection differs from exact selection".to_string());
    }
    let score_speedup = if screened.total_us == 0 {
        1.0
    } else {
        exact.total_us as f64 / screened.total_us as f64
    };
    let mut cjson = String::new();
    let _ = write!(
        cjson,
        r#"{{"workload":"{}","budget":{},"screen":{{"pruned":{},"survivors":{},"candidates":{}}},"score_us":{{"exact":{},"screened":{},"screened_score":{},"screened_screen":{}}},"speedup":{:.3},"identical":true,"obs":"#,
        args.workload,
        args.budget,
        screened.screen.pruned,
        screened.screen.survivors,
        screened.screen.candidates(),
        exact.score_us,
        screened.total_us,
        screened.score_us,
        screened.screen_us,
        score_speedup,
    );
    obs_json(&mut cjson);
    cjson.push('}');
    cjson.push('\n');
    std::fs::write(&args.score_out, &cjson)
        .map_err(|e| format!("writing {}: {e}", args.score_out))?;

    // The re-execution report: windowed versus on-demand trace wall
    // clock, checkpoint/replay volume, and the peak resident detail
    // high-water mark the bounded-memory contract is about.
    let reexec_speedup = if reexec_us == 0 {
        1.0
    } else {
        slice.serial_us as f64 / reexec_us as f64
    };
    let mut rjson = String::new();
    let _ = write!(
        rjson,
        r#"{{"workload":"{}","budget":{},"scope":{},"checkpoint_every":{},"windowed":{{"wall_us":{},"peak_insts_proxy":{}}},"ondemand":{{"wall_us":{},"checkpoints":{},"reexec_insts":{},"peak_resident_insts":{}}},"speedup":{:.3},"identical":true,"obs":"#,
        args.workload,
        args.budget,
        cfg.scope,
        checkpoint_every,
        slice.serial_us,
        cfg.scope,
        reexec_us,
        checkpoints,
        reexec_insts,
        peak_resident,
        reexec_speedup,
    );
    obs_json(&mut rjson);
    rjson.push('}');
    rjson.push('\n');
    std::fs::write(&args.reexec_out, &rjson)
        .map_err(|e| format!("writing {}: {e}", args.reexec_out))?;

    // The adaptive leg: phase detection on the streamed trace, per-phase
    // forests, the policy chooser, and the deduplicated union — the full
    // `run()`, timed best-of-N serially, then once in parallel for the
    // thread-determinism contract (result AND per-phase report must be
    // bit-identical at any thread count).
    let adaptive_spec = PolicySpec {
        cfg,
        adaptive: AdaptiveConfig { enabled: true, ..AdaptiveConfig::default() },
        ..PolicySpec::default()
    };
    let (adaptive_us, out_adaptive) = best_of_us(|| {
        Pipeline::new(&program)
            .policy(adaptive_spec)
            .run()
            .map_err(|e| format!("adaptive run: {e}"))
    })?;
    let out_adaptive_par = Pipeline::new(&program)
        .policy(adaptive_spec)
        .parallelism(par)
        .run()
        .map_err(|e| format!("parallel adaptive run: {e}"))?;
    if format!("{:?}", out_adaptive.result) != format!("{:?}", out_adaptive_par.result)
        || format!("{:?}", out_adaptive.adaptive) != format!("{:?}", out_adaptive_par.adaptive)
    {
        return Err(format!(
            "adaptive results differ between --threads 1 and --threads {}",
            args.threads
        ));
    }
    if forest_bytes != preexec_slice::write_forest(&out_adaptive.forest) {
        return Err("adaptive global forest differs from the windowed batch forest".to_string());
    }
    let rep = out_adaptive
        .adaptive
        .as_ref()
        .ok_or("adaptive run reported no adaptive report")?;
    let mut ajson = String::new();
    let _ = write!(
        ajson,
        r#"{{"workload":"{}","budget":{},"wall_us":{adaptive_us},"phases":["#,
        args.workload, args.budget,
    );
    for (i, p) in rep.phases.iter().enumerate() {
        if i > 0 {
            ajson.push(',');
        }
        let _ = write!(
            ajson,
            r#"{{"index":{},"insts":{},"l2_misses":{},"policy":"{}","policy_index":{},"pthreads":{},"payoff":{:.3},"static_payoff":{:.3}}}"#,
            p.index,
            p.insts,
            p.l2_misses,
            p.policy,
            p.policy_index,
            p.pthreads,
            p.payoff,
            p.static_payoff,
        );
    }
    let _ = write!(
        ajson,
        r#"],"divergent_phases":{},"pthreads":{{"adaptive":{},"static":{}}},"payoff":{{"adaptive":{:.3},"static":{:.3}}},"identical":true,"obs":"#,
        rep.divergent_phases,
        rep.adaptive_pthreads,
        rep.static_pthreads,
        rep.adaptive_payoff,
        rep.static_payoff,
    );
    obs_json(&mut ajson);
    ajson.push('}');
    ajson.push('\n');
    std::fs::write(&args.adaptive_out, &ajson)
        .map_err(|e| format!("writing {}: {e}", args.adaptive_out))?;

    eprintln!(
        "pipeline-bench: {} @ {} insts, {} threads: slice {:.2}x, select {:.2}x, combined {:.2}x -> {}; stream peak {} vs batch {} insts -> {}",
        args.workload,
        args.budget,
        args.threads,
        slice.speedup(),
        select.speedup(),
        combined,
        args.out,
        sstats.peak_window_insts,
        stats.total_steps,
        args.stream_out
    );
    eprintln!(
        "pipeline-bench: score stage: exact {} us vs screened {} us ({} + {} screen, {:.2}x, {} of {} candidates pruned) -> {}",
        exact.score_us,
        screened.total_us,
        screened.score_us,
        screened.screen_us,
        score_speedup,
        screened.screen.pruned,
        screened.screen.candidates(),
        args.score_out
    );
    eprintln!(
        "pipeline-bench: reexec leg: windowed {} us vs ondemand {} us ({:.2}x, {} checkpoints @ {}, {} insts replayed, peak resident {} vs scope {}) -> {}",
        slice.serial_us,
        reexec_us,
        reexec_speedup,
        checkpoints,
        checkpoint_every,
        reexec_insts,
        peak_resident,
        cfg.scope,
        args.reexec_out
    );
    eprintln!(
        "pipeline-bench: adaptive leg: {} phases, {} divergent; {} p-threads (static {}), payoff {:.3} vs {:.3} ({} us) -> {}",
        rep.phases.len(),
        rep.divergent_phases,
        rep.adaptive_pthreads,
        rep.static_pthreads,
        rep.adaptive_payoff,
        rep.static_payoff,
        adaptive_us,
        args.adaptive_out
    );
    // `--check`: the screening perf gate. Screened scoring doing *more*
    // work than exact scoring means the screen's savings no longer cover
    // its own cost — a perf regression worth failing CI over.
    if args.check && screened.total_us > exact.score_us {
        eprintln!(
            "pipeline-bench: --check failed: screened score stage ({} us) slower than exact ({} us)",
            screened.total_us, exact.score_us
        );
        return Ok(2);
    }
    // `--check`: the bounded-memory gate. On-demand slicing must keep
    // strictly less detail resident than one windowed scope, or the
    // whole point of the mode is gone.
    if args.check && peak_resident >= cfg.scope as i64 {
        eprintln!(
            "pipeline-bench: --check failed: ondemand peak resident detail ({peak_resident} insts) not under the scope ({})",
            cfg.scope
        );
        return Ok(2);
    }
    // `--check`: the chooser's ties-keep-static gate. Per-phase payoffs
    // sum monotonically (the chooser keeps the static variant on ties),
    // so the adaptive aggregate can never fall below the static one; if
    // it does, the chooser is broken.
    if args.check && rep.adaptive_payoff < rep.static_payoff {
        eprintln!(
            "pipeline-bench: --check failed: adaptive payoff ({:.3}) below static ({:.3})",
            rep.adaptive_payoff, rep.static_payoff
        );
        return Ok(2);
    }
    Ok(0)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("pipeline-bench: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            eprintln!("pipeline-bench: {msg}");
            ExitCode::FAILURE
        }
    }
}
