//! Shared helpers for the benchmark suite.
//!
//! The benches in `benches/` regenerate the paper's tables and figures
//! (through [`preexec_experiments`]) at reduced budgets — suitable for
//! `cargo bench` runs — and measure the framework's own primitives
//! (slicing, tree construction, advantage scoring, selection, timing
//! simulation).

use preexec_func::{run_trace, TraceConfig};
use preexec_isa::Program;
use preexec_slice::{SliceForest, SliceForestBuilder};
use preexec_workloads::{suite, InputSet};

/// The per-benchmark instruction budget used by table/figure benches.
/// Small enough for Criterion iteration, large enough to exercise the
/// steady state of every kernel.
pub const BENCH_BUDGET: u64 = 40_000;

/// Builds one named suite workload (train input).
///
/// # Panics
///
/// Panics if the name is not in the suite.
pub fn build(name: &str) -> Program {
    suite()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("unknown workload {name}"))
        .build(InputSet::Train)
}

/// Traces `program` for `budget` instructions into a slice forest.
pub fn forest_for(program: &Program, budget: u64) -> SliceForest {
    let mut b = SliceForestBuilder::new(1024, 32);
    let cfg = TraceConfig { max_steps: budget, ..TraceConfig::default() };
    run_trace(program, &cfg, |d| b.observe(d));
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_work() {
        let p = build("vpr.r");
        let f = forest_for(&p, 20_000);
        assert!(f.num_trees() > 0);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_name_panics() {
        let _ = build("eon");
    }
}
