//! Integration tests for the epoll serving tier: request pipelining
//! with `id` echo, partial-line reassembly across writes, the
//! slow-loris idle sweep, and the `--threaded` fallback front end.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use preexec_serve::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Daemon {
    child: Child,
    addr: String,
    cache_dir: std::path::PathBuf,
}

impl Daemon {
    fn spawn(extra_args: &[&str]) -> Daemon {
        static SPAWNS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = SPAWNS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let cache_dir = std::env::temp_dir()
            .join(format!("preexec-reactor-test-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache_dir);
        let mut args = vec![
            "--port",
            "0",
            "--workers",
            "2",
            "--cache-dir",
            cache_dir.to_str().expect("utf-8 temp dir"),
        ];
        args.extend_from_slice(extra_args);
        let mut child = Command::new(env!("CARGO_BIN_EXE_preexecd"))
            .args(&args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawning preexecd");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut first_line = String::new();
        BufReader::new(stdout)
            .read_line(&mut first_line)
            .expect("reading the announce line");
        let addr = first_line
            .trim()
            .strip_prefix("preexecd listening on ")
            .unwrap_or_else(|| panic!("unexpected announce line: {first_line:?}"))
            .to_string();
        Daemon { child, addr, cache_dir }
    }

    fn connect(&self) -> TcpStream {
        TcpStream::connect(&self.addr).expect("connecting to preexecd")
    }

    fn shutdown_and_wait(mut self) {
        let mut conn = self.connect();
        conn.write_all(b"{\"cmd\":\"shutdown\"}\n").expect("send shutdown");
        let mut line = String::new();
        BufReader::new(conn).read_line(&mut line).expect("shutdown ack");
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "preexecd exited with {status}");
                    break;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("preexecd did not exit within 60s of shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        let _ = std::fs::remove_dir_all(&self.cache_dir);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = std::fs::remove_dir_all(&self.cache_dir);
    }
}

#[test]
fn pipelined_requests_answer_in_order_with_ids_echoed() {
    let daemon = Daemon::spawn(&[]);
    let stream = daemon.connect();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    // Write a burst of requests without reading a single response: the
    // reactor must queue every answer and preserve order.
    const BURST: usize = 50;
    let mut batch = String::new();
    for i in 0..BURST {
        batch.push_str(&format!("{{\"cmd\":\"stats\",\"id\":\"req-{i}\"}}\n"));
    }
    writer.write_all(batch.as_bytes()).expect("write burst");

    for i in 0..BURST {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response line");
        let resp = Json::parse(line.trim()).expect("response parses");
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{line}");
        assert_eq!(
            resp.get("id").and_then(Json::as_str),
            Some(format!("req-{i}").as_str()),
            "responses out of order: {line}"
        );
    }

    // The burst shows up in the pipelined-depth histogram (>= 1 sample;
    // kernel batching decides how many lines share a readiness event).
    writer.write_all(b"{\"cmd\":\"metrics\"}\n").expect("metrics");
    let mut line = String::new();
    reader.read_line(&mut line).expect("metrics line");
    let metrics = Json::parse(line.trim()).expect("metrics parses");
    let depth_count = metrics
        .get("histograms")
        .and_then(|h| h.get("server.pipelined_depth"))
        .and_then(|h| h.get("count"))
        .and_then(Json::as_u64)
        .expect("server.pipelined_depth histogram");
    assert!(depth_count >= 1, "no pipelined-depth samples: {line}");

    drop(writer);
    drop(reader);
    daemon.shutdown_and_wait();
}

#[test]
fn a_request_split_across_many_writes_reassembles() {
    let daemon = Daemon::spawn(&[]);
    let mut stream = daemon.connect();
    let request = b"{\"cmd\":\"stats\",\"id\":7}\n";
    // Dribble the line a few bytes per write; the reactor has to hold
    // the partial line across readiness events.
    for chunk in request.chunks(5) {
        stream.write_all(chunk).expect("chunk");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("response");
    let resp = Json::parse(line.trim()).expect("parses");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{line}");
    assert_eq!(resp.get("id").and_then(Json::as_u64), Some(7), "{line}");
    daemon.shutdown_and_wait();
}

#[test]
fn slow_loris_is_cut_off_but_a_quiet_idle_connection_survives() {
    let daemon = Daemon::spawn(&["--idle-timeout-ms", "250"]);

    // The slow loris: half a request line, then silence. The idle sweep
    // closes it once the timeout passes.
    let mut loris = daemon.connect();
    loris.write_all(b"{\"cmd\":\"sta").expect("partial write");
    loris.flush().expect("flush");

    // The honest idler: a connection with *no* partial line pending is
    // not a loris and must stay open arbitrarily long.
    let idler = daemon.connect();

    let mut buf = Vec::new();
    loris
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let n = loris.read_to_end(&mut buf).expect("loris read");
    assert_eq!(n, 0, "loris expected EOF, got {:?}", String::from_utf8_lossy(&buf));

    // Well past the timeout, the idler still gets answers.
    let mut reader = BufReader::new(idler.try_clone().expect("clone"));
    let mut idler_w = idler;
    idler_w.write_all(b"{\"cmd\":\"stats\"}\n").expect("idler write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("idler response");
    let resp = Json::parse(line.trim()).expect("parses");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{line}");

    drop(idler_w);
    drop(reader);
    daemon.shutdown_and_wait();
}

#[test]
fn threaded_fallback_serves_the_same_protocol() {
    let daemon = Daemon::spawn(&["--threaded"]);
    let stream = daemon.connect();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer
        .write_all(b"{\"cmd\":\"stats\",\"id\":\"t\"}\n")
        .expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("response");
    let resp = Json::parse(line.trim()).expect("parses");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{line}");
    assert_eq!(resp.get("id").and_then(Json::as_str), Some("t"), "{line}");
    drop(writer);
    drop(reader);
    daemon.shutdown_and_wait();
}
