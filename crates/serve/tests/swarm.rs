//! Swarm tests for the sharded serving tier: a 3-shard preexecd cluster
//! under a flood of pipelined submits must produce results byte-identical
//! to a serial run, route artifact traffic through the consistent-hash
//! ring (visible in the `shard` stats section), and degrade — not fail —
//! when a shard dies mid-flood.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use preexec_experiments::PipelineConfig;
use preexec_serve::{HashRing, Json, JobSpec, DEFAULT_VNODES};
use preexec_workloads::InputSet;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SHARDS: usize = 3;
/// Tiny budgets keep a 1000-job flood fast on a small machine; the
/// determinism contract is budget-independent.
const BASE_BUDGET: u64 = 800;

struct Cluster {
    children: Vec<Child>,
    addrs: Vec<String>,
    dirs: Vec<std::path::PathBuf>,
}

impl Cluster {
    /// Boots `SHARDS` daemons that all know the full ring membership.
    /// Ports are pre-claimed with throwaway listeners so every daemon
    /// can be told its peers' addresses up front.
    fn spawn(tag: &str) -> Cluster {
        let listeners: Vec<TcpListener> = (0..SHARDS)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("claim port"))
            .collect();
        let addrs: Vec<String> = listeners
            .iter()
            .map(|l| l.local_addr().expect("addr").to_string())
            .collect();
        drop(listeners);
        let peers = addrs.join(",");
        let mut children = Vec::new();
        let mut dirs = Vec::new();
        for (i, addr) in addrs.iter().enumerate() {
            let dir = std::env::temp_dir()
                .join(format!("preexec-swarm-{tag}-{}-{i}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let mut child = Command::new(env!("CARGO_BIN_EXE_preexecd"))
                .args([
                    "--addr",
                    addr,
                    "--workers",
                    "2",
                    "--queue-cap",
                    "2048",
                    "--no-journal",
                    "--cache-dir",
                    dir.to_str().expect("utf-8 temp dir"),
                    "--shard-id",
                    &i.to_string(),
                    "--shard-peers",
                    &peers,
                ])
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("spawning shard");
            let stdout = child.stdout.take().expect("piped stdout");
            let mut announce = String::new();
            BufReader::new(stdout).read_line(&mut announce).expect("announce");
            assert!(
                announce.starts_with("preexecd listening on "),
                "shard {i}: {announce:?}"
            );
            children.push(child);
            dirs.push(dir);
        }
        Cluster { children, addrs, dirs }
    }

    fn connect(&self, shard: usize) -> Conn {
        let stream = TcpStream::connect(&self.addrs[shard]).expect("connect shard");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Conn { stream, reader }
    }

    fn shutdown_survivors(mut self, dead: &[usize]) {
        for i in 0..SHARDS {
            if dead.contains(&i) {
                continue;
            }
            let mut conn = self.connect(i);
            let resp = conn.roundtrip(r#"{"cmd":"shutdown"}"#);
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
            let deadline = Instant::now() + Duration::from_secs(60);
            loop {
                match self.children[i].try_wait().expect("try_wait") {
                    Some(status) => {
                        assert!(status.success(), "shard {i} exited with {status}");
                        break;
                    }
                    None if Instant::now() > deadline => {
                        panic!("shard {i} did not exit after shutdown")
                    }
                    None => std::thread::sleep(Duration::from_millis(50)),
                }
            }
        }
        for dir in &self.dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
        }
        for dir in &self.dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn send(&mut self, request: &str) {
        self.stream.write_all(format!("{request}\n").as_bytes()).expect("send");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        assert!(!line.is_empty(), "shard closed the connection");
        Json::parse(line.trim()).expect("response parses")
    }

    fn roundtrip(&mut self, request: &str) -> Json {
        self.send(request);
        self.recv()
    }

    fn ok(&mut self, request: &str) -> Json {
        let resp = self.roundtrip(request);
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "request `{request}` failed: {}",
            resp.encode()
        );
        resp
    }

    /// Blocks until the daemon reports `done_target` finished jobs and
    /// zero failures.
    fn wait_jobs_done(&mut self, done_target: u64) {
        let deadline = Instant::now() + Duration::from_secs(600);
        loop {
            let stats = self.ok(r#"{"cmd":"stats"}"#);
            let jobs = stats.get("jobs").cloned().expect("jobs section");
            let grab = |k: &str| jobs.get(k).and_then(Json::as_u64).unwrap_or(0);
            assert_eq!(grab("failed"), 0, "failed jobs: {}", stats.encode());
            assert_eq!(grab("cancelled"), 0, "cancelled jobs: {}", stats.encode());
            if grab("done") >= done_target {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "stuck at {} of {done_target} done: {}",
                grab("done"),
                stats.encode()
            );
            std::thread::sleep(Duration::from_millis(200));
        }
    }
}

/// A submit line for (workload, budget) with a pipelining `id`.
fn submit_line(workload: &str, budget: u64, id: usize) -> String {
    format!(r#"{{"cmd":"submit","workload":"{workload}","budget":{budget},"id":{id}}}"#)
}

/// The byte-comparable core of a served result: everything except the
/// fields that legitimately vary between a cold and a warm run.
fn canonical(result: &Json) -> String {
    match result {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| k != "cache_hit" && k != "stage_us")
                .cloned()
                .collect(),
        )
        .encode(),
        other => other.encode(),
    }
}

/// Picks `n` (workload, budget) specs whose trace keys land on at least
/// `min_owners` distinct shards of the 3-shard ring — deterministically,
/// by walking budgets, so the test never depends on hash luck.
fn spec_set(n: usize, min_owners: usize) -> Vec<(&'static str, u64)> {
    let ring = HashRing::new(SHARDS, DEFAULT_VNODES);
    let mut specs: Vec<(&'static str, u64)> = Vec::new();
    let mut owners = std::collections::BTreeSet::new();
    for budget in BASE_BUDGET.. {
        for workload in ["vpr.r", "mcf"] {
            if specs.len() >= n && owners.len() >= min_owners {
                return specs;
            }
            let spec = JobSpec::new(
                workload,
                InputSet::Train,
                PipelineConfig::paper_default(budget),
            )
            .expect("spec");
            let owner = ring.owner(spec.trace_key().digest());
            if specs.len() < n {
                specs.push((workload, budget));
                owners.insert(owner);
            } else if !owners.contains(&owner) {
                // Swap in a spec that widens owner coverage.
                specs.pop();
                specs.push((workload, budget));
                owners.insert(owner);
            }
        }
    }
    unreachable!("budget walk always terminates first")
}

/// Specs owned by exactly `owner` on the 3-shard ring.
fn specs_owned_by(owner: usize, n: usize) -> Vec<(&'static str, u64)> {
    let ring = HashRing::new(SHARDS, DEFAULT_VNODES);
    let mut specs = Vec::new();
    for budget in BASE_BUDGET.. {
        for workload in ["vpr.r", "mcf"] {
            let spec = JobSpec::new(
                workload,
                InputSet::Train,
                PipelineConfig::paper_default(budget),
            )
            .expect("spec");
            if ring.owner(spec.trace_key().digest()) == owner {
                specs.push((workload, budget));
                if specs.len() == n {
                    return specs;
                }
            }
        }
    }
    unreachable!()
}

#[test]
fn a_pipelined_flood_across_three_shards_is_byte_identical_to_serial() {
    const FLOOD: usize = 1000;
    let specs = spec_set(6, 2);
    let cluster = Cluster::spawn("flood");

    // Serial reference: each unique spec once, through shard 0. This
    // also seeds the ring — artifacts land on their owning shards.
    let mut serial = cluster.connect(0);
    let mut reference: Vec<String> = Vec::new();
    for (i, &(workload, budget)) in specs.iter().enumerate() {
        let resp = serial.ok(&submit_line(workload, budget, i));
        let job = resp.get("job").and_then(Json::as_u64).expect("job id");
        serial.wait_jobs_done((i + 1) as u64);
        let resp = serial.ok(&format!(r#"{{"cmd":"result","job":{job}}}"#));
        assert_eq!(resp.get("state").and_then(Json::as_str), Some("done"));
        reference.push(canonical(resp.get("result").expect("result")));
    }

    // The flood: one connection per shard, every submit written before
    // any response is read — 1000 pipelined requests in flight at once.
    let mut conns: Vec<Conn> = (0..SHARDS).map(|i| cluster.connect(i)).collect();
    for i in 0..FLOOD {
        let (workload, budget) = specs[i % specs.len()];
        conns[i % SHARDS].send(&submit_line(workload, budget, i));
    }
    let mut job_of: Vec<(usize, u64)> = Vec::with_capacity(FLOOD);
    for i in 0..FLOOD {
        let resp = conns[i % SHARDS].recv();
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "submit {i} failed: {}",
            resp.encode()
        );
        assert_eq!(
            resp.get("id").and_then(Json::as_u64),
            Some(i as u64),
            "submit acks out of order: {}",
            resp.encode()
        );
        job_of.push((i % SHARDS, resp.get("job").and_then(Json::as_u64).expect("job")));
    }

    // Drain: shard 0 additionally ran the serial seed jobs.
    for (shard, conn) in conns.iter_mut().enumerate() {
        let flood_jobs = (0..FLOOD).filter(|i| i % SHARDS == shard).count() as u64;
        let seed_jobs = if shard == 0 { specs.len() as u64 } else { 0 };
        conn.wait_jobs_done(flood_jobs + seed_jobs);
    }

    // Every flood result is byte-identical to the serial reference for
    // its spec (modulo cache_hit/stage_us, which legitimately differ).
    // Result fetches are themselves pipelined, in bounded chunks.
    let indexed: Vec<(usize, usize, u64)> = job_of
        .iter()
        .enumerate()
        .map(|(global, &(shard, job))| (global, shard, job))
        .collect();
    for chunk in indexed.chunks(100) {
        for &(_, shard, job) in chunk {
            conns[shard].send(&format!(r#"{{"cmd":"result","job":{job},"id":{job}}}"#));
        }
        for &(global, shard, job) in chunk {
            let resp = conns[shard].recv();
            assert_eq!(resp.get("id").and_then(Json::as_u64), Some(job));
            assert_eq!(
                resp.get("state").and_then(Json::as_str),
                Some("done"),
                "{}",
                resp.encode()
            );
            let want = &reference[global % specs.len()];
            let got = canonical(resp.get("result").expect("result"));
            assert_eq!(&got, want, "flood submit {global} diverged from serial");
        }
    }

    // Peer traffic is visible: the ring spans >= 2 owners, so at least
    // one artifact was fetched from or written to a peer.
    let mut peer_traffic = 0;
    for conn in &mut conns {
        let stats = conn.ok(r#"{"cmd":"stats"}"#);
        let shard = stats.get("shard").cloned().expect("shard stats section");
        let grab = |k: &str| shard.get(k).and_then(Json::as_u64).unwrap_or(0);
        peer_traffic += grab("peer_hits") + grab("peer_puts");
        assert_eq!(
            shard.get("shards").and_then(Json::as_u64),
            Some(SHARDS as u64),
            "{}",
            stats.encode()
        );
    }
    assert!(peer_traffic >= 1, "no peer cache traffic across the ring");

    drop(serial);
    drop(conns);
    cluster.shutdown_survivors(&[]);
}

#[test]
fn killing_a_shard_mid_flood_degrades_to_local_compute_without_errors() {
    const PER_SURVIVOR: usize = 30;
    // Keys owned by shard 2 — the shard we will kill.
    let doomed_specs = specs_owned_by(2, 2);
    let mut cluster = Cluster::spawn("kill");

    // Warm the ring through shard 0: computing these pushes their
    // artifacts to owner shard 2 (peer_puts), and gives us the serial
    // reference bytes.
    let mut conn0 = cluster.connect(0);
    let mut reference = Vec::new();
    for (i, &(workload, budget)) in doomed_specs.iter().enumerate() {
        let resp = conn0.ok(&submit_line(workload, budget, i));
        let job = resp.get("job").and_then(Json::as_u64).expect("job");
        conn0.wait_jobs_done((i + 1) as u64);
        let resp = conn0.ok(&format!(r#"{{"cmd":"result","job":{job}}}"#));
        reference.push(canonical(resp.get("result").expect("result")));
    }
    let stats = conn0.ok(r#"{"cmd":"stats"}"#);
    assert!(
        stats
            .get("shard")
            .and_then(|s| s.get("peer_puts"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1,
        "warmup never wrote to the doomed owner: {}",
        stats.encode()
    );

    // Kill the owner of every doomed key, then flood the survivors with
    // exactly those keys: every lookup now has a dead peer in its path.
    cluster.children[2].kill().expect("kill shard 2");
    let mut conns = vec![cluster.connect(0), cluster.connect(1)];
    for (c, conn) in conns.iter_mut().enumerate() {
        for i in 0..PER_SURVIVOR {
            let (workload, budget) = doomed_specs[i % doomed_specs.len()];
            conn.send(&submit_line(workload, budget, c * PER_SURVIVOR + i));
        }
    }
    // No client-visible failure is allowed: every ack is ok:true (the
    // queue caps are sized so the flood cannot even trip `overloaded`).
    let mut jobs: Vec<Vec<u64>> = vec![Vec::new(), Vec::new()];
    for (c, conn) in conns.iter_mut().enumerate() {
        for _ in 0..PER_SURVIVOR {
            let resp = conn.recv();
            assert_eq!(
                resp.get("ok").and_then(Json::as_bool),
                Some(true),
                "shard death leaked to a client: {}",
                resp.encode()
            );
            jobs[c].push(resp.get("job").and_then(Json::as_u64).expect("job"));
        }
    }

    let seed = doomed_specs.len() as u64;
    conns[0].wait_jobs_done(seed + PER_SURVIVOR as u64);
    conns[1].wait_jobs_done(PER_SURVIVOR as u64);

    // Degraded results are still byte-identical to the pre-kill serial
    // reference — recomputed or served from the survivor's local cache.
    let mut peer_errors = 0;
    for (c, conn) in conns.iter_mut().enumerate() {
        for (i, &job) in jobs[c].iter().enumerate() {
            let resp = conn.ok(&format!(r#"{{"cmd":"result","job":{job}}}"#));
            assert_eq!(resp.get("state").and_then(Json::as_str), Some("done"));
            let got = canonical(resp.get("result").expect("result"));
            assert_eq!(
                got,
                reference[i % doomed_specs.len()],
                "survivor {c} diverged after shard death"
            );
        }
        let stats = conn.ok(r#"{"cmd":"stats"}"#);
        peer_errors += stats
            .get("shard")
            .and_then(|s| s.get("peer_errors"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
    }
    assert!(
        peer_errors >= 1,
        "survivors never even noticed the dead shard — ownership routing is off"
    );

    drop(conn0);
    drop(conns);
    cluster.shutdown_survivors(&[2]);
}
