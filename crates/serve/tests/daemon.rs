//! End-to-end daemon test: spawn `preexecd` on an ephemeral port, drive
//! it over TCP with the newline-delimited JSON protocol, and check that
//! served results are bit-identical to a direct in-process pipeline run.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use preexec_experiments::{try_run_pipeline, PipelineConfig};
use preexec_serve::Json;
use preexec_workloads::{by_name, InputSet};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BUDGET: u64 = 60_000;

struct Daemon {
    child: Child,
    addr: String,
    cache_dir: std::path::PathBuf,
}

impl Daemon {
    fn spawn() -> Daemon {
        // Per-spawn unique dir: tests in this binary run in parallel, and
        // a shared cache would leak artifacts (and cache hits) across
        // daemons.
        static SPAWNS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = SPAWNS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let cache_dir = std::env::temp_dir()
            .join(format!("preexec-daemon-test-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache_dir);
        let mut child = Command::new(env!("CARGO_BIN_EXE_preexecd"))
            .args([
                "--port",
                "0",
                "--workers",
                "2",
                "--cache-dir",
                cache_dir.to_str().expect("utf-8 temp dir"),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawning preexecd");
        // The daemon announces its (ephemeral) address on stdout.
        let stdout = child.stdout.take().expect("piped stdout");
        let mut first_line = String::new();
        BufReader::new(stdout)
            .read_line(&mut first_line)
            .expect("reading the announce line");
        let addr = first_line
            .trim()
            .strip_prefix("preexecd listening on ")
            .unwrap_or_else(|| panic!("unexpected announce line: {first_line:?}"))
            .to_string();
        Daemon { child, addr, cache_dir }
    }

    fn connect(&self) -> Conn {
        let stream = TcpStream::connect(&self.addr).expect("connecting to preexecd");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Conn { stream, reader }
    }

    /// Waits (bounded) for the daemon process to exit after `shutdown`.
    fn wait_for_exit(mut self) {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "preexecd exited with {status}");
                    break;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("preexecd did not exit within 60s of shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        let _ = std::fs::remove_dir_all(&self.cache_dir);
    }
}

struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    /// One request/response exchange; panics on protocol-level errors.
    fn roundtrip(&mut self, request: &str) -> Json {
        self.stream
            .write_all(format!("{request}\n").as_bytes())
            .expect("send");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        Json::parse(line.trim()).expect("response parses")
    }

    fn ok(&mut self, request: &str) -> Json {
        let resp = self.roundtrip(request);
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "request `{request}` failed: {}",
            resp.encode()
        );
        resp
    }

    fn submit(&mut self, workload: &str) -> u64 {
        let resp = self.ok(&format!(
            r#"{{"cmd":"submit","workload":"{workload}","budget":{BUDGET}}}"#
        ));
        resp.get("job").and_then(Json::as_u64).expect("job id")
    }

    /// Polls `status` until the job reaches a terminal state.
    fn wait_done(&mut self, job: u64) {
        let deadline = Instant::now() + Duration::from_secs(300);
        loop {
            let resp = self.ok(&format!(r#"{{"cmd":"status","job":{job}}}"#));
            let state = resp.get("state").and_then(Json::as_str).expect("state");
            match state {
                "done" => return,
                "queued" | "running" => {
                    assert!(Instant::now() < deadline, "job {job} stuck in {state}");
                    std::thread::sleep(Duration::from_millis(100));
                }
                other => panic!("job {job} ended {other}: {}", resp.encode()),
            }
        }
    }

    fn result(&mut self, job: u64) -> Json {
        let resp = self.ok(&format!(r#"{{"cmd":"result","job":{job}}}"#));
        resp.get("result").cloned().expect("result payload")
    }
}

fn u64_field(json: &Json, path: &[&str]) -> u64 {
    let mut cur = json.clone();
    for key in path {
        cur = cur.get(key).cloned().unwrap_or_else(|| {
            panic!("missing `{}` in {}", path.join("."), json.encode())
        });
    }
    cur.as_u64()
        .unwrap_or_else(|| panic!("`{}` not a u64 in {}", path.join("."), json.encode()))
}

#[test]
fn daemon_serves_jobs_caches_repeats_and_shuts_down() {
    let daemon = Daemon::spawn();
    let mut conn = daemon.connect();

    // Malformed input gets an error envelope, not a dropped connection.
    let bad = conn.roundtrip(r#"{"cmd":"submit"}"#);
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    assert!(bad.get("error").and_then(Json::as_str).is_some());

    // Two different jobs run concurrently on the 2-worker pool.
    let job_vpr = conn.submit("vpr.r");
    let job_mcf = conn.submit("mcf");
    assert_ne!(job_vpr, job_mcf);
    conn.wait_done(job_vpr);
    conn.wait_done(job_mcf);

    // Served results match a direct in-process pipeline run exactly.
    let cfg = PipelineConfig::paper_default(BUDGET);
    for (job, name) in [(job_vpr, "vpr.r"), (job_mcf, "mcf")] {
        let served = conn.result(job);
        let workload = by_name(name).expect("suite workload");
        let direct =
            try_run_pipeline(&workload.build(InputSet::Train), &cfg).expect("direct run");
        assert_eq!(
            served.get("workload").and_then(Json::as_str),
            Some(name),
            "{}",
            served.encode()
        );
        assert_eq!(served.get("cache_hit").and_then(Json::as_bool), Some(false));
        assert_eq!(u64_field(&served, &["base", "cycles"]), direct.base.cycles);
        assert_eq!(u64_field(&served, &["base", "insts"]), direct.base.insts);
        assert_eq!(
            u64_field(&served, &["assisted", "cycles"]),
            direct.assisted.cycles
        );
        assert_eq!(
            u64_field(&served, &["num_pthreads"]),
            direct.selection.pthreads.len() as u64
        );
        assert_eq!(u64_field(&served, &["trace", "insts"]), direct.stats.insts);
        assert_eq!(
            u64_field(&served, &["trace", "l2_misses"]),
            direct.stats.l2_misses
        );
    }

    // An identical resubmit is served from the artifact cache — same
    // numbers, no re-trace.
    let again = conn.submit("vpr.r");
    conn.wait_done(again);
    let served = conn.result(again);
    assert_eq!(served.get("cache_hit").and_then(Json::as_bool), Some(true));
    let workload = by_name("vpr.r").expect("suite workload");
    let direct = try_run_pipeline(&workload.build(InputSet::Train), &cfg).expect("direct");
    assert_eq!(u64_field(&served, &["assisted", "cycles"]), direct.assisted.cycles);
    assert_eq!(u64_field(&served, &["stage_us", "trace"]), 0);

    // Service stats reflect the work: three done jobs, one cache hit.
    let stats = conn.ok(r#"{"cmd":"stats"}"#);
    assert_eq!(u64_field(&stats, &["jobs", "done"]), 3);
    assert_eq!(u64_field(&stats, &["jobs", "failed"]), 0);
    assert_eq!(u64_field(&stats, &["cache", "hits"]), 1);
    assert_eq!(u64_field(&stats, &["cache", "misses"]), 2);
    assert!(
        stats.get("stage_latency_us").and_then(|h| h.get("base_sim")).is_some(),
        "{}",
        stats.encode()
    );

    // A status poll from a second connection sees the same scheduler.
    let mut conn2 = daemon.connect();
    let resp = conn2.ok(&format!(r#"{{"cmd":"status","job":{job_vpr}}}"#));
    assert_eq!(resp.get("state").and_then(Json::as_str), Some("done"));

    // Shutdown drains and the process exits cleanly.
    let resp = conn.ok(r#"{"cmd":"shutdown"}"#);
    assert_eq!(resp.get("shutting_down").and_then(Json::as_bool), Some(true));
    drop(conn);
    drop(conn2);
    daemon.wait_for_exit();
}

#[test]
fn metrics_verb_reports_the_registry_and_prometheus_text() {
    let daemon = Daemon::spawn();
    let mut conn = daemon.connect();

    // Run one real job so the stage histograms and counters have data.
    let job = conn.submit("vpr.r");
    conn.wait_done(job);

    let metrics = conn.ok(r#"{"cmd":"metrics"}"#);
    // JSON face: counters, gauges, histograms, events, plus the text.
    assert_eq!(
        u64_field(&metrics, &["counters", "sched.done"]),
        1,
        "{}",
        metrics.encode()
    );
    assert_eq!(u64_field(&metrics, &["counters", "cache.misses"]), 1);
    // (`pipeline.runs` counts the one-shot entry point, not the daemon's
    // staged path — it stays absent here.)
    assert!(u64_field(&metrics, &["counters", "select.pthreads"]) >= 1);
    assert!(u64_field(&metrics, &["counters", "server.connections"]) >= 1);
    assert!(u64_field(&metrics, &["histograms", "stage.base_sim", "count"]) >= 1);
    assert!(
        metrics.get("gauges").and_then(|g| g.get("sched.queue_depth")).is_some(),
        "{}",
        metrics.encode()
    );
    assert!(metrics.get("events").and_then(Json::as_arr).is_some());

    // Prometheus face: one text blob with the required series.
    let text = metrics
        .get("prometheus")
        .and_then(Json::as_str)
        .expect("prometheus text field");
    for series in [
        "preexec_stage_trace_us_count",
        "preexec_stage_base_sim_us_count",
        "preexec_stage_score_us_count",
        "preexec_stage_solve_us_count",
        "preexec_stage_assisted_sim_us_count",
        "preexec_cache_misses_total",
        "preexec_sched_done_total",
        "preexec_sched_queue_depth",
    ] {
        assert!(text.contains(series), "missing series `{series}` in:\n{text}");
    }

    let _ = conn.ok(r#"{"cmd":"shutdown"}"#);
    drop(conn);
    daemon.wait_for_exit();
}

#[test]
fn handler_threads_are_reaped_across_many_connections() {
    // Regression test for the accept loop collecting every JoinHandle
    // until shutdown: a long-lived daemon serving N short connections
    // must not hold N dead handler threads. The `connections` stats
    // gauge reports the accept loop's live-handler count after its
    // last reap.
    let daemon = Daemon::spawn();
    const SHORT_LIVED: u64 = 40;
    for _ in 0..SHORT_LIVED {
        let mut conn = daemon.connect();
        conn.ok(r#"{"cmd":"stats"}"#);
        // Dropping closes the socket; the handler sees EOF and exits.
    }

    // Poll stats until the accept loop has observed the closures. Each
    // poll is itself a fresh connection (whose accept re-runs the reap),
    // so a small non-zero floor of live handlers is expected.
    let deadline = Instant::now() + Duration::from_secs(30);
    let live = loop {
        let mut conn = daemon.connect();
        let stats = conn.ok(r#"{"cmd":"stats"}"#);
        let total = u64_field(&stats, &["connections", "total"]);
        assert!(total > SHORT_LIVED, "accept loop missed connections: {total}");
        let live = u64_field(&stats, &["connections", "live_handlers"]);
        if live <= 4 {
            break live;
        }
        assert!(
            Instant::now() < deadline,
            "handlers never reaped: {live} still live after {total} connections"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    assert!(live <= 4, "{live} handlers live after {SHORT_LIVED} short connections");

    let mut conn = daemon.connect();
    conn.ok(r#"{"cmd":"shutdown"}"#);
    drop(conn);
    daemon.wait_for_exit();
}
