//! Pins `toolflow --jobs N` per-job exit-code aggregation: one failing
//! job must make the whole run exit nonzero (with the *first* failing
//! job's code, in submission order), while every job's buffered output
//! — including the successes — is still printed. A bad job can neither
//! be masked by a later success nor swallow its siblings' reports.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn run_toolflow_in(dir: &std::path::Path, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_toolflow"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("running toolflow")
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("toolflow-exit-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn one_failed_job_fails_the_whole_run_without_masking_sibling_output() {
    let dir = temp_dir("aggregation");
    // Sabotage exactly one of the two jobs: `mcf.slices` is a
    // *directory*, so that job's slice-file write fails (code 3) while
    // `vpr.r` is untouched.
    std::fs::create_dir(dir.join("mcf.slices")).expect("planting the collision");

    let out = run_toolflow_in(&dir, &["--jobs", "2", "vpr.r,mcf", "20000"]);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");

    // The run fails with the failing job's code — success of vpr.r must
    // not mask it.
    assert_eq!(out.status.code(), Some(3), "stdout:\n{stdout}\nstderr:\n{stderr}");
    // ... and the failing job must not swallow the good job's report.
    assert!(stdout.contains("vpr.r: traced"), "good job's output missing:\n{stdout}");
    assert!(stderr.contains("mcf.slices"), "failing job's diagnostic missing:\n{stderr}");
    assert!(!stdout.contains("mcf: traced"), "failed job reported success:\n{stdout}");

    // Same batch, healthy: exits 0 and reports both workloads, byte-wise
    // independent of job count (`--jobs 1` vs `--jobs 2`).
    std::fs::remove_dir(dir.join("mcf.slices")).expect("clearing the collision");
    let serial = run_toolflow_in(&dir, &["--jobs", "1", "vpr.r,mcf", "20000"]);
    let parallel = run_toolflow_in(&dir, &["--jobs", "2", "vpr.r,mcf", "20000"]);
    assert_eq!(serial.status.code(), Some(0), "{serial:?}");
    assert_eq!(parallel.status.code(), Some(0), "{parallel:?}");
    assert_eq!(serial.stdout, parallel.stdout, "--jobs changed stdout");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_mode_exits_with_the_first_failing_jobs_code_and_keeps_sibling_output() {
    let dir = temp_dir("daemon");
    // A daemon whose *first started* job panics on its worker: with one
    // worker, batch order is start order, so `vpr.r` is the victim and
    // `mcf` must still be served.
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_preexecd"))
        .current_dir(&dir)
        .env("PREEXEC_CHAOS", "panic_job=1")
        .args(["--port", "0", "--workers", "1", "--no-journal", "--cache-dir", "cache"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawning preexecd");
    let stdout = daemon.stdout.take().expect("piped stdout");
    let mut announce = String::new();
    BufReader::new(stdout).read_line(&mut announce).expect("announce line");
    let addr = announce
        .trim()
        .strip_prefix("preexecd listening on ")
        .unwrap_or_else(|| panic!("unexpected announce line: {announce:?}"))
        .to_string();

    let out = run_toolflow_in(&dir, &["--daemon", &addr, "vpr.r,mcf", "3000"]);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    // The panicked job maps to code 5 — the same code a local panic
    // exits with — and it is the *first* job, so it wins.
    assert_eq!(out.status.code(), Some(5), "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(
        stderr.contains("vpr.r") && stderr.contains("job_panicked"),
        "failing job's diagnostic missing:\n{stderr}"
    );
    // The sibling's report still prints, in submission order.
    assert!(stdout.contains("mcf: daemon job"), "sibling output missing:\n{stdout}");
    assert!(!stdout.contains("vpr.r: daemon job"), "failed job reported success:\n{stdout}");

    // The chaos injector targets only start index 1; a rerun against the
    // same daemon is healthy and exits 0 with both reports.
    let out = run_toolflow_in(&dir, &["--daemon", &addr, "vpr.r,mcf", "3000"]);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    assert_eq!(out.status.code(), Some(0), "healthy rerun failed:\n{stdout}");
    assert!(stdout.contains("vpr.r: daemon job") && stdout.contains("mcf: daemon job"));

    let mut conn = TcpStream::connect(&addr).expect("connect for shutdown");
    conn.write_all(b"{\"cmd\":\"shutdown\"}\n").expect("send shutdown");
    let mut ack = String::new();
    let _ = BufReader::new(conn).read_line(&mut ack);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match daemon.try_wait().expect("try_wait") {
            Some(_) => break,
            None if Instant::now() > deadline => {
                let _ = daemon.kill();
                panic!("preexecd did not exit after shutdown");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
