//! Pins `toolflow --jobs N` per-job exit-code aggregation: one failing
//! job must make the whole run exit nonzero (with the *first* failing
//! job's code, in submission order), while every job's buffered output
//! — including the successes — is still printed. A bad job can neither
//! be masked by a later success nor swallow its siblings' reports.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::process::Command;

fn run_toolflow_in(dir: &std::path::Path, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_toolflow"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("running toolflow")
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("toolflow-exit-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn one_failed_job_fails_the_whole_run_without_masking_sibling_output() {
    let dir = temp_dir("aggregation");
    // Sabotage exactly one of the two jobs: `mcf.slices` is a
    // *directory*, so that job's slice-file write fails (code 3) while
    // `vpr.r` is untouched.
    std::fs::create_dir(dir.join("mcf.slices")).expect("planting the collision");

    let out = run_toolflow_in(&dir, &["--jobs", "2", "vpr.r,mcf", "20000"]);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");

    // The run fails with the failing job's code — success of vpr.r must
    // not mask it.
    assert_eq!(out.status.code(), Some(3), "stdout:\n{stdout}\nstderr:\n{stderr}");
    // ... and the failing job must not swallow the good job's report.
    assert!(stdout.contains("vpr.r: traced"), "good job's output missing:\n{stdout}");
    assert!(stderr.contains("mcf.slices"), "failing job's diagnostic missing:\n{stderr}");
    assert!(!stdout.contains("mcf: traced"), "failed job reported success:\n{stdout}");

    // Same batch, healthy: exits 0 and reports both workloads, byte-wise
    // independent of job count (`--jobs 1` vs `--jobs 2`).
    std::fs::remove_dir(dir.join("mcf.slices")).expect("clearing the collision");
    let serial = run_toolflow_in(&dir, &["--jobs", "1", "vpr.r,mcf", "20000"]);
    let parallel = run_toolflow_in(&dir, &["--jobs", "2", "vpr.r,mcf", "20000"]);
    assert_eq!(serial.status.code(), Some(0), "{serial:?}");
    assert_eq!(parallel.status.code(), Some(0), "{parallel:?}");
    assert_eq!(serial.stdout, parallel.stdout, "--jobs changed stdout");

    let _ = std::fs::remove_dir_all(&dir);
}
