//! Property tests: the mini-JSON encoder and parser round-trip each
//! other over scalars, strings with escapes, and nested containers.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use preexec_serve::Json;
use proptest::prelude::*;

/// Strings exercising the encoder's escape paths: quotes, backslashes,
/// control characters, multi-byte UTF-8, and astral-plane characters
/// (surrogate pairs on the wire).
fn string_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        String::new(),
        "plain".to_string(),
        "with \"quotes\" and \\backslashes\\".to_string(),
        "tab\there, newline\nthere, return\rdone".to_string(),
        "control \u{0001}\u{001f} chars".to_string(),
        "ünïcödé — καλημέρα".to_string(),
        "astral \u{1F600}\u{10FFFF}".to_string(),
        "solidus / stays bare".to_string(),
    ])
}

/// Scalar values only (depth 0).
fn scalar_strategy() -> impl Strategy<Value = Json> {
    prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // f64s that survive text round-trips exactly: integers and
        // dyadic fractions well inside the 2^53 exact range.
        (-1_000_000_000i64..1_000_000_000).prop_map(|n| Json::Num(n as f64)),
        (-4_000_000i64..4_000_000, 0u32..8)
            .prop_map(|(n, shift)| Json::Num(n as f64 / f64::from(1u32 << shift))),
        string_strategy().prop_map(Json::Str),
    ]
}

/// Containers of scalars (depth 1).
fn container_strategy() -> impl Strategy<Value = Json> {
    prop_oneof![
        prop::collection::vec(scalar_strategy(), 0..6).prop_map(Json::Arr),
        (prop::collection::vec(string_strategy(), 0..4), scalar_strategy()).prop_map(
            |(keys, v)| {
                Json::Obj(
                    keys.into_iter()
                        .enumerate()
                        // Distinct keys: `get` returns the first match, so
                        // duplicate keys would round-trip structurally but
                        // not observationally.
                        .map(|(i, k)| (format!("{i}:{k}"), v.clone()))
                        .collect(),
                )
            }
        ),
    ]
}

/// Values up to depth 2: containers holding scalars or containers.
fn value_strategy() -> impl Strategy<Value = Json> {
    prop_oneof![
        scalar_strategy(),
        container_strategy(),
        prop::collection::vec(container_strategy(), 0..4).prop_map(Json::Arr),
        (string_strategy(), container_strategy())
            .prop_map(|(k, v)| Json::Obj(vec![(format!("k:{k}"), v)])),
    ]
}

proptest! {
    /// `parse(encode(v)) == v` for every generated value.
    #[test]
    fn encode_parse_round_trips(v in value_strategy()) {
        let text = v.encode();
        let back = Json::parse(&text).expect("encoder output parses");
        prop_assert_eq!(back, v);
    }

    /// Encoded output stays a single line: raw control characters (the
    /// protocol delimiter included) are always escaped.
    #[test]
    fn encoded_text_is_one_line(v in value_strategy()) {
        let text = v.encode();
        prop_assert!(!text.contains('\n') && !text.contains('\r'), "{}", text);
        prop_assert!(text.chars().all(|c| c >= ' '), "{}", text);
    }

    /// Encoding is deterministic and re-encoding a parsed value is
    /// idempotent (canonical form reached after one round).
    #[test]
    fn re_encoding_is_stable(v in value_strategy()) {
        let once = v.encode();
        let again = Json::parse(&once).expect("parses").encode();
        prop_assert_eq!(once, again);
    }
}
