//! Property tests for the consistent-hash shard ring (DESIGN.md §15.3):
//! ownership is total and deterministic, load spreads within a constant
//! factor of fair, and membership changes reroute only the ~1/N of keys
//! they must — the property that makes shard joins cheap (only the new
//! shard's keys go cold) and shard leaves safe (survivors keep every
//! key they already owned).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use preexec_serve::{HashRing, DEFAULT_VNODES};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every key has exactly one owner, always below the shard count,
    /// and asking twice gives the same answer.
    #[test]
    fn ownership_is_total_deterministic_and_in_range(
        shards in 1usize..6,
        vnodes in 1usize..96,
        key in any::<u64>(),
    ) {
        let ring = HashRing::new(shards, vnodes);
        let owner = ring.owner(key);
        prop_assert!(owner < ring.shards());
        prop_assert_eq!(owner, ring.owner(key));
    }

    /// With the default vnode count no shard is starved or flooded: each
    /// shard's share of a large key set stays within 3x of fair. (The
    /// ring's arcs are deterministic per shard count; the keys vary.)
    #[test]
    fn load_spreads_within_a_constant_factor_of_fair(
        shards in 2usize..6,
        keys in prop::collection::vec(any::<u64>(), 2048..2049),
    ) {
        let ring = HashRing::new(shards, DEFAULT_VNODES);
        let mut counts = vec![0usize; shards];
        for &k in &keys {
            counts[ring.owner(k)] += 1;
        }
        let fair = keys.len() / shards;
        for (shard, &c) in counts.iter().enumerate() {
            prop_assert!(
                c >= fair / 3 && c <= fair * 3,
                "shard {} owns {} of {} keys (fair share {})",
                shard, c, keys.len(), fair
            );
        }
    }

    /// A join is minimal: a key either keeps its owner or moves to the
    /// *joined* shard — never between survivors — and the moved fraction
    /// is about 1/(N+1), the new shard's fair share.
    #[test]
    fn a_join_reroutes_only_the_new_shards_fair_share(
        shards in 1usize..5,
        keys in prop::collection::vec(any::<u64>(), 2048..2049),
    ) {
        let before = HashRing::new(shards, DEFAULT_VNODES);
        let after = HashRing::new(shards + 1, DEFAULT_VNODES);
        let mut moved = 0usize;
        for &k in &keys {
            let (b, a) = (before.owner(k), after.owner(k));
            if b != a {
                prop_assert_eq!(a, shards, "key {:#x} moved between surviving shards", k);
                moved += 1;
            }
        }
        let fair = keys.len() / (shards + 1);
        prop_assert!(
            moved >= fair / 4 && moved <= fair * 3,
            "{} of {} keys moved on a {}->{} join (fair share {})",
            moved, keys.len(), shards, shards + 1, fair
        );
    }

    /// The mirror image for a leave: every key the leaver did *not* own
    /// keeps its owner, so survivors' caches stay warm.
    #[test]
    fn a_leave_never_disturbs_surviving_shards_keys(
        shards in 2usize..6,
        keys in prop::collection::vec(any::<u64>(), 1024..1025),
    ) {
        let before = HashRing::new(shards, DEFAULT_VNODES);
        let after = HashRing::new(shards - 1, DEFAULT_VNODES);
        for &k in &keys {
            let b = before.owner(k);
            if b != shards - 1 {
                prop_assert_eq!(after.owner(k), b, "surviving key {:#x} was rerouted", k);
            }
        }
    }
}
