//! The daemon chaos harness (DESIGN.md §14.4): drive `preexecd` through
//! the failure windows that matter — SIGKILL mid-batch, an injected
//! worker panic between the journal `start` and any terminal record, a
//! corrupted/torn WAL, failing cache stores, a submit flood past the
//! admission high-water mark — and check the durability invariants:
//!
//! - every *acknowledged* job eventually completes, byte-identically to
//!   an uninterrupted run (the pipeline is deterministic);
//! - no acked job is silently dropped, by crash, panic, or drain;
//! - overload sheds with a typed `overloaded` error and `retry_after_ms`
//!   while queue depth stays bounded;
//! - the WAL itself always passes [`preexec_serve::check_invariants`].
//!
//! Fault injection in the daemon process is configured with the
//! `PREEXEC_CHAOS` environment variable (see `preexec_serve::chaos`);
//! WAL surgery uses the deterministic corruption primitives of
//! `preexec_experiments::fault`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use preexec_experiments::fault;
use preexec_serve::{canonical_result, check_invariants, Backoff, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Small budgets keep each job fast; distinct (workload, budget) pairs
/// keep cache keys distinct so every job does real work.
const BATCH: &[(&str, u64)] = &[
    ("vpr.r", 30_000),
    ("mcf", 30_000),
    ("vpr.r", 31_000),
    ("mcf", 31_000),
];

struct Daemon {
    child: Child,
    addr: String,
    /// Kept alive for the daemon's lifetime: dropping the pipe's read
    /// end would EPIPE the daemon's recovery-summary println.
    _stdout: BufReader<std::process::ChildStdout>,
}

fn unique_dir(name: &str) -> std::path::PathBuf {
    static SPAWNS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let n = SPAWNS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("preexec-chaos-{name}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

impl Daemon {
    /// Spawns `preexecd` on an ephemeral port against `cache_dir`
    /// (reused across restarts — that is the point), with extra CLI
    /// args and a `PREEXEC_CHAOS` value (`""` = no injection).
    fn spawn(cache_dir: &std::path::Path, args: &[&str], chaos: &str) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_preexecd"));
        cmd.args(["--port", "0", "--cache-dir", cache_dir.to_str().expect("utf-8 dir")])
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        if chaos.is_empty() {
            cmd.env_remove("PREEXEC_CHAOS");
        } else {
            cmd.env("PREEXEC_CHAOS", chaos);
        }
        let mut child = cmd.spawn().expect("spawning preexecd");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        let mut first_line = String::new();
        reader.read_line(&mut first_line).expect("reading the announce line");
        let addr = first_line
            .trim()
            .strip_prefix("preexecd listening on ")
            .unwrap_or_else(|| panic!("unexpected announce line: {first_line:?}"))
            .to_string();
        Daemon { child, addr, _stdout: reader }
    }

    fn connect(&self) -> Conn {
        let stream = TcpStream::connect(&self.addr).expect("connecting to preexecd");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Conn { stream, reader }
    }

    /// SIGKILL — no drain, no flush, the crash being tested.
    fn sigkill(mut self) {
        self.child.kill().expect("kill");
        let _ = self.child.wait();
    }

    /// Graceful: `shutdown` verb, then bounded wait for a clean exit.
    fn shutdown(mut self) -> Json {
        let mut conn = self.connect();
        let resp = conn.ok(r#"{"cmd":"shutdown"}"#);
        drop(conn);
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "preexecd exited with {status}");
                    break;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("preexecd did not exit within 120s of shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        resp
    }
}

impl Drop for Daemon {
    /// A panicking test must not leak the daemon: a live child keeps the
    /// harness's inherited stderr pipe open, which wedges `cargo test`
    /// long after the test itself has died.
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn roundtrip(&mut self, request: &str) -> Json {
        self.stream.write_all(format!("{request}\n").as_bytes()).expect("send");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        Json::parse(line.trim()).expect("response parses")
    }

    fn ok(&mut self, request: &str) -> Json {
        let resp = self.roundtrip(request);
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "request `{request}` failed: {}",
            resp.encode()
        );
        resp
    }

    fn submit(&mut self, workload: &str, budget: u64) -> u64 {
        let resp =
            self.ok(&format!(r#"{{"cmd":"submit","workload":"{workload}","budget":{budget}}}"#));
        resp.get("job").and_then(Json::as_u64).expect("job id")
    }

    /// Polls `status` until terminal; returns the final state name.
    fn wait_terminal(&mut self, job: u64) -> String {
        let deadline = Instant::now() + Duration::from_secs(300);
        loop {
            let resp = self.ok(&format!(r#"{{"cmd":"status","job":{job}}}"#));
            let state = resp.get("state").and_then(Json::as_str).expect("state").to_string();
            match state.as_str() {
                "queued" | "running" => {
                    assert!(Instant::now() < deadline, "job {job} stuck in {state}");
                    std::thread::sleep(Duration::from_millis(100));
                }
                _ => return state,
            }
        }
    }

    fn result(&mut self, job: u64) -> Json {
        let resp = self.ok(&format!(r#"{{"cmd":"result","job":{job}}}"#));
        resp.get("result").cloned().expect("result payload")
    }
}

fn u64_field(json: &Json, path: &[&str]) -> u64 {
    let mut cur = json.clone();
    for key in path {
        cur = cur
            .get(key)
            .cloned()
            .unwrap_or_else(|| panic!("missing `{}` in {}", path.join("."), json.encode()));
    }
    cur.as_u64()
        .unwrap_or_else(|| panic!("`{}` not a u64 in {}", path.join("."), json.encode()))
}

/// Runs `batch` serially on a fresh, uninterrupted daemon and returns
/// each job's canonical result bytes, in submission order — the
/// reference every recovery test diffs against.
fn reference_results(batch: &[(&str, u64)]) -> Vec<String> {
    let dir = unique_dir("reference");
    let daemon = Daemon::spawn(&dir, &["--workers", "1"], "");
    let mut conn = daemon.connect();
    let ids: Vec<u64> = batch.iter().map(|(w, b)| conn.submit(w, *b)).collect();
    let canon: Vec<String> = ids
        .iter()
        .map(|&id| {
            assert_eq!(conn.wait_terminal(id), "done");
            canonical_result(&conn.result(id))
        })
        .collect();
    drop(conn);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    canon
}

fn assert_wal_invariants(path: &std::path::Path) {
    let text = std::fs::read_to_string(path).expect("reading the WAL");
    let violations = check_invariants(&text);
    assert!(violations.is_empty(), "WAL invariant violations: {violations:?}");
}

/// The tentpole proof: SIGKILL the daemon mid-batch, restart it on the
/// same cache dir, and every acknowledged job still completes — with
/// results byte-identical to an uninterrupted run.
#[test]
fn sigkill_mid_batch_recovers_every_acked_job_byte_identically() {
    let dir = unique_dir("kill-recover");
    // Slow stage boundaries widen the window so the kill reliably lands
    // while jobs are still queued or running.
    let daemon = Daemon::spawn(&dir, &["--workers", "1"], "slow_job_ms=200");
    let mut conn = daemon.connect();
    let ids: Vec<u64> = BATCH.iter().map(|(w, b)| conn.submit(w, *b)).collect();
    // Every ack above means "this job is journaled"; the WAL must
    // already know all of them.
    std::thread::sleep(Duration::from_millis(100));
    drop(conn);
    daemon.sigkill();

    let wal = dir.join("preexecd.wal");
    assert!(wal.exists(), "no WAL after acked submissions");
    assert_wal_invariants(&wal);

    // Restart on the same cache dir, no chaos: replay re-enqueues
    // whatever had no terminal record and re-runs it.
    let daemon = Daemon::spawn(&dir, &["--workers", "1"], "");
    let mut conn = daemon.connect();
    let recovered: Vec<String> = ids
        .iter()
        .map(|&id| {
            assert_eq!(conn.wait_terminal(id), "done", "acked job {id} was lost");
            canonical_result(&conn.result(id))
        })
        .collect();
    drop(conn);
    daemon.shutdown();
    assert_wal_invariants(&wal);

    assert_eq!(
        recovered,
        reference_results(BATCH),
        "recovered results differ from an uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Overload: beyond the high-water mark submits are shed fast with the
/// typed `overloaded` error and a `retry_after_ms` hint, queue depth
/// stays bounded, and a backoff-honoring client eventually gets in.
#[test]
fn overload_sheds_typed_errors_and_keeps_the_queue_bounded() {
    let dir = unique_dir("overload");
    let daemon = Daemon::spawn(
        &dir,
        &["--workers", "1", "--queue-cap", "4", "--high-water", "3"],
        "slow_job_ms=400",
    );
    let mut conn = daemon.connect();

    // Flood: the first jobs are admitted, the rest shed. All responses
    // come back fast — shedding is the daemon *answering*, not stalling.
    let mut admitted = 0u64;
    let mut shed = 0u64;
    for i in 0..10 {
        let resp = conn
            .roundtrip(&format!(r#"{{"cmd":"submit","workload":"vpr.r","budget":{}}}"#, 40_000 + i));
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            admitted += 1;
        } else {
            assert_eq!(resp.get("code").and_then(Json::as_str), Some("overloaded"));
            let hint = resp
                .get("retry_after_ms")
                .and_then(Json::as_u64)
                .expect("overloaded rejection must carry retry_after_ms");
            assert!((25..=30_000).contains(&hint), "hint {hint} outside the clamp band");
            assert!(
                resp.get("error").and_then(Json::as_str).is_some_and(|e| e.contains("overloaded")),
                "{}",
                resp.encode()
            );
            shed += 1;
        }
        let stats = conn.ok(r#"{"cmd":"stats"}"#);
        assert!(
            u64_field(&stats, &["queue_depth"]) <= 4,
            "queue depth broke its bound: {}",
            stats.encode()
        );
    }
    assert!(admitted >= 1, "nothing was admitted");
    assert!(shed >= 1, "nothing was shed — the flood never hit the high-water mark");
    let stats = conn.ok(r#"{"cmd":"stats"}"#);
    assert_eq!(u64_field(&stats, &["admission", "shed"]), shed);
    assert_eq!(u64_field(&stats, &["admission", "high_water"]), 3);

    // A client honoring the backoff contract gets in once the backlog
    // drains.
    let mut backoff = Backoff::new(50, 2_000, 7);
    let deadline = Instant::now() + Duration::from_secs(120);
    let late_id = loop {
        let resp = conn.roundtrip(r#"{"cmd":"submit","workload":"mcf","budget":40000}"#);
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            break resp.get("job").and_then(Json::as_u64).expect("job id");
        }
        assert!(Instant::now() < deadline, "backoff client never admitted");
        let hint = resp.get("retry_after_ms").and_then(Json::as_u64);
        std::thread::sleep(Duration::from_millis(backoff.next_delay_ms(hint)));
    };
    assert_eq!(conn.wait_terminal(late_id), "done");
    drop(conn);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cancellation and deadlines: a queued job cancels immediately, a
/// running job stops at its next stage boundary, and an expired
/// `deadline_ms` cancels with `pipeline.deadline_exceeded`.
#[test]
fn cancel_verb_and_deadlines_stop_jobs_with_typed_codes() {
    let dir = unique_dir("cancel");
    let daemon = Daemon::spawn(&dir, &["--workers", "1"], "slow_job_ms=300");
    let mut conn = daemon.connect();

    let running = conn.submit("vpr.r", 30_000);
    let queued = conn.submit("mcf", 30_000);
    // A 1 ms deadline is long expired by the time the 1-worker pool
    // reaches this job: it must cancel at the entry check.
    let resp = conn.ok(r#"{"cmd":"submit","workload":"vpr.r","budget":32000,"deadline_ms":1}"#);
    let deadlined = resp.get("job").and_then(Json::as_u64).expect("job id");

    // Cancel the queued job: gone before any worker touches it.
    let resp = conn.ok(&format!(r#"{{"cmd":"cancel","job":{queued}}}"#));
    assert_eq!(resp.get("state").and_then(Json::as_str), Some("cancelled"));
    assert_eq!(resp.get("cancelling").and_then(Json::as_bool), Some(false));
    let resp = conn.ok(&format!(r#"{{"cmd":"result","job":{queued}}}"#));
    assert_eq!(resp.get("state").and_then(Json::as_str), Some("cancelled"));
    assert_eq!(resp.get("code").and_then(Json::as_str), Some("pipeline.cancelled"));

    // Cancel the running job: acknowledged as "cancelling", then it
    // stops at the next stage boundary.
    let resp = conn.ok(&format!(r#"{{"cmd":"cancel","job":{running}}}"#));
    if resp.get("state").and_then(Json::as_str) == Some("running") {
        assert_eq!(resp.get("cancelling").and_then(Json::as_bool), Some(true));
        assert_eq!(conn.wait_terminal(running), "cancelled");
        let resp = conn.ok(&format!(r#"{{"cmd":"status","job":{running}}}"#));
        assert_eq!(resp.get("code").and_then(Json::as_str), Some("pipeline.cancelled"));
    }
    // (If the job beat the cancel to the finish line the verb reports
    // its terminal state instead — also correct, just not the race this
    // test is after; the 300 ms stage delays make that vanishingly
    // rare.)

    // The deadlined job cancels itself with the deadline code.
    assert_eq!(conn.wait_terminal(deadlined), "cancelled");
    let resp = conn.ok(&format!(r#"{{"cmd":"result","job":{deadlined}}}"#));
    assert_eq!(
        resp.get("code").and_then(Json::as_str),
        Some("pipeline.deadline_exceeded"),
        "{}",
        resp.encode()
    );

    // Cancelling an already-finished job is an idempotent no-op report.
    let resp = conn.ok(&format!(r#"{{"cmd":"cancel","job":{queued}}}"#));
    assert_eq!(resp.get("state").and_then(Json::as_str), Some("cancelled"));

    let stats = conn.ok(r#"{"cmd":"stats"}"#);
    assert!(u64_field(&stats, &["jobs", "cancelled"]) >= 2, "{}", stats.encode());

    // Drain accounting: submit one more slow job, then shut down while
    // it is still in flight — the response must say what the daemon
    // still owes, and the drain must finish (not drop) it.
    let parting = conn.submit("mcf", 33_000);
    drop(conn);
    let drain = daemon.shutdown();
    let owed =
        u64_field(&drain, &["queued_jobs"]) + u64_field(&drain, &["running_jobs"]);
    assert!(owed >= 1, "drain reported nothing in flight: {}", drain.encode());
    let replay = preexec_serve::JournalReplay::from_text(
        &std::fs::read_to_string(dir.join("preexecd.wal")).expect("read WAL"),
    );
    let parting_job = replay.jobs.get(&parting).expect("parting job journaled");
    assert_eq!(
        parting_job.terminal.as_ref().map(|t| t.state.as_str()),
        Some("done"),
        "drain dropped the in-flight job"
    );
    assert_wal_invariants(&dir.join("preexecd.wal"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected worker panic mid-job (after the journal `start`, before
/// any terminal record) is contained — the daemon keeps serving — and
/// the journaled-but-unfinished job re-runs to completion on restart.
#[test]
fn worker_panic_mid_job_is_contained_and_rerun_on_restart() {
    let dir = unique_dir("panic");
    let daemon = Daemon::spawn(&dir, &["--workers", "1"], "panic_job=1");
    let mut conn = daemon.connect();
    let victim = conn.submit("vpr.r", 30_000);
    assert_eq!(conn.wait_terminal(victim), "failed");
    let resp = conn.ok(&format!(r#"{{"cmd":"status","job":{victim}}}"#));
    assert_eq!(resp.get("code").and_then(Json::as_str), Some("job_panicked"));

    // The daemon survived its worker: it still serves new work.
    let after = conn.submit("mcf", 30_000);
    assert_eq!(conn.wait_terminal(after), "done");
    drop(conn);
    daemon.shutdown();

    // The panic fired between `start` and any terminal record, so the
    // WAL still owes the victim a completion: restart (no chaos)
    // re-enqueues and finishes it.
    let daemon = Daemon::spawn(&dir, &["--workers", "1"], "");
    let mut conn = daemon.connect();
    assert_eq!(conn.wait_terminal(victim), "done", "panicked job was not re-run");
    let result = conn.result(victim);
    assert_eq!(result.get("workload").and_then(Json::as_str), Some("vpr.r"));
    // The finished job from before the restart is served from the
    // journal, not recomputed.
    let resp = conn.ok(&format!(r#"{{"cmd":"status","job":{after}}}"#));
    assert_eq!(resp.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(resp.get("restored").and_then(Json::as_bool), Some(true));
    drop(conn);
    daemon.shutdown();
    assert_wal_invariants(&dir.join("preexecd.wal"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// WAL corruption — a torn tail (killed mid-append), appended garbage,
/// a bit flip — must never stop the daemon from starting, and intact
/// records must still replay.
#[test]
fn corrupt_and_torn_journals_are_tolerated_on_replay() {
    let dir = unique_dir("wal-surgery");
    let daemon = Daemon::spawn(&dir, &["--workers", "1"], "");
    let mut conn = daemon.connect();
    let done_id = conn.submit("vpr.r", 30_000);
    assert_eq!(conn.wait_terminal(done_id), "done");
    let done_canon = canonical_result(&conn.result(done_id));
    drop(conn);
    daemon.shutdown();

    // Surgery: flip a bit in the middle, append garbage, tear the tail.
    let wal = dir.join("preexecd.wal");
    let text = std::fs::read_to_string(&wal).expect("read WAL");
    assert!(check_invariants(&text).is_empty());
    let mangled = fault::append_garbage(&fault::torn_tail(&fault::flip_bit(&text, 1, 30, 3)));
    std::fs::write(&wal, mangled).expect("write mangled WAL");

    // The daemon still starts; the done record (if it survived) serves
    // from the journal, and new submissions get fresh non-colliding ids.
    let daemon = Daemon::spawn(&dir, &["--workers", "1"], "");
    let mut conn = daemon.connect();
    let state = conn.wait_terminal(done_id);
    assert!(
        state == "done" || state == "failed",
        "job {done_id} in unexpected state {state} after WAL surgery"
    );
    if state == "done" {
        assert_eq!(canonical_result(&conn.result(done_id)), done_canon);
    }
    let fresh = conn.submit("mcf", 30_000);
    assert!(fresh > done_id, "fresh id {fresh} collides with replayed id space");
    assert_eq!(conn.wait_terminal(fresh), "done");
    drop(conn);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Failing every artifact-cache store must not fail jobs: results are
/// still computed, served, and journaled — the cache degrades to
/// recomputation.
#[test]
fn cache_store_faults_degrade_to_recomputation_not_failure() {
    let dir = unique_dir("cache-fault");
    let daemon = Daemon::spawn(&dir, &["--workers", "1"], "cache_store_fail=1");
    let mut conn = daemon.connect();
    let a = conn.submit("vpr.r", 30_000);
    assert_eq!(conn.wait_terminal(a), "done");
    let first = conn.result(a);
    // Identical resubmit: the failed store means a recompute, not a hit
    // — and bit-identical output regardless.
    let b = conn.submit("vpr.r", 30_000);
    assert_eq!(conn.wait_terminal(b), "done");
    let again = conn.ok(&format!(r#"{{"cmd":"result","job":{b}}}"#));
    let second = again.get("result").cloned().expect("result");
    assert_eq!(second.get("cache_hit").and_then(Json::as_bool), Some(false));
    assert_eq!(canonical_result(&first), canonical_result(&second));
    drop(conn);
    daemon.shutdown();
    assert_wal_invariants(&dir.join("preexecd.wal"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The CI smoke at scale (ignored by default; the chaos CI leg runs it
/// with `--include-ignored`): 50 jobs, SIGKILL at an arbitrary point
/// mid-batch, restart, and every result must match a serial
/// uninterrupted run byte for byte.
#[test]
#[ignore = "several-minute smoke; run by the CI chaos leg"]
fn fifty_job_kill_and_recover_smoke() {
    let batch: Vec<(&str, u64)> = (0..50)
        .map(|i| {
            let workload = ["vpr.r", "mcf", "twolf", "gcc", "parser"][i % 5];
            (workload, 20_000 + (i as u64 / 5) * 500)
        })
        .collect();

    let dir = unique_dir("smoke");
    let daemon = Daemon::spawn(&dir, &["--workers", "2"], "slow_job_ms=50");
    let mut conn = daemon.connect();
    let ids: Vec<u64> = batch.iter().map(|(w, b)| conn.submit(w, *b)).collect();
    // "At random": an arbitrary point while the batch is in flight. The
    // slow stages guarantee most of the batch is still pending.
    std::thread::sleep(Duration::from_millis(700));
    drop(conn);
    daemon.sigkill();
    assert_wal_invariants(&dir.join("preexecd.wal"));

    let daemon = Daemon::spawn(&dir, &["--workers", "2"], "");
    let mut conn = daemon.connect();
    let recovered: Vec<String> = ids
        .iter()
        .map(|&id| {
            assert_eq!(conn.wait_terminal(id), "done", "acked job {id} was lost");
            canonical_result(&conn.result(id))
        })
        .collect();
    drop(conn);
    daemon.shutdown();
    assert_wal_invariants(&dir.join("preexecd.wal"));

    assert_eq!(recovered, reference_results(&batch), "recovery diverged from the serial run");
    let _ = std::fs::remove_dir_all(&dir);
}
