//! `toolflow --profile` must report per-stage timings on stderr without
//! changing a byte of stdout — the CLI face of the observability layer's
//! no-perturbation contract.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::process::Command;

fn run_toolflow(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_toolflow"))
        .args(args)
        .output()
        .expect("running toolflow")
}

#[test]
fn profile_flag_reports_stages_without_touching_stdout() {
    let dir = std::env::temp_dir().join(format!("toolflow-profile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let plain_out = dir.join("plain.slices");
    let profiled_out = dir.join("profiled.slices");

    let plain = run_toolflow(&["vpr.r", "20000", plain_out.to_str().unwrap()]);
    assert!(plain.status.success(), "plain run failed: {plain:?}");
    let profiled =
        run_toolflow(&["--profile", "vpr.r", "20000", profiled_out.to_str().unwrap()]);
    assert!(profiled.status.success(), "profiled run failed: {profiled:?}");

    // stdout is byte-identical modulo the output path echoed in the
    // trace line; normalize that one difference away.
    let normalize = |bytes: &[u8], path: &str| {
        String::from_utf8(bytes.to_vec()).expect("utf-8 stdout").replace(path, "OUT")
    };
    assert_eq!(
        normalize(&plain.stdout, plain_out.to_str().unwrap()),
        normalize(&profiled.stdout, profiled_out.to_str().unwrap()),
        "--profile changed stdout"
    );
    // The artifacts are byte-identical too.
    assert_eq!(
        std::fs::read(&plain_out).expect("plain slices"),
        std::fs::read(&profiled_out).expect("profiled slices"),
        "--profile changed the written slice file"
    );

    // The profile table lands on stderr, with the instrumented stages.
    let stderr = String::from_utf8(profiled.stderr).expect("utf-8 stderr");
    assert!(stderr.contains("toolflow profile"), "no profile header:\n{stderr}");
    for needle in ["stage.trace", "stage.slice_build", "stage.score", "stage.solve", "par: calls="]
    {
        assert!(stderr.contains(needle), "missing `{needle}`:\n{stderr}");
    }
    // And the plain run printed none of it.
    let plain_err = String::from_utf8(plain.stderr).expect("utf-8 stderr");
    assert!(
        !plain_err.contains("toolflow profile"),
        "profile printed without --profile:\n{plain_err}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
