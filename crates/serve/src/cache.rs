//! Content-addressed artifact cache for trace/slice products.
//!
//! The expensive half of the pipeline — functional trace plus slice-tree
//! construction — depends only on (workload, input, trace configuration),
//! not on the machine or selection parameters. "Dynamic Slicing by
//! On-demand Re-execution"-style reuse therefore applies: the service
//! persists each (forest, stats) pair once, keyed by the FNV-1a-64 digest
//! of the trace inputs, and re-selection under new [`MachineParams`] skips
//! re-tracing entirely.
//!
//! On disk an entry is two sibling files under the cache directory:
//!
//! - `<digest>.slices` — the forest in the checksummed v2 slice-file
//!   format ([`preexec_slice::write_forest`]), so cache entries are
//!   integrity-checked and interoperable with `toolflow --read`;
//! - `<digest>.stats` — the [`RunStats`] as one line of JSON.
//!
//! Failure semantics follow DESIGN.md §9: a corrupt entry is *diagnosed*
//! through [`read_forest_lenient`], counted, and treated as a miss — the
//! job recomputes and overwrites; it never fails. Only a byte-identical
//! clean parse is served as a hit, because the service's contract is that
//! cached runs are bit-identical to direct ones. Writes are
//! temp-file-plus-rename so a crashed writer cannot leave a torn entry
//! under the final name, and the directory is created lazily on first
//! store.
//!
//! [`MachineParams`]: preexec_timing::MachineParams

use crate::json::Json;
use preexec_func::{LoadSiteStats, RunStats};
use preexec_obs::{Counter, Journal, Registry};
use preexec_slice::{read_forest_lenient, write_forest, SliceForest};
use preexec_workloads::InputSet;
use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Everything the trace+slice stage depends on: the cache key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceKey {
    /// Workload name (suite registry name).
    pub workload: String,
    /// Input set the workload was built with.
    pub input: InputSet,
    /// Slicing scope.
    pub scope: usize,
    /// Maximum stored slice length.
    pub max_slice_len: usize,
    /// Measured instruction budget.
    pub budget: u64,
    /// Warm-up instructions preceding the measured window.
    pub warmup: u64,
}

/// The canonical wire name of an input set.
pub fn input_name(input: InputSet) -> &'static str {
    match input {
        InputSet::Train => "train",
        InputSet::Test => "test",
        InputSet::Alt => "alt",
    }
}

/// Parses an input-set name (the inverse of [`input_name`]).
pub fn parse_input(name: &str) -> Option<InputSet> {
    match name {
        "train" => Some(InputSet::Train),
        "test" => Some(InputSet::Test),
        "alt" => Some(InputSet::Alt),
        _ => None,
    }
}

/// FNV-1a, 64-bit — same integrity-grade hash the slice-file header uses.
/// Also the shard ring's point hash ([`crate::shard::HashRing`]).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl TraceKey {
    /// The content-address of this key: FNV-1a-64 over a canonical
    /// rendering of every field (NUL-separated so no two distinct keys
    /// share a rendering).
    pub fn digest(&self) -> u64 {
        let canonical = format!(
            "{}\0{}\0{}\0{}\0{}\0{}",
            self.workload,
            input_name(self.input),
            self.scope,
            self.max_slice_len,
            self.budget,
            self.warmup
        );
        fnv1a64(canonical.as_bytes())
    }
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries served from disk.
    pub hits: u64,
    /// Lookups that found no (usable) entry.
    pub misses: u64,
    /// Entries removed to stay under the capacity bound.
    pub evictions: u64,
    /// Lookups that found an entry but could not parse it cleanly.
    pub corrupt: u64,
}

impl CacheStats {
    /// Hits over lookups, in [0, 1] (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The on-disk artifact cache. Thread-safe: lookups and stores touch
/// independent files and the counters are registry-backed atomics, so
/// workers share one instance behind an [`Arc`] without locking.
#[derive(Debug)]
pub struct ArtifactCache {
    dir: PathBuf,
    max_entries: usize,
    /// How old a `.tmp` staging file must be before an eviction scan
    /// treats it as an orphan (a live writer renames within moments).
    tmp_grace: std::time::Duration,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    corrupt: Arc<Counter>,
    orphan_stats: Arc<Counter>,
    journal: Arc<Journal>,
}

impl ArtifactCache {
    /// Creates a cache rooted at `dir`, holding at most `max_entries`
    /// entries (oldest evicted first), counting into the process-wide
    /// [`preexec_obs::global`] registry (`cache.hits`, `cache.misses`,
    /// `cache.evictions`, `cache.corrupt`, `cache.orphan_stats`). No
    /// filesystem work happens here — the directory is created lazily by
    /// the first [`store`](Self::store).
    pub fn new(dir: impl Into<PathBuf>, max_entries: usize) -> ArtifactCache {
        ArtifactCache::with_registry(dir, max_entries, preexec_obs::global())
    }

    /// [`new`](Self::new) counting into a caller-supplied registry —
    /// tests asserting exact counts use a private registry so parallel
    /// tests in the same process cannot pollute each other.
    pub fn with_registry(
        dir: impl Into<PathBuf>,
        max_entries: usize,
        registry: &Registry,
    ) -> ArtifactCache {
        ArtifactCache {
            dir: dir.into(),
            max_entries: max_entries.max(1),
            tmp_grace: std::time::Duration::from_secs(60),
            hits: registry.counter("cache.hits"),
            misses: registry.counter("cache.misses"),
            evictions: registry.counter("cache.evictions"),
            corrupt: registry.counter("cache.corrupt"),
            orphan_stats: registry.counter("cache.orphan_stats"),
            journal: registry.journal(),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn slices_path(&self, key: &TraceKey) -> PathBuf {
        self.slices_path_for(key.digest())
    }

    fn stats_path(&self, key: &TraceKey) -> PathBuf {
        self.stats_path_for(key.digest())
    }

    fn slices_path_for(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("{digest:016x}.slices"))
    }

    fn stats_path_for(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("{digest:016x}.stats"))
    }

    /// Looks up the artifacts for `key`. `None` (a counted miss) when the
    /// entry is absent or fails to parse cleanly; corruption additionally
    /// bumps the `corrupt` counter and removes the bad files so the
    /// recompute's store starts clean.
    pub fn load(&self, key: &TraceKey) -> Option<(SliceForest, RunStats)> {
        match self.try_load(key) {
            Some(artifacts) => {
                self.hits.inc();
                Some(artifacts)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    fn try_load(&self, key: &TraceKey) -> Option<(SliceForest, RunStats)> {
        let slices_path = self.slices_path(key);
        let text = std::fs::read_to_string(&slices_path).ok()?;
        // Lenient read is the fallback path required for corrupt entries:
        // it never panics, and its diagnostics tell us whether the entry
        // parsed byte-clean. Anything less than clean is recomputed — a
        // partially recovered forest would silently change selections.
        let recovered = read_forest_lenient(&text);
        if !recovered.is_clean() {
            self.corrupt.inc();
            self.journal.note(
                "cache_corrupt",
                &format!("slice file failed clean parse: {}", slices_path.display()),
            );
            let _ = std::fs::remove_file(&slices_path);
            let _ = std::fs::remove_file(self.stats_path(key));
            return None;
        }
        let stats_text = std::fs::read_to_string(self.stats_path(key)).ok()?;
        let stats = match Json::parse(&stats_text).ok().and_then(|j| stats_from_json(&j)) {
            Some(s) => s,
            None => {
                self.corrupt.inc();
                self.journal.note(
                    "cache_corrupt",
                    &format!("stats file failed to parse: {}", self.stats_path(key).display()),
                );
                let _ = std::fs::remove_file(&slices_path);
                let _ = std::fs::remove_file(self.stats_path(key));
                return None;
            }
        };
        Some((recovered.forest, stats))
    }

    /// Persists the artifacts for `key`, creating the cache directory if
    /// needed and evicting the oldest entries beyond the capacity bound.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (callers treat the cache as
    /// best-effort: a failed store degrades to recomputation next time).
    pub fn store(
        &self,
        key: &TraceKey,
        forest: &SliceForest,
        stats: &RunStats,
    ) -> io::Result<()> {
        if crate::chaos::plan().cache_store_fail {
            self.journal.note("chaos", "injected cache store fault");
            return Err(io::Error::other("chaos: injected cache store fault"));
        }
        std::fs::create_dir_all(&self.dir)?;
        write_atomically(&self.slices_path(key), &write_forest(forest))?;
        write_atomically(&self.stats_path(key), &stats_to_json(stats).encode())?;
        self.evict_excess();
        Ok(())
    }

    /// Removes the oldest entries (by modification time, ties broken by
    /// path so concurrent scans agree on the victim) until at most
    /// `max_entries` remain. The same scan sweeps two kinds of debris
    /// that would otherwise accumulate forever, invisible to the entry
    /// count: `.tmp` staging files orphaned by a crashed writer, and
    /// `.stats` files whose `.slices` sibling is gone (corrupt-read
    /// cleanup or a partially-completed eviction removes the pair
    /// non-atomically).
    fn evict_excess(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let now = std::time::SystemTime::now();
        let mut slices: Vec<(std::time::SystemTime, PathBuf)> = Vec::new();
        let mut slices_seen: HashSet<PathBuf> = HashSet::new();
        let mut stats_seen: Vec<PathBuf> = Vec::new();
        for e in entries.flatten() {
            let path = e.path();
            let mtime = e.metadata().and_then(|m| m.modified()).ok();
            if path.extension().is_some_and(|x| x == "tmp") {
                // Old enough that no live writer can still be about to
                // rename it (writers rename within moments of the write).
                let orphaned = mtime.is_none_or(|t| {
                    now.duration_since(t).is_ok_and(|age| age >= self.tmp_grace)
                });
                if orphaned {
                    let _ = std::fs::remove_file(&path);
                }
            } else if path.extension().is_some_and(|x| x == "slices") {
                slices_seen.insert(path.clone());
                if let Some(mtime) = mtime {
                    slices.push((mtime, path));
                }
            } else if path.extension().is_some_and(|x| x == "stats") {
                stats_seen.push(path);
            }
        }
        // `.stats` with no `.slices` sibling is unreachable (load reads
        // the slices first) and uncounted (the entry count enumerates
        // `.slices`). No grace period is needed: store writes `.slices`
        // before `.stats`, so a live writer's half-written entry is the
        // slices-without-stats case, never this one.
        for path in stats_seen {
            if !slices_seen.contains(&path.with_extension("slices")) {
                let _ = std::fs::remove_file(&path);
                self.orphan_stats.inc();
            }
        }
        if slices.len() <= self.max_entries {
            return;
        }
        // Lexicographic (mtime, path): filesystems with coarse timestamps
        // routinely give back-to-back stores identical mtimes, and a sort
        // keyed on mtime alone would then pick victims by directory order.
        slices.sort();
        let excess = slices.len() - self.max_entries;
        for (_, path) in slices.into_iter().take(excess) {
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(path.with_extension("stats"));
            self.evictions.inc();
        }
    }

    /// Reads the raw on-disk texts (`.slices`, `.stats`) of the entry
    /// with this digest — the owner side of the shard peer protocol's
    /// `cache_get`. No validation happens here: the *requesting* shard
    /// parses and validates before use (it must anyway — the bytes
    /// crossed a network), so validating twice would double the cost of
    /// every peer hit. No hit/miss counters either: the requester
    /// accounts peer traffic under its own `shard.peer_*` series.
    pub fn load_raw(&self, digest: u64) -> Option<(String, String)> {
        let slices = std::fs::read_to_string(self.slices_path_for(digest)).ok()?;
        let stats = std::fs::read_to_string(self.stats_path_for(digest)).ok()?;
        Some((slices, stats))
    }

    /// Persists raw artifact texts under this digest — the owner side of
    /// the shard peer protocol's `cache_put`. Unlike [`load_raw`]
    /// (where the requester validates), the *store* side must validate:
    /// a peer's corrupt upload would otherwise sit on disk until some
    /// future lookup pays the counted-miss cleanup for it.
    ///
    /// # Errors
    ///
    /// [`RawStoreError::Invalid`] when the payload fails validation (the
    /// peer maps it to the `shard.bad_payload` protocol code);
    /// [`RawStoreError::Io`] for filesystem failures.
    pub fn store_raw(
        &self,
        digest: u64,
        slices: &str,
        stats: &str,
    ) -> Result<(), RawStoreError> {
        if !read_forest_lenient(slices).is_clean() {
            return Err(RawStoreError::Invalid("slice text failed a clean parse"));
        }
        if Json::parse(stats).ok().and_then(|j| stats_from_json(&j)).is_none() {
            return Err(RawStoreError::Invalid("stats text failed to parse"));
        }
        std::fs::create_dir_all(&self.dir).map_err(RawStoreError::Io)?;
        write_atomically(&self.slices_path_for(digest), slices).map_err(RawStoreError::Io)?;
        write_atomically(&self.stats_path_for(digest), stats).map_err(RawStoreError::Io)?;
        self.evict_excess();
        Ok(())
    }

    /// A snapshot of the hit/miss/eviction/corruption counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            corrupt: self.corrupt.get(),
        }
    }
}

/// Why [`ArtifactCache::store_raw`] refused a payload.
#[derive(Debug)]
pub enum RawStoreError {
    /// The payload failed validation; carries the reason.
    Invalid(&'static str),
    /// The filesystem failed.
    Io(io::Error),
}

impl std::fmt::Display for RawStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RawStoreError::Invalid(why) => write!(f, "invalid artifact payload: {why}"),
            RawStoreError::Io(e) => write!(f, "artifact store failed: {e}"),
        }
    }
}

impl std::error::Error for RawStoreError {}

/// Serializes [`RunStats`] as one JSON object (load sites sorted by PC so
/// encoding is deterministic).
pub fn stats_to_json(stats: &RunStats) -> Json {
    let mut sites: Vec<_> = stats.load_sites.iter().collect();
    sites.sort_by_key(|(pc, _)| **pc);
    let sites = sites
        .into_iter()
        .map(|(pc, s)| {
            Json::Arr(vec![
                Json::num_u64(u64::from(*pc)),
                Json::num_u64(s.execs),
                Json::num_u64(s.l1_misses),
                Json::num_u64(s.l2_misses),
            ])
        })
        .collect();
    Json::obj(vec![
        ("insts", Json::num_u64(stats.insts)),
        ("total_steps", Json::num_u64(stats.total_steps)),
        ("loads", Json::num_u64(stats.loads)),
        ("stores", Json::num_u64(stats.stores)),
        ("branches", Json::num_u64(stats.branches)),
        ("taken_branches", Json::num_u64(stats.taken_branches)),
        ("l1d_misses", Json::num_u64(stats.l1d_misses)),
        ("l2_misses", Json::num_u64(stats.l2_misses)),
        ("timed_out", Json::Bool(stats.timed_out)),
        ("load_sites", Json::Arr(sites)),
    ])
}

/// Deserializes [`stats_to_json`]'s output; `None` on any missing or
/// mistyped field.
pub fn stats_from_json(json: &Json) -> Option<RunStats> {
    let mut stats = RunStats::new();
    stats.insts = json.get("insts")?.as_u64()?;
    stats.total_steps = json.get("total_steps")?.as_u64()?;
    stats.loads = json.get("loads")?.as_u64()?;
    stats.stores = json.get("stores")?.as_u64()?;
    stats.branches = json.get("branches")?.as_u64()?;
    stats.taken_branches = json.get("taken_branches")?.as_u64()?;
    stats.l1d_misses = json.get("l1d_misses")?.as_u64()?;
    stats.l2_misses = json.get("l2_misses")?.as_u64()?;
    stats.timed_out = json.get("timed_out")?.as_bool()?;
    for site in json.get("load_sites")?.as_arr()? {
        let fields = site.as_arr()?;
        if fields.len() != 4 {
            return None;
        }
        let pc = preexec_isa::Pc::try_from(fields[0].as_u64()?).ok()?;
        stats.load_sites.insert(
            pc,
            LoadSiteStats {
                execs: fields[1].as_u64()?,
                l1_misses: fields[2].as_u64()?,
                l2_misses: fields[3].as_u64()?,
            },
        );
    }
    Some(stats)
}

/// Writes `contents` to `path` via a sibling temp file, an fsync, and an
/// atomic rename, so readers never observe a torn entry — *including
/// after a power loss*: without the fsync, the rename can be durable
/// while the data blocks are not, leaving a clean-looking entry full of
/// zeros under the final name. The temp name embeds the target's
/// extension: the `.slices` and `.stats` halves of one entry must not
/// share a staging file.
pub(crate) fn write_atomically(path: &Path, contents: &str) -> io::Result<()> {
    use std::io::Write;
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(contents.as_bytes())?;
    f.sync_data()?;
    drop(f);
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_func::{run_trace, TraceConfig};
    use preexec_slice::SliceForestBuilder;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("preexec-serve-cache-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A cache counting into its own registry: tests in this binary run
    /// concurrently, so exact-count assertions need isolation from the
    /// global registry.
    fn isolated_cache(dir: &Path, max_entries: usize) -> (ArtifactCache, Registry) {
        let registry = Registry::new();
        let cache = ArtifactCache::with_registry(dir, max_entries, &registry);
        (cache, registry)
    }

    fn sample_artifacts() -> (SliceForest, RunStats) {
        let p = preexec_isa::assemble(
            "t",
            "li r1, 0x100000\n li r2, 0\n li r3, 512\n\
             top: bge r2, r3, done\n ld r4, 0(r1)\n addi r1, r1, 64\n addi r2, r2, 1\n j top\n\
             done: halt",
        )
        .unwrap();
        let mut b = SliceForestBuilder::new(1024, 16);
        let full = run_trace(&p, &TraceConfig::default(), |d| b.observe(d));
        let mut stats = RunStats::new();
        stats.insts = full.total_steps;
        stats.total_steps = full.total_steps;
        stats.l2_misses = 17;
        stats.record_load(4, preexec_mem::MemLevel::Memory);
        (b.finish(), stats)
    }

    fn key(workload: &str) -> TraceKey {
        TraceKey {
            workload: workload.to_string(),
            input: InputSet::Train,
            scope: 1024,
            max_slice_len: 16,
            budget: 10_000,
            warmup: 0,
        }
    }

    #[test]
    fn digests_separate_distinct_keys() {
        let base = key("vpr.r");
        let mut other = key("vpr.r");
        other.budget += 1;
        assert_ne!(base.digest(), other.digest());
        assert_ne!(base.digest(), key("mcf").digest());
        assert_eq!(base.digest(), key("vpr.r").digest());
        let swapped = TraceKey { input: InputSet::Alt, ..key("vpr.r") };
        assert_ne!(base.digest(), swapped.digest());
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = tmp_dir("round-trip");
        let (cache, _) = isolated_cache(&dir, 8);
        let (forest, stats) = sample_artifacts();
        let k = key("vpr.r");
        assert!(cache.load(&k).is_none(), "cold cache must miss");
        cache.store(&k, &forest, &stats).expect("store");
        let (forest2, stats2) = cache.load(&k).expect("hit");
        assert_eq!(forest2.num_trees(), forest.num_trees());
        assert_eq!(forest2.sample_insts(), forest.sample_insts());
        assert_eq!(stats2.insts, stats.insts);
        assert_eq!(stats2.l2_misses, stats.l2_misses);
        assert_eq!(stats2.load_sites.len(), stats.load_sites.len());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.corrupt), (1, 1, 0));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_a_counted_miss_not_a_failure() {
        let dir = tmp_dir("corrupt");
        let (cache, registry) = isolated_cache(&dir, 8);
        let (forest, stats) = sample_artifacts();
        let k = key("vpr.r");
        cache.store(&k, &forest, &stats).expect("store");
        // Truncate the slice file mid-payload: checksum now mismatches.
        let path = cache.slices_path(&k);
        let text = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");
        assert!(cache.load(&k).is_none(), "corrupt entry must miss");
        assert_eq!(cache.stats().corrupt, 1);
        // The corruption is journaled for the metrics verb.
        let events = registry.journal().recent();
        assert!(
            events.iter().any(|e| e.kind == "cache_corrupt"),
            "corruption must be journaled, got {events:?}"
        );
        // The bad entry was removed; a fresh store works and hits again.
        cache.store(&k, &forest, &stats).expect("re-store");
        assert!(cache.load(&k).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_filled_entry_under_the_final_name_is_a_counted_miss() {
        // The power-loss artifact the fsync-before-rename guards against:
        // the rename was durable but the data blocks were not, so the
        // *final* name holds zeros of the right length — no `.tmp`
        // suffix to give it away. The lenient reader must diagnose it
        // and the cache must recover by recomputing, never serve it.
        let dir = tmp_dir("partial-write");
        let (cache, registry) = isolated_cache(&dir, 8);
        let (forest, stats) = sample_artifacts();
        let k = key("vpr.r");
        cache.store(&k, &forest, &stats).expect("store");
        let path = cache.slices_path(&k);
        let len = std::fs::metadata(&path).expect("meta").len() as usize;
        std::fs::write(&path, "\0".repeat(len)).expect("zero-fill");
        assert!(cache.load(&k).is_none(), "zero-filled entry must miss");
        assert_eq!(cache.stats().corrupt, 1);
        assert!(registry.journal().recent().iter().any(|e| e.kind == "cache_corrupt"));
        // The bad pair was removed; recompute-and-overwrite hits again.
        cache.store(&k, &forest, &stats).expect("re-store");
        assert!(cache.load(&k).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_stats_file_also_misses() {
        let dir = tmp_dir("corrupt-stats");
        let (cache, _) = isolated_cache(&dir, 8);
        let (forest, stats) = sample_artifacts();
        let k = key("gap");
        cache.store(&k, &forest, &stats).expect("store");
        std::fs::write(cache.stats_path(&k), "{ not json").expect("mangle");
        assert!(cache.load(&k).is_none());
        assert_eq!(cache.stats().corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_bounds_the_entry_count() {
        let dir = tmp_dir("evict");
        let (cache, _) = isolated_cache(&dir, 2);
        let (forest, stats) = sample_artifacts();
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            let mut k = key(name);
            k.budget = 1000 + i as u64;
            cache.store(&k, &forest, &stats).expect("store");
        }
        let remaining = std::fs::read_dir(&dir)
            .expect("dir")
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "slices"))
            .count();
        assert_eq!(remaining, 2);
        assert_eq!(cache.stats().evictions, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_scan_sweeps_orphaned_tmp_files() {
        let dir = tmp_dir("tmp-orphans");
        let (mut cache, _) = isolated_cache(&dir, 8);
        let (forest, stats) = sample_artifacts();
        cache.store(&key("a"), &forest, &stats).expect("store");
        // A staging file a crashed writer left behind.
        let orphan = dir.join("deadbeefdeadbeef.slices.tmp");
        std::fs::write(&orphan, "torn half-write").expect("plant orphan");
        // Within the grace period the scan must leave it alone (it could
        // be a live writer about to rename).
        cache.store(&key("b"), &forest, &stats).expect("store");
        assert!(orphan.exists(), "fresh .tmp swept inside the grace period");
        // Past the grace period it is an orphan and gets swept.
        cache.tmp_grace = std::time::Duration::ZERO;
        cache.store(&key("c"), &forest, &stats).expect("store");
        assert!(!orphan.exists(), "orphaned .tmp survived the scan");
        // Real entries are untouched (no spurious evictions either).
        assert!(cache.load(&key("a")).is_some());
        assert_eq!(cache.stats().evictions, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphaned_stats_files_are_swept_on_the_next_store() {
        let dir = tmp_dir("stats-orphans");
        let (cache, registry) = isolated_cache(&dir, 8);
        let (forest, stats) = sample_artifacts();
        cache.store(&key("a"), &forest, &stats).expect("store");
        // Simulate a partially-completed eviction / corrupt-read cleanup:
        // the `.slices` half of an entry is gone, its `.stats` survives.
        let k = key("victim");
        cache.store(&k, &forest, &stats).expect("store");
        std::fs::remove_file(cache.slices_path(&k)).expect("drop slices half");
        assert!(cache.stats_path(&k).exists());
        // The next store's eviction scan sweeps the orphan.
        cache.store(&key("b"), &forest, &stats).expect("store");
        assert!(
            !cache.stats_path(&k).exists(),
            "orphaned .stats survived the eviction scan"
        );
        assert_eq!(registry.counter("cache.orphan_stats").get(), 1);
        // Intact entries keep both halves and still hit.
        assert!(cache.load(&key("a")).is_some());
        assert!(cache.load(&key("b")).is_some());
        assert_eq!(cache.stats().evictions, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn raw_texts_round_trip_between_caches_and_reject_garbage() {
        // The shard peer protocol moves entries as raw file texts; a
        // second cache (another shard's local store) must accept them
        // and serve the identical artifacts as a normal hit.
        let src_dir = tmp_dir("raw-src");
        let dst_dir = tmp_dir("raw-dst");
        let (src, _) = isolated_cache(&src_dir, 8);
        let (dst, _) = isolated_cache(&dst_dir, 8);
        let (forest, stats) = sample_artifacts();
        let k = key("vpr.r");
        src.store(&k, &forest, &stats).expect("store");
        let (slices_text, stats_text) = src.load_raw(k.digest()).expect("raw read");
        dst.store_raw(k.digest(), &slices_text, &stats_text).expect("raw store");
        let (forest2, stats2) = dst.load(&k).expect("hit after raw store");
        assert_eq!(forest2.num_trees(), forest.num_trees());
        assert_eq!(stats2.insts, stats.insts);
        assert_eq!(stats2.load_sites, stats.load_sites);

        // Absent digests read as None; invalid payloads are refused and
        // leave nothing on disk.
        assert!(src.load_raw(0xdead_beef).is_none());
        assert!(matches!(
            dst.store_raw(999, "garbage", &stats_text),
            Err(RawStoreError::Invalid(_))
        ));
        assert!(matches!(
            dst.store_raw(999, &slices_text, "{ not json"),
            Err(RawStoreError::Invalid(_))
        ));
        assert!(dst.load_raw(999).is_none());
        let _ = std::fs::remove_dir_all(&src_dir);
        let _ = std::fs::remove_dir_all(&dst_dir);
    }

    #[test]
    fn stats_json_round_trips() {
        let (_, stats) = sample_artifacts();
        let back = stats_from_json(&stats_to_json(&stats)).expect("round-trip");
        assert_eq!(back.insts, stats.insts);
        assert_eq!(back.load_sites, stats.load_sites);
        assert!(stats_from_json(&Json::Null).is_none());
        assert!(stats_from_json(&Json::obj(vec![("insts", Json::Num(1.0))])).is_none());
    }
}
