//! Consistent-hash sharding of the artifact cache across daemon
//! processes (DESIGN.md §15.3).
//!
//! Every cache key digest has exactly one *owning* shard, chosen by a
//! [`HashRing`]: each shard contributes a fixed set of virtual points
//! (FNV-1a of `"shard:<i>:vnode:<v>"`, decorrelated by a splitmix64
//! finalizer), and a key belongs to the shard
//! owning the first point at or after the key's digest, wrapping. Since
//! a shard's points depend only on its index, growing the ring from N to
//! N+1 shards moves *only* the keys the new shard's points capture
//! (~1/(N+1) of the space) — every other key keeps its owner. That
//! minimal-remapping property is pinned by property test.
//!
//! [`ShardedCache`] layers ownership onto the local [`ArtifactCache`]:
//! lookups and stores for self-owned keys stay local; remote-owned keys
//! go to the owner over the wire protocol's `cache_get`/`cache_put`
//! verbs (raw file texts, newline-JSON, same port as client traffic).
//! Every peer path degrades: a dead, slow, or corrupt peer is counted
//! (`shard.peer_errors`) and the caller falls back to the local cache —
//! and from there to recomputation — so shard loss costs latency, never
//! correctness and never a client-visible error.

use crate::cache::{fnv1a64, stats_from_json, stats_to_json, ArtifactCache, TraceKey};
use crate::json::Json;
use preexec_func::RunStats;
use preexec_obs::{Counter, Journal, Registry};
use preexec_slice::{read_forest_lenient, write_forest, SliceForest};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Virtual points per shard. Enough to keep the expected imbalance of
/// the mixed point set low; small enough that ring construction and
/// lookups are trivial.
pub const DEFAULT_VNODES: usize = 64;

/// Finalizing mix (splitmix64's) applied to every value placed on or
/// looked up against the ring. FNV-1a of short, near-identical strings
/// ("shard:0:vnode:1" vs "shard:0:vnode:2") leaves the high bits — the
/// bits ring ordering sorts by — strongly correlated, which clumps the
/// arcs and starves shards. Full avalanche restores the uniform spread
/// the balance bound in tests/ring_props.rs pins. Applied to both sides
/// of the lookup, it cannot change which digest maps to which arc class,
/// only decorrelate the placement.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring over shard indices `0..shards`.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(point, shard)` pairs; ties broken by shard index so
    /// duplicate points resolve deterministically.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Builds the ring for `shards` shards with `vnodes` virtual points
    /// each (both clamped to at least 1).
    pub fn new(shards: usize, vnodes: usize) -> HashRing {
        let shards = shards.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for v in 0..vnodes {
                let point = mix64(fnv1a64(format!("shard:{shard}:vnode:{v}").as_bytes()));
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `digest`: the first ring point at or after it,
    /// wrapping past the top of the u64 space.
    pub fn owner(&self, digest: u64) -> usize {
        let digest = mix64(digest);
        let idx = self.points.partition_point(|&(p, _)| p < digest);
        let idx = if idx == self.points.len() { 0 } else { idx };
        self.points[idx].1
    }
}

/// Peer-visible counters of one shard's remote cache traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Artifacts served by a peer shard.
    pub peer_hits: u64,
    /// Peer lookups that found nothing (the artifact was never built).
    pub peer_misses: u64,
    /// Failed peer exchanges (dead shard, timeout, corrupt payload) —
    /// each one degraded to the local cache or a recompute.
    pub peer_errors: u64,
    /// Artifacts shipped to their owning shard after a local compute.
    pub peer_puts: u64,
}

/// A lazily-connected client for one peer shard, shared by worker
/// threads. One connection is kept warm behind a mutex (peer exchanges
/// are short and rare relative to job runtimes); a failed exchange on a
/// reused connection retries once on a fresh one, so a restarted peer
/// costs one reconnect, not an error.
struct PeerClient {
    addr: String,
    conn: Mutex<Option<BufReader<TcpStream>>>,
}

/// How long a peer connect may take before the exchange is abandoned.
const PEER_CONNECT_TIMEOUT: Duration = Duration::from_millis(250);
/// Read/write timeout on an established peer connection.
const PEER_IO_TIMEOUT: Duration = Duration::from_millis(2_000);

impl PeerClient {
    fn new(addr: String) -> PeerClient {
        PeerClient { addr, conn: Mutex::new(None) }
    }

    fn connect(&self) -> io::Result<BufReader<TcpStream>> {
        let addr = self
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other(format!("peer address resolves to nothing: {}", self.addr)))?;
        let stream = TcpStream::connect_timeout(&addr, PEER_CONNECT_TIMEOUT)?;
        stream.set_read_timeout(Some(PEER_IO_TIMEOUT))?;
        stream.set_write_timeout(Some(PEER_IO_TIMEOUT))?;
        let _ = stream.set_nodelay(true);
        Ok(BufReader::new(stream))
    }

    /// One request/response exchange. Retries exactly once (with a fresh
    /// connection) when the failure happened on a reused connection.
    fn rpc(&self, line: &str) -> io::Result<Json> {
        let mut guard = self
            .conn
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let reused = guard.is_some();
        let mut conn = match guard.take() {
            Some(c) => c,
            None => self.connect()?,
        };
        match Self::exchange(&mut conn, line) {
            Ok(resp) => {
                *guard = Some(conn);
                Ok(resp)
            }
            Err(first) if reused => {
                // The warm connection may simply be stale (peer
                // restarted); one fresh attempt before reporting.
                let mut conn = self.connect().map_err(|_| first)?;
                let resp = Self::exchange(&mut conn, line)?;
                *guard = Some(conn);
                Ok(resp)
            }
            Err(e) => Err(e),
        }
    }

    fn exchange(conn: &mut BufReader<TcpStream>, line: &str) -> io::Result<Json> {
        let stream = conn.get_mut();
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        let mut resp = String::new();
        let n = conn.read_line(&mut resp)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed connection"));
        }
        Json::parse(resp.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("peer sent bad JSON: {e}")))
    }

    /// Fetches the raw artifact texts for `digest` from this peer.
    /// `Ok(None)` is a clean peer miss.
    fn cache_get(&self, digest: u64) -> io::Result<Option<(String, String)>> {
        let resp = self.rpc(&format!(r#"{{"cmd":"cache_get","key":"{digest:016x}"}}"#))?;
        if resp.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(io::Error::other(format!(
                "peer refused cache_get: {}",
                resp.get("error").and_then(Json::as_str).unwrap_or("no error message")
            )));
        }
        if resp.get("hit").and_then(Json::as_bool) != Some(true) {
            return Ok(None);
        }
        let slices = resp.get("slices").and_then(Json::as_str).map(str::to_string);
        let stats = resp.get("stats").and_then(Json::as_str).map(str::to_string);
        match (slices, stats) {
            (Some(s), Some(t)) => Ok(Some((s, t))),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "peer hit without slices/stats payload",
            )),
        }
    }

    /// Ships raw artifact texts to this peer for persistence.
    fn cache_put(&self, digest: u64, slices: &str, stats: &str) -> io::Result<()> {
        let line = Json::obj(vec![
            ("cmd", Json::str("cache_put")),
            ("key", Json::str(format!("{digest:016x}"))),
            ("slices", Json::str(slices)),
            ("stats", Json::str(stats)),
        ])
        .encode();
        let resp = self.rpc(&line)?;
        if resp.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(io::Error::other(format!(
                "peer refused cache_put: {}",
                resp.get("error").and_then(Json::as_str).unwrap_or("no error message")
            )));
        }
        // `ok` without `stored` means the owner's disk rejected the
        // write: the artifact is nowhere durable unless we keep it.
        if resp.get("stored").and_then(Json::as_bool) != Some(true) {
            return Err(io::Error::other("peer accepted but did not store"));
        }
        Ok(())
    }
}

struct Topology {
    ring: HashRing,
    self_index: usize,
    /// One client per shard index; `peers[self_index]` exists but is
    /// never used (self-owned keys stay local).
    peers: Vec<PeerClient>,
}

/// The artifact cache with shard awareness. Without a topology it is a
/// transparent wrapper over the local [`ArtifactCache`]; with one, keys
/// route to their owning shard and every remote path degrades locally.
pub struct ShardedCache {
    local: ArtifactCache,
    topology: Option<Topology>,
    peer_hits: Arc<Counter>,
    peer_misses: Arc<Counter>,
    peer_errors: Arc<Counter>,
    peer_puts: Arc<Counter>,
    journal: Arc<Journal>,
}

impl ShardedCache {
    /// A single-process cache: every key is local. The `shard.peer_*`
    /// counters still exist (at zero) so the metrics surface is uniform.
    pub fn local_only(local: ArtifactCache) -> ShardedCache {
        ShardedCache::build(local, None, preexec_obs::global())
    }

    /// A shard-cluster cache: this process is `self_index` within
    /// `peer_addrs` (the full cluster address list, self included).
    pub fn sharded(
        local: ArtifactCache,
        self_index: usize,
        peer_addrs: &[String],
        registry: &Registry,
    ) -> ShardedCache {
        let topology = Topology {
            ring: HashRing::new(peer_addrs.len(), DEFAULT_VNODES),
            self_index: self_index.min(peer_addrs.len().saturating_sub(1)),
            peers: peer_addrs.iter().cloned().map(PeerClient::new).collect(),
        };
        ShardedCache::build(local, Some(topology), registry)
    }

    fn build(local: ArtifactCache, topology: Option<Topology>, registry: &Registry) -> ShardedCache {
        ShardedCache {
            local,
            topology,
            peer_hits: registry.counter("shard.peer_hits"),
            peer_misses: registry.counter("shard.peer_misses"),
            peer_errors: registry.counter("shard.peer_errors"),
            peer_puts: registry.counter("shard.peer_puts"),
            journal: registry.journal(),
        }
    }

    /// The local cache under this shard view (the `cache_get`/`cache_put`
    /// server side answers from here directly).
    pub fn local(&self) -> &ArtifactCache {
        &self.local
    }

    /// `(self_index, shard_count)` when sharded.
    pub fn shard_info(&self) -> Option<(usize, usize)> {
        self.topology.as_ref().map(|t| (t.self_index, t.ring.shards()))
    }

    /// A snapshot of the peer-traffic counters.
    pub fn peer_stats(&self) -> ShardStats {
        ShardStats {
            peer_hits: self.peer_hits.get(),
            peer_misses: self.peer_misses.get(),
            peer_errors: self.peer_errors.get(),
            peer_puts: self.peer_puts.get(),
        }
    }

    /// Looks up artifacts for `key`, consulting the owning shard when
    /// that is a peer. Peer failure of any kind falls back to the local
    /// cache (which may hold the entry from a past degraded store) and
    /// from there to a normal counted miss.
    pub fn load(&self, key: &TraceKey) -> Option<(SliceForest, RunStats)> {
        let Some(topo) = &self.topology else {
            return self.local.load(key);
        };
        let digest = key.digest();
        let owner = topo.ring.owner(digest);
        if owner == topo.self_index {
            return self.local.load(key);
        }
        match topo.peers[owner].cache_get(digest) {
            Ok(Some((slices, stats_text))) => {
                // The bytes crossed a network: validate exactly like a
                // local disk read before trusting them.
                let recovered = read_forest_lenient(&slices);
                let stats =
                    Json::parse(&stats_text).ok().and_then(|j| stats_from_json(&j));
                match (recovered.is_clean(), stats) {
                    (true, Some(stats)) => {
                        self.peer_hits.inc();
                        Some((recovered.forest, stats))
                    }
                    _ => {
                        self.peer_errors.inc();
                        self.journal.note(
                            "shard_peer_corrupt",
                            &format!("shard {owner} served a corrupt artifact for {digest:016x}"),
                        );
                        self.local.load(key)
                    }
                }
            }
            Ok(None) => {
                self.peer_misses.inc();
                self.local.load(key)
            }
            Err(e) => {
                self.peer_errors.inc();
                self.journal.note(
                    "shard_peer_error",
                    &format!("cache_get {digest:016x} from shard {owner} failed: {e}"),
                );
                self.local.load(key)
            }
        }
    }

    /// Persists artifacts for `key` on the owning shard. When the owner
    /// is a peer and unreachable, the entry is kept locally instead —
    /// this shard can then serve its own future lookups (and the peer's
    /// `cache_get` misses stay clean misses, not errors).
    ///
    /// # Errors
    ///
    /// Propagates local filesystem errors; callers treat stores as
    /// best-effort either way.
    pub fn store(&self, key: &TraceKey, forest: &SliceForest, stats: &RunStats) -> io::Result<()> {
        let Some(topo) = &self.topology else {
            return self.local.store(key, forest, stats);
        };
        let digest = key.digest();
        let owner = topo.ring.owner(digest);
        if owner == topo.self_index {
            return self.local.store(key, forest, stats);
        }
        let slices = write_forest(forest);
        let stats_text = stats_to_json(stats).encode();
        match topo.peers[owner].cache_put(digest, &slices, &stats_text) {
            Ok(()) => {
                self.peer_puts.inc();
                Ok(())
            }
            Err(e) => {
                self.peer_errors.inc();
                self.journal.note(
                    "shard_peer_error",
                    &format!("cache_put {digest:016x} to shard {owner} failed: {e}"),
                );
                self.local.store(key, forest, stats)
            }
        }
    }
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("ShardedCache");
        d.field("local", &self.local.dir());
        match &self.topology {
            Some(t) => d
                .field("self_index", &t.self_index)
                .field("shards", &t.ring.shards())
                .finish(),
            None => d.field("topology", &"local-only").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn ring_owner_is_deterministic_and_total() {
        let ring = HashRing::new(3, DEFAULT_VNODES);
        assert_eq!(ring.shards(), 3);
        for digest in [0u64, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX] {
            let owner = ring.owner(digest);
            assert!(owner < 3);
            assert_eq!(owner, ring.owner(digest), "owner must be stable");
            assert_eq!(owner, HashRing::new(3, DEFAULT_VNODES).owner(digest), "ring rebuild");
        }
    }

    #[test]
    fn single_shard_ring_owns_everything() {
        let ring = HashRing::new(1, 4);
        for digest in [0u64, 42, u64::MAX] {
            assert_eq!(ring.owner(digest), 0);
        }
        // Degenerate parameters clamp instead of panicking.
        assert_eq!(HashRing::new(0, 0).owner(7), 0);
    }

    #[test]
    fn growing_the_ring_only_reroutes_keys_to_the_new_shard() {
        let old = HashRing::new(3, DEFAULT_VNODES);
        let new = HashRing::new(4, DEFAULT_VNODES);
        let mut moved = 0u32;
        const KEYS: u32 = 4_000;
        for i in 0..KEYS {
            let digest = fnv1a64(format!("key-{i}").as_bytes());
            let before = old.owner(digest);
            let after = new.owner(digest);
            if before != after {
                assert_eq!(after, 3, "key may only move to the joining shard");
                moved += 1;
            }
        }
        // ~1/4 of the keyspace belongs to the new shard; generous bounds
        // (the tight statistical version lives in the property tests).
        assert!(moved > 0, "the new shard captured nothing");
        assert!(moved < KEYS / 2, "far too many keys moved: {moved}/{KEYS}");
    }
}
