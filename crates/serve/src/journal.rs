//! The durable job journal: a checksummed, append-only write-ahead log
//! that makes `preexecd` crash-safe.
//!
//! Every job-state transition the daemon acknowledges is appended here
//! *before* the client hears about it, so a `kill -9` at any point loses
//! nothing that was acked: on restart the daemon replays the journal,
//! restores finished jobs' results, and re-enqueues every
//! acked-but-unfinished job under its original id. The pipeline is
//! deterministic, so the re-run completes byte-identically (modulo
//! wall-clock fields — see [`canonical_result`]).
//!
//! ## Record format
//!
//! One record per line:
//!
//! ```text
//! <fnv1a64-hex16> <json>\n
//! ```
//!
//! The checksum is FNV-1a-64 (the same integrity hash the slice-file
//! format and the artifact cache use) over the JSON bytes. The JSON is
//! one object with a monotonically increasing `seq`, an `ev` event name,
//! and per-event fields:
//!
//! | `ev` | fields | meaning |
//! |------|--------|---------|
//! | `submit` | `job`, `spec` | the job was acked to a client |
//! | `start` | `job` | a worker began executing it |
//! | `done` | `job`, `state` (`done`/`timed_out`), `result` | finished with output |
//! | `failed` | `job`, `error`, `code` | finished with a typed error or panic |
//! | `cancelled` | `job`, `error`, `code` | cancelled or deadline-expired |
//! | `shutdown` | `queued`, `running` (id arrays) | graceful drain began |
//!
//! ## Failure semantics
//!
//! Reading is lenient (DESIGN.md §9): a record whose checksum or JSON
//! fails to parse — the torn tail a crash mid-append leaves, or media
//! corruption — is counted and skipped, never fatal. Replay is
//! order-insensitive per job (a fast worker can append `done` before the
//! dispatcher's `submit` lands). Appends are fsynced so an acked record
//! survives power loss, and append *failures* (disk full) are counted
//! and journaled in the in-memory observability journal but never take
//! the daemon down — durability degrades, service continues.

use crate::json::Json;
use preexec_obs::Counter;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// FNV-1a, 64-bit — the workspace's integrity-grade hash.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Formats one journal line (no trailing newline).
fn encode_record(json: &Json) -> String {
    let body = json.encode();
    format!("{:016x} {body}", fnv1a64(body.as_bytes()))
}

/// Parses one journal line; `None` when the checksum or JSON is bad.
fn decode_record(line: &str) -> Option<Json> {
    let (ck, body) = line.split_once(' ')?;
    if ck.len() != 16 {
        return None;
    }
    let want = u64::from_str_radix(ck, 16).ok()?;
    if fnv1a64(body.as_bytes()) != want {
        return None;
    }
    Json::parse(body).ok()
}

/// The append half: an open journal file the daemon writes transitions
/// to. Thread-safe — appends serialize on an internal mutex, and each
/// append is flushed and fsynced before it returns.
#[derive(Debug)]
pub struct JobJournal {
    path: PathBuf,
    file: Mutex<File>,
    seq: AtomicU64,
    appends: Arc<Counter>,
    append_errors: Arc<Counter>,
}

impl JobJournal {
    /// Opens (creating if needed) the journal at `path` for appending.
    /// `next_seq` is the first sequence number to stamp — pass
    /// [`JournalReplay::next_seq`] so numbering continues across
    /// restarts.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (unwritable directory, ...).
    pub fn open(path: impl Into<PathBuf>, next_seq: u64) -> std::io::Result<JobJournal> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let registry = preexec_obs::global();
        Ok(JobJournal {
            path,
            file: Mutex::new(file),
            seq: AtomicU64::new(next_seq.max(1)),
            appends: registry.counter("journal.appends"),
            append_errors: registry.counter("journal.append_errors"),
        })
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record, stamping `seq`, then flushes and fsyncs.
    /// Best-effort: an I/O failure is counted (`journal.append_errors`)
    /// and noted in the observability journal, but never propagated —
    /// a full disk must degrade durability, not availability.
    fn append(&self, ev: &str, mut fields: Vec<(&str, Json)>) {
        // Take the file lock before assigning `seq`, so sequence numbers
        // are strictly increasing in file order (an invariant the chaos
        // checker verifies).
        let mut file = lock(&self.file);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut pairs = vec![("seq", Json::num_u64(seq)), ("ev", Json::str(ev))];
        pairs.append(&mut fields);
        let mut line = encode_record(&Json::obj(pairs));
        line.push('\n');
        let result = file
            .write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .and_then(|()| file.sync_data());
        match result {
            Ok(()) => self.appends.inc(),
            Err(e) => {
                self.append_errors.inc();
                preexec_obs::global()
                    .journal()
                    .note("journal_append_failed", &format!("{}: {e}", self.path.display()));
            }
        }
    }

    /// Records that job `id` (with the given submit-shaped spec) was
    /// acknowledged to a client.
    pub fn submit(&self, id: u64, spec: &Json) {
        self.append("submit", vec![("job", Json::num_u64(id)), ("spec", spec.clone())]);
    }

    /// Records that a worker began executing job `id`.
    pub fn start(&self, id: u64) {
        self.append("start", vec![("job", Json::num_u64(id))]);
    }

    /// Records that job `id` finished with output, in `state`
    /// (`"done"` or `"timed_out"`), carrying the full result payload so
    /// a restarted daemon can still serve it.
    pub fn done(&self, id: u64, state: &str, result: &Json) {
        self.append(
            "done",
            vec![
                ("job", Json::num_u64(id)),
                ("state", Json::str(state)),
                ("result", result.clone()),
            ],
        );
    }

    /// Records that job `id` finished with a typed error or panic.
    pub fn failed(&self, id: u64, error: &str, code: &str) {
        self.append(
            "failed",
            vec![
                ("job", Json::num_u64(id)),
                ("error", Json::str(error)),
                ("code", Json::str(code)),
            ],
        );
    }

    /// Records that job `id` was cancelled (client `cancel` or deadline).
    pub fn cancelled(&self, id: u64, error: &str, code: &str) {
        self.append(
            "cancelled",
            vec![
                ("job", Json::num_u64(id)),
                ("error", Json::str(error)),
                ("code", Json::str(code)),
            ],
        );
    }

    /// Records the start of a graceful drain with the ids still queued
    /// and running — paired with the WAL's replay rules this is what
    /// makes a `shutdown` racing a crash lose nothing.
    pub fn shutdown(&self, queued: &[u64], running: &[u64]) {
        let ids = |v: &[u64]| Json::Arr(v.iter().map(|&i| Json::num_u64(i)).collect());
        self.append("shutdown", vec![("queued", ids(queued)), ("running", ids(running))]);
    }
}

/// How a replayed job finished, when it did.
#[derive(Debug, Clone)]
pub struct TerminalRecord {
    /// The wire state name: `done`, `timed_out`, `failed`, `cancelled`.
    pub state: String,
    /// The full result payload (`done`/`timed_out` only).
    pub result: Option<Json>,
    /// The error message (`failed`/`cancelled` only).
    pub error: Option<String>,
    /// The stable error code (`failed`/`cancelled` only).
    pub code: Option<String>,
}

/// Everything the journal knows about one job after replay.
#[derive(Debug, Clone, Default)]
pub struct ReplayedJob {
    /// The submit-shaped spec (absent if the submit record was lost to
    /// corruption but a later record referenced the id).
    pub spec: Option<Json>,
    /// How (and whether) the job finished. Re-runs overwrite: the last
    /// terminal record wins.
    pub terminal: Option<TerminalRecord>,
    /// How many times a worker started it (>1 means a crash mid-run).
    pub starts: u64,
}

impl ReplayedJob {
    /// An acked job that never reached a terminal state — the replay
    /// must re-enqueue it.
    pub fn is_pending(&self) -> bool {
        self.terminal.is_none() && self.spec.is_some()
    }
}

/// The read half: a lenient, order-insensitive fold of the journal into
/// per-job state.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Per-job state, keyed by id (sorted, so replay order is stable).
    pub jobs: BTreeMap<u64, ReplayedJob>,
    /// Valid records read.
    pub records: u64,
    /// Lines that failed the checksum or JSON parse and were skipped.
    pub corrupt_records: u64,
    /// One past the highest `seq` seen (the next journal's first stamp).
    pub next_seq: u64,
    /// The highest job id seen (the scheduler resumes numbering above
    /// it).
    pub max_job_id: u64,
}

impl JournalReplay {
    /// Reads and folds the journal at `path`; a missing file is an empty
    /// (fresh-start) replay, and unreadable or corrupt records are
    /// counted, not fatal.
    pub fn read(path: &Path) -> JournalReplay {
        match std::fs::read_to_string(path) {
            Ok(text) => JournalReplay::from_text(&text),
            Err(_) => JournalReplay { next_seq: 1, ..JournalReplay::default() },
        }
    }

    /// Folds journal text (see [`read`](Self::read)).
    pub fn from_text(text: &str) -> JournalReplay {
        let mut replay = JournalReplay { next_seq: 1, ..JournalReplay::default() };
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let Some(rec) = decode_record(line) else {
                replay.corrupt_records += 1;
                continue;
            };
            replay.records += 1;
            if let Some(seq) = rec.get("seq").and_then(Json::as_u64) {
                replay.next_seq = replay.next_seq.max(seq + 1);
            }
            let Some(ev) = rec.get("ev").and_then(Json::as_str) else {
                replay.corrupt_records += 1;
                continue;
            };
            if ev == "shutdown" {
                continue;
            }
            let Some(id) = rec.get("job").and_then(Json::as_u64) else {
                replay.corrupt_records += 1;
                continue;
            };
            replay.max_job_id = replay.max_job_id.max(id);
            let job = replay.jobs.entry(id).or_default();
            match ev {
                "submit" => job.spec = rec.get("spec").cloned(),
                "start" => job.starts += 1,
                "done" => {
                    job.terminal = Some(TerminalRecord {
                        state: rec
                            .get("state")
                            .and_then(Json::as_str)
                            .unwrap_or("done")
                            .to_string(),
                        result: rec.get("result").cloned(),
                        error: None,
                        code: None,
                    });
                }
                "failed" | "cancelled" => {
                    job.terminal = Some(TerminalRecord {
                        state: if ev == "failed" { "failed" } else { "cancelled" }.to_string(),
                        result: None,
                        error: rec.get("error").and_then(Json::as_str).map(String::from),
                        code: rec.get("code").and_then(Json::as_str).map(String::from),
                    });
                }
                _ => replay.corrupt_records += 1,
            }
        }
        replay
    }

    /// The acked-but-unfinished jobs, in id order, with their specs —
    /// what a restarted daemon re-enqueues.
    pub fn pending(&self) -> Vec<(u64, &Json)> {
        self.jobs
            .iter()
            .filter(|(_, j)| j.is_pending())
            .filter_map(|(&id, j)| j.spec.as_ref().map(|s| (id, s)))
            .collect()
    }
}

/// What [`compact_wal`] did, for the daemon's shutdown log line and the
/// compaction tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Jobs whose state survived into the compacted journal.
    pub jobs_kept: usize,
    /// Of those, jobs still pending (acked, never finished).
    pub pending_kept: usize,
    /// Valid records in the journal before compaction.
    pub records_before: u64,
    /// Corrupt lines dropped by the lenient fold.
    pub corrupt_dropped: u64,
    /// Records written to the compacted journal.
    pub records_after: u64,
    /// File size before, in bytes.
    pub bytes_before: u64,
    /// File size after, in bytes.
    pub bytes_after: u64,
}

/// Checkpoint-and-truncate compaction: rewrites the journal at `path` to
/// the minimal record set that replays to the same per-job state, fixing
/// the WAL's unbounded growth across long daemon lifetimes.
///
/// The compacted journal keeps, per job in id order:
///
/// - the `submit` record (when its spec survived) — **always**, even for
///   finished jobs. Terminal-state redundancy is deliberate: replay only
///   needs one record per finished job, but a single torn line must
///   degrade a job to "re-run deterministically" (submit survives) or
///   "finished, result served from the terminal record" (terminal
///   survives) — never to "never heard of this id". The id allocator's
///   high-water mark (`max_job_id`) survives single-line loss the same
///   way;
/// - the latest terminal record (`done`/`failed`/`cancelled`), re-runs
///   folded away.
///
/// Everything else — `start` records, `shutdown` markers, superseded
/// re-run terminals, corrupt lines — is dropped. Sequence numbers are
/// renumbered from 1 (per-file monotonicity is the invariant; absolute
/// values are not), and the rewrite is atomic (tmp + rename), so a crash
/// mid-compaction leaves the old journal intact.
///
/// # Errors
///
/// Propagates filesystem errors. A missing journal is a no-op success.
pub fn compact_wal(path: &Path) -> std::io::Result<CompactionStats> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(CompactionStats::default())
        }
        Err(e) => return Err(e),
    };
    let replay = JournalReplay::from_text(&text);
    let mut out = String::new();
    let mut seq = 0u64;
    let mut append = |ev: &str, fields: Vec<(&str, Json)>| {
        seq += 1;
        let mut pairs = vec![("seq", Json::num_u64(seq)), ("ev", Json::str(ev))];
        pairs.extend(fields);
        out.push_str(&encode_record(&Json::obj(pairs)));
        out.push('\n');
    };
    let mut pending_kept = 0usize;
    for (&id, job) in &replay.jobs {
        if let Some(spec) = &job.spec {
            append("submit", vec![("job", Json::num_u64(id)), ("spec", spec.clone())]);
        }
        match &job.terminal {
            None => pending_kept += 1,
            Some(t) => match t.state.as_str() {
                s @ ("failed" | "cancelled") => append(
                    s,
                    vec![
                        ("job", Json::num_u64(id)),
                        ("error", Json::str(t.error.clone().unwrap_or_default())),
                        ("code", Json::str(t.code.clone().unwrap_or_default())),
                    ],
                ),
                state => {
                    let mut fields =
                        vec![("job", Json::num_u64(id)), ("state", Json::str(state))];
                    if let Some(result) = &t.result {
                        fields.push(("result", result.clone()));
                    }
                    append("done", fields);
                }
            },
        }
    }
    crate::cache::write_atomically(path, &out)?;
    Ok(CompactionStats {
        jobs_kept: replay.jobs.len(),
        pending_kept,
        records_before: replay.records,
        corrupt_dropped: replay.corrupt_records,
        records_after: seq,
        bytes_before: text.len() as u64,
        bytes_after: out.len() as u64,
    })
}

/// The canonical (deterministic) rendering of a result payload: the
/// payload minus the wall-clock fields that legitimately differ between
/// two runs of the same job (`stage_us`) and the cache-dependent
/// `cache_hit` flag. Two executions of one job must agree on this string
/// byte for byte — the crash-recovery contract.
pub fn canonical_result(result: &Json) -> String {
    match result {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| k != "stage_us" && k != "cache_hit")
                .cloned()
                .collect(),
        )
        .encode(),
        other => other.encode(),
    }
}

/// The chaos harness's journal invariant checker. Returns a list of
/// human-readable violations (empty = healthy):
///
/// 1. `seq` strictly increases in file order (valid records only —
///    corruption may eat lines, never reorder them);
/// 2. no job id carries two `submit` records (an acked id is never
///    reused);
/// 3. no job finishes `done` twice with *different* canonical result
///    bytes (a crash may legitimately re-run a job — the re-run must be
///    byte-identical);
/// 4. no record mixes into an unknown event name.
pub fn check_invariants(text: &str) -> Vec<String> {
    let mut violations = Vec::new();
    let mut last_seq: Option<u64> = None;
    let mut submits: BTreeMap<u64, u64> = BTreeMap::new();
    let mut done_bytes: BTreeMap<u64, String> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let Some(rec) = decode_record(line) else {
            continue; // corruption is counted elsewhere, not a violation
        };
        if let Some(seq) = rec.get("seq").and_then(Json::as_u64) {
            if let Some(prev) = last_seq {
                if seq <= prev {
                    violations
                        .push(format!("line {}: seq {seq} after {prev}", lineno + 1));
                }
            }
            last_seq = Some(seq);
        } else {
            violations.push(format!("line {}: record without seq", lineno + 1));
        }
        let ev = rec.get("ev").and_then(Json::as_str).unwrap_or("");
        if !matches!(ev, "submit" | "start" | "done" | "failed" | "cancelled" | "shutdown") {
            violations.push(format!("line {}: unknown event `{ev}`", lineno + 1));
            continue;
        }
        let id = rec.get("job").and_then(Json::as_u64);
        match (ev, id) {
            ("submit", Some(id)) => {
                let n = submits.entry(id).or_insert(0);
                *n += 1;
                if *n > 1 {
                    violations.push(format!("line {}: job {id} submitted twice", lineno + 1));
                }
            }
            ("done", Some(id)) => {
                if let Some(result) = rec.get("result") {
                    let bytes = canonical_result(result);
                    match done_bytes.get(&id) {
                        Some(prev) if *prev != bytes => violations.push(format!(
                            "line {}: job {id} re-ran with different result bytes",
                            lineno + 1
                        )),
                        _ => {
                            done_bytes.insert(id, bytes);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("preexec-journal-{}-{name}.wal", std::process::id()))
    }

    fn spec() -> Json {
        Json::obj(vec![("workload", Json::str("mcf")), ("budget", Json::num_u64(40_000))])
    }

    #[test]
    fn append_then_replay_round_trips_job_lifecycles() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let journal = JobJournal::open(&path, 1).expect("open");
        let payload = Json::obj(vec![("speedup", Json::Num(1.25))]);
        journal.submit(1, &spec());
        journal.submit(2, &spec());
        journal.submit(3, &spec());
        journal.start(1);
        journal.done(1, "done", &payload);
        journal.start(2);
        journal.failed(2, "boom", "pipeline.exec");
        journal.start(3);
        // Job 3 never finishes: the crash window.
        drop(journal);

        let replay = JournalReplay::read(&path);
        assert_eq!(replay.records, 8);
        assert_eq!(replay.corrupt_records, 0);
        assert_eq!(replay.max_job_id, 3);
        assert_eq!(replay.next_seq, 9);
        let done = &replay.jobs[&1];
        let t = done.terminal.as_ref().expect("terminal");
        assert_eq!(t.state, "done");
        assert_eq!(t.result.as_ref().map(Json::encode), Some(payload.encode()));
        assert!(!done.is_pending());
        let failed = &replay.jobs[&2];
        let t = failed.terminal.as_ref().expect("terminal");
        assert_eq!((t.state.as_str(), t.code.as_deref()), ("failed", Some("pipeline.exec")));
        let pending = replay.pending();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].0, 3);
        assert!(check_invariants(&std::fs::read_to_string(&path).expect("read")).is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopening_continues_sequence_numbers() {
        let path = tmp_path("reopen");
        let _ = std::fs::remove_file(&path);
        let j1 = JobJournal::open(&path, 1).expect("open");
        j1.submit(1, &spec());
        drop(j1);
        let replay = JournalReplay::read(&path);
        let j2 = JobJournal::open(&path, replay.next_seq).expect("reopen");
        j2.start(1);
        drop(j2);
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(check_invariants(&text).is_empty(), "seq must keep increasing");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_and_torn_records_are_skipped_not_fatal() {
        let journal_lines = {
            let path = tmp_path("corrupt");
            let _ = std::fs::remove_file(&path);
            let j = JobJournal::open(&path, 1).expect("open");
            j.submit(1, &spec());
            j.submit(2, &spec());
            j.done(1, "done", &Json::obj(vec![("speedup", Json::Num(1.0))]));
            let text = std::fs::read_to_string(&path).expect("read");
            let _ = std::fs::remove_file(&path);
            text
        };
        // Flip a byte inside the second record's body: checksum fails.
        let mut lines: Vec<String> = journal_lines.lines().map(String::from).collect();
        lines[1] = lines[1].replace("mcf", "mcg");
        let tampered = lines.join("\n");
        let replay = JournalReplay::from_text(&tampered);
        assert_eq!(replay.corrupt_records, 1);
        assert_eq!(replay.records, 2);
        assert!(replay.jobs[&1].terminal.is_some());
        // Torn tail: a crash mid-append leaves half a line.
        let torn = format!("{journal_lines}0123abc");
        let replay = JournalReplay::from_text(&torn);
        assert_eq!(replay.corrupt_records, 1);
        assert_eq!(replay.records, 3);
        // Truncation mid-record drops only that record.
        let cut = &journal_lines[..journal_lines.len() - 10];
        let replay = JournalReplay::from_text(cut);
        assert_eq!(replay.corrupt_records, 1);
        assert_eq!(replay.jobs[&1].terminal.is_none(), true);
        assert_eq!(replay.pending().len(), 2, "1 lost its done record, 2 never had one");
    }

    #[test]
    fn out_of_order_done_before_submit_still_folds() {
        // A fast worker's `done` can hit the file before the dispatcher's
        // `submit`. Replay is order-insensitive.
        let path = tmp_path("ooo");
        let _ = std::fs::remove_file(&path);
        let j = JobJournal::open(&path, 1).expect("open");
        j.done(5, "done", &Json::obj(vec![("speedup", Json::Num(2.0))]));
        j.submit(5, &spec());
        drop(j);
        let replay = JournalReplay::read(&path);
        let job = &replay.jobs[&5];
        assert!(job.spec.is_some() && job.terminal.is_some());
        assert!(!job.is_pending());
        assert!(replay.pending().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn canonical_result_strips_wall_clock_fields() {
        let a = Json::obj(vec![
            ("speedup", Json::Num(1.5)),
            ("cache_hit", Json::Bool(false)),
            ("stage_us", Json::obj(vec![("trace", Json::num_u64(120))])),
        ]);
        let b = Json::obj(vec![
            ("speedup", Json::Num(1.5)),
            ("cache_hit", Json::Bool(true)),
            ("stage_us", Json::obj(vec![("trace", Json::num_u64(0))])),
        ]);
        assert_eq!(canonical_result(&a), canonical_result(&b));
        let c = Json::obj(vec![("speedup", Json::Num(2.5))]);
        assert_ne!(canonical_result(&a), canonical_result(&c));
    }

    #[test]
    fn compaction_preserves_replay_state_and_shrinks_the_file() {
        let path = tmp_path("compact");
        let _ = std::fs::remove_file(&path);
        let j = JobJournal::open(&path, 1).expect("open");
        let payload = Json::obj(vec![("speedup", Json::Num(1.5))]);
        // A noisy lifetime: re-runs, failures, a cancel, a pending job,
        // and shutdown markers — everything compaction should boil down.
        for id in 1..=6u64 {
            j.submit(id, &spec());
        }
        for id in 1..=5u64 {
            j.start(id);
        }
        j.done(1, "done", &payload);
        j.start(1); // crash re-run...
        j.done(1, "done", &payload); // ...byte-identical second terminal
        j.done(2, "timed_out", &payload);
        j.failed(3, "boom", "job_panicked");
        j.cancelled(4, "client cancel", "cancelled");
        j.done(5, "done", &payload);
        j.shutdown(&[6], &[]);
        // Job 6 stays pending: acked, never started.
        drop(j);

        let before_text = std::fs::read_to_string(&path).expect("read");
        let before = JournalReplay::from_text(&before_text);
        let stats = compact_wal(&path).expect("compact");
        let after_text = std::fs::read_to_string(&path).expect("read");
        let after = JournalReplay::from_text(&after_text);

        // Replay equivalence: same jobs, same terminal states, same
        // canonical result bytes, same pending set, same id high-water.
        assert_eq!(after.jobs.len(), before.jobs.len());
        assert_eq!(after.max_job_id, before.max_job_id);
        assert_eq!(
            after.pending().iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            before.pending().iter().map(|(id, _)| *id).collect::<Vec<_>>(),
        );
        for (id, b) in &before.jobs {
            let a = &after.jobs[id];
            match (&b.terminal, &a.terminal) {
                (None, None) => {}
                (Some(bt), Some(at)) => {
                    assert_eq!(bt.state, at.state, "job {id}");
                    assert_eq!(
                        bt.result.as_ref().map(canonical_result),
                        at.result.as_ref().map(canonical_result),
                        "job {id}"
                    );
                    assert_eq!((&bt.error, &bt.code), (&at.error, &at.code), "job {id}");
                }
                other => panic!("job {id}: terminal mismatch {other:?}"),
            }
            assert_eq!(a.spec.is_some(), b.spec.is_some(), "job {id}");
        }
        // The compacted file is smaller, invariant-clean, and keeps the
        // submit+terminal redundancy: exactly 2 records per finished job,
        // 1 per pending job.
        assert!(stats.bytes_after < stats.bytes_before, "{stats:?}");
        assert_eq!(stats.records_after, 5 * 2 + 1);
        assert_eq!((stats.jobs_kept, stats.pending_kept), (6, 1));
        assert!(check_invariants(&after_text).is_empty());
        assert_eq!(after.corrupt_records, 0);
        // Seqs renumber from 1 and a reopened journal continues cleanly.
        assert_eq!(after.next_seq, stats.records_after + 1);
        let j2 = JobJournal::open(&path, after.next_seq).expect("reopen");
        j2.submit(7, &spec());
        drop(j2);
        assert!(check_invariants(&std::fs::read_to_string(&path).expect("read")).is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_is_idempotent_and_bounds_growth_across_generations() {
        let path = tmp_path("compact-gen");
        let _ = std::fs::remove_file(&path);
        let payload = Json::obj(vec![("speedup", Json::Num(2.0))]);
        // Many daemon generations, each running a batch to completion and
        // compacting on shutdown; only the *pending-free* history should
        // accumulate — i.e. the file stays proportional to job count, not
        // to (jobs × lifecycle records × generations).
        let mut next_id = 1u64;
        let mut sizes = Vec::new();
        for _generation in 0..3 {
            let replay = JournalReplay::read(&path);
            let j = JobJournal::open(&path, replay.next_seq).expect("open");
            for _ in 0..4 {
                let id = next_id;
                next_id += 1;
                j.submit(id, &spec());
                j.start(id);
                j.done(id, "done", &payload);
            }
            j.shutdown(&[], &[]);
            drop(j);
            compact_wal(&path).expect("compact");
            sizes.push(std::fs::metadata(&path).expect("meta").len());
        }
        // 4, 8, 12 finished jobs → linear growth in the compacted file.
        assert!(sizes[1] > sizes[0] && sizes[2] > sizes[1]);
        let per_job = sizes[0] as f64 / 4.0;
        assert!(
            (sizes[2] as f64) < per_job * 12.0 * 1.25,
            "compacted size must stay ~linear in jobs: {sizes:?}"
        );
        // Idempotent: compacting a compacted journal is byte-stable.
        let once = std::fs::read_to_string(&path).expect("read");
        let stats = compact_wal(&path).expect("recompact");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), once);
        assert_eq!(stats.records_before, stats.records_after);
        // A missing journal is a clean no-op.
        let _ = std::fs::remove_file(&path);
        assert_eq!(compact_wal(&path).expect("missing ok"), CompactionStats::default());
    }

    #[test]
    fn a_single_torn_line_in_a_compacted_journal_never_loses_an_id() {
        // The redundancy rationale pinned as a test: whichever single
        // line of a finished job's (submit, terminal) pair is lost, the
        // id still replays (as pending-for-rerun or as finished).
        let path = tmp_path("compact-torn");
        let _ = std::fs::remove_file(&path);
        let j = JobJournal::open(&path, 1).expect("open");
        j.submit(9, &spec());
        j.start(9);
        j.done(9, "done", &Json::obj(vec![("speedup", Json::Num(1.1))]));
        drop(j);
        compact_wal(&path).expect("compact");
        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "submit + terminal");
        for lost in 0..lines.len() {
            let surviving: Vec<&str> =
                (0..lines.len()).filter(|&i| i != lost).map(|i| lines[i]).collect();
            let replay = JournalReplay::from_text(&surviving.join("\n"));
            assert_eq!(replay.max_job_id, 9, "losing line {lost} must not lose the id");
            let job = &replay.jobs[&9];
            assert!(
                job.terminal.is_some() || job.is_pending(),
                "losing line {lost} must leave the job servable or re-runnable"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn invariant_checker_flags_reordered_and_diverging_records() {
        let rec = |seq: u64, ev: &str, extra: Vec<(&str, Json)>| {
            let mut pairs = vec![("seq", Json::num_u64(seq)), ("ev", Json::str(ev))];
            pairs.extend(extra);
            encode_record(&Json::obj(pairs))
        };
        // Healthy: re-run with identical canonical bytes.
        let payload = Json::obj(vec![("speedup", Json::Num(1.5))]);
        let healthy = [
            rec(1, "submit", vec![("job", Json::num_u64(1)), ("spec", spec())]),
            rec(2, "done", vec![("job", Json::num_u64(1)), ("result", payload.clone())]),
            rec(3, "start", vec![("job", Json::num_u64(1))]),
            rec(4, "done", vec![("job", Json::num_u64(1)), ("result", payload)]),
        ]
        .join("\n");
        assert!(check_invariants(&healthy).is_empty());
        // Diverging re-run.
        let diverged = [
            rec(1, "done", vec![
                ("job", Json::num_u64(1)),
                ("result", Json::obj(vec![("speedup", Json::Num(1.5))])),
            ]),
            rec(2, "done", vec![
                ("job", Json::num_u64(1)),
                ("result", Json::obj(vec![("speedup", Json::Num(9.0))])),
            ]),
        ]
        .join("\n");
        assert_eq!(check_invariants(&diverged).len(), 1);
        // Non-monotone seq.
        let reordered = [
            rec(5, "start", vec![("job", Json::num_u64(1))]),
            rec(4, "start", vec![("job", Json::num_u64(1))]),
        ]
        .join("\n");
        assert_eq!(check_invariants(&reordered).len(), 1);
        // Duplicate submit.
        let dup = [
            rec(1, "submit", vec![("job", Json::num_u64(1)), ("spec", spec())]),
            rec(2, "submit", vec![("job", Json::num_u64(1)), ("spec", spec())]),
        ]
        .join("\n");
        assert_eq!(check_invariants(&dup).len(), 1);
    }
}
