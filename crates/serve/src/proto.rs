//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response line per request. Every response
//! carries `"protocol_version"` ([`PROTOCOL_VERSION`]) and `"ok"`:
//! `true` with the payload, or `false` with a human-readable `"error"`
//! message *and* a stable machine-readable `"code"` (see
//! [`ProtoError::code`] — messages may be reworded between releases,
//! codes may not).
//!
//! | `cmd` | fields | response payload |
//! |-------|--------|------------------|
//! | `submit` | `workload` (required), `input`, `budget`, `warmup`, `scope`, `max_slice_len`, `max_pthread_len`, `optimize`, `merge`, `width`, `mem_latency`, `model_miss_latency`, `model_width`, plus a nested `policy` object (`slice_mode`, `checkpoint_every`, `screening`, `streaming`, `adaptive`, `deadline_ms`) | `job` id (+ `deprecated_fields` when flat v5 policy fields were used) |
//! | `submit_batch` | `jobs`: a non-empty array of submit objects | `jobs`: array of ids, in order |
//! | `status` | `job` | `state` (+ `error` when failed) |
//! | `result` | `job` | `state`, `cache_hit`, `result{...}` |
//! | `cancel` | `job` | `state` after the attempt (+ `cancelling: true` when the job is mid-run and will stop at its next stage boundary) |
//! | `stats` | — | queue/worker/cache/stage-latency report |
//! | `metrics` | — | full metrics registry: `counters`, `gauges`, `histograms`, `events`, plus a Prometheus-style `prometheus` text rendering |
//! | `cache_get` | `key` (16 hex digits) | `hit`, plus `slices`/`stats` artifact text on a hit — the shard peer protocol (DESIGN.md §15.3) |
//! | `cache_put` | `key`, `slices`, `stats` | `stored: true` |
//! | `shutdown` | — | `shutting_down: true` with the `queued`/`running` counts the drain will finish (journaled, so nothing is silently lost) |
//!
//! Pipelining: any request may carry an `id` field (any JSON value);
//! the response echoes it verbatim, so a client may keep N requests in
//! flight on one connection and match responses explicitly instead of
//! by arrival order (responses do also arrive in request order).
//!
//! Overload: past the admission high-water mark, `submit` fails fast
//! with code `overloaded` and a `retry_after_ms` hint (DESIGN.md §14.3).
//! `submit_batch` is admitted or shed *as a whole*: one `overloaded`
//! decision (and one `retry_after_ms`) for the entire batch — partial
//! batch admission would force clients to diff which jobs got in.
//!
//! Submit fields default to [`PipelineConfig::paper_default`] at the
//! given budget (default 120 000 instructions); `width` and
//! `mem_latency` override the corresponding [`MachineParams`] fields,
//! the `model_*` fields the selection model's cross-validation knobs.
//!
//! Policy fields (slicing mode, screening, streaming, adaptive
//! selection, deadline) live in the nested `policy` object since
//! version 6. The flat v5 spellings `slice_mode`, `checkpoint_every`,
//! and `deadline_ms` still parse through a compat shim: their use is
//! echoed back in the submit response's `deprecated_fields` array, and
//! a flat field that contradicts the nested object is rejected with
//! code `config.conflicting_policy`. Journals written by a v5 daemon
//! replay unchanged — recovery re-parses the journaled spec through
//! the same shim.
//!
//! [`MachineParams`]: preexec_timing::MachineParams

use crate::cache::parse_input;
use crate::json::Json;
use crate::scheduler::{JobId, SubmitError};
use crate::service::{JobOutput, JobSpec};
use preexec_experiments::pipeline::pct;
use preexec_experiments::{
    AdaptiveConfig, PipelineConfig, PipelineError, PolicySpec, SlicingMode,
    DEFAULT_CHECKPOINT_EVERY,
};
use preexec_workloads::InputSet;
use std::fmt;

/// Wire-protocol version stamped on every response. Bumped whenever a
/// response's shape changes incompatibly; version 2 introduced the
/// `code` field on errors and this stamp itself; version 3 added the
/// `cancel` verb, `deadline_ms`, the `cancelled` job state, the
/// `overloaded` rejection with `retry_after_ms`, and the drain counts in
/// the `shutdown` response; version 4 added request-`id` echo
/// (pipelining), the `submit_batch` verb, and the `cache_get`/
/// `cache_put` shard-peer verbs; version 5 added the `slice_mode` /
/// `checkpoint_every` submit fields and the `config.scope_too_large`
/// admission rejection for scopes past the per-mode caps; version 6
/// added the nested `policy` submit object (screening, streaming,
/// adaptive selection), the `deprecated_fields` response note for the
/// flat v5 policy spellings, and the `config.conflicting_policy`
/// rejection when flat and nested values disagree.
pub const PROTOCOL_VERSION: u64 = 6;

/// Largest slicing scope admitted in `"windowed"` mode: the sliding
/// window keeps the whole scope resident, so past this the daemon would
/// commit to gigabytes of window for one job. Larger scopes must opt
/// into `"ondemand"` slicing, whose residency is checkpoint-bounded.
pub const MAX_WINDOWED_SCOPE: u64 = 1 << 24;

/// Largest slicing scope admitted at all (`"ondemand"` mode). Beyond
/// this even sequence-number bookkeeping is outside anything the trace
/// budget could produce — such a request is a typo, not a plan.
pub const MAX_SCOPE: u64 = 1 << 32;

/// A protocol-level failure: why a request line could not be parsed or
/// served. [`code`](ProtoError::code) is the stable contract; the
/// [`Display`](fmt::Display) message is advisory.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// The line was not valid JSON (carries the parser's message).
    BadJson(String),
    /// `cmd` named no known verb.
    UnknownCmd(String),
    /// A field was missing, null when required, or mistyped.
    BadField {
        /// The offending field name.
        field: &'static str,
        /// What the field must be, e.g. `"a string"`.
        expected: &'static str,
    },
    /// The submitted workload is not in the suite (carries the resolver's
    /// message, which lists the valid names).
    UnknownWorkload(String),
    /// The submitted input-set name is unknown.
    UnknownInput(String),
    /// The submitted configuration failed validation at the door.
    Config(PipelineError),
    /// The scheduler rejected the submission (queue full / draining).
    Submit(SubmitError),
    /// The admission gate shed the submission (past the high-water
    /// mark); carries the retry hint.
    Overloaded(crate::admission::Overloaded),
    /// No job with that id was ever submitted.
    UnknownJob(JobId),
    /// The job exists but has not reached a terminal state.
    NotFinished {
        /// The job being polled.
        job: JobId,
        /// Its current state name.
        state: &'static str,
    },
    /// One job inside a `submit_batch` failed validation; the whole
    /// batch is rejected (all-or-nothing, like admission).
    BatchJob {
        /// Zero-based index of the offending job in the `jobs` array.
        index: usize,
        /// Why that job was rejected.
        inner: Box<ProtoError>,
    },
    /// A `cache_put` payload failed validation (corrupt slice text or
    /// unparseable stats) — the shard peer refused to persist it.
    ShardPayload(&'static str),
    /// The submitted slicing scope exceeds the admission cap for the
    /// requested slice mode ([`MAX_WINDOWED_SCOPE`] windowed,
    /// [`MAX_SCOPE`] on-demand). Rejected at the door: a windowed job
    /// with an absurd scope would eagerly commit the daemon to an
    /// unserviceable resident window.
    ScopeTooLarge {
        /// The requested scope.
        scope: u64,
        /// The cap it exceeded.
        cap: u64,
        /// The slice mode the cap belongs to (`"windowed"` or
        /// `"ondemand"`).
        mode: &'static str,
    },
}

impl ProtoError {
    /// The stable machine-readable code for this error. Pipeline codes
    /// pass through [`PipelineError::code`], so a rejected configuration
    /// reports the same code at submit time as it would have at run time.
    pub fn code(&self) -> &'static str {
        match self {
            ProtoError::BadJson(_) => "bad_json",
            ProtoError::UnknownCmd(_) => "unknown_cmd",
            ProtoError::BadField { .. } => "bad_field",
            ProtoError::UnknownWorkload(_) => "unknown_workload",
            ProtoError::UnknownInput(_) => "unknown_input",
            ProtoError::Config(e) => e.code(),
            ProtoError::Submit(SubmitError::QueueFull { .. }) => "queue_full",
            ProtoError::Submit(SubmitError::ShuttingDown) => "shutting_down",
            ProtoError::Overloaded(_) => "overloaded",
            ProtoError::UnknownJob(_) => "unknown_job",
            ProtoError::NotFinished { .. } => "job_not_finished",
            // A batch inherits the offending job's code: a client
            // handling `overloaded` or `config.*` for single submits
            // needs no new branches for batches.
            ProtoError::BatchJob { inner, .. } => inner.code(),
            ProtoError::ShardPayload(_) => "shard.bad_payload",
            ProtoError::ScopeTooLarge { .. } => "config.scope_too_large",
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::BadJson(m) | ProtoError::UnknownWorkload(m) => write!(f, "{m}"),
            ProtoError::UnknownCmd(c) => write!(
                f,
                "unknown cmd `{c}` (expected submit, submit_batch, status, result, cancel, \
                 stats, metrics, cache_get, cache_put, or shutdown)"
            ),
            ProtoError::BadField { field, expected } => {
                write!(f, "field `{field}` must be {expected}")
            }
            ProtoError::UnknownInput(name) => {
                write!(f, "unknown input `{name}` (train, test, or alt)")
            }
            ProtoError::Config(e) => write!(f, "{e}"),
            ProtoError::Submit(e) => write!(f, "{e}"),
            ProtoError::Overloaded(e) => write!(f, "{e}"),
            ProtoError::UnknownJob(id) => write!(f, "unknown job {id}"),
            ProtoError::NotFinished { job, state } => {
                write!(f, "job {job} is {state} — poll `status` until it finishes")
            }
            ProtoError::BatchJob { index, inner } => {
                write!(f, "batch job #{index}: {inner}")
            }
            ProtoError::ShardPayload(why) => {
                write!(f, "shard peer rejected the cache payload: {why}")
            }
            ProtoError::ScopeTooLarge { scope, cap, mode } => {
                write!(f, "scope {scope} exceeds the {mode} admission cap {cap}")?;
                if *mode == "windowed" {
                    write!(f, "; use slice_mode \"ondemand\" for scopes past window residency")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Config(e) => Some(e),
            ProtoError::Submit(e) => Some(e),
            ProtoError::Overloaded(e) => Some(e),
            ProtoError::BatchJob { inner, .. } => Some(inner.as_ref()),
            _ => None,
        }
    }
}

impl From<SubmitError> for ProtoError {
    fn from(e: SubmitError) -> ProtoError {
        ProtoError::Submit(e)
    }
}

impl From<PipelineError> for ProtoError {
    fn from(e: PipelineError) -> ProtoError {
        ProtoError::Config(e)
    }
}

/// A parsed request.
#[derive(Clone)]
pub enum Request {
    /// Enqueue a job.
    Submit(Box<JobSpec>),
    /// Enqueue several jobs atomically: all admitted (ids in order) or
    /// none (one typed error for the batch).
    SubmitBatch(Vec<JobSpec>),
    /// Report a job's state.
    Status(JobId),
    /// Report a finished job's result.
    Result(JobId),
    /// Cancel a queued or running job.
    Cancel(JobId),
    /// Report service-wide statistics.
    Stats,
    /// Report the full metrics registry (JSON + Prometheus text).
    Metrics,
    /// Shard peer protocol: fetch the raw cached artifact for a cache
    /// key digest from the shard that owns it.
    CacheGet(u64),
    /// Shard peer protocol: persist a raw artifact on the owning shard.
    CachePut {
        /// The cache key digest (owner-addressed).
        key: u64,
        /// The `.slices` file text (checksummed v2 format).
        slices: String,
        /// The `.stats` sidecar JSON text.
        stats: String,
    },
    /// Drain and exit.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a typed [`ProtoError`] for malformed JSON, unknown commands,
/// missing/mistyped fields, unknown workloads, or an invalid pipeline
/// configuration (validated *before* the job is queued).
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let json = Json::parse(line).map_err(|e| ProtoError::BadJson(e.to_string()))?;
    parse_request_json(&json)
}

/// Parses an already-decoded request object. The server's dispatch path
/// uses this so the line is decoded exactly once (the `id` echo needs
/// the raw object too).
pub fn parse_request_json(json: &Json) -> Result<Request, ProtoError> {
    let cmd = json
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or(ProtoError::BadField { field: "cmd", expected: "a string" })?;
    match cmd {
        "submit" => parse_submit(json).map(|s| Request::Submit(Box::new(s))),
        "submit_batch" => parse_submit_batch(json).map(Request::SubmitBatch),
        "status" => job_id(json).map(Request::Status),
        "result" => job_id(json).map(Request::Result),
        "cancel" => job_id(json).map(Request::Cancel),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "cache_get" => cache_key(json).map(Request::CacheGet),
        "cache_put" => {
            let key = cache_key(json)?;
            let slices = required_str(json, "slices")?;
            let stats = required_str(json, "stats")?;
            Ok(Request::CachePut { key, slices, stats })
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ProtoError::UnknownCmd(other.to_string())),
    }
}

/// The request's `id` field, echoed verbatim in the response (the
/// pipelining correlation handle). Absent or null means no echo.
pub fn request_id(json: &Json) -> Option<Json> {
    match json.get("id") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.clone()),
    }
}

/// Appends the echoed request `id` to a response object (no-op without
/// an id; non-object responses never occur).
pub fn with_request_id(mut resp: Json, id: Option<Json>) -> Json {
    if let (Json::Obj(fields), Some(id)) = (&mut resp, id) {
        fields.push(("id".to_string(), id));
    }
    resp
}

fn parse_submit_batch(json: &Json) -> Result<Vec<JobSpec>, ProtoError> {
    let jobs = json
        .get("jobs")
        .and_then(Json::as_arr)
        .ok_or(ProtoError::BadField { field: "jobs", expected: "an array of submit objects" })?;
    if jobs.is_empty() {
        return Err(ProtoError::BadField {
            field: "jobs",
            expected: "a non-empty array of submit objects",
        });
    }
    jobs.iter()
        .enumerate()
        .map(|(index, job)| {
            parse_submit(job)
                .map_err(|e| ProtoError::BatchJob { index, inner: Box::new(e) })
        })
        .collect()
}

fn cache_key(json: &Json) -> Result<u64, ProtoError> {
    let text = json
        .get("key")
        .and_then(Json::as_str)
        .ok_or(ProtoError::BadField { field: "key", expected: "a 16-hex-digit string" })?;
    if text.len() != 16 {
        return Err(ProtoError::BadField { field: "key", expected: "a 16-hex-digit string" });
    }
    u64::from_str_radix(text, 16)
        .map_err(|_| ProtoError::BadField { field: "key", expected: "a 16-hex-digit string" })
}

fn required_str(json: &Json, field: &'static str) -> Result<String, ProtoError> {
    json.get(field)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or(ProtoError::BadField { field, expected: "a string" })
}

fn job_id(json: &Json) -> Result<JobId, ProtoError> {
    json.get("job")
        .and_then(Json::as_u64)
        .ok_or(ProtoError::BadField { field: "job", expected: "a non-negative integer" })
}

fn opt_u64(json: &Json, key: &'static str) -> Result<Option<u64>, ProtoError> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or(ProtoError::BadField { field: key, expected: "a non-negative integer" }),
    }
}

fn opt_f64(json: &Json, key: &'static str) -> Result<Option<f64>, ProtoError> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or(ProtoError::BadField { field: key, expected: "a number" }),
    }
}

fn opt_bool(json: &Json, key: &'static str) -> Result<Option<bool>, ProtoError> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or(ProtoError::BadField { field: key, expected: "a boolean" }),
    }
}

/// Parses the fields of a `submit` object into a [`JobSpec`]. Also the
/// journal-replay entry point: [`spec_json`] emits exactly this shape,
/// so a recovered daemon re-parses journaled submissions through the
/// same validation the original client went through.
pub(crate) fn parse_submit(json: &Json) -> Result<JobSpec, ProtoError> {
    let workload = json
        .get("workload")
        .and_then(Json::as_str)
        .ok_or(ProtoError::BadField { field: "workload", expected: "a string" })?;
    let input = match json.get("input") {
        None | Some(Json::Null) => InputSet::Train,
        Some(v) => {
            let name = v
                .as_str()
                .ok_or(ProtoError::BadField { field: "input", expected: "a string" })?;
            parse_input(name).ok_or_else(|| ProtoError::UnknownInput(name.to_string()))?
        }
    };
    let budget = opt_u64(json, "budget")?.unwrap_or(120_000);
    let mut cfg = PipelineConfig::paper_default(budget);
    if let Some(x) = opt_u64(json, "warmup")? {
        cfg.warmup = x;
    }
    if let Some(x) = opt_u64(json, "scope")? {
        cfg.scope = x as usize;
    }
    if let Some(x) = opt_u64(json, "max_slice_len")? {
        cfg.max_slice_len = x as usize;
    }
    if let Some(x) = opt_u64(json, "max_pthread_len")? {
        cfg.max_pthread_len = x as usize;
    }
    if let Some(x) = opt_bool(json, "optimize")? {
        cfg.optimize = x;
    }
    if let Some(x) = opt_bool(json, "merge")? {
        cfg.merge = x;
    }
    if let Some(x) = opt_u64(json, "width")? {
        cfg.machine.width = u32::try_from(x)
            .map_err(|_| ProtoError::BadField { field: "width", expected: "a 32-bit integer" })?;
    }
    if let Some(x) = opt_u64(json, "mem_latency")? {
        cfg.machine.mem_latency = x;
    }
    if let Some(x) = opt_f64(json, "model_miss_latency")? {
        cfg.model_miss_latency = Some(x);
    }
    if let Some(x) = opt_f64(json, "model_width")? {
        cfg.model_width = Some(x);
    }
    // Reject bad configurations at the door: a queued job that can only
    // fail wastes a worker slot and hides the mistake from the client.
    cfg.try_validate().map_err(ProtoError::Config)?;

    // Flat v5 policy spellings (compat shim): still parsed, but their
    // use is recorded so the response can carry the deprecation note.
    let mut deprecated = Vec::new();
    for field in ["slice_mode", "checkpoint_every", "deadline_ms"] {
        if json.get(field).is_some_and(|v| !matches!(v, Json::Null)) {
            deprecated.push(field);
        }
    }
    let flat_slicing = parse_slice_mode(json)?;
    let flat_deadline = opt_u64(json, "deadline_ms")?;
    let nested = parse_policy_object(json)?;

    // Flat and nested may restate the same value; naming *different*
    // values for one key is a contradiction the client must resolve.
    let slicing = match (flat_slicing, nested.slicing) {
        (Some(f), Some(n)) if f != n => {
            let key = match (f, n) {
                (SlicingMode::OnDemand { .. }, SlicingMode::OnDemand { .. }) => {
                    "checkpoint_every"
                }
                _ => "slice_mode",
            };
            return Err(ProtoError::Config(PipelineError::ConflictingPolicy { key }));
        }
        (f, n) => n.or(f).unwrap_or(SlicingMode::Windowed),
    };
    let deadline_ms = match (flat_deadline, nested.deadline_ms) {
        (Some(f), Some(n)) if f != n => {
            return Err(ProtoError::Config(PipelineError::ConflictingPolicy {
                key: "deadline_ms",
            }));
        }
        (f, n) => n.or(f),
    };

    let mut policy = PolicySpec { cfg, slicing, deadline_ms, ..PolicySpec::default() };
    if let Some(x) = nested.screening {
        policy.screening = x;
    }
    if let Some(x) = nested.streaming {
        policy.streaming = x;
    }
    if let Some(x) = nested.adaptive {
        policy.adaptive = x;
    }
    policy.try_validate().map_err(ProtoError::Config)?;
    check_scope_cap(cfg.scope as u64, slicing)?;
    let mut spec =
        JobSpec::new(workload, input, cfg).map_err(ProtoError::UnknownWorkload)?;
    spec.policy = policy;
    spec.deprecated_fields = deprecated;
    Ok(spec)
}

/// The policy fields a submit may carry in the nested v6 `policy`
/// object; `None` means "not given" (distinct from any default, so the
/// flat-vs-nested conflict check can tell silence from agreement).
#[derive(Default)]
struct PolicyFields {
    slicing: Option<SlicingMode>,
    screening: Option<bool>,
    streaming: Option<bool>,
    deadline_ms: Option<u64>,
    adaptive: Option<AdaptiveConfig>,
}

/// Parses the nested v6 `policy` submit object. Absent or null yields
/// all-`None` fields (the v5 flat shim then supplies any values).
fn parse_policy_object(json: &Json) -> Result<PolicyFields, ProtoError> {
    let obj = match json.get("policy") {
        None | Some(Json::Null) => return Ok(PolicyFields::default()),
        Some(v @ Json::Obj(_)) => v,
        Some(_) => {
            return Err(ProtoError::BadField { field: "policy", expected: "an object" })
        }
    };
    Ok(PolicyFields {
        slicing: parse_slice_mode(obj)?,
        screening: opt_bool(obj, "screening")?,
        streaming: opt_bool(obj, "streaming")?,
        deadline_ms: opt_u64(obj, "deadline_ms")?,
        adaptive: parse_adaptive(obj)?,
    })
}

/// Parses the `adaptive` field of a `policy` object: `true`/`false`
/// toggles the default detector knobs, an object overrides them.
fn parse_adaptive(obj: &Json) -> Result<Option<AdaptiveConfig>, ProtoError> {
    match obj.get("adaptive") {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Bool(b)) => {
            Ok(Some(AdaptiveConfig { enabled: *b, ..AdaptiveConfig::default() }))
        }
        Some(v @ Json::Obj(_)) => {
            let mut a = AdaptiveConfig {
                enabled: opt_bool(v, "enabled")?.unwrap_or(true),
                ..AdaptiveConfig::default()
            };
            if let Some(x) = opt_u64(v, "threshold_permille")? {
                a.threshold_permille = x;
            }
            if let Some(x) = opt_u64(v, "confirm")? {
                a.confirm = x;
            }
            if let Some(x) = opt_u64(v, "min_phase_chunks")? {
                a.min_phase_chunks = x;
            }
            Ok(Some(a))
        }
        Some(_) => Err(ProtoError::BadField {
            field: "adaptive",
            expected: "a boolean or an object",
        }),
    }
}

/// Parses an optional `slice_mode` (`"windowed"` or `"ondemand"`) plus
/// `checkpoint_every` pair from `obj` — used both for the flat v5
/// submit fields and inside the nested `policy` object. `None` means
/// the mode was not given (a bare `checkpoint_every` is ignored, as in
/// v5).
fn parse_slice_mode(obj: &Json) -> Result<Option<SlicingMode>, ProtoError> {
    let expected = r#""windowed" or "ondemand""#;
    let name = match obj.get("slice_mode") {
        None | Some(Json::Null) => return Ok(None),
        Some(v) => v
            .as_str()
            .ok_or(ProtoError::BadField { field: "slice_mode", expected })?,
    };
    match name {
        "windowed" => Ok(Some(SlicingMode::Windowed)),
        "ondemand" => Ok(Some(SlicingMode::OnDemand {
            checkpoint_every: opt_u64(obj, "checkpoint_every")?
                .unwrap_or(DEFAULT_CHECKPOINT_EVERY)
                .max(1),
        })),
        _ => Err(ProtoError::BadField { field: "slice_mode", expected }),
    }
}

/// The per-mode scope admission gate (see [`MAX_WINDOWED_SCOPE`] /
/// [`MAX_SCOPE`]).
fn check_scope_cap(scope: u64, mode: SlicingMode) -> Result<(), ProtoError> {
    let (cap, name) = match mode {
        SlicingMode::Windowed => (MAX_WINDOWED_SCOPE, "windowed"),
        SlicingMode::OnDemand { .. } => (MAX_SCOPE, "ondemand"),
    };
    if scope > cap {
        return Err(ProtoError::ScopeTooLarge { scope, cap, mode: name });
    }
    Ok(())
}

/// Serializes a [`JobSpec`] back into the submit-object shape
/// [`parse_submit`] accepts, every field explicit — the durable
/// journal's `spec` payload. Round-trip exactness is what lets a
/// restarted daemon re-run the job byte-identically.
pub fn spec_json(spec: &JobSpec) -> Json {
    let cfg = &spec.policy.cfg;
    let mut fields = vec![
        ("workload", Json::str(spec.workload_name.clone())),
        ("input", Json::str(crate::cache::input_name(spec.input))),
        ("budget", Json::num_u64(cfg.budget)),
        ("warmup", Json::num_u64(cfg.warmup)),
        ("scope", Json::num_u64(cfg.scope as u64)),
        ("max_slice_len", Json::num_u64(cfg.max_slice_len as u64)),
        ("max_pthread_len", Json::num_u64(cfg.max_pthread_len as u64)),
        ("optimize", Json::Bool(cfg.optimize)),
        ("merge", Json::Bool(cfg.merge)),
        ("width", Json::num_u64(u64::from(cfg.machine.width))),
        ("mem_latency", Json::num_u64(cfg.machine.mem_latency)),
    ];
    if let Some(x) = cfg.model_miss_latency {
        fields.push(("model_miss_latency", Json::Num(x)));
    }
    if let Some(x) = cfg.model_width {
        fields.push(("model_width", Json::Num(x)));
    }
    fields.push(("policy", policy_json(&spec.policy)));
    Json::obj(fields)
}

/// The canonical nested `policy` object: every field explicit, fixed
/// order, no flat v5 spellings — what the journal persists.
fn policy_json(p: &PolicySpec) -> Json {
    let mut fields = Vec::new();
    match p.slicing {
        SlicingMode::Windowed => fields.push(("slice_mode", Json::str("windowed"))),
        SlicingMode::OnDemand { checkpoint_every } => {
            fields.push(("slice_mode", Json::str("ondemand")));
            fields.push(("checkpoint_every", Json::num_u64(checkpoint_every)));
        }
    }
    fields.push(("screening", Json::Bool(p.screening)));
    fields.push(("streaming", Json::Bool(p.streaming)));
    let a = p.adaptive;
    fields.push((
        "adaptive",
        Json::obj(vec![
            ("enabled", Json::Bool(a.enabled)),
            ("threshold_permille", Json::num_u64(a.threshold_permille)),
            ("confirm", Json::num_u64(a.confirm)),
            ("min_phase_chunks", Json::num_u64(a.min_phase_chunks)),
        ]),
    ));
    if let Some(ms) = p.deadline_ms {
        fields.push(("deadline_ms", Json::num_u64(ms)));
    }
    Json::obj(fields)
}

/// `{"ok": false, "protocol_version": V, "error": message, "code": code}`.
/// An `overloaded` rejection additionally carries the machine-readable
/// `retry_after_ms` hint so clients need not parse the message.
pub fn error_response(err: &ProtoError) -> Json {
    let mut fields = vec![
        ("ok", Json::Bool(false)),
        ("protocol_version", Json::num_u64(PROTOCOL_VERSION)),
        ("error", Json::str(err.to_string())),
        ("code", Json::str(err.code())),
    ];
    if let ProtoError::Overloaded(o) = err {
        fields.push(("retry_after_ms", Json::num_u64(o.retry_after_ms)));
    }
    Json::obj(fields)
}

/// `{"ok": true, "protocol_version": V, ...fields}`.
pub fn ok_response(fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("protocol_version", Json::num_u64(PROTOCOL_VERSION)),
    ];
    pairs.extend(fields);
    Json::obj(pairs)
}

/// Serializes one [`SimResult`](preexec_timing::SimResult)'s
/// service-relevant counters.
fn sim_json(r: &preexec_timing::SimResult) -> Json {
    Json::obj(vec![
        ("cycles", Json::num_u64(r.cycles)),
        ("insts", Json::num_u64(r.insts)),
        ("ipc", Json::Num(r.ipc())),
        ("l2_misses", Json::num_u64(r.mem.l2_misses)),
        ("covered_full", Json::num_u64(r.mem.covered_full)),
        ("covered_partial", Json::num_u64(r.mem.covered_partial)),
        ("launches", Json::num_u64(r.launches)),
        ("squashes", Json::num_u64(r.squashes)),
        ("timed_out", Json::Bool(r.timed_out)),
    ])
}

/// The `result` payload for a finished job.
pub fn result_json(out: &JobOutput) -> Json {
    let r = &out.result;
    Json::obj(vec![
        ("workload", Json::str(out.workload.clone())),
        ("input", Json::str(crate::cache::input_name(out.input))),
        ("cache_hit", Json::Bool(out.cache_hit)),
        ("speedup", Json::Num(r.speedup())),
        ("coverage_pct", Json::Num(r.coverage_pct())),
        ("full_coverage_pct", Json::Num(r.full_coverage_pct())),
        ("num_pthreads", Json::num_u64(r.selection.pthreads.len() as u64)),
        (
            "predicted_coverage_pct",
            Json::Num(pct(r.selection.prediction.misses_covered, r.stats.l2_misses)),
        ),
        ("base", sim_json(&r.base)),
        ("assisted", sim_json(&r.assisted)),
        (
            "trace",
            Json::obj(vec![
                ("insts", Json::num_u64(r.stats.insts)),
                ("l2_misses", Json::num_u64(r.stats.l2_misses)),
                ("loads", Json::num_u64(r.stats.loads)),
            ]),
        ),
        (
            "stage_us",
            Json::obj(vec![
                ("trace", Json::num_u64(out.stage_us.trace)),
                ("base_sim", Json::num_u64(out.stage_us.base_sim)),
                ("select", Json::num_u64(out.stage_us.select)),
                ("assisted_sim", Json::num_u64(out.stage_us.assisted_sim)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_command() {
        assert!(matches!(
            parse_request(r#"{"cmd":"submit","workload":"vpr.r"}"#),
            Ok(Request::Submit(_))
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"status","job":3}"#),
            Ok(Request::Status(3))
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"result","job":9}"#),
            Ok(Request::Result(9))
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"cancel","job":5}"#),
            Ok(Request::Cancel(5))
        ));
        assert!(matches!(parse_request(r#"{"cmd":"stats"}"#), Ok(Request::Stats)));
        assert!(matches!(parse_request(r#"{"cmd":"metrics"}"#), Ok(Request::Metrics)));
        assert!(matches!(parse_request(r#"{"cmd":"shutdown"}"#), Ok(Request::Shutdown)));
    }

    #[test]
    fn submit_applies_defaults_and_overrides() {
        let req = parse_request(
            r#"{"cmd":"submit","workload":"mcf","input":"test","budget":50000,
                "width":4,"mem_latency":140,"optimize":false,"model_width":6.5}"#,
        )
        .expect("parses");
        let Request::Submit(spec) = req else {
            panic!("expected submit");
        };
        assert_eq!(spec.workload_name, "mcf");
        assert_eq!(spec.input, InputSet::Test);
        assert_eq!(spec.policy.cfg.budget, 50_000);
        assert_eq!(spec.policy.cfg.warmup, 12_500, "warmup defaults to budget/4");
        assert_eq!(spec.policy.cfg.machine.width, 4);
        assert_eq!(spec.policy.cfg.machine.mem_latency, 140);
        assert!(!spec.policy.cfg.optimize);
        assert_eq!(spec.policy.cfg.model_width, Some(6.5));
        // Defaults match the paper configuration; the policy defaults
        // are static (no adaptive selection, no deadline).
        assert_eq!(spec.policy.cfg.scope, 1024);
        assert_eq!(spec.policy.cfg.max_pthread_len, 32);
        assert!(!spec.policy.adaptive.enabled);
        assert_eq!(spec.policy.deadline_ms, None);
        assert!(spec.deprecated_fields.is_empty(), "no flat v5 policy fields used");
    }

    #[test]
    fn submit_rejects_bad_requests_with_messages_and_codes() {
        for (line, needle, code) in [
            ("not json", "JSON", "bad_json"),
            (r#"{"cmd":"submit"}"#, "workload", "bad_field"),
            (r#"{"cmd":"submit","workload":"nope"}"#, "unknown workload", "unknown_workload"),
            (
                r#"{"cmd":"submit","workload":"mcf","input":"huge"}"#,
                "unknown input",
                "unknown_input",
            ),
            (r#"{"cmd":"submit","workload":"mcf","budget":0}"#, "budget", "config.zero_budget"),
            (r#"{"cmd":"submit","workload":"mcf","width":0}"#, "width", "config.machine"),
            (r#"{"cmd":"submit","workload":"mcf","budget":-3}"#, "budget", "bad_field"),
            (r#"{"cmd":"status"}"#, "job", "bad_field"),
            (r#"{"cmd":"wat"}"#, "unknown cmd", "unknown_cmd"),
            (r#"{}"#, "cmd", "bad_field"),
        ] {
            let Err(e) = parse_request(line) else {
                panic!("`{line}` must be rejected");
            };
            let msg = e.to_string();
            assert!(msg.contains(needle), "`{line}` → `{msg}` (wanted `{needle}`)");
            assert_eq!(e.code(), code, "`{line}` code");
        }
    }

    #[test]
    fn config_rejection_reuses_the_pipeline_error_code() {
        let Err(e) = parse_request(r#"{"cmd":"submit","workload":"mcf","scope":0}"#) else {
            panic!("zero scope must be rejected");
        };
        assert_eq!(e, ProtoError::Config(preexec_experiments::PipelineError::ZeroScope));
        assert_eq!(e.code(), preexec_experiments::PipelineError::ZeroScope.code());
    }

    #[test]
    fn responses_have_the_versioned_ok_envelope() {
        let ok = ok_response(vec![("job", Json::num_u64(4))]);
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(ok.get("job").and_then(Json::as_u64), Some(4));
        assert_eq!(
            ok.get("protocol_version").and_then(Json::as_u64),
            Some(PROTOCOL_VERSION)
        );
        let err = error_response(&ProtoError::UnknownJob(7));
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(err.get("error").and_then(Json::as_str), Some("unknown job 7"));
        assert_eq!(err.get("code").and_then(Json::as_str), Some("unknown_job"));
        assert_eq!(
            err.get("protocol_version").and_then(Json::as_u64),
            Some(PROTOCOL_VERSION)
        );
    }

    #[test]
    fn submit_errors_map_to_distinct_codes() {
        assert_eq!(
            ProtoError::from(SubmitError::QueueFull { cap: 4 }).code(),
            "queue_full"
        );
        assert_eq!(ProtoError::from(SubmitError::ShuttingDown).code(), "shutting_down");
        assert_eq!(
            ProtoError::NotFinished { job: 3, state: "running" }.code(),
            "job_not_finished"
        );
    }

    #[test]
    fn overloaded_rejections_carry_the_retry_hint() {
        let e = ProtoError::Overloaded(crate::admission::Overloaded {
            retry_after_ms: 750,
            outstanding: 9,
            high_water: 8,
        });
        assert_eq!(e.code(), "overloaded");
        assert!(e.to_string().contains("750"));
        let resp = error_response(&e);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(resp.get("code").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(resp.get("retry_after_ms").and_then(Json::as_u64), Some(750));
        // Other errors stay hint-free.
        assert!(error_response(&ProtoError::UnknownJob(1)).get("retry_after_ms").is_none());
    }

    #[test]
    fn submit_batch_parses_all_or_rejects_with_the_offending_index() {
        let Ok(Request::SubmitBatch(specs)) = parse_request(
            r#"{"cmd":"submit_batch","jobs":[
                {"workload":"vpr.r","budget":30000},
                {"workload":"mcf","budget":40000,"input":"test"}]}"#,
        ) else {
            panic!("healthy batch must parse");
        };
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].workload_name, "vpr.r");
        assert_eq!(specs[1].input, InputSet::Test);

        // One bad job rejects the whole batch, naming the index and
        // keeping the inner error's stable code.
        let Err(e) = parse_request(
            r#"{"cmd":"submit_batch","jobs":[
                {"workload":"vpr.r"},{"workload":"nope"}]}"#,
        ) else {
            panic!("bad batch must be rejected");
        };
        assert_eq!(e.code(), "unknown_workload");
        assert!(e.to_string().contains("batch job #1"), "{e}");

        // Empty and mistyped `jobs` are field errors.
        for line in [
            r#"{"cmd":"submit_batch","jobs":[]}"#,
            r#"{"cmd":"submit_batch"}"#,
            r#"{"cmd":"submit_batch","jobs":3}"#,
        ] {
            let Err(e) = parse_request(line) else { panic!("`{line}` must be rejected") };
            assert_eq!(e.code(), "bad_field", "`{line}`");
        }
    }

    #[test]
    fn request_ids_echo_verbatim_and_only_when_present() {
        let json = Json::parse(r#"{"cmd":"stats","id":42}"#).expect("parses");
        let resp = with_request_id(ok_response(vec![]), request_id(&json));
        assert_eq!(resp.get("id").and_then(Json::as_u64), Some(42));

        // String ids survive untouched.
        let json = Json::parse(r#"{"cmd":"stats","id":"req-7"}"#).expect("parses");
        let resp = with_request_id(error_response(&ProtoError::UnknownJob(1)), request_id(&json));
        assert_eq!(resp.get("id").and_then(Json::as_str), Some("req-7"));

        // No id (or a null one) → no echo.
        for line in [r#"{"cmd":"stats"}"#, r#"{"cmd":"stats","id":null}"#] {
            let json = Json::parse(line).expect("parses");
            let resp = with_request_id(ok_response(vec![]), request_id(&json));
            assert!(resp.get("id").is_none(), "{line}");
        }
    }

    #[test]
    fn cache_peer_verbs_parse_and_validate_their_keys() {
        let Ok(Request::CacheGet(key)) =
            parse_request(r#"{"cmd":"cache_get","key":"00ab34cd56ef7890"}"#)
        else {
            panic!("cache_get must parse");
        };
        assert_eq!(key, 0x00ab_34cd_56ef_7890);

        let Ok(Request::CachePut { key, slices, stats }) = parse_request(
            r#"{"cmd":"cache_put","key":"ffffffffffffffff","slices":"S\nL","stats":"{}"}"#,
        ) else {
            panic!("cache_put must parse");
        };
        assert_eq!(key, u64::MAX);
        assert_eq!(slices, "S\nL");
        assert_eq!(stats, "{}");

        for line in [
            r#"{"cmd":"cache_get"}"#,
            r#"{"cmd":"cache_get","key":"xyz"}"#,
            r#"{"cmd":"cache_get","key":"123"}"#,
            r#"{"cmd":"cache_put","key":"00ab34cd56ef7890"}"#,
        ] {
            let Err(e) = parse_request(line) else { panic!("`{line}` must be rejected") };
            assert_eq!(e.code(), "bad_field", "`{line}`");
        }
        assert_eq!(ProtoError::ShardPayload("corrupt").code(), "shard.bad_payload");
    }

    #[test]
    fn slice_mode_parses_defaults_and_rejects_junk() {
        // Absent (or null) → windowed.
        for line in [
            r#"{"cmd":"submit","workload":"mcf"}"#,
            r#"{"cmd":"submit","workload":"mcf","slice_mode":null}"#,
            r#"{"cmd":"submit","workload":"mcf","slice_mode":"windowed"}"#,
        ] {
            let Ok(Request::Submit(spec)) = parse_request(line) else {
                panic!("`{line}` must parse");
            };
            assert_eq!(spec.policy.slicing, SlicingMode::Windowed, "{line}");
        }
        // On-demand defaults its cadence; an explicit one sticks, and a
        // zero cadence is clamped to 1 at the door.
        let Ok(Request::Submit(spec)) =
            parse_request(r#"{"cmd":"submit","workload":"mcf","slice_mode":"ondemand"}"#)
        else {
            panic!("ondemand must parse");
        };
        assert_eq!(
            spec.policy.slicing,
            SlicingMode::OnDemand { checkpoint_every: DEFAULT_CHECKPOINT_EVERY }
        );
        assert_eq!(spec.deprecated_fields, vec!["slice_mode"]);
        let Ok(Request::Submit(spec)) = parse_request(
            r#"{"cmd":"submit","workload":"mcf","slice_mode":"ondemand","checkpoint_every":512}"#,
        ) else {
            panic!("explicit cadence must parse");
        };
        assert_eq!(spec.policy.slicing, SlicingMode::OnDemand { checkpoint_every: 512 });
        let Ok(Request::Submit(spec)) = parse_request(
            r#"{"cmd":"submit","workload":"mcf","slice_mode":"ondemand","checkpoint_every":0}"#,
        ) else {
            panic!("zero cadence must parse");
        };
        assert_eq!(spec.policy.slicing, SlicingMode::OnDemand { checkpoint_every: 1 });
        // Junk modes are typed field errors.
        for line in [
            r#"{"cmd":"submit","workload":"mcf","slice_mode":"turbo"}"#,
            r#"{"cmd":"submit","workload":"mcf","slice_mode":7}"#,
        ] {
            let Err(e) = parse_request(line) else { panic!("`{line}` must be rejected") };
            assert_eq!(e.code(), "bad_field", "`{line}`");
            assert!(e.to_string().contains("slice_mode"), "`{line}` → {e}");
        }
    }

    #[test]
    fn absurd_scopes_are_rejected_at_admission_per_mode() {
        // Past the windowed cap: rejected with the stable code and a
        // hint pointing at on-demand slicing.
        let over_windowed = (MAX_WINDOWED_SCOPE + 1).to_string();
        let line = format!(
            r#"{{"cmd":"submit","workload":"mcf","scope":{over_windowed}}}"#
        );
        let Err(e) = parse_request(&line) else { panic!("absurd windowed scope must be shed") };
        assert_eq!(e.code(), "config.scope_too_large");
        assert!(e.to_string().contains("ondemand"), "{e}");
        // The same scope under on-demand slicing is admitted…
        let line = format!(
            r#"{{"cmd":"submit","workload":"mcf","scope":{over_windowed},"slice_mode":"ondemand"}}"#
        );
        assert!(matches!(parse_request(&line), Ok(Request::Submit(_))));
        // …but even on-demand has a ceiling.
        let over_all = (MAX_SCOPE + 1).to_string();
        let line = format!(
            r#"{{"cmd":"submit","workload":"mcf","scope":{over_all},"slice_mode":"ondemand"}}"#
        );
        let Err(e) = parse_request(&line) else { panic!("absurd ondemand scope must be shed") };
        assert_eq!(e.code(), "config.scope_too_large");
        // Scopes at the cap pass.
        let at_cap = MAX_WINDOWED_SCOPE.to_string();
        let line = format!(r#"{{"cmd":"submit","workload":"mcf","scope":{at_cap}}}"#);
        assert!(matches!(parse_request(&line), Ok(Request::Submit(_))));
        // A batch inherits the code, naming the offending index.
        let line = format!(
            r#"{{"cmd":"submit_batch","jobs":[{{"workload":"vpr.r"}},{{"workload":"mcf","scope":{over_windowed}}}]}}"#
        );
        let Err(e) = parse_request(&line) else { panic!("batch with absurd scope must be shed") };
        assert_eq!(e.code(), "config.scope_too_large");
        assert!(e.to_string().contains("batch job #1"), "{e}");
    }

    #[test]
    fn ondemand_spec_json_round_trips() {
        let line = r#"{"cmd":"submit","workload":"mcf","scope":100000000,
            "slice_mode":"ondemand","checkpoint_every":2048}"#;
        let Ok(Request::Submit(spec)) = parse_request(line) else {
            panic!("parses");
        };
        let encoded = spec_json(&spec);
        let back = parse_submit(&encoded).expect("round-trip parses");
        assert_eq!(back.policy.slicing, SlicingMode::OnDemand { checkpoint_every: 2048 });
        assert_eq!(back.policy.cfg.scope, 100_000_000);
        assert!(back.deprecated_fields.is_empty(), "canonical form is v6-native");
        assert_eq!(spec_json(&back).encode(), encoded.encode());
    }

    #[test]
    fn spec_json_round_trips_through_parse_submit() {
        let line = r#"{"cmd":"submit","workload":"mcf","input":"test","budget":50000,
            "width":4,"mem_latency":140,"optimize":false,"model_width":6.5,
            "deadline_ms":8000}"#;
        let Ok(Request::Submit(spec)) = parse_request(line) else {
            panic!("parses");
        };
        assert_eq!(spec.policy.deadline_ms, Some(8000));
        assert_eq!(spec.deprecated_fields, vec!["deadline_ms"]);
        let encoded = spec_json(&spec);
        let back = parse_submit(&encoded).expect("round-trip parses");
        assert_eq!(back.workload_name, spec.workload_name);
        assert_eq!(back.input, spec.input);
        assert_eq!(back.policy.cfg.budget, spec.policy.cfg.budget);
        assert_eq!(back.policy.cfg.machine.width, spec.policy.cfg.machine.width);
        assert_eq!(back.policy.cfg.model_width, spec.policy.cfg.model_width);
        assert_eq!(back.policy.cfg.optimize, spec.policy.cfg.optimize);
        assert_eq!(back.policy, spec.policy, "the whole policy survives the journal");
        // A second encode is byte-identical: the canonical spec form.
        assert_eq!(spec_json(&back).encode(), encoded.encode());
    }

    #[test]
    fn nested_policy_object_parses_every_field() {
        let line = r#"{"cmd":"submit","workload":"mcf","policy":{
            "slice_mode":"windowed",
            "screening":false,"streaming":true,"deadline_ms":9000,
            "adaptive":{"enabled":true,"threshold_permille":400,
                        "confirm":3,"min_phase_chunks":5}}}"#;
        let Ok(Request::Submit(spec)) = parse_request(line) else {
            panic!("v6 policy submit must parse");
        };
        assert_eq!(spec.policy.slicing, SlicingMode::Windowed);
        assert!(!spec.policy.screening);
        assert!(spec.policy.streaming);
        assert_eq!(spec.policy.deadline_ms, Some(9000));
        assert_eq!(
            spec.policy.adaptive,
            AdaptiveConfig {
                enabled: true,
                threshold_permille: 400,
                confirm: 3,
                min_phase_chunks: 5,
            }
        );
        assert!(spec.deprecated_fields.is_empty(), "nested fields are v6-native");
    }

    #[test]
    fn v5_flat_fields_still_parse_and_carry_the_deprecation_note() {
        let line = r#"{"cmd":"submit","workload":"mcf",
            "slice_mode":"ondemand","checkpoint_every":256,"deadline_ms":9000}"#;
        let Ok(Request::Submit(spec)) = parse_request(line) else {
            panic!("v5 flat submit must parse");
        };
        assert_eq!(spec.policy.slicing, SlicingMode::OnDemand { checkpoint_every: 256 });
        assert_eq!(spec.policy.deadline_ms, Some(9000));
        assert_eq!(
            spec.deprecated_fields,
            vec!["slice_mode", "checkpoint_every", "deadline_ms"]
        );
        // The journal re-encode of a v5 submit is the canonical v6
        // shape, and replaying it drops the deprecation note.
        let back = parse_submit(&spec_json(&spec)).expect("replay parses");
        assert_eq!(back.policy, spec.policy);
        assert!(back.deprecated_fields.is_empty());
    }

    #[test]
    fn flat_and_nested_conflicts_are_rejected_with_the_typed_code() {
        for (line, key) in [
            (
                r#"{"cmd":"submit","workload":"mcf","slice_mode":"windowed",
                    "policy":{"slice_mode":"ondemand"}}"#,
                "slice_mode",
            ),
            (
                r#"{"cmd":"submit","workload":"mcf","slice_mode":"ondemand",
                    "checkpoint_every":128,
                    "policy":{"slice_mode":"ondemand","checkpoint_every":256}}"#,
                "checkpoint_every",
            ),
            (
                r#"{"cmd":"submit","workload":"mcf","deadline_ms":1000,
                    "policy":{"deadline_ms":2000}}"#,
                "deadline_ms",
            ),
        ] {
            let Err(e) = parse_request(line) else { panic!("`{line}` must be rejected") };
            assert_eq!(e.code(), "config.conflicting_policy", "`{line}`");
            assert!(e.to_string().contains(key), "`{line}` → {e}");
        }
        // Restating the *same* value in both shapes is fine.
        let line = r#"{"cmd":"submit","workload":"mcf","deadline_ms":1000,
            "slice_mode":"windowed",
            "policy":{"slice_mode":"windowed","deadline_ms":1000}}"#;
        let Ok(Request::Submit(spec)) = parse_request(line) else {
            panic!("agreeing values must parse");
        };
        assert_eq!(spec.policy.deadline_ms, Some(1000));
        // The flat spellings still earn the deprecation note.
        assert_eq!(spec.deprecated_fields, vec!["slice_mode", "deadline_ms"]);
    }

    #[test]
    fn adaptive_policy_round_trips_and_rejects_bad_shapes() {
        // Boolean shorthand takes the detector defaults.
        let line = r#"{"cmd":"submit","workload":"mcf","policy":{"adaptive":true}}"#;
        let Ok(Request::Submit(spec)) = parse_request(line) else {
            panic!("adaptive shorthand must parse");
        };
        assert!(spec.policy.adaptive.enabled);
        assert_eq!(spec.policy.adaptive, AdaptiveConfig {
            enabled: true,
            ..AdaptiveConfig::default()
        });
        // The journal round-trip preserves the adaptive knobs exactly.
        let encoded = spec_json(&spec);
        let back = parse_submit(&encoded).expect("replay parses");
        assert_eq!(back.policy, spec.policy);
        assert_eq!(spec_json(&back).encode(), encoded.encode());

        // Adaptive + on-demand slicing is a policy contradiction.
        let line = r#"{"cmd":"submit","workload":"mcf",
            "policy":{"slice_mode":"ondemand","adaptive":true}}"#;
        let Err(e) = parse_request(line) else { panic!("adaptive+ondemand must fail") };
        assert_eq!(e.code(), "config.conflicting_policy");

        // Zero detector knobs are rejected by the policy validator.
        let line = r#"{"cmd":"submit","workload":"mcf",
            "policy":{"adaptive":{"confirm":0}}}"#;
        let Err(e) = parse_request(line) else { panic!("zero confirm must fail") };
        assert_eq!(e.code(), "config.bad_adaptive");

        // Mistyped policy / adaptive shapes are field errors.
        for line in [
            r#"{"cmd":"submit","workload":"mcf","policy":7}"#,
            r#"{"cmd":"submit","workload":"mcf","policy":{"adaptive":"yes"}}"#,
        ] {
            let Err(e) = parse_request(line) else { panic!("`{line}` must be rejected") };
            assert_eq!(e.code(), "bad_field", "`{line}`");
        }
    }

    /// A valid [`PolicySpec`] generator: any slicing mode, screening /
    /// streaming toggles, deadline, and adaptive knobs — constrained
    /// only by the spec's own validity rules (knobs ≥ 1; adaptive
    /// implies windowed slicing).
    fn policy_strategy() -> impl proptest::strategy::Strategy<Value = PolicySpec> {
        use proptest::prelude::*;
        (
            1_000u64..200_000,
            prop_oneof![
                Just(SlicingMode::Windowed),
                (1u64..10_000)
                    .prop_map(|checkpoint_every| SlicingMode::OnDemand { checkpoint_every }),
            ],
            any::<bool>(),
            any::<bool>(),
            prop_oneof![
                Just(None),
                (1u64..1_000_000).prop_map(Some),
            ],
            (any::<bool>(), 1u64..2_000, 1u64..8, 1u64..16),
        )
            .prop_map(|(budget, slicing, screening, streaming, deadline_ms, a)| {
                let (enabled, threshold_permille, confirm, min_phase_chunks) = a;
                let adaptive =
                    AdaptiveConfig { enabled, threshold_permille, confirm, min_phase_chunks };
                let mut spec = PolicySpec::paper_default(budget);
                // Adaptive selection requires the windowed streaming
                // path; respect the validity rule the daemon enforces.
                spec.slicing = if enabled { SlicingMode::Windowed } else { slicing };
                spec.screening = screening;
                spec.streaming = streaming;
                spec.adaptive = adaptive;
                spec.deadline_ms = deadline_ms;
                spec
            })
    }

    proptest::proptest! {
        /// Any valid policy survives the client → daemon → WAL → replay
        /// chain unchanged: `spec_json` is the WAL shape, `parse_submit`
        /// the replay entry point, and one round reaches the canonical
        /// byte-stable form.
        #[test]
        fn any_policy_survives_the_wal_round_trip(policy in policy_strategy()) {
            let mut spec =
                JobSpec::new("mcf", InputSet::Train, policy.cfg).expect("known workload");
            spec.policy = policy;
            let encoded = spec_json(&spec);
            let back = parse_submit(&encoded).expect("journaled spec replays");
            proptest::prop_assert_eq!(back.policy, spec.policy);
            proptest::prop_assert!(back.deprecated_fields.is_empty());
            proptest::prop_assert_eq!(spec_json(&back).encode(), encoded.encode());
        }
    }
}
