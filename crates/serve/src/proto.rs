//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response line per request. Every response
//! carries `"ok"`: `true` with the payload, or `false` with `"error"`.
//!
//! | `cmd` | fields | response payload |
//! |-------|--------|------------------|
//! | `submit` | `workload` (required), `input`, `budget`, `warmup`, `scope`, `max_slice_len`, `max_pthread_len`, `optimize`, `merge`, `width`, `mem_latency`, `model_miss_latency`, `model_width` | `job` id |
//! | `status` | `job` | `state` (+ `error` when failed) |
//! | `result` | `job` | `state`, `cache_hit`, `result{...}` |
//! | `stats` | — | queue/worker/cache/stage-latency report |
//! | `metrics` | — | full metrics registry: `counters`, `gauges`, `histograms`, `events`, plus a Prometheus-style `prometheus` text rendering |
//! | `shutdown` | — | `shutting_down: true`, then the daemon drains |
//!
//! Submit fields default to [`PipelineConfig::paper_default`] at the
//! given budget (default 120 000 instructions); `width` and
//! `mem_latency` override the corresponding [`MachineParams`] fields,
//! the `model_*` fields the selection model's cross-validation knobs.
//!
//! [`MachineParams`]: preexec_timing::MachineParams

use crate::cache::parse_input;
use crate::json::Json;
use crate::scheduler::JobId;
use crate::service::{JobOutput, JobSpec};
use preexec_experiments::pipeline::pct;
use preexec_experiments::PipelineConfig;
use preexec_workloads::InputSet;

/// A parsed request.
#[derive(Clone)]
pub enum Request {
    /// Enqueue a job.
    Submit(Box<JobSpec>),
    /// Report a job's state.
    Status(JobId),
    /// Report a finished job's result.
    Result(JobId),
    /// Report service-wide statistics.
    Stats,
    /// Report the full metrics registry (JSON + Prometheus text).
    Metrics,
    /// Drain and exit.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, unknown
/// commands, missing/mistyped fields, unknown workloads, or an invalid
/// pipeline configuration (validated *before* the job is queued).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let json = Json::parse(line).map_err(|e| e.to_string())?;
    let cmd = json
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing string field `cmd`".to_string())?;
    match cmd {
        "submit" => parse_submit(&json).map(|s| Request::Submit(Box::new(s))),
        "status" => job_id(&json).map(Request::Status),
        "result" => job_id(&json).map(Request::Result),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown cmd `{other}` (expected submit, status, result, stats, metrics, or shutdown)"
        )),
    }
}

fn job_id(json: &Json) -> Result<JobId, String> {
    json.get("job")
        .and_then(Json::as_u64)
        .ok_or_else(|| "missing numeric field `job`".to_string())
}

fn opt_u64(json: &Json, key: &str) -> Result<Option<u64>, String> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
    }
}

fn opt_f64(json: &Json, key: &str) -> Result<Option<f64>, String> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a number")),
    }
}

fn opt_bool(json: &Json, key: &str) -> Result<Option<bool>, String> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a boolean")),
    }
}

fn parse_submit(json: &Json) -> Result<JobSpec, String> {
    let workload = json
        .get("workload")
        .and_then(Json::as_str)
        .ok_or_else(|| "submit needs a string field `workload`".to_string())?;
    let input = match json.get("input") {
        None | Some(Json::Null) => InputSet::Train,
        Some(v) => {
            let name = v.as_str().ok_or("field `input` must be a string")?;
            parse_input(name)
                .ok_or_else(|| format!("unknown input `{name}` (train, test, or alt)"))?
        }
    };
    let budget = opt_u64(json, "budget")?.unwrap_or(120_000);
    let mut cfg = PipelineConfig::paper_default(budget);
    if let Some(x) = opt_u64(json, "warmup")? {
        cfg.warmup = x;
    }
    if let Some(x) = opt_u64(json, "scope")? {
        cfg.scope = x as usize;
    }
    if let Some(x) = opt_u64(json, "max_slice_len")? {
        cfg.max_slice_len = x as usize;
    }
    if let Some(x) = opt_u64(json, "max_pthread_len")? {
        cfg.max_pthread_len = x as usize;
    }
    if let Some(x) = opt_bool(json, "optimize")? {
        cfg.optimize = x;
    }
    if let Some(x) = opt_bool(json, "merge")? {
        cfg.merge = x;
    }
    if let Some(x) = opt_u64(json, "width")? {
        cfg.machine.width = u32::try_from(x).map_err(|_| "field `width` too large")?;
    }
    if let Some(x) = opt_u64(json, "mem_latency")? {
        cfg.machine.mem_latency = x;
    }
    if let Some(x) = opt_f64(json, "model_miss_latency")? {
        cfg.model_miss_latency = Some(x);
    }
    if let Some(x) = opt_f64(json, "model_width")? {
        cfg.model_width = Some(x);
    }
    // Reject bad configurations at the door: a queued job that can only
    // fail wastes a worker slot and hides the mistake from the client.
    cfg.try_validate().map_err(|e| e.to_string())?;
    JobSpec::new(workload, input, cfg)
}

/// `{"ok": false, "error": message}`.
pub fn error_response(message: &str) -> Json {
    Json::obj(vec![("ok", Json::Bool(false)), ("error", Json::str(message))])
}

/// `{"ok": true, ...fields}`.
pub fn ok_response(fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(true))];
    pairs.extend(fields);
    Json::obj(pairs)
}

/// Serializes one [`SimResult`](preexec_timing::SimResult)'s
/// service-relevant counters.
fn sim_json(r: &preexec_timing::SimResult) -> Json {
    Json::obj(vec![
        ("cycles", Json::num_u64(r.cycles)),
        ("insts", Json::num_u64(r.insts)),
        ("ipc", Json::Num(r.ipc())),
        ("l2_misses", Json::num_u64(r.mem.l2_misses)),
        ("covered_full", Json::num_u64(r.mem.covered_full)),
        ("covered_partial", Json::num_u64(r.mem.covered_partial)),
        ("launches", Json::num_u64(r.launches)),
        ("squashes", Json::num_u64(r.squashes)),
        ("timed_out", Json::Bool(r.timed_out)),
    ])
}

/// The `result` payload for a finished job.
pub fn result_json(out: &JobOutput) -> Json {
    let r = &out.result;
    Json::obj(vec![
        ("workload", Json::str(out.workload.clone())),
        ("input", Json::str(crate::cache::input_name(out.input))),
        ("cache_hit", Json::Bool(out.cache_hit)),
        ("speedup", Json::Num(r.speedup())),
        ("coverage_pct", Json::Num(r.coverage_pct())),
        ("full_coverage_pct", Json::Num(r.full_coverage_pct())),
        ("num_pthreads", Json::num_u64(r.selection.pthreads.len() as u64)),
        (
            "predicted_coverage_pct",
            Json::Num(pct(r.selection.prediction.misses_covered, r.stats.l2_misses)),
        ),
        ("base", sim_json(&r.base)),
        ("assisted", sim_json(&r.assisted)),
        (
            "trace",
            Json::obj(vec![
                ("insts", Json::num_u64(r.stats.insts)),
                ("l2_misses", Json::num_u64(r.stats.l2_misses)),
                ("loads", Json::num_u64(r.stats.loads)),
            ]),
        ),
        (
            "stage_us",
            Json::obj(vec![
                ("trace", Json::num_u64(out.stage_us.trace)),
                ("base_sim", Json::num_u64(out.stage_us.base_sim)),
                ("select", Json::num_u64(out.stage_us.select)),
                ("assisted_sim", Json::num_u64(out.stage_us.assisted_sim)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_command() {
        assert!(matches!(
            parse_request(r#"{"cmd":"submit","workload":"vpr.r"}"#),
            Ok(Request::Submit(_))
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"status","job":3}"#),
            Ok(Request::Status(3))
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"result","job":9}"#),
            Ok(Request::Result(9))
        ));
        assert!(matches!(parse_request(r#"{"cmd":"stats"}"#), Ok(Request::Stats)));
        assert!(matches!(parse_request(r#"{"cmd":"metrics"}"#), Ok(Request::Metrics)));
        assert!(matches!(parse_request(r#"{"cmd":"shutdown"}"#), Ok(Request::Shutdown)));
    }

    #[test]
    fn submit_applies_defaults_and_overrides() {
        let req = parse_request(
            r#"{"cmd":"submit","workload":"mcf","input":"test","budget":50000,
                "width":4,"mem_latency":140,"optimize":false,"model_width":6.5}"#,
        )
        .expect("parses");
        let Request::Submit(spec) = req else {
            panic!("expected submit");
        };
        assert_eq!(spec.workload_name, "mcf");
        assert_eq!(spec.input, InputSet::Test);
        assert_eq!(spec.cfg.budget, 50_000);
        assert_eq!(spec.cfg.warmup, 12_500, "warmup defaults to budget/4");
        assert_eq!(spec.cfg.machine.width, 4);
        assert_eq!(spec.cfg.machine.mem_latency, 140);
        assert!(!spec.cfg.optimize);
        assert_eq!(spec.cfg.model_width, Some(6.5));
        // Defaults match the paper configuration.
        assert_eq!(spec.cfg.scope, 1024);
        assert_eq!(spec.cfg.max_pthread_len, 32);
    }

    #[test]
    fn submit_rejects_bad_requests_with_messages() {
        for (line, needle) in [
            ("not json", "JSON"),
            (r#"{"cmd":"submit"}"#, "workload"),
            (r#"{"cmd":"submit","workload":"nope"}"#, "unknown workload"),
            (r#"{"cmd":"submit","workload":"mcf","input":"huge"}"#, "unknown input"),
            (r#"{"cmd":"submit","workload":"mcf","budget":0}"#, "budget"),
            (r#"{"cmd":"submit","workload":"mcf","width":0}"#, "width"),
            (r#"{"cmd":"submit","workload":"mcf","budget":-3}"#, "budget"),
            (r#"{"cmd":"status"}"#, "job"),
            (r#"{"cmd":"wat"}"#, "unknown cmd"),
            (r#"{}"#, "cmd"),
        ] {
            let e = parse_request(line).err().unwrap_or_default();
            assert!(e.contains(needle), "`{line}` → `{e}` (wanted `{needle}`)");
        }
    }

    #[test]
    fn responses_have_the_ok_envelope() {
        let ok = ok_response(vec![("job", Json::num_u64(4))]);
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(ok.get("job").and_then(Json::as_u64), Some(4));
        let err = error_response("nope");
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(err.get("error").and_then(Json::as_str), Some("nope"));
    }
}
