//! Daemon-level fault injection for the chaos test suite.
//!
//! The chaos harness (DESIGN.md §14.4) drives `preexecd` into the
//! failure windows that matter — a worker dying mid-job, a store that
//! cannot hit the disk, a job slow enough that a `SIGKILL` lands inside
//! it — and then checks the durability invariants. Because the daemon
//! under test is a separate *process*, injection is configured through
//! one environment variable, read once at startup:
//!
//! ```text
//! PREEXEC_CHAOS=panic_job=3,slow_job_ms=150,cache_store_fail=1
//! ```
//!
//! | key | effect |
//! |-----|--------|
//! | `panic_job=N` | the `N`th job *started* (1-based, process-wide) panics on its worker after the journal `start` record — the crash window between start and done |
//! | `slow_job_ms=M` | every job sleeps `M` ms at each stage boundary, widening the window a `SIGKILL` can land in |
//! | `cache_store_fail=1` | every artifact-cache store fails with an I/O error (results must still be served and journaled) |
//!
//! Unknown keys are ignored (forward compatibility); a malformed value
//! disables its key. With the variable unset every probe is a branch on
//! a preparsed `false` — nothing to configure, nothing to pay.
//!
//! Injection sites live in production code (`cache::store`, the server's
//! job wrapper) but are inert without the variable, the standard
//! failpoint pattern. Tests in the daemon's own process can also install
//! a plan programmatically with [`set_plan_for_tests`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The parsed injection plan; all-off by default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// 1-based index (in start order) of a job whose worker panics
    /// mid-job, after the journal `start` record.
    pub panic_job: Option<u64>,
    /// Per-stage-boundary sleep, widening crash windows.
    pub slow_job_ms: Option<u64>,
    /// Fail every artifact-cache store with an I/O error.
    pub cache_store_fail: bool,
}

impl ChaosPlan {
    /// Parses the `PREEXEC_CHAOS` comma-separated `key=value` format.
    /// Unknown keys and malformed values are ignored.
    pub fn parse(spec: &str) -> ChaosPlan {
        let mut plan = ChaosPlan::default();
        for part in spec.split(',') {
            let Some((key, value)) = part.split_once('=') else {
                continue;
            };
            match key.trim() {
                "panic_job" => plan.panic_job = value.trim().parse().ok(),
                "slow_job_ms" => plan.slow_job_ms = value.trim().parse().ok(),
                "cache_store_fail" => plan.cache_store_fail = value.trim() == "1",
                _ => {}
            }
        }
        plan
    }

    /// Whether any injector is armed.
    pub fn is_active(&self) -> bool {
        *self != ChaosPlan::default()
    }
}

static PLAN: OnceLock<ChaosPlan> = OnceLock::new();
static JOBS_STARTED: AtomicU64 = AtomicU64::new(0);

/// The process-wide plan: parsed from `PREEXEC_CHAOS` on first use,
/// all-off when the variable is unset.
pub fn plan() -> &'static ChaosPlan {
    PLAN.get_or_init(|| match std::env::var("PREEXEC_CHAOS") {
        Ok(spec) => ChaosPlan::parse(&spec),
        Err(_) => ChaosPlan::default(),
    })
}

/// Installs `plan` for this process, for tests that cannot use the
/// environment (it is read once; set the variable before any probe for
/// spawned-daemon tests instead). First caller wins — like the env path.
pub fn set_plan_for_tests(plan: ChaosPlan) {
    let _ = PLAN.set(plan);
}

/// Marks one job as started and returns its 1-based start index —
/// [`should_panic_now`]'s input.
pub fn job_started() -> u64 {
    JOBS_STARTED.fetch_add(1, Ordering::Relaxed) + 1
}

/// Whether the `panic_job` injector targets the job with this start
/// index.
pub fn should_panic_now(start_index: u64) -> bool {
    plan().panic_job == Some(start_index)
}

/// The `slow_job_ms` injector: sleeps at a stage boundary when armed.
pub fn stage_delay() {
    if let Some(ms) = plan().slow_job_ms {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_env_format_leniently() {
        let plan = ChaosPlan::parse("panic_job=3, slow_job_ms=150 ,cache_store_fail=1");
        assert_eq!(plan.panic_job, Some(3));
        assert_eq!(plan.slow_job_ms, Some(150));
        assert!(plan.cache_store_fail);
        assert!(plan.is_active());

        // Unknown keys, malformed values, junk: ignored, never fatal.
        let plan = ChaosPlan::parse("panic_job=abc,future_knob=7,,=,noise");
        assert_eq!(plan, ChaosPlan::default());
        assert!(!plan.is_active());
        assert_eq!(ChaosPlan::parse(""), ChaosPlan::default());
    }

    #[test]
    fn start_indices_are_unique_and_increasing() {
        let a = job_started();
        let b = job_started();
        assert!(b > a);
    }
}
