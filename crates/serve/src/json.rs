//! A minimal, dependency-free JSON value type with an encoder and a
//! recursive-descent parser.
//!
//! The wire protocol of [`preexecd`](crate::server) is newline-delimited
//! JSON, and the build environment has no registry access, so the usual
//! serde stack is unavailable; this module implements exactly the subset
//! the service needs. Design points:
//!
//! - numbers are [`f64`] (like JavaScript): integral values up to 2^53
//!   round-trip exactly, which covers every counter the service reports
//!   (cycle counts are watchdog-bounded well below that);
//! - non-finite numbers encode as `null` (JSON has no NaN/infinity);
//! - object keys keep insertion order (a `Vec` of pairs, not a map), so
//!   encoding is deterministic;
//! - parsing is hardened against untrusted input: a nesting-depth limit
//!   bounds recursion and every error carries a byte offset.

use std::error::Error;
use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`]. Protocol messages
/// are at most a few levels deep; the limit only exists so hostile input
/// cannot overflow the parser's stack.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Non-finite values cannot be represented on the wire
    /// and encode as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl Error for JsonError {}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number from a `u64` counter. Values above 2^53 lose
    /// precision (none of the service's counters can reach that).
    pub fn num_u64(x: u64) -> Json {
        Json::Num(x as f64)
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if this is a
    /// non-negative integral number that fits exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= 9_007_199_254_740_992.0 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Encodes the value as compact JSON (no whitespace, one line).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's f64 Display is the shortest string that
                    // parses back to the same value, and never uses
                    // exponent notation — always valid JSON.
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => encode_str(s, out),
            Json::Arr(v) => {
                out.push('[');
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem:
    /// malformed literals, unterminated or badly-escaped strings, missing
    /// separators, trailing garbage, or nesting deeper than an internal
    /// limit.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { at: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain (unescaped, non-quote) bytes at once
            // so multi-byte UTF-8 passes through untouched.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair: a low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')
                            .map_err(|_| self.err("expected low surrogate"))?;
                        let lo = self.hex4()?;
                        if !(0xdc00..0xe000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                    } else {
                        return Err(self.err("unpaired high surrogate"));
                    }
                } else if (0xdc00..0xe000).contains(&hi) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    hi
                };
                out.push(
                    char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?,
                );
            }
            c => return Err(self.err(format!("bad escape `\\{}`", c as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("bad hex digit in \\u escape")),
            };
            v = v * 16 + d as u32;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let x: f64 = text
            .parse()
            .map_err(|_| JsonError { at: start, message: format!("bad number `{text}`") })?;
        if !x.is_finite() {
            return Err(JsonError { at: start, message: format!("number `{text}` overflows") });
        }
        Ok(Json::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) {
        let text = v.encode();
        let back = Json::parse(&text).expect("round-trip parse");
        assert_eq!(&back, v, "through `{text}`");
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-1.5),
            Json::Num(9_007_199_254_740_992.0),
            Json::Num(1e300),
            Json::str(""),
            Json::str("plain"),
            Json::str("esc \" \\ \n \r \t \u{0001} ünïcödé 🚀"),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn structures_round_trip() {
        let v = Json::obj(vec![
            ("cmd", Json::str("submit")),
            ("nested", Json::Arr(vec![Json::Null, Json::obj(vec![("k", Json::Num(3.25))])])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        round_trip(&v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5e1 , \"\\u0041\\ud83d\\ude80\" ] } ")
            .expect("parses");
        assert_eq!(v.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len), Some(3));
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).and_then(|a| a[2].as_str()),
            Some("A🚀")
        );
    }

    #[test]
    fn rejects_garbage_with_positions() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\":}", "nul", "1 2", "\"\\q\"", "{1:2}"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must not parse");
        }
        let e = Json::parse("[true, xyz]").unwrap_err();
        assert_eq!(e.at, 7);
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let e = Json::parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting"), "{e}");
    }

    #[test]
    fn non_finite_numbers_encode_as_null() {
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = Json::obj(vec![("n", Json::Num(4.0)), ("s", Json::str("x"))]);
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("n").and_then(Json::as_str), None);
        assert_eq!(v.get("s").and_then(Json::as_u64), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(v.get("missing"), None);
    }
}
