//! Admission control: bounded load shedding in front of the scheduler.
//!
//! The scheduler's queue cap is the *hard* wall — hit it and the submit
//! fails with `queue_full`. This module adds the *soft* wall in front of
//! it: beyond a high-water mark of outstanding work, new submissions are
//! shed fast with a typed `overloaded` error carrying a `retry_after_ms`
//! hint, before any job state is allocated. Shedding early keeps the
//! daemon's latency under a flood bounded by what is already queued
//! instead of by what clients keep throwing at it — degradation, not
//! thrash (DESIGN.md §14.3).
//!
//! The gate is driven by the same occupancy the `sched.queue_depth` and
//! `sched.running` gauges in [`preexec_obs`] export; the caller hands in
//! the live values so a private registry (or none at all) works too.
//! `retry_after_ms` is an estimate, not a promise: outstanding work over
//! worker count, times an EWMA of observed job wall time (a fixed prior
//! before the first completion), clamped to a sane band. A client that
//! honors it (see [`retry`](crate::retry)) converges on the daemon's
//! actual drain rate.

use preexec_obs::{Counter, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Prior for the mean job wall time before any job has finished.
const DEFAULT_JOB_MS: u64 = 250;
/// `retry_after_ms` clamp band: short enough to matter, long enough to
/// not be a busy-wait invitation.
const MIN_RETRY_MS: u64 = 25;
const MAX_RETRY_MS: u64 = 30_000;

/// The typed overload rejection: the daemon is past its high-water mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded {
    /// Client hint: when to retry.
    pub retry_after_ms: u64,
    /// Outstanding work (queued + running) at rejection time.
    pub outstanding: u64,
    /// The high-water mark that was exceeded.
    pub high_water: u64,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "daemon overloaded: {} jobs outstanding (high-water {}); retry in {} ms",
            self.outstanding, self.high_water, self.retry_after_ms
        )
    }
}

impl std::error::Error for Overloaded {}

/// The admission gate. Thread-safe; one per daemon.
#[derive(Debug)]
pub struct AdmissionGate {
    high_water: usize,
    workers: usize,
    /// EWMA of job wall time in microseconds (0 = no sample yet).
    mean_job_us: AtomicU64,
    admitted: Arc<Counter>,
    shed: Arc<Counter>,
}

impl AdmissionGate {
    /// A gate shedding beyond `high_water` outstanding jobs over a pool
    /// of `workers`, counting `admission.admitted` / `admission.shed`
    /// into `registry`. `high_water == 0` derives the default: ¾ of
    /// `queue_cap` plus the workers (the queue cap still backstops it).
    pub fn new(
        high_water: usize,
        queue_cap: usize,
        workers: usize,
        registry: &Registry,
    ) -> AdmissionGate {
        let high_water = if high_water == 0 {
            (queue_cap * 3 / 4).max(1) + workers
        } else {
            high_water
        };
        AdmissionGate {
            high_water,
            workers: workers.max(1),
            mean_job_us: AtomicU64::new(0),
            admitted: registry.counter("admission.admitted"),
            shed: registry.counter("admission.shed"),
        }
    }

    /// The effective high-water mark.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Submissions shed so far (mirrors the `admission.shed` counter).
    pub fn shed_total(&self) -> u64 {
        self.shed.get()
    }

    /// Folds one finished job's wall time into the EWMA (α = ¼ — a few
    /// jobs move the estimate, one outlier does not own it).
    pub fn record_job_us(&self, us: u64) {
        let prev = self.mean_job_us.load(Ordering::Relaxed);
        let next = if prev == 0 { us } else { prev - prev / 4 + us / 4 };
        self.mean_job_us.store(next.max(1), Ordering::Relaxed);
    }

    /// The current mean-job-time estimate in milliseconds (the prior
    /// before any sample).
    pub fn mean_job_ms(&self) -> u64 {
        match self.mean_job_us.load(Ordering::Relaxed) {
            0 => DEFAULT_JOB_MS,
            us => (us / 1000).max(1),
        }
    }

    /// One retry hint: `waves` drain waves at the current mean job wall,
    /// floored at a single wall — a client must never be told to come
    /// back before even one job could have freed a slot, and the
    /// cold-start prior counts as a wall. The product saturates instead
    /// of wrapping, so an absurd backlog yields the clamp ceiling rather
    /// than a tiny wrapped hint (or a debug-mode overflow panic).
    fn retry_hint_ms(&self, waves: u64) -> u64 {
        let wall = self.mean_job_ms();
        waves.saturating_mul(wall).max(wall).clamp(MIN_RETRY_MS, MAX_RETRY_MS)
    }

    /// Admits or sheds a submission given the live occupancy (the same
    /// values the `sched.queue_depth` / `sched.running` gauges mirror).
    ///
    /// # Errors
    ///
    /// [`Overloaded`] with the retry hint when `queued + running` is at
    /// or beyond the high-water mark.
    pub fn admit(&self, queued: usize, running: usize) -> Result<(), Overloaded> {
        let outstanding = queued.saturating_add(running);
        if outstanding < self.high_water {
            self.admitted.inc();
            return Ok(());
        }
        self.shed.inc();
        // Expected time until the backlog drains below the mark, spread
        // over the pool.
        let over = outstanding.saturating_add(1).saturating_sub(self.high_water).max(1);
        let waves = over.div_ceil(self.workers) as u64;
        let retry_after_ms = self.retry_hint_ms(waves);
        Err(Overloaded {
            retry_after_ms,
            outstanding: outstanding as u64,
            high_water: self.high_water as u64,
        })
    }

    /// Admits or sheds an `n`-job batch as a unit: admitted only when the
    /// *whole* batch fits under the high-water mark, so a batch cannot
    /// jump the soft wall by splitting its head under the line. One
    /// decision covers the batch — one `admission.admitted` bump per
    /// admitted job, or a single `admission.shed` and a single
    /// `overloaded` error for the lot, whose retry hint accounts for the
    /// full batch joining the backlog.
    ///
    /// # Errors
    ///
    /// [`Overloaded`] when `queued + running + n` would exceed the mark.
    pub fn admit_batch(&self, queued: usize, running: usize, n: usize) -> Result<(), Overloaded> {
        let n = n.max(1);
        let outstanding = queued.saturating_add(running);
        // `outstanding + n - 1 < high_water` ⟺ the last job of the batch
        // still lands under the mark (mirrors the single-job predicate
        // for n == 1).
        if outstanding.saturating_add(n - 1) < self.high_water {
            self.admitted.add(n as u64);
            return Ok(());
        }
        self.shed.inc();
        let over = outstanding.saturating_add(n).saturating_sub(self.high_water).max(1);
        let waves = over.div_ceil(self.workers) as u64;
        let retry_after_ms = self.retry_hint_ms(waves);
        Err(Overloaded {
            retry_after_ms,
            outstanding: outstanding as u64,
            high_water: self.high_water as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(high_water: usize, workers: usize) -> (AdmissionGate, Registry) {
        let registry = Registry::new();
        let g = AdmissionGate::new(high_water, 0, workers, &registry);
        (g, registry)
    }

    #[test]
    fn admits_below_and_sheds_at_the_high_water_mark() {
        let (g, registry) = gate(4, 2);
        assert!(g.admit(0, 0).is_ok());
        assert!(g.admit(1, 2).is_ok());
        let e = g.admit(2, 2).expect_err("at the mark");
        assert_eq!(e.outstanding, 4);
        assert_eq!(e.high_water, 4);
        assert!(e.retry_after_ms >= MIN_RETRY_MS && e.retry_after_ms <= MAX_RETRY_MS);
        assert!(e.to_string().contains("retry in"));
        assert!(g.admit(40, 2).is_err(), "far past the mark still sheds");
        assert_eq!(registry.counter("admission.admitted").get(), 2);
        assert_eq!(registry.counter("admission.shed").get(), 2);
    }

    #[test]
    fn retry_hint_scales_with_backlog_and_observed_job_time() {
        let (g, _r) = gate(2, 2);
        // Prior: no samples yet.
        assert_eq!(g.mean_job_ms(), DEFAULT_JOB_MS);
        let small = g.admit(2, 0).expect_err("shed").retry_after_ms;
        let large = g.admit(40, 2).expect_err("shed").retry_after_ms;
        assert!(large > small, "deeper backlog → longer hint ({small} vs {large})");
        // Feed fast jobs: the hint shrinks toward the clamp floor.
        for _ in 0..32 {
            g.record_job_us(2_000); // 2 ms jobs
        }
        assert!(g.mean_job_ms() <= 3);
        let fast = g.admit(4, 2).expect_err("shed").retry_after_ms;
        assert!(fast <= small, "fast jobs must shrink the hint");
        // Slow jobs: the hint grows but stays clamped.
        for _ in 0..64 {
            g.record_job_us(120_000_000); // 2-minute jobs
        }
        let slow = g.admit(400, 2).expect_err("shed").retry_after_ms;
        assert_eq!(slow, MAX_RETRY_MS);
    }

    #[test]
    fn cold_start_hint_covers_at_least_one_job_wall() {
        // Before any completion the prior *is* the wall: a wide pool
        // makes a single drain wave, and the hint must still be one
        // prior-sized wall (250 ms), not the 25 ms clamp floor — a
        // client retrying after 25 ms is guaranteed to find the same
        // backlog.
        let (g, _r) = gate(2, 64);
        let e = g.admit(2, 0).expect_err("shed");
        assert_eq!(e.retry_after_ms, DEFAULT_JOB_MS);
        let e = g.admit_batch(2, 0, 3).expect_err("shed");
        assert_eq!(e.retry_after_ms, DEFAULT_JOB_MS, "batch hint shares the floor");
        // Once a wall is observed the floor tracks it.
        g.record_job_us(5_000_000); // one 5 s job
        let e = g.admit(2, 0).expect_err("shed");
        assert_eq!(e.retry_after_ms, 5_000);
        // An absurd backlog saturates to the clamp ceiling instead of
        // wrapping the waves × wall product into a tiny hint.
        let e = g.admit(usize::MAX - 1, 1).expect_err("shed");
        assert_eq!(e.retry_after_ms, MAX_RETRY_MS);
    }

    #[test]
    fn batches_are_admitted_or_shed_as_a_unit() {
        let (g, registry) = gate(6, 2);
        // 2 outstanding + batch of 4: last job lands at occupancy 5 < 6.
        assert!(g.admit_batch(1, 1, 4).is_ok());
        assert_eq!(registry.counter("admission.admitted").get(), 4);
        // 3 outstanding + batch of 4: job #4 would cross the mark — the
        // whole batch sheds with one counted rejection.
        let e = g.admit_batch(2, 1, 4).expect_err("batch crosses the mark");
        assert_eq!(e.outstanding, 3, "reports live occupancy, not occupancy + n");
        assert_eq!(registry.counter("admission.shed").get(), 1);
        // The hint accounts for the whole batch draining: a larger batch
        // at the same occupancy yields a hint at least as long.
        for _ in 0..32 {
            g.record_job_us(2_000_000); // 2 s jobs give the hint room
        }
        let small = g.admit_batch(6, 0, 2).expect_err("shed").retry_after_ms;
        let large = g.admit_batch(6, 0, 40).expect_err("shed").retry_after_ms;
        assert!(large >= small, "batch size must widen the hint ({small} vs {large})");
        // n = 1 behaves exactly like single admit; n = 0 is clamped to 1.
        assert!(g.admit_batch(4, 0, 1).is_ok());
        assert!(g.admit_batch(4, 0, 0).is_ok());
        assert!(g.admit_batch(5, 1, 1).is_err());
    }

    #[test]
    fn zero_high_water_derives_from_queue_cap_and_workers() {
        let registry = Registry::new();
        let g = AdmissionGate::new(0, 256, 8, &registry);
        assert_eq!(g.high_water(), 256 * 3 / 4 + 8);
        let g = AdmissionGate::new(0, 1, 1, &registry);
        assert_eq!(g.high_water(), 2, "tiny queue still admits something");
        let g = AdmissionGate::new(7, 256, 8, &registry);
        assert_eq!(g.high_water(), 7, "explicit mark wins");
    }
}
