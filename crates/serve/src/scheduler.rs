//! A bounded-queue, fixed-pool parallel job scheduler.
//!
//! The service's unit of work is one pipeline run; this module schedules
//! many of them over `N` OS threads with a bounded submission queue
//! (backpressure, not unbounded memory growth), per-job terminal states,
//! and a graceful drain on shutdown. It is generic over the job's output
//! type so both `preexecd` (structured [`PipelineResult`]s) and
//! `toolflow --jobs N` (buffered report text) run on the same scheduler.
//!
//! Job deadlines are *not* wall-clock timers bolted on here: each job
//! carries its own instruction/cycle budgets, and the watchdogs below it
//! (`TraceConfig.max_steps`, `SimConfig.max_cycles`,
//! `SimConfig.pthread_step_budget` — DESIGN.md §9.3) guarantee
//! termination. A job whose timing run tripped `max_cycles` completes in
//! the [`JobState::TimedOut`] state, result attached; a job that returns
//! a typed error completes as [`JobState::Failed`]. A panicking job is
//! caught (the worker survives) and reported as `Failed` with the panic
//! message.
//!
//! [`PipelineResult`]: preexec_experiments::PipelineResult

use preexec_experiments::PipelineError;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Identifies one submitted job (1-based, monotonically increasing).
pub type JobId = u64;

/// A unit of work: runs to completion and classifies its own outcome.
/// The worker passes the job its own [`JobId`] so the job can report
/// itself (journal records, metrics) without a side channel.
pub type JobFn<T> = Box<dyn FnOnce(JobId) -> JobCompletion<T> + Send + 'static>;

/// The observable lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished normally.
    Done,
    /// Finished with a typed pipeline error (or a caught panic).
    Failed,
    /// Finished, but a watchdog budget cut the run short.
    TimedOut,
    /// Cancelled before completion (client `cancel`, or an expired
    /// deadline observed at a stage boundary).
    Cancelled,
}

impl JobState {
    /// The wire name of the state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::TimedOut => "timed_out",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a job finished.
#[derive(Debug, Clone)]
pub enum JobCompletion<T> {
    /// The job produced its output.
    Done(T),
    /// The job produced output, but a watchdog truncated the run — the
    /// output is the valid prefix (timeouts are not errors, §9.3).
    TimedOut(T),
    /// The job hit a typed pipeline fault.
    Failed(PipelineError),
    /// The job panicked; the worker caught it and carries the message.
    Panicked(String),
    /// The job was cancelled — by a client `cancel` verb or an expired
    /// deadline. Carries the [`PipelineError::Cancelled`] /
    /// [`PipelineError::DeadlineExceeded`] that stopped it.
    Cancelled(PipelineError),
}

impl<T> JobCompletion<T> {
    /// The terminal [`JobState`] this completion maps to.
    pub fn state(&self) -> JobState {
        match self {
            JobCompletion::Done(_) => JobState::Done,
            JobCompletion::TimedOut(_) => JobState::TimedOut,
            JobCompletion::Failed(_) | JobCompletion::Panicked(_) => JobState::Failed,
            JobCompletion::Cancelled(_) => JobState::Cancelled,
        }
    }

    /// The output, when one exists (`Done` or `TimedOut`).
    pub fn output(&self) -> Option<&T> {
        match self {
            JobCompletion::Done(out) | JobCompletion::TimedOut(out) => Some(out),
            _ => None,
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity; retry after jobs drain.
    QueueFull {
        /// The configured capacity that was hit.
        cap: usize,
    },
    /// The scheduler is draining and accepts no new work.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { cap } => {
                write!(f, "job queue full ({cap} entries); retry later")
            }
            SubmitError::ShuttingDown => write!(f, "scheduler is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What [`Scheduler::cancel_queued`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was queued; it is now terminal [`JobState::Cancelled`].
    Dequeued,
    /// The job is on a worker — signal its cancel token instead.
    Running,
    /// The job already finished in the carried state.
    Finished(JobState),
    /// No such job.
    Unknown,
}

/// A point-in-time snapshot of scheduler occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Jobs accepted so far (all states).
    pub submitted: u64,
    /// Jobs waiting in the queue.
    pub queued: usize,
    /// Jobs currently on a worker.
    pub running: usize,
    /// Jobs finished in [`JobState::Done`].
    pub done: u64,
    /// Jobs finished in [`JobState::Failed`].
    pub failed: u64,
    /// Jobs finished in [`JobState::TimedOut`].
    pub timed_out: u64,
    /// Jobs finished in [`JobState::Cancelled`].
    pub cancelled: u64,
    /// Worker-pool size.
    pub workers: usize,
}

impl SchedulerStats {
    /// Busy workers over pool size, in [0, 1].
    pub fn utilization(&self) -> f64 {
        if self.workers == 0 {
            0.0
        } else {
            self.running as f64 / self.workers as f64
        }
    }
}

enum Record<T> {
    Queued,
    Running,
    Finished(JobCompletion<T>),
}

struct SchedState<T> {
    queue: VecDeque<(JobId, JobFn<T>)>,
    records: HashMap<JobId, Record<T>>,
    next_id: JobId,
    submitted: u64,
    accepting: bool,
    busy: usize,
    done: u64,
    failed: u64,
    timed_out: u64,
    cancelled: u64,
}

struct SchedInner<T> {
    state: Mutex<SchedState<T>>,
    /// Wakes idle workers (new work, or drain ordered).
    work_cv: Condvar,
    /// Wakes waiters (a job finished, or the pool went idle).
    done_cv: Condvar,
    queue_cap: usize,
    workers: usize,
}

/// Recovers the guard from a poisoned mutex: scheduler state is a set of
/// counters and enums that stay consistent even if a holder panicked
/// (workers never panic while holding the lock — jobs run unlocked).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The scheduler: a bounded queue feeding a fixed worker pool.
pub struct Scheduler<T> {
    inner: Arc<SchedInner<T>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl<T: Send + 'static> Scheduler<T> {
    /// Spawns `workers` worker threads behind a queue of at most
    /// `queue_cap` waiting jobs. Both are clamped to at least 1.
    pub fn new(workers: usize, queue_cap: usize) -> Scheduler<T> {
        let workers = workers.max(1);
        let inner = Arc::new(SchedInner {
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                records: HashMap::new(),
                next_id: 1,
                submitted: 0,
                accepting: true,
                busy: 0,
                done: 0,
                failed: 0,
                timed_out: 0,
                cancelled: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            queue_cap: queue_cap.max(1),
            workers,
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("preexec-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .unwrap_or_else(|e| panic!("spawning worker {i}: {e}"))
            })
            .collect();
        Scheduler { inner, handles: Mutex::new(handles) }
    }

    /// Enqueues a job, returning its id.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when `queue_cap` jobs are already
    /// waiting, [`SubmitError::ShuttingDown`] after a drain started.
    pub fn submit(&self, job: JobFn<T>) -> Result<JobId, SubmitError> {
        let mut st = lock(&self.inner.state);
        if !st.accepting {
            return Err(SubmitError::ShuttingDown);
        }
        if st.queue.len() >= self.inner.queue_cap {
            return Err(SubmitError::QueueFull { cap: self.inner.queue_cap });
        }
        let id = st.next_id;
        st.next_id += 1;
        st.submitted += 1;
        st.records.insert(id, Record::Queued);
        st.queue.push_back((id, job));
        let depth = st.queue.len();
        drop(st);
        let reg = preexec_obs::global();
        reg.counter("sched.submitted").inc();
        reg.gauge("sched.queue_depth").set(depth as i64);
        self.inner.work_cv.notify_one();
        Ok(id)
    }

    /// Enqueues a batch of jobs atomically: either every job is accepted
    /// (contiguous ids, in order) or none is. Admission is all-or-nothing
    /// so a `submit_batch` client never has to reason about a partially
    /// accepted batch — on overload the whole batch retries later.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the batch does not fit in the
    /// remaining queue capacity, [`SubmitError::ShuttingDown`] after a
    /// drain started. An empty batch is accepted trivially.
    pub fn submit_batch(&self, jobs: Vec<JobFn<T>>) -> Result<Vec<JobId>, SubmitError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let n = jobs.len();
        let mut st = lock(&self.inner.state);
        if !st.accepting {
            return Err(SubmitError::ShuttingDown);
        }
        if st.queue.len() + n > self.inner.queue_cap {
            return Err(SubmitError::QueueFull { cap: self.inner.queue_cap });
        }
        let mut ids = Vec::with_capacity(n);
        for job in jobs {
            let id = st.next_id;
            st.next_id += 1;
            st.submitted += 1;
            st.records.insert(id, Record::Queued);
            st.queue.push_back((id, job));
            ids.push(id);
        }
        let depth = st.queue.len();
        drop(st);
        let reg = preexec_obs::global();
        reg.counter("sched.submitted").add(n as u64);
        reg.gauge("sched.queue_depth").set(depth as i64);
        // Every worker may have work now, not just one.
        self.inner.work_cv.notify_all();
        Ok(ids)
    }

    /// Re-enqueues a journaled job under its **original id** during
    /// crash recovery. Bypasses the queue cap (the work was already
    /// acked in a previous life; shedding it now would break the
    /// durability contract) and bumps the id allocator past `id` so
    /// fresh submissions never collide with replayed ones.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShuttingDown`] after a drain started. Replaying an
    /// id that already exists is a caller bug and panics.
    pub fn submit_replayed(&self, id: JobId, job: JobFn<T>) -> Result<JobId, SubmitError> {
        let mut st = lock(&self.inner.state);
        if !st.accepting {
            return Err(SubmitError::ShuttingDown);
        }
        assert!(
            st.records.insert(id, Record::Queued).is_none(),
            "job {id} replayed twice"
        );
        st.next_id = st.next_id.max(id + 1);
        st.submitted += 1;
        st.queue.push_back((id, job));
        let depth = st.queue.len();
        drop(st);
        let reg = preexec_obs::global();
        reg.counter("sched.submitted").inc();
        reg.counter("sched.replayed").inc();
        reg.gauge("sched.queue_depth").set(depth as i64);
        self.inner.work_cv.notify_one();
        Ok(id)
    }

    /// Advances the id allocator so fresh submissions start above
    /// `max_seen`. Called after journal replay: even when every
    /// journaled job already finished (so nothing is re-enqueued and
    /// [`Scheduler::submit_replayed`] never runs), their ids live on in
    /// the restored-results map and must never be reissued.
    pub fn reserve_ids_through(&self, max_seen: JobId) {
        let mut st = lock(&self.inner.state);
        st.next_id = st.next_id.max(max_seen + 1);
    }

    /// Cancels a job that is still **queued**: removes it from the queue
    /// and records it as [`JobState::Cancelled`] with the given error.
    /// A running job cannot be yanked off its worker — the caller trips
    /// the job's cancel token instead and the run stops at its next
    /// stage boundary — so `Running` is reported back for that case.
    pub fn cancel_queued(&self, id: JobId, reason: PipelineError) -> CancelOutcome {
        let mut st = lock(&self.inner.state);
        match st.records.get(&id) {
            None => return CancelOutcome::Unknown,
            Some(Record::Running) => return CancelOutcome::Running,
            Some(Record::Finished(c)) => return CancelOutcome::Finished(c.state()),
            Some(Record::Queued) => {}
        }
        st.queue.retain(|(qid, _)| *qid != id);
        st.records.insert(id, Record::Finished(JobCompletion::Cancelled(reason)));
        st.cancelled += 1;
        let depth = st.queue.len();
        let reg = preexec_obs::global();
        reg.counter("sched.cancelled").inc();
        reg.gauge("sched.queue_depth").set(depth as i64);
        self.inner.done_cv.notify_all();
        CancelOutcome::Dequeued
    }

    /// The ids still queued and still running, in that order — what a
    /// graceful shutdown reports and journals before draining.
    pub fn pending_ids(&self) -> (Vec<JobId>, Vec<JobId>) {
        let st = lock(&self.inner.state);
        let mut queued: Vec<JobId> = st.queue.iter().map(|(id, _)| *id).collect();
        queued.sort_unstable();
        let mut running: Vec<JobId> = st
            .records
            .iter()
            .filter(|(_, r)| matches!(r, Record::Running))
            .map(|(id, _)| *id)
            .collect();
        running.sort_unstable();
        (queued, running)
    }

    /// The job's current state; `None` for unknown ids.
    pub fn state(&self, id: JobId) -> Option<JobState> {
        let st = lock(&self.inner.state);
        st.records.get(&id).map(|r| match r {
            Record::Queued => JobState::Queued,
            Record::Running => JobState::Running,
            Record::Finished(c) => c.state(),
        })
    }

    /// Blocks until the job reaches a terminal state and returns it;
    /// `None` for unknown ids.
    pub fn wait(&self, id: JobId) -> Option<JobState> {
        let mut st = lock(&self.inner.state);
        loop {
            match st.records.get(&id) {
                None => return None,
                Some(Record::Finished(c)) => return Some(c.state()),
                Some(_) => st = self.inner.done_cv.wait(st).unwrap_or_else(PoisonError::into_inner),
            }
        }
    }

    /// A snapshot of how the job finished; `None` while it is still
    /// queued/running and for unknown ids (disambiguate with
    /// [`state`](Self::state)).
    pub fn completion(&self, id: JobId) -> Option<JobCompletion<T>>
    where
        T: Clone,
    {
        let st = lock(&self.inner.state);
        match st.records.get(&id) {
            Some(Record::Finished(c)) => Some(c.clone()),
            _ => None,
        }
    }

    /// Occupancy counters.
    pub fn stats(&self) -> SchedulerStats {
        let st = lock(&self.inner.state);
        SchedulerStats {
            submitted: st.submitted,
            queued: st.queue.len(),
            running: st.busy,
            done: st.done,
            failed: st.failed,
            timed_out: st.timed_out,
            cancelled: st.cancelled,
            workers: self.inner.workers,
        }
    }

    /// Graceful drain: stops accepting new jobs, then blocks until every
    /// queued and running job has finished. Idempotent.
    pub fn drain(&self) {
        let mut st = lock(&self.inner.state);
        st.accepting = false;
        self.inner.work_cv.notify_all();
        while !st.queue.is_empty() || st.busy > 0 {
            st = self.inner.done_cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// [`drain`](Self::drain) plus worker-thread join: after this returns
    /// no scheduler thread is alive. Idempotent.
    pub fn shutdown(&self) {
        self.drain();
        let handles = std::mem::take(&mut *lock(&self.handles));
        for h in handles {
            // A worker that panicked outside a job (impossible by
            // construction) has nothing left for us to salvage.
            let _ = h.join();
        }
    }
}

fn worker_loop<T: Send + 'static>(inner: &SchedInner<T>) {
    let mut st = lock(&inner.state);
    loop {
        if let Some((id, job)) = st.queue.pop_front() {
            st.records.insert(id, Record::Running);
            st.busy += 1;
            let reg = preexec_obs::global();
            reg.gauge("sched.queue_depth").set(st.queue.len() as i64);
            reg.gauge("sched.running").set(st.busy as i64);
            drop(st);
            // The job runs without the lock; a panic is converted into a
            // terminal record so the pool and the job's waiters survive.
            let completion = match catch_unwind(AssertUnwindSafe(|| job(id))) {
                Ok(c) => c,
                Err(payload) => JobCompletion::Panicked(panic_message(payload.as_ref())),
            };
            // Registry mirror + journal note before taking the lock back
            // (both are internally synchronized).
            match &completion {
                JobCompletion::Done(_) => reg.counter("sched.done").inc(),
                JobCompletion::TimedOut(_) => reg.counter("sched.timed_out").inc(),
                JobCompletion::Failed(e) => {
                    reg.counter("sched.failed").inc();
                    reg.journal().note("job_failed", &format!("job {id}: {e}"));
                }
                JobCompletion::Panicked(msg) => {
                    reg.counter("sched.failed").inc();
                    reg.counter("sched.panicked").inc();
                    reg.journal().note("job_panicked", &format!("job {id}: {msg}"));
                }
                JobCompletion::Cancelled(e) => {
                    reg.counter("sched.cancelled").inc();
                    reg.journal().note("job_cancelled", &format!("job {id}: {e}"));
                }
            }
            st = lock(&inner.state);
            match completion.state() {
                JobState::Done => st.done += 1,
                JobState::Failed => st.failed += 1,
                JobState::TimedOut => st.timed_out += 1,
                JobState::Cancelled => st.cancelled += 1,
                JobState::Queued | JobState::Running => unreachable!("non-terminal completion"),
            }
            st.records.insert(id, Record::Finished(completion));
            st.busy -= 1;
            reg.gauge("sched.running").set(st.busy as i64);
            inner.done_cv.notify_all();
        } else if !st.accepting {
            return;
        } else {
            st = inner.work_cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn jobs_run_and_complete_in_any_submission_order() {
        let sched: Scheduler<u64> = Scheduler::new(4, 64);
        let ids: Vec<JobId> = (0..16u64)
            .map(|i| {
                sched
                    .submit(Box::new(move |_| JobCompletion::Done(i * i)))
                    .expect("submit")
            })
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(sched.wait(*id), Some(JobState::Done));
            match sched.completion(*id) {
                Some(JobCompletion::Done(x)) => assert_eq!(x, (i * i) as u64),
                other => panic!("job {id}: unexpected completion {other:?}"),
            }
        }
        let stats = sched.stats();
        assert_eq!(stats.done, 16);
        assert_eq!(stats.submitted, 16);
        sched.shutdown();
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let sched: Scheduler<()> = Scheduler::new(1, 2);
        let gate = Arc::new(AtomicUsize::new(0));
        // One job occupies the worker; two fill the queue.
        let g = Arc::clone(&gate);
        let blocker = sched
            .submit(Box::new(move |_| {
                while g.load(Ordering::SeqCst) == 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
                JobCompletion::Done(())
            }))
            .expect("blocker");
        // Wait until the blocker actually occupies the worker, then fill
        // the queue to its cap of 2.
        while sched.state(blocker) != Some(JobState::Running) {
            std::thread::sleep(Duration::from_millis(1));
        }
        for _ in 0..2 {
            sched.submit(Box::new(|_| JobCompletion::Done(()))).expect("fills queue");
        }
        assert_eq!(
            sched.submit(Box::new(|_| JobCompletion::Done(()))),
            Err(SubmitError::QueueFull { cap: 2 })
        );
        gate.store(1, Ordering::SeqCst);
        sched.shutdown();
        assert_eq!(sched.stats().done, 3);
    }

    #[test]
    fn drain_finishes_queued_work_and_rejects_new() {
        let sched: Scheduler<u32> = Scheduler::new(2, 32);
        let ids: Vec<JobId> = (0..8)
            .map(|i| sched.submit(Box::new(move |_| JobCompletion::Done(i))).expect("submit"))
            .collect();
        sched.drain();
        for id in ids {
            assert_eq!(sched.state(id), Some(JobState::Done));
        }
        assert_eq!(
            sched.submit(Box::new(|_| JobCompletion::Done(0))),
            Err(SubmitError::ShuttingDown)
        );
        sched.shutdown();
    }

    #[test]
    fn panicking_job_fails_without_killing_the_pool() {
        let sched: Scheduler<()> = Scheduler::new(1, 8);
        let bad = sched
            .submit(Box::new(|_| panic!("job exploded")))
            .expect("submit");
        let good = sched
            .submit(Box::new(|_| JobCompletion::Done(())))
            .expect("submit");
        assert_eq!(sched.wait(bad), Some(JobState::Failed));
        match sched.completion(bad) {
            Some(JobCompletion::Panicked(msg)) => assert!(msg.contains("exploded")),
            other => panic!("unexpected {other:?}"),
        }
        // The same (sole) worker still runs the next job.
        assert_eq!(sched.wait(good), Some(JobState::Done));
        sched.shutdown();
    }

    #[test]
    fn states_and_errors_have_wire_names() {
        assert_eq!(JobState::TimedOut.name(), "timed_out");
        assert_eq!(JobState::Queued.to_string(), "queued");
        assert!(JobState::Done.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(SubmitError::QueueFull { cap: 3 }.to_string().contains("3"));
        let c: JobCompletion<u8> = JobCompletion::TimedOut(7);
        assert_eq!(c.state(), JobState::TimedOut);
        assert_eq!(c.output(), Some(&7));
        let f: JobCompletion<u8> = JobCompletion::Failed(PipelineError::ZeroBudget);
        assert_eq!(f.state(), JobState::Failed);
        assert_eq!(f.output(), None);
        assert_eq!(sched_unknown_id(), (None, None));
    }

    fn sched_unknown_id() -> (Option<JobState>, Option<JobState>) {
        let sched: Scheduler<()> = Scheduler::new(1, 1);
        let r = (sched.state(999), sched.wait(999));
        sched.shutdown();
        r
    }

    #[test]
    fn cancel_queued_removes_the_job_and_reports_running_otherwise() {
        let sched: Scheduler<()> = Scheduler::new(1, 8);
        let gate = Arc::new(AtomicUsize::new(0));
        let g = Arc::clone(&gate);
        let blocker = sched
            .submit(Box::new(move |_| {
                while g.load(Ordering::SeqCst) == 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
                JobCompletion::Done(())
            }))
            .expect("blocker");
        while sched.state(blocker) != Some(JobState::Running) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let queued = sched.submit(Box::new(|_| JobCompletion::Done(()))).expect("queued");
        assert_eq!(
            sched.cancel_queued(queued, PipelineError::Cancelled { stage: "queued" }),
            CancelOutcome::Dequeued
        );
        assert_eq!(sched.state(queued), Some(JobState::Cancelled));
        assert!(matches!(
            sched.completion(queued),
            Some(JobCompletion::Cancelled(PipelineError::Cancelled { stage: "queued" }))
        ));
        // A running job cannot be dequeued; an unknown id is unknown.
        assert_eq!(
            sched.cancel_queued(blocker, PipelineError::Cancelled { stage: "queued" }),
            CancelOutcome::Running
        );
        assert_eq!(
            sched.cancel_queued(999, PipelineError::Cancelled { stage: "queued" }),
            CancelOutcome::Unknown
        );
        gate.store(1, Ordering::SeqCst);
        sched.shutdown();
        // A finished job reports its terminal state.
        assert_eq!(
            sched.cancel_queued(blocker, PipelineError::Cancelled { stage: "queued" }),
            CancelOutcome::Finished(JobState::Done)
        );
        let stats = sched.stats();
        assert_eq!((stats.done, stats.cancelled), (1, 1));
    }

    #[test]
    fn batch_submit_is_all_or_nothing_with_contiguous_ids() {
        let sched: Scheduler<u64> = Scheduler::new(1, 4);
        let gate = Arc::new(AtomicUsize::new(0));
        let g = Arc::clone(&gate);
        let blocker = sched
            .submit(Box::new(move |_| {
                while g.load(Ordering::SeqCst) == 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
                JobCompletion::Done(0)
            }))
            .expect("blocker");
        while sched.state(blocker) != Some(JobState::Running) {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Worker busy, queue empty (cap 4): a batch of 3 fits whole.
        let jobs: Vec<JobFn<u64>> = (0..3u64)
            .map(|i| Box::new(move |_| JobCompletion::Done(i * 10)) as JobFn<u64>)
            .collect();
        let ids = sched.submit_batch(jobs).expect("batch fits");
        assert_eq!(ids, vec![2, 3, 4], "contiguous ids in submission order");
        // Queue now holds 3 of 4: a batch of 2 must be rejected whole,
        // accepting neither job.
        let too_big: Vec<JobFn<u64>> = (0..2u64)
            .map(|_| Box::new(move |_| JobCompletion::Done(0u64)) as JobFn<u64>)
            .collect();
        assert_eq!(
            sched.submit_batch(too_big),
            Err(SubmitError::QueueFull { cap: 4 })
        );
        assert_eq!(sched.stats().queued, 3, "rejected batch admitted nothing");
        // A single job still fits the last slot, and an empty batch is a
        // no-op even at capacity.
        sched.submit(Box::new(|_| JobCompletion::Done(0))).expect("single fits");
        assert_eq!(sched.submit_batch(Vec::new()), Ok(Vec::new()));
        gate.store(1, Ordering::SeqCst);
        sched.shutdown();
        assert_eq!(sched.stats().done, 5);
        // After a drain, batches are rejected as shutting down.
        let late: Vec<JobFn<u64>> =
            vec![Box::new(move |_| JobCompletion::Done(0u64)) as JobFn<u64>];
        assert_eq!(sched.submit_batch(late), Err(SubmitError::ShuttingDown));
    }

    #[test]
    fn replayed_jobs_keep_their_ids_and_fresh_ids_never_collide() {
        let sched: Scheduler<u64> = Scheduler::new(2, 4);
        // Recovery replays journaled ids 7 and 3, beyond the queue cap's
        // normal reach.
        sched
            .submit_replayed(7, Box::new(|_| JobCompletion::Done(700)))
            .expect("replay 7");
        sched
            .submit_replayed(3, Box::new(|_| JobCompletion::Done(300)))
            .expect("replay 3");
        // Fresh submissions allocate above the replayed maximum.
        let fresh = sched.submit(Box::new(|_| JobCompletion::Done(800))).expect("fresh");
        assert_eq!(fresh, 8);
        for (id, want) in [(7, 700), (3, 300), (8, 800)] {
            sched.wait(id);
            match sched.completion(id) {
                Some(JobCompletion::Done(x)) => assert_eq!(x, want, "job {id}"),
                other => panic!("job {id}: unexpected {other:?}"),
            }
        }
        assert_eq!(sched.stats().submitted, 3);
        sched.shutdown();
    }

    #[test]
    fn reserved_ids_are_never_reissued() {
        // Recovery with only *finished* journaled jobs: nothing is
        // replayed into the queue, but the finished ids are still taken.
        let sched: Scheduler<u64> = Scheduler::new(1, 4);
        sched.reserve_ids_through(5);
        sched.reserve_ids_through(2); // never moves backwards
        let fresh = sched.submit(Box::new(|_| JobCompletion::Done(0))).expect("fresh");
        assert_eq!(fresh, 6);
        sched.wait(fresh);
        sched.shutdown();
    }

    #[test]
    fn pending_ids_reports_queued_and_running_sorted() {
        let sched: Scheduler<()> = Scheduler::new(1, 8);
        let gate = Arc::new(AtomicUsize::new(0));
        let g = Arc::clone(&gate);
        let blocker = sched
            .submit(Box::new(move |_| {
                while g.load(Ordering::SeqCst) == 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
                JobCompletion::Done(())
            }))
            .expect("blocker");
        while sched.state(blocker) != Some(JobState::Running) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let q1 = sched.submit(Box::new(|_| JobCompletion::Done(()))).expect("q1");
        let q2 = sched.submit(Box::new(|_| JobCompletion::Done(()))).expect("q2");
        let (queued, running) = sched.pending_ids();
        assert_eq!(queued, vec![q1, q2]);
        assert_eq!(running, vec![blocker]);
        gate.store(1, Ordering::SeqCst);
        sched.shutdown();
        let (queued, running) = sched.pending_ids();
        assert!(queued.is_empty() && running.is_empty());
    }

    /// Satellite: loom-style (hand-rolled, zero-dep) interleaving check.
    /// Races job execution (including panics and timeouts) against a
    /// concurrent observer and a drain, across many schedules, and
    /// asserts per-job state monotonicity: a job once observed `Running`
    /// is never reported `Queued` again — in particular not by the
    /// stats/state a shutdown-time snapshot sees.
    #[test]
    fn interleaved_panic_timeout_drain_never_regresses_running_to_queued() {
        // Vary the schedule: worker count, observer spin budget, and a
        // seed-salted job mix per round stand in for loom's exhaustive
        // interleaving search.
        for seed in 0u64..24 {
            let workers = 1 + (seed % 3) as usize;
            let sched: Arc<Scheduler<u8>> = Arc::new(Scheduler::new(workers, 64));
            let ids: Vec<JobId> = (0..12u64)
                .map(|i| {
                    let mix = (seed.wrapping_mul(31).wrapping_add(i)) % 4;
                    sched
                        .submit(Box::new(move |_| match mix {
                            0 => JobCompletion::Done(0),
                            1 => panic!("chaos {i}"),
                            2 => JobCompletion::TimedOut(1),
                            _ => {
                                std::thread::yield_now();
                                JobCompletion::Failed(PipelineError::ZeroBudget)
                            }
                        }))
                        .expect("submit")
                })
                .collect();
            // Observer thread: watches every job's state; records any
            // Running -> Queued regression.
            let obs_sched = Arc::clone(&sched);
            let obs_ids = ids.clone();
            let observer = std::thread::spawn(move || {
                let mut saw_running = vec![false; obs_ids.len()];
                for _round in 0..200 {
                    for (k, id) in obs_ids.iter().enumerate() {
                        match obs_sched.state(*id) {
                            Some(JobState::Running) => saw_running[k] = true,
                            Some(JobState::Queued) if saw_running[k] => {
                                return Err(format!("job {id}: Running regressed to Queued"));
                            }
                            _ => {}
                        }
                    }
                    std::thread::yield_now();
                }
                Ok(())
            });
            // Drain concurrently with the observer, then snapshot.
            sched.drain();
            let stats = sched.stats();
            assert_eq!(stats.queued, 0, "seed {seed}: drain left queued jobs");
            assert_eq!(stats.running, 0, "seed {seed}: drain left running jobs");
            assert_eq!(
                stats.done + stats.failed + stats.timed_out + stats.cancelled,
                ids.len() as u64,
                "seed {seed}: drain lost jobs"
            );
            for id in &ids {
                let s = sched.state(*id).expect("known id");
                assert!(s.is_terminal(), "seed {seed}: job {id} non-terminal after drain");
            }
            observer.join().expect("observer panicked").expect("state regression");
            sched.shutdown();
        }
    }
}
