//! A bounded-queue, fixed-pool parallel job scheduler.
//!
//! The service's unit of work is one pipeline run; this module schedules
//! many of them over `N` OS threads with a bounded submission queue
//! (backpressure, not unbounded memory growth), per-job terminal states,
//! and a graceful drain on shutdown. It is generic over the job's output
//! type so both `preexecd` (structured [`PipelineResult`]s) and
//! `toolflow --jobs N` (buffered report text) run on the same scheduler.
//!
//! Job deadlines are *not* wall-clock timers bolted on here: each job
//! carries its own instruction/cycle budgets, and the watchdogs below it
//! (`TraceConfig.max_steps`, `SimConfig.max_cycles`,
//! `SimConfig.pthread_step_budget` — DESIGN.md §9.3) guarantee
//! termination. A job whose timing run tripped `max_cycles` completes in
//! the [`JobState::TimedOut`] state, result attached; a job that returns
//! a typed error completes as [`JobState::Failed`]. A panicking job is
//! caught (the worker survives) and reported as `Failed` with the panic
//! message.
//!
//! [`PipelineResult`]: preexec_experiments::PipelineResult

use preexec_experiments::PipelineError;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Identifies one submitted job (1-based, monotonically increasing).
pub type JobId = u64;

/// A unit of work: runs to completion and classifies its own outcome.
pub type JobFn<T> = Box<dyn FnOnce() -> JobCompletion<T> + Send + 'static>;

/// The observable lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished normally.
    Done,
    /// Finished with a typed pipeline error (or a caught panic).
    Failed,
    /// Finished, but a watchdog budget cut the run short.
    TimedOut,
}

impl JobState {
    /// The wire name of the state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::TimedOut => "timed_out",
        }
    }

    /// Whether the job has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a job finished.
#[derive(Debug, Clone)]
pub enum JobCompletion<T> {
    /// The job produced its output.
    Done(T),
    /// The job produced output, but a watchdog truncated the run — the
    /// output is the valid prefix (timeouts are not errors, §9.3).
    TimedOut(T),
    /// The job hit a typed pipeline fault.
    Failed(PipelineError),
    /// The job panicked; the worker caught it and carries the message.
    Panicked(String),
}

impl<T> JobCompletion<T> {
    /// The terminal [`JobState`] this completion maps to.
    pub fn state(&self) -> JobState {
        match self {
            JobCompletion::Done(_) => JobState::Done,
            JobCompletion::TimedOut(_) => JobState::TimedOut,
            JobCompletion::Failed(_) | JobCompletion::Panicked(_) => JobState::Failed,
        }
    }

    /// The output, when one exists (`Done` or `TimedOut`).
    pub fn output(&self) -> Option<&T> {
        match self {
            JobCompletion::Done(out) | JobCompletion::TimedOut(out) => Some(out),
            _ => None,
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity; retry after jobs drain.
    QueueFull {
        /// The configured capacity that was hit.
        cap: usize,
    },
    /// The scheduler is draining and accepts no new work.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { cap } => {
                write!(f, "job queue full ({cap} entries); retry later")
            }
            SubmitError::ShuttingDown => write!(f, "scheduler is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A point-in-time snapshot of scheduler occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Jobs accepted so far (all states).
    pub submitted: u64,
    /// Jobs waiting in the queue.
    pub queued: usize,
    /// Jobs currently on a worker.
    pub running: usize,
    /// Jobs finished in [`JobState::Done`].
    pub done: u64,
    /// Jobs finished in [`JobState::Failed`].
    pub failed: u64,
    /// Jobs finished in [`JobState::TimedOut`].
    pub timed_out: u64,
    /// Worker-pool size.
    pub workers: usize,
}

impl SchedulerStats {
    /// Busy workers over pool size, in [0, 1].
    pub fn utilization(&self) -> f64 {
        if self.workers == 0 {
            0.0
        } else {
            self.running as f64 / self.workers as f64
        }
    }
}

enum Record<T> {
    Queued,
    Running,
    Finished(JobCompletion<T>),
}

struct SchedState<T> {
    queue: VecDeque<(JobId, JobFn<T>)>,
    records: HashMap<JobId, Record<T>>,
    next_id: JobId,
    accepting: bool,
    busy: usize,
    done: u64,
    failed: u64,
    timed_out: u64,
}

struct SchedInner<T> {
    state: Mutex<SchedState<T>>,
    /// Wakes idle workers (new work, or drain ordered).
    work_cv: Condvar,
    /// Wakes waiters (a job finished, or the pool went idle).
    done_cv: Condvar,
    queue_cap: usize,
    workers: usize,
}

/// Recovers the guard from a poisoned mutex: scheduler state is a set of
/// counters and enums that stay consistent even if a holder panicked
/// (workers never panic while holding the lock — jobs run unlocked).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The scheduler: a bounded queue feeding a fixed worker pool.
pub struct Scheduler<T> {
    inner: Arc<SchedInner<T>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl<T: Send + 'static> Scheduler<T> {
    /// Spawns `workers` worker threads behind a queue of at most
    /// `queue_cap` waiting jobs. Both are clamped to at least 1.
    pub fn new(workers: usize, queue_cap: usize) -> Scheduler<T> {
        let workers = workers.max(1);
        let inner = Arc::new(SchedInner {
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                records: HashMap::new(),
                next_id: 1,
                accepting: true,
                busy: 0,
                done: 0,
                failed: 0,
                timed_out: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            queue_cap: queue_cap.max(1),
            workers,
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("preexec-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .unwrap_or_else(|e| panic!("spawning worker {i}: {e}"))
            })
            .collect();
        Scheduler { inner, handles: Mutex::new(handles) }
    }

    /// Enqueues a job, returning its id.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when `queue_cap` jobs are already
    /// waiting, [`SubmitError::ShuttingDown`] after a drain started.
    pub fn submit(&self, job: JobFn<T>) -> Result<JobId, SubmitError> {
        let mut st = lock(&self.inner.state);
        if !st.accepting {
            return Err(SubmitError::ShuttingDown);
        }
        if st.queue.len() >= self.inner.queue_cap {
            return Err(SubmitError::QueueFull { cap: self.inner.queue_cap });
        }
        let id = st.next_id;
        st.next_id += 1;
        st.records.insert(id, Record::Queued);
        st.queue.push_back((id, job));
        let depth = st.queue.len();
        drop(st);
        let reg = preexec_obs::global();
        reg.counter("sched.submitted").inc();
        reg.gauge("sched.queue_depth").set(depth as i64);
        self.inner.work_cv.notify_one();
        Ok(id)
    }

    /// The job's current state; `None` for unknown ids.
    pub fn state(&self, id: JobId) -> Option<JobState> {
        let st = lock(&self.inner.state);
        st.records.get(&id).map(|r| match r {
            Record::Queued => JobState::Queued,
            Record::Running => JobState::Running,
            Record::Finished(c) => c.state(),
        })
    }

    /// Blocks until the job reaches a terminal state and returns it;
    /// `None` for unknown ids.
    pub fn wait(&self, id: JobId) -> Option<JobState> {
        let mut st = lock(&self.inner.state);
        loop {
            match st.records.get(&id) {
                None => return None,
                Some(Record::Finished(c)) => return Some(c.state()),
                Some(_) => st = self.inner.done_cv.wait(st).unwrap_or_else(PoisonError::into_inner),
            }
        }
    }

    /// A snapshot of how the job finished; `None` while it is still
    /// queued/running and for unknown ids (disambiguate with
    /// [`state`](Self::state)).
    pub fn completion(&self, id: JobId) -> Option<JobCompletion<T>>
    where
        T: Clone,
    {
        let st = lock(&self.inner.state);
        match st.records.get(&id) {
            Some(Record::Finished(c)) => Some(c.clone()),
            _ => None,
        }
    }

    /// Occupancy counters.
    pub fn stats(&self) -> SchedulerStats {
        let st = lock(&self.inner.state);
        SchedulerStats {
            submitted: st.next_id - 1,
            queued: st.queue.len(),
            running: st.busy,
            done: st.done,
            failed: st.failed,
            timed_out: st.timed_out,
            workers: self.inner.workers,
        }
    }

    /// Graceful drain: stops accepting new jobs, then blocks until every
    /// queued and running job has finished. Idempotent.
    pub fn drain(&self) {
        let mut st = lock(&self.inner.state);
        st.accepting = false;
        self.inner.work_cv.notify_all();
        while !st.queue.is_empty() || st.busy > 0 {
            st = self.inner.done_cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// [`drain`](Self::drain) plus worker-thread join: after this returns
    /// no scheduler thread is alive. Idempotent.
    pub fn shutdown(&self) {
        self.drain();
        let handles = std::mem::take(&mut *lock(&self.handles));
        for h in handles {
            // A worker that panicked outside a job (impossible by
            // construction) has nothing left for us to salvage.
            let _ = h.join();
        }
    }
}

fn worker_loop<T: Send + 'static>(inner: &SchedInner<T>) {
    let mut st = lock(&inner.state);
    loop {
        if let Some((id, job)) = st.queue.pop_front() {
            st.records.insert(id, Record::Running);
            st.busy += 1;
            let reg = preexec_obs::global();
            reg.gauge("sched.queue_depth").set(st.queue.len() as i64);
            reg.gauge("sched.running").set(st.busy as i64);
            drop(st);
            // The job runs without the lock; a panic is converted into a
            // terminal record so the pool and the job's waiters survive.
            let completion = match catch_unwind(AssertUnwindSafe(job)) {
                Ok(c) => c,
                Err(payload) => JobCompletion::Panicked(panic_message(payload.as_ref())),
            };
            // Registry mirror + journal note before taking the lock back
            // (both are internally synchronized).
            match &completion {
                JobCompletion::Done(_) => reg.counter("sched.done").inc(),
                JobCompletion::TimedOut(_) => reg.counter("sched.timed_out").inc(),
                JobCompletion::Failed(e) => {
                    reg.counter("sched.failed").inc();
                    reg.journal().note("job_failed", &format!("job {id}: {e}"));
                }
                JobCompletion::Panicked(msg) => {
                    reg.counter("sched.failed").inc();
                    reg.counter("sched.panicked").inc();
                    reg.journal().note("job_panicked", &format!("job {id}: {msg}"));
                }
            }
            st = lock(&inner.state);
            match completion.state() {
                JobState::Done => st.done += 1,
                JobState::Failed => st.failed += 1,
                JobState::TimedOut => st.timed_out += 1,
                JobState::Queued | JobState::Running => unreachable!("non-terminal completion"),
            }
            st.records.insert(id, Record::Finished(completion));
            st.busy -= 1;
            reg.gauge("sched.running").set(st.busy as i64);
            inner.done_cv.notify_all();
        } else if !st.accepting {
            return;
        } else {
            st = inner.work_cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn jobs_run_and_complete_in_any_submission_order() {
        let sched: Scheduler<u64> = Scheduler::new(4, 64);
        let ids: Vec<JobId> = (0..16u64)
            .map(|i| {
                sched
                    .submit(Box::new(move || JobCompletion::Done(i * i)))
                    .expect("submit")
            })
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(sched.wait(*id), Some(JobState::Done));
            match sched.completion(*id) {
                Some(JobCompletion::Done(x)) => assert_eq!(x, (i * i) as u64),
                other => panic!("job {id}: unexpected completion {other:?}"),
            }
        }
        let stats = sched.stats();
        assert_eq!(stats.done, 16);
        assert_eq!(stats.submitted, 16);
        sched.shutdown();
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let sched: Scheduler<()> = Scheduler::new(1, 2);
        let gate = Arc::new(AtomicUsize::new(0));
        // One job occupies the worker; two fill the queue.
        let g = Arc::clone(&gate);
        let blocker = sched
            .submit(Box::new(move || {
                while g.load(Ordering::SeqCst) == 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
                JobCompletion::Done(())
            }))
            .expect("blocker");
        // Wait until the blocker actually occupies the worker, then fill
        // the queue to its cap of 2.
        while sched.state(blocker) != Some(JobState::Running) {
            std::thread::sleep(Duration::from_millis(1));
        }
        for _ in 0..2 {
            sched.submit(Box::new(|| JobCompletion::Done(()))).expect("fills queue");
        }
        assert_eq!(
            sched.submit(Box::new(|| JobCompletion::Done(()))),
            Err(SubmitError::QueueFull { cap: 2 })
        );
        gate.store(1, Ordering::SeqCst);
        sched.shutdown();
        assert_eq!(sched.stats().done, 3);
    }

    #[test]
    fn drain_finishes_queued_work_and_rejects_new() {
        let sched: Scheduler<u32> = Scheduler::new(2, 32);
        let ids: Vec<JobId> = (0..8)
            .map(|i| sched.submit(Box::new(move || JobCompletion::Done(i))).expect("submit"))
            .collect();
        sched.drain();
        for id in ids {
            assert_eq!(sched.state(id), Some(JobState::Done));
        }
        assert_eq!(
            sched.submit(Box::new(|| JobCompletion::Done(0))),
            Err(SubmitError::ShuttingDown)
        );
        sched.shutdown();
    }

    #[test]
    fn panicking_job_fails_without_killing_the_pool() {
        let sched: Scheduler<()> = Scheduler::new(1, 8);
        let bad = sched
            .submit(Box::new(|| panic!("job exploded")))
            .expect("submit");
        let good = sched
            .submit(Box::new(|| JobCompletion::Done(())))
            .expect("submit");
        assert_eq!(sched.wait(bad), Some(JobState::Failed));
        match sched.completion(bad) {
            Some(JobCompletion::Panicked(msg)) => assert!(msg.contains("exploded")),
            other => panic!("unexpected {other:?}"),
        }
        // The same (sole) worker still runs the next job.
        assert_eq!(sched.wait(good), Some(JobState::Done));
        sched.shutdown();
    }

    #[test]
    fn states_and_errors_have_wire_names() {
        assert_eq!(JobState::TimedOut.name(), "timed_out");
        assert_eq!(JobState::Queued.to_string(), "queued");
        assert!(JobState::Done.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(SubmitError::QueueFull { cap: 3 }.to_string().contains("3"));
        let c: JobCompletion<u8> = JobCompletion::TimedOut(7);
        assert_eq!(c.state(), JobState::TimedOut);
        assert_eq!(c.output(), Some(&7));
        let f: JobCompletion<u8> = JobCompletion::Failed(PipelineError::ZeroBudget);
        assert_eq!(f.state(), JobState::Failed);
        assert_eq!(f.output(), None);
        assert_eq!(sched_unknown_id(), (None, None));
    }

    fn sched_unknown_id() -> (Option<JobState>, Option<JobState>) {
        let sched: Scheduler<()> = Scheduler::new(1, 1);
        let r = (sched.state(999), sched.wait(999));
        sched.shutdown();
        r
    }
}
