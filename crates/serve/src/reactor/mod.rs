//! A hand-rolled epoll reactor: nonblocking, pipelined connection
//! handling for the newline-JSON protocol (DESIGN.md §15).
//!
//! One thread multiplexes every connection through a level-triggered
//! [`sys::Epoll`] instance. Each connection owns a [`conn::LineBuffer`]
//! (requests reassembled from arbitrary read fragments) and a
//! [`conn::WriteQueue`] (responses survive short writes and full kernel
//! buffers). Requests are *pipelined*: a client may write N request
//! lines before reading any response; responses are written in request
//! order and carry the request's `id` field back (the protocol layer's
//! job), so ordering is explicit even through batching proxies.
//!
//! The reactor knows nothing about the protocol beyond "one line in,
//! one line out" — dispatch is behind the [`LineHandler`] trait, which
//! also surfaces the lifecycle hooks the server's observability wants
//! (accept/close, pipelined depth per readiness event).
//!
//! Heavy work never runs here: dispatch enqueues jobs on the scheduler's
//! worker pool and returns immediately. The only blocking call a line
//! can cost is the journal's fsync-before-ack, which is the durability
//! contract's price regardless of front end (§14).
//!
//! Timeouts: a connection is closed when it has an *unterminated*
//! request line pending and makes no read progress for `idle_timeout`
//! (slow-loris defense). Idle connections with no partial line — a
//! client sleeping between status polls — are never reaped.

pub mod conn;
#[cfg(target_os = "linux")]
pub mod sys;

pub use conn::{LineBuffer, LineTooLong, WriteQueue};

use std::time::Duration;

/// Tuning for [`run`]. `Default` matches production: 10 s slow-loris
/// timeout, 32 MiB line limit (peer `cache_put` lines carry whole slice
/// files), 64 MiB of buffered responses before read backpressure.
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Close a connection whose partial request line stalls this long.
    pub idle_timeout: Duration,
    /// Maximum bytes of a single request line.
    pub max_line: usize,
    /// Stop reading from a connection while this many response bytes
    /// are queued (the client is not draining its socket).
    pub max_write_buf: usize,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            idle_timeout: Duration::from_millis(10_000),
            max_line: 32 << 20,
            max_write_buf: 64 << 20,
        }
    }
}

/// Protocol dispatch plus lifecycle hooks, implemented by the server.
pub trait LineHandler {
    /// One trimmed, non-empty request line → one response line (without
    /// the trailing newline). Runs on the reactor thread: must not
    /// block on job completion.
    fn handle_line(&mut self, line: &str) -> String;

    /// The response sent (once) before closing a connection whose
    /// request line exceeded [`ReactorConfig::max_line`].
    fn overlong_line_response(&mut self, limit: usize) -> String;

    /// Number of complete request lines drained by one readiness event —
    /// >1 means the client is pipelining.
    fn record_pipelined_depth(&mut self, _depth: u64) {}

    fn on_accept(&mut self) {}
    fn on_close(&mut self) {}

    /// Polled every tick and after every dispatched line; when it turns
    /// true the reactor stops accepting, flushes pending responses
    /// (bounded), and returns.
    fn shutting_down(&self) -> bool;
}

#[cfg(target_os = "linux")]
pub use linux::run;

#[cfg(target_os = "linux")]
mod linux {
    use super::conn::{LineBuffer, WriteQueue};
    use super::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
    use super::{LineHandler, ReactorConfig};
    use std::collections::HashMap;
    use std::io::{self, Read};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::{Duration, Instant};

    const LISTENER_TOKEN: u64 = 0;
    /// Epoll tick: bounds shutdown/slow-loris reaction latency.
    const TICK: Duration = Duration::from_millis(50);
    /// How long a shutting-down reactor keeps flushing queued responses.
    const SHUTDOWN_FLUSH_DEADLINE: Duration = Duration::from_secs(5);

    struct Conn {
        stream: TcpStream,
        lines: LineBuffer,
        writes: WriteQueue,
        /// Last time `read()` returned bytes — the slow-loris clock.
        last_progress: Instant,
        /// Peer closed its write side (EOF seen); serve what's queued,
        /// then close.
        read_closed: bool,
        /// Fatal condition: close as soon as the write queue drains.
        close_after_flush: bool,
        /// The event mask currently registered with epoll.
        armed: u32,
    }

    impl Conn {
        /// The mask this connection currently wants.
        fn desired_mask(&self, cfg: &ReactorConfig) -> u32 {
            let mut mask = 0;
            let reading =
                !self.read_closed && !self.close_after_flush && self.writes.len() < cfg.max_write_buf;
            if reading {
                mask |= EPOLLIN | EPOLLRDHUP;
            }
            if !self.writes.is_empty() {
                mask |= EPOLLOUT;
            }
            mask
        }

        /// True once nothing more can happen on this connection.
        fn finished(&self) -> bool {
            (self.read_closed || self.close_after_flush) && self.writes.is_empty()
        }
    }

    /// Runs the event loop until the handler reports shutdown (clean
    /// return) or the epoll instance itself fails.
    pub fn run<H: LineHandler>(
        listener: TcpListener,
        handler: &mut H,
        cfg: &ReactorConfig,
    ) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), LISTENER_TOKEN, EPOLLIN)?;

        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_token: u64 = 1;
        let mut events = vec![EpollEvent::default(); 128];
        let mut accepting = true;
        let mut flush_deadline: Option<Instant> = None;

        loop {
            let timeout_ms = i32::try_from(TICK.as_millis()).unwrap_or(50);
            let n = epoll.wait(&mut events, timeout_ms)?;
            let mut dead: Vec<u64> = Vec::new();

            for ev in events.iter().take(n) {
                let token = ev.token();
                if token == LISTENER_TOKEN {
                    if accepting {
                        accept_all(&listener, &epoll, &mut conns, &mut next_token, cfg, handler);
                    }
                    continue;
                }
                let Some(conn) = conns.get_mut(&token) else { continue };
                let mask = ev.events();
                if mask & (EPOLLERR | EPOLLHUP) != 0 {
                    dead.push(token);
                    continue;
                }
                if mask & (EPOLLIN | EPOLLRDHUP) != 0 {
                    if let Err(()) = service_reads(conn, handler, cfg) {
                        dead.push(token);
                        continue;
                    }
                }
                if mask & EPOLLOUT != 0 && conn.writes.flush_into(&mut conn.stream).is_err() {
                    dead.push(token);
                    continue;
                }
                if conn.finished() {
                    dead.push(token);
                } else {
                    rearm(&epoll, token, conn, cfg);
                }
            }

            // Slow-loris sweep: a stalled *partial* request line is the
            // tell; idle-but-quiet connections are left alone.
            let now = Instant::now();
            for (&token, conn) in &conns {
                if conn.lines.has_partial()
                    && now.duration_since(conn.last_progress) > cfg.idle_timeout
                {
                    dead.push(token);
                }
            }

            for token in dead {
                if let Some(conn) = conns.remove(&token) {
                    let _ = epoll.del(conn.stream.as_raw_fd());
                    handler.on_close();
                }
            }

            if handler.shutting_down() {
                if accepting {
                    accepting = false;
                    let _ = epoll.del(listener.as_raw_fd());
                    flush_deadline = Some(Instant::now() + SHUTDOWN_FLUSH_DEADLINE);
                }
                let all_flushed = conns.values().all(|c| c.writes.is_empty());
                let expired = flush_deadline.is_some_and(|d| Instant::now() > d);
                if all_flushed || expired {
                    for (_, conn) in conns.drain() {
                        let _ = epoll.del(conn.stream.as_raw_fd());
                        handler.on_close();
                    }
                    return Ok(());
                }
            }
        }
    }

    fn accept_all<H: LineHandler>(
        listener: &TcpListener,
        epoll: &Epoll,
        conns: &mut HashMap<u64, Conn>,
        next_token: &mut u64,
        cfg: &ReactorConfig,
        handler: &mut H,
    ) {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = *next_token;
                    *next_token += 1;
                    let conn = Conn {
                        stream,
                        lines: LineBuffer::new(cfg.max_line),
                        writes: WriteQueue::new(),
                        last_progress: Instant::now(),
                        read_closed: false,
                        close_after_flush: false,
                        armed: 0,
                    };
                    if epoll
                        .add(conn.stream.as_raw_fd(), token, EPOLLIN | EPOLLRDHUP)
                        .is_err()
                    {
                        continue; // conn drops (closes); the client retries
                    }
                    let mut conn = conn;
                    conn.armed = EPOLLIN | EPOLLRDHUP;
                    conns.insert(token, conn);
                    handler.on_accept();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient per-connection accept failures (ECONNABORTED
                // etc.) must not kill the loop.
                Err(_) => break,
            }
        }
    }

    /// Drains the readable socket, dispatches every complete line, and
    /// starts flushing responses inline (the fast path never waits for
    /// EPOLLOUT). `Err(())` means the connection is beyond saving.
    fn service_reads<H: LineHandler>(
        conn: &mut Conn,
        handler: &mut H,
        cfg: &ReactorConfig,
    ) -> Result<(), ()> {
        let mut buf = [0u8; 16 * 1024];
        while !conn.read_closed && !conn.close_after_flush && conn.writes.len() < cfg.max_write_buf
        {
            match conn.stream.read(&mut buf) {
                Ok(0) => conn.read_closed = true,
                Ok(n) => {
                    conn.last_progress = Instant::now();
                    if conn.lines.push(&buf[..n]).is_err() {
                        let resp = handler.overlong_line_response(cfg.max_line);
                        conn.writes.enqueue(resp.as_bytes());
                        conn.writes.enqueue(b"\n");
                        conn.close_after_flush = true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Err(()),
            }
        }
        let mut depth: u64 = 0;
        while let Some(line) = conn.lines.next_line() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let resp = handler.handle_line(trimmed);
            conn.writes.enqueue(resp.as_bytes());
            conn.writes.enqueue(b"\n");
            depth += 1;
        }
        if depth > 0 {
            handler.record_pipelined_depth(depth);
        }
        match conn.writes.flush_into(&mut conn.stream) {
            Ok(_) => Ok(()),
            Err(_) => Err(()),
        }
    }

    fn rearm(epoll: &Epoll, token: u64, conn: &mut Conn, cfg: &ReactorConfig) {
        let want = conn.desired_mask(cfg);
        if want != conn.armed {
            if epoll
                .modify(conn.stream.as_raw_fd(), token, want)
                .is_err()
            {
                // Losing the registration means losing the connection;
                // mark it for the finished() sweep.
                conn.close_after_flush = true;
            } else {
                conn.armed = want;
            }
        }
    }
}
