//! Per-connection buffering for the newline-JSON protocol — the pure,
//! unit-testable half of the reactor.
//!
//! [`LineBuffer`] reassembles request lines from arbitrary `read()`
//! fragments (a newline may land anywhere, including mid-UTF-8);
//! [`WriteQueue`] absorbs responses and drains them through short
//! writes and `WouldBlock` without losing bytes or reordering them.
//! Neither touches a socket: the event loop feeds them chunks, the
//! tests feed them adversarial ones.

use std::collections::VecDeque;
use std::io::{self, Write};

/// A request line exceeded the configured maximum without a newline —
/// the connection is hostile or confused and should be closed after an
/// error response.
#[derive(Debug, PartialEq, Eq)]
pub struct LineTooLong {
    pub limit: usize,
}

impl std::fmt::Display for LineTooLong {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request line exceeds {} bytes without a newline", self.limit)
    }
}

/// Reassembles `\n`-terminated lines from read fragments. The buffer is
/// bounded by the line limit (complete lines drain immediately), so the
/// linear newline scans stay cheap.
pub struct LineBuffer {
    buf: Vec<u8>,
    max_line: usize,
}

impl LineBuffer {
    pub fn new(max_line: usize) -> LineBuffer {
        LineBuffer { buf: Vec::new(), max_line }
    }

    /// Appends one read fragment. Fails if the pending unterminated data
    /// would exceed the line limit (complete lines are only bounded by
    /// the same limit, since they drain immediately).
    pub fn push(&mut self, chunk: &[u8]) -> Result<(), LineTooLong> {
        self.buf.extend_from_slice(chunk);
        // Only the tail *after the last newline* counts against the
        // limit: everything before it will drain as complete lines.
        let tail_start = self
            .buf
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |pos| pos + 1);
        if self.buf.len() - tail_start > self.max_line {
            return Err(LineTooLong { limit: self.max_line });
        }
        Ok(())
    }

    /// Pops the next complete line (without its newline), decoding
    /// lossily — the protocol layer reports bad JSON on mojibake, which
    /// is the right error for a non-UTF-8 client.
    pub fn next_line(&mut self) -> Option<String> {
        let pos = self.buf.iter().position(|&b| b == b'\n')?;
        let line = String::from_utf8_lossy(&self.buf[..pos]).into_owned();
        self.buf.drain(..=pos);
        Some(line)
    }

    /// True when bytes of an unterminated line are pending — the state
    /// the slow-loris timeout watches.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty() && !self.buf.contains(&b'\n')
    }
}

/// An outgoing byte queue that survives partial writes.
#[derive(Default)]
pub struct WriteQueue {
    buf: VecDeque<u8>,
}

impl WriteQueue {
    pub fn new() -> WriteQueue {
        WriteQueue::default()
    }

    pub fn enqueue(&mut self, bytes: &[u8]) {
        self.buf.extend(bytes);
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Writes as much as the sink accepts. Returns `Ok(true)` when the
    /// queue fully drained, `Ok(false)` when the sink pushed back with
    /// `WouldBlock` (re-arm write interest and come back later). Short
    /// writes just advance the queue; `Interrupted` retries in place.
    pub fn flush_into(&mut self, sink: &mut impl Write) -> io::Result<bool> {
        while !self.buf.is_empty() {
            let (front, _) = self.buf.as_slices();
            match sink.write(front) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "connection sink accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.buf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn lines_reassemble_across_arbitrary_fragment_boundaries() {
        let mut lb = LineBuffer::new(1024);
        // A newline split from its line, a line split mid-byte, and two
        // lines arriving in one fragment.
        lb.push(b"{\"cmd\":\"sta").unwrap();
        assert_eq!(lb.next_line(), None);
        assert!(lb.has_partial());
        lb.push(b"ts\"}").unwrap();
        assert_eq!(lb.next_line(), None);
        lb.push(b"\n").unwrap();
        assert_eq!(lb.next_line().as_deref(), Some("{\"cmd\":\"stats\"}"));
        assert_eq!(lb.next_line(), None);
        assert!(!lb.has_partial());

        lb.push(b"first\nsecond\nthird").unwrap();
        assert_eq!(lb.next_line().as_deref(), Some("first"));
        assert_eq!(lb.next_line().as_deref(), Some("second"));
        assert_eq!(lb.next_line(), None);
        assert!(lb.has_partial());
        lb.push(b"\n").unwrap();
        assert_eq!(lb.next_line().as_deref(), Some("third"));
    }

    #[test]
    fn byte_at_a_time_delivery_works() {
        let mut lb = LineBuffer::new(64);
        for b in b"{\"cmd\":\"stats\"}\n" {
            lb.push(&[*b]).unwrap();
        }
        assert_eq!(lb.next_line().as_deref(), Some("{\"cmd\":\"stats\"}"));
    }

    #[test]
    fn an_unterminated_line_over_the_limit_is_rejected() {
        let mut lb = LineBuffer::new(16);
        lb.push(b"0123456789").unwrap();
        assert_eq!(lb.push(b"0123456789"), Err(LineTooLong { limit: 16 }));

        // Complete lines of any count pass through the same limit window.
        let mut lb = LineBuffer::new(16);
        lb.push(b"aaaa\nbbbb\ncccc\ndddd\n").unwrap();
        assert_eq!(lb.next_line().as_deref(), Some("aaaa"));
    }

    /// A sink that accepts at most `cap` bytes per write and can be told
    /// to push back with `WouldBlock` — a full kernel socket buffer in
    /// miniature.
    struct ThrottledSink {
        accepted: Vec<u8>,
        cap: usize,
        block_after: Option<usize>,
    }

    impl Write for ThrottledSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if let Some(limit) = self.block_after {
                if self.accepted.len() >= limit {
                    return Err(io::ErrorKind::WouldBlock.into());
                }
            }
            let n = buf.len().min(self.cap).max(1).min(buf.len());
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn short_writes_drain_without_loss_or_reorder() {
        let mut wq = WriteQueue::new();
        wq.enqueue(b"{\"ok\":true,\"id\":1}\n");
        wq.enqueue(b"{\"ok\":true,\"id\":2}\n");
        let mut sink = ThrottledSink { accepted: Vec::new(), cap: 3, block_after: None };
        assert!(wq.flush_into(&mut sink).unwrap());
        assert!(wq.is_empty());
        assert_eq!(sink.accepted, b"{\"ok\":true,\"id\":1}\n{\"ok\":true,\"id\":2}\n");
    }

    #[test]
    fn wouldblock_pauses_the_queue_and_resumes_where_it_left_off() {
        let mut wq = WriteQueue::new();
        wq.enqueue(b"abcdefghij");
        let mut sink = ThrottledSink { accepted: Vec::new(), cap: 4, block_after: Some(4) };
        // First flush: 4 bytes land, then the "kernel buffer" fills.
        assert!(!wq.flush_into(&mut sink).unwrap());
        assert_eq!(wq.len(), 6);
        assert_eq!(sink.accepted, b"abcd");
        // Buffer space frees up (EPOLLOUT in real life): the rest lands
        // in order.
        sink.block_after = None;
        assert!(wq.flush_into(&mut sink).unwrap());
        assert_eq!(sink.accepted, b"abcdefghij");
        assert!(wq.is_empty());
    }

    #[test]
    fn a_zero_byte_write_is_an_error_not_a_spin() {
        let mut wq = WriteQueue::new();
        wq.enqueue(b"x");
        struct ZeroSink;
        impl Write for ZeroSink {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        assert!(wq.flush_into(&mut ZeroSink).is_err());
    }
}
