//! Raw epoll syscalls — the whole OS surface of the reactor.
//!
//! The workspace is dependency-free by design (no `libc`, no `mio`), so
//! the three epoll entry points the event loop needs are issued directly
//! with inline assembly, wrapped in a safe [`Epoll`] handle that owns the
//! epoll file descriptor. Everything else the reactor touches
//! (nonblocking sockets, accept, read, write) goes through `std`, which
//! already surfaces `WouldBlock`; only the readiness *multiplexer* has no
//! std API.
//!
//! Portability notes:
//! - `epoll_pwait` is used instead of `epoll_wait` because aarch64 has no
//!   plain `epoll_wait` syscall; with a null sigmask the two are
//!   equivalent.
//! - `epoll_event` is packed on x86_64 (kernel ABI) and naturally aligned
//!   elsewhere.

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

pub const EPOLLIN: u32 = 0x1;
pub const EPOLLOUT: u32 = 0x4;
pub const EPOLLERR: u32 = 0x8;
pub const EPOLLHUP: u32 = 0x10;
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: u64 = 0x80000;

/// The kernel's `struct epoll_event`: 32-bit event mask plus 64 bits of
/// caller data (the reactor stores its connection token there).
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    events: u32,
    data: u64,
}

impl EpollEvent {
    /// The readiness mask (copied out — the struct may be packed).
    pub fn events(&self) -> u32 {
        self.events
    }

    /// The token registered with [`Epoll::add`].
    pub fn token(&self) -> u64 {
        self.data
    }
}

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const EPOLL_CTL: u64 = 233;
    pub const EPOLL_PWAIT: u64 = 281;
    pub const EPOLL_CREATE1: u64 = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const EPOLL_CREATE1: u64 = 20;
    pub const EPOLL_CTL: u64 = 21;
    pub const EPOLL_PWAIT: u64 = 22;
}

/// Issues a raw syscall and maps the kernel's `-errno` convention into
/// `io::Result`.
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(nr: u64, a1: u64, a2: u64, a3: u64, a4: u64, a5: u64, a6: u64) -> io::Result<u64> {
    let ret: i64;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    if ret < 0 {
        Err(io::Error::from_raw_os_error((-ret) as i32))
    } else {
        Ok(ret as u64)
    }
}

#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(nr: u64, a1: u64, a2: u64, a3: u64, a4: u64, a5: u64, a6: u64) -> io::Result<u64> {
    let ret: i64;
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack),
        );
    }
    if ret < 0 {
        Err(io::Error::from_raw_os_error((-ret) as i32))
    } else {
        Ok(ret as u64)
    }
}

/// An owned epoll instance. Dropping it closes the epoll fd (via
/// [`OwnedFd`]), which deregisters everything.
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; on success it returns
        // a fresh fd that we immediately take ownership of.
        let fd = unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0)? };
        Ok(Epoll { fd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) } })
    }

    fn ctl(&self, op: i32, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let ev_ptr = event
            .as_ref()
            .map_or(std::ptr::null(), |e| e as *const EpollEvent);
        // SAFETY: `ev_ptr` is either null (DEL, allowed since 2.6.9) or
        // points at a live EpollEvent for the duration of the call; the
        // kernel copies it before returning.
        unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.fd.as_raw_fd() as u64,
                op as u64,
                fd as u64,
                ev_ptr as u64,
                0,
                0,
            )?;
        }
        Ok(())
    }

    /// Registers `fd` for `events`, tagging readiness reports with
    /// `token`.
    pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Some(EpollEvent { events, data: token }))
    }

    /// Re-arms an already-registered `fd` with a new event mask.
    pub fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, Some(EpollEvent { events, data: token }))
    }

    /// Deregisters `fd`. (Closing the fd does this implicitly; explicit
    /// removal keeps the interest list tidy while the socket is still
    /// open.)
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Blocks up to `timeout_ms` (-1 = forever) for readiness; fills
    /// `events` and returns how many entries are valid. `EINTR` is
    /// reported as zero events rather than an error — the caller's tick
    /// loop re-enters anyway.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `events` is a live, writable slice; `epoll_pwait` with
        // a null sigmask never reads the sigsetsize argument.
        let ret = unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                self.fd.as_raw_fd() as u64,
                events.as_mut_ptr() as u64,
                events.len() as u64,
                timeout_ms as u64,
                0, // sigmask: null — plain epoll_wait semantics
                8, // sigsetsize (ignored with a null mask)
            )
        };
        match ret {
            Ok(n) => Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn epoll_reports_readability_with_the_registered_token() {
        let epoll = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        epoll.add(listener.as_raw_fd(), 42, EPOLLIN).unwrap();

        // Nothing pending: a zero-timeout wait reports no events.
        let mut events = [EpollEvent::default(); 8];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        // A connection attempt makes the listener readable.
        let mut client = TcpStream::connect(addr).unwrap();
        let n = epoll.wait(&mut events, 2_000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].events() & EPOLLIN, 0);

        // Accept, register the peer, and see its data arrive.
        let (peer, _) = listener.accept().unwrap();
        epoll.add(peer.as_raw_fd(), 7, EPOLLIN | EPOLLRDHUP).unwrap();
        client.write_all(b"x").unwrap();
        let n = epoll.wait(&mut events, 2_000).unwrap();
        assert!(n >= 1);
        assert!((0..n).any(|i| events[i].token() == 7));

        // MOD to write-interest: an idle socket's buffer is writable.
        epoll.modify(peer.as_raw_fd(), 7, EPOLLOUT).unwrap();
        let n = epoll.wait(&mut events, 2_000).unwrap();
        assert!((0..n).any(|i| events[i].token() == 7 && events[i].events() & EPOLLOUT != 0));

        epoll.del(peer.as_raw_fd()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }
}
