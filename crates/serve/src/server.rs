//! The TCP front end: accept loop, per-connection handlers, dispatch.
//!
//! Connections speak the newline-delimited JSON protocol of
//! [`proto`](crate::proto). Each accepted connection gets its own handler
//! thread; handlers share the scheduler, the artifact cache, and the
//! stage histograms through [`Arc`]s. Reads carry a short timeout so
//! handler threads notice a daemon shutdown promptly instead of blocking
//! forever on an idle client, which keeps the final join bounded.
//!
//! Shutdown ("graceful drain"): the `shutdown` command flips a flag,
//! answers the client, and pokes the accept loop with a loopback
//! connection. The accept loop exits, the scheduler drains (queued and
//! running jobs finish), handler threads wind down, and
//! [`Server::run`] returns.

use crate::cache::ArtifactCache;
use crate::histogram::histogram_json;
use crate::json::Json;
use crate::proto::{error_response, ok_response, parse_request, result_json, ProtoError, Request};
use crate::scheduler::{JobCompletion, Scheduler, SubmitError};
use crate::service::{run_job, JobOutput, StageHists};
use preexec_core::par::Parallelism;
use preexec_obs::{render_prometheus, Counter, Gauge};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How the daemon is set up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 binds an ephemeral port (the bound address
    /// is reported by [`Server::local_addr`]).
    pub addr: String,
    /// Worker-pool size (0 means one worker per available core).
    pub workers: usize,
    /// Intra-job threads per worker for the parallelizable pipeline
    /// stages (0 means `cores / workers`, at least 1). Total analysis
    /// threads are bounded by `workers × job_threads`: each stage holds
    /// its scoped threads only while it runs, so the default keeps the
    /// daemon at about one thread per core whatever the worker count.
    pub job_threads: usize,
    /// Bounded job-queue capacity.
    pub queue_cap: usize,
    /// Artifact-cache directory (created lazily on first store).
    pub cache_dir: PathBuf,
    /// Maximum artifact-cache entries before eviction.
    pub cache_max_entries: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            job_threads: 0,
            queue_cap: 256,
            cache_dir: PathBuf::from("preexec-cache"),
            cache_max_entries: 256,
        }
    }
}

/// Shared service state, one instance per daemon.
struct Shared {
    sched: Scheduler<JobOutput>,
    cache: ArtifactCache,
    hists: StageHists,
    shutting_down: AtomicBool,
    local_addr: SocketAddr,
    queue_cap: usize,
    /// Resolved intra-job thread count handed to every [`run_job`].
    job_threads: usize,
    /// Connections accepted over the daemon's life (registry counter
    /// `server.connections`).
    connections_total: Arc<Counter>,
    /// Live handler threads after the accept loop's last reap — the
    /// gauge the boundedness test watches (registry gauge
    /// `server.handlers_live`).
    handlers_live: Arc<Gauge>,
}

/// A bound (but not yet serving) daemon.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bad address, port in use, ...).
    pub fn bind(config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let workers = if config.workers == 0 { cores } else { config.workers };
        let job_threads = if config.job_threads == 0 {
            (cores / workers).max(1)
        } else {
            config.job_threads
        };
        let shared = Arc::new(Shared {
            sched: Scheduler::new(workers, config.queue_cap),
            cache: ArtifactCache::new(&config.cache_dir, config.cache_max_entries),
            hists: StageHists::new(),
            shutting_down: AtomicBool::new(false),
            local_addr,
            queue_cap: config.queue_cap,
            job_threads,
            connections_total: preexec_obs::global().counter("server.connections"),
            handlers_live: preexec_obs::global().gauge("server.handlers_live"),
        });
        Ok(Server { listener, shared })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Serves until a `shutdown` command arrives, then drains the
    /// scheduler and joins every handler. Blocks the calling thread for
    /// the daemon's whole life.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop socket errors (per-connection I/O errors
    /// only end that connection).
    pub fn run(self) -> std::io::Result<()> {
        let mut handlers = Vec::new();
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                // The poke connection (or a late client): stop accepting.
                break;
            }
            // Reap finished handlers before spawning the next one, so the
            // vector tracks live connections rather than growing (and
            // holding dead threads' stacks) for the daemon's whole life.
            handlers.retain(|h: &std::thread::JoinHandle<()>| !h.is_finished());
            self.shared.connections_total.inc();
            let shared = Arc::clone(&self.shared);
            handlers.push(std::thread::spawn(move || handle_connection(stream, &shared)));
            self.shared.handlers_live.set(handlers.len() as i64);
        }
        // Graceful drain: finish queued + running jobs, then collect the
        // handler threads (their read timeout notices the flag).
        self.shared.sched.shutdown();
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }
}

/// Serves one connection until EOF, error, or daemon shutdown.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    // A short read timeout keeps this thread responsive to shutdown; a
    // longer one would only delay the final join.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let response = dispatch(trimmed, shared);
                    let mut encoded = response.encode();
                    encoded.push('\n');
                    if writer.write_all(encoded.as_bytes()).is_err() || writer.flush().is_err() {
                        return;
                    }
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // `read_line` keeps any partial line it already buffered
                // in `line`; the next iteration finishes it.
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Executes one request line and builds the response.
fn dispatch(line: &str, shared: &Arc<Shared>) -> Json {
    match parse_request(line) {
        Err(e) => error_response(&e),
        Ok(Request::Submit(spec)) => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return error_response(&ProtoError::from(SubmitError::ShuttingDown));
            }
            // The worker may outlive this connection; the closure keeps
            // the cache and histograms alive through its own Arc.
            let job_shared = Arc::clone(shared);
            let submitted = shared.sched.submit(Box::new(move || {
                let par = Parallelism::new(job_shared.job_threads);
                run_job(&spec, &job_shared.cache, &job_shared.hists, par)
            }));
            match submitted {
                Ok(id) => ok_response(vec![("job", Json::num_u64(id))]),
                Err(e) => error_response(&ProtoError::from(e)),
            }
        }
        Ok(Request::Status(id)) => match shared.sched.state(id) {
            None => error_response(&ProtoError::UnknownJob(id)),
            Some(state) => {
                let mut fields = vec![
                    ("job", Json::num_u64(id)),
                    ("state", Json::str(state.name())),
                ];
                if let Some(JobCompletion::Failed(e)) = shared.sched.completion(id) {
                    fields.push(("error", Json::str(e.to_string())));
                    fields.push(("code", Json::str(e.code())));
                } else if let Some(JobCompletion::Panicked(msg)) = shared.sched.completion(id) {
                    fields.push(("error", Json::str(msg)));
                    fields.push(("code", Json::str("job_panicked")));
                }
                ok_response(fields)
            }
        },
        Ok(Request::Result(id)) => match shared.sched.completion(id) {
            None => match shared.sched.state(id) {
                None => error_response(&ProtoError::UnknownJob(id)),
                Some(state) => {
                    error_response(&ProtoError::NotFinished { job: id, state: state.name() })
                }
            },
            Some(completion) => {
                let state = completion.state();
                match completion {
                    JobCompletion::Done(out) | JobCompletion::TimedOut(out) => {
                        ok_response(vec![
                            ("job", Json::num_u64(id)),
                            ("state", Json::str(state.name())),
                            ("result", result_json(&out)),
                        ])
                    }
                    // A failed job is a served request (`ok: true`) whose
                    // payload is an error; `code` preserves the
                    // PipelineError taxonomy that a bare string used to
                    // flatten away.
                    JobCompletion::Failed(e) => ok_response(vec![
                        ("job", Json::num_u64(id)),
                        ("state", Json::str(state.name())),
                        ("error", Json::str(e.to_string())),
                        ("code", Json::str(e.code())),
                    ]),
                    JobCompletion::Panicked(msg) => ok_response(vec![
                        ("job", Json::num_u64(id)),
                        ("state", Json::str(state.name())),
                        ("error", Json::str(msg)),
                        ("code", Json::str("job_panicked")),
                    ]),
                }
            }
        },
        Ok(Request::Stats) => stats_response(shared),
        Ok(Request::Metrics) => metrics_response(),
        Ok(Request::Shutdown) => {
            shared.shutting_down.store(true, Ordering::SeqCst);
            // Unblock the accept loop so `run` can proceed to the drain.
            let _ = TcpStream::connect(shared.local_addr);
            ok_response(vec![("shutting_down", Json::Bool(true))])
        }
    }
}

fn stats_response(shared: &Shared) -> Json {
    let sched = shared.sched.stats();
    let cache = shared.cache.stats();
    ok_response(vec![
        ("queue_depth", Json::num_u64(sched.queued as u64)),
        ("queue_cap", Json::num_u64(shared.queue_cap as u64)),
        ("workers", Json::num_u64(sched.workers as u64)),
        ("busy_workers", Json::num_u64(sched.running as u64)),
        ("utilization", Json::Num(sched.utilization())),
        (
            "jobs",
            Json::obj(vec![
                ("submitted", Json::num_u64(sched.submitted)),
                ("queued", Json::num_u64(sched.queued as u64)),
                ("running", Json::num_u64(sched.running as u64)),
                ("done", Json::num_u64(sched.done)),
                ("failed", Json::num_u64(sched.failed)),
                ("timed_out", Json::num_u64(sched.timed_out)),
            ]),
        ),
        (
            "cache",
            Json::obj(vec![
                ("hits", Json::num_u64(cache.hits)),
                ("misses", Json::num_u64(cache.misses)),
                ("evictions", Json::num_u64(cache.evictions)),
                ("corrupt", Json::num_u64(cache.corrupt)),
                ("hit_rate", Json::Num(cache.hit_rate())),
            ]),
        ),
        ("stage_latency_us", shared.hists.to_json()),
        ("job_threads", Json::num_u64(shared.job_threads as u64)),
        ("parallel", shared.hists.par.to_json()),
        (
            "connections",
            Json::obj(vec![
                ("total", Json::num_u64(shared.connections_total.get())),
                (
                    "live_handlers",
                    Json::num_u64(shared.handlers_live.get().max(0) as u64),
                ),
            ]),
        ),
    ])
}

/// The `metrics` payload: the full global registry as JSON plus a
/// Prometheus-style text rendering of the same snapshot.
fn metrics_response() -> Json {
    let snap = preexec_obs::global().snapshot();
    let counters = Json::Obj(
        snap.counters.iter().map(|(name, v)| (name.clone(), Json::num_u64(*v))).collect(),
    );
    let gauges = Json::Obj(
        snap.gauges.iter().map(|(name, v)| (name.clone(), Json::Num(*v as f64))).collect(),
    );
    let histograms = Json::Obj(
        snap.histograms.iter().map(|(name, h)| (name.clone(), histogram_json(h))).collect(),
    );
    let events = Json::Arr(
        snap.events
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("seq", Json::num_u64(e.seq)),
                    ("unix_ms", Json::num_u64(e.unix_ms)),
                    ("kind", Json::str(e.kind.clone())),
                    ("message", Json::str(e.message.clone())),
                ])
            })
            .collect(),
    );
    let prometheus = render_prometheus(&snap);
    ok_response(vec![
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
        ("events", events),
        ("prometheus", Json::str(prometheus)),
    ])
}
