//! The TCP front end: connection handling, dispatch, shard topology.
//!
//! Connections speak the newline-delimited JSON protocol of
//! [`proto`](crate::proto). On Linux the default front end is the
//! [`reactor`](crate::reactor): one thread multiplexes every connection
//! through epoll, requests pipeline (N request lines in flight per
//! connection, responses in order, each echoing its request `id`), and
//! dispatch runs on the reactor thread — it only enqueues scheduler work,
//! so the single thread is never the bottleneck. The original
//! thread-per-connection loop remains as the non-Linux front end and
//! behind `--threaded`; both share [`dispatch`], so the protocol is
//! identical. In the threaded loop, reads carry a short timeout so
//! handler threads notice a daemon shutdown promptly instead of blocking
//! forever on an idle client, which keeps the final join bounded.
//!
//! Sharding (DESIGN.md §15.3): with `--shard-peers`, the daemon is one
//! shard of an N-process cluster. Job submission stays shard-local — any
//! shard accepts any job — but the artifact cache routes through the
//! [`ShardedCache`]'s hash ring, so each trace artifact is computed and
//! stored once cluster-wide instead of once per shard. The
//! `cache_get`/`cache_put` verbs are the peer side: they answer strictly
//! from the *local* cache (no recursive routing, no cross-shard
//! deadlock), and every peer failure degrades to local compute.
//!
//! Shutdown ("graceful drain"): the `shutdown` command journals and
//! reports the still-pending job counts, flips a flag, answers the
//! client, and pokes the accept loop with a loopback connection. The
//! accept loop exits, the scheduler drains (queued and running jobs
//! finish — and their results hit the durable journal, so even a crash
//! racing the drain loses nothing), handler threads wind down, and
//! [`Server::run`] returns.
//!
//! Durability (DESIGN.md §14): with journaling on (the default), every
//! acked submission and every terminal transition is appended to the
//! WAL in the cache directory before the client hears about it. At bind
//! time the journal is replayed: finished jobs' results are restored
//! into an in-memory map (served by `status`/`result` as before the
//! crash), and acked-but-unfinished jobs are re-enqueued under their
//! original ids — the pipeline is deterministic, so the re-runs complete
//! byte-identically.

use crate::admission::AdmissionGate;
use crate::cache::{ArtifactCache, RawStoreError};
use crate::histogram::histogram_json;
use crate::journal::{compact_wal, JobJournal, JournalReplay, TerminalRecord};
use crate::json::Json;
use crate::proto::{
    error_response, ok_response, parse_request_json, request_id, result_json, spec_json,
    with_request_id, ProtoError, Request, PROTOCOL_VERSION,
};
use crate::scheduler::{CancelOutcome, JobCompletion, JobId, JobState, Scheduler, SubmitError};
use crate::service::{run_job, CancelToken, JobOutput, JobSpec, StageHists};
use crate::shard::ShardedCache;
use preexec_core::par::Parallelism;
use preexec_experiments::PipelineError;
use preexec_obs::{render_prometheus, Counter, Gauge, SharedHistogram};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// How the daemon is set up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 binds an ephemeral port (the bound address
    /// is reported by [`Server::local_addr`]).
    pub addr: String,
    /// Worker-pool size (0 means one worker per available core).
    pub workers: usize,
    /// Intra-job threads per worker for the parallelizable pipeline
    /// stages (0 means `cores / workers`, at least 1). Total analysis
    /// threads are bounded by `workers × job_threads`: each stage holds
    /// its scoped threads only while it runs, so the default keeps the
    /// daemon at about one thread per core whatever the worker count.
    pub job_threads: usize,
    /// Bounded job-queue capacity.
    pub queue_cap: usize,
    /// Artifact-cache directory (created lazily on first store).
    pub cache_dir: PathBuf,
    /// Maximum artifact-cache entries before eviction.
    pub cache_max_entries: usize,
    /// Whether the durable job journal (WAL + crash recovery) is on.
    pub journal: bool,
    /// Admission-control high-water mark in outstanding jobs
    /// (queued + running); 0 derives ¾·`queue_cap` + workers.
    pub high_water: usize,
    /// Use the legacy thread-per-connection front end instead of the
    /// epoll reactor (always the case off Linux).
    pub threaded: bool,
    /// Reactor slow-loris timeout: a connection whose *partial* request
    /// line makes no progress this long is closed. Idle connections with
    /// no pending partial line are never reaped.
    pub idle_timeout_ms: u64,
    /// Compact the WAL (checkpoint-and-truncate) at startup, before
    /// replay — recovers disk from a journal grown across unclean
    /// shutdowns. Clean shutdowns compact automatically.
    pub wal_compact: bool,
    /// This daemon's index into `shard_peers` when clustering.
    pub shard_id: usize,
    /// The full shard-cluster address list (self included, same order on
    /// every shard). Fewer than two entries means no sharding.
    pub shard_peers: Vec<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            job_threads: 0,
            queue_cap: 256,
            cache_dir: PathBuf::from("preexec-cache"),
            cache_max_entries: 256,
            journal: true,
            high_water: 0,
            threaded: false,
            idle_timeout_ms: 10_000,
            wal_compact: false,
            shard_id: 0,
            shard_peers: Vec::new(),
        }
    }
}

/// Shared service state, one instance per daemon.
struct Shared {
    sched: Scheduler<JobOutput>,
    /// The artifact cache behind its shard view (a transparent local
    /// wrapper when the daemon is not clustered).
    cache: ShardedCache,
    hists: StageHists,
    shutting_down: AtomicBool,
    local_addr: SocketAddr,
    queue_cap: usize,
    /// Resolved intra-job thread count handed to every [`run_job`].
    job_threads: usize,
    /// The durable WAL; `None` with `--no-journal`.
    journal: Option<JobJournal>,
    /// The soft wall in front of the queue cap.
    admission: AdmissionGate,
    /// Live cancel tokens by job id (inserted at submit, removed when
    /// the job reports terminal; a worker *panic* skips the removal, a
    /// bounded leak of one flag per panicked job).
    tokens: Mutex<HashMap<JobId, Arc<CancelToken>>>,
    /// Finished jobs restored from the journal at startup, served by
    /// `status`/`result` exactly as live completions are.
    restored: Mutex<HashMap<JobId, TerminalRecord>>,
    /// Connections accepted over the daemon's life (registry counter
    /// `server.connections`).
    connections_total: Arc<Counter>,
    /// Live connections: handler threads in the threaded front end,
    /// open reactor connections otherwise — the gauge the boundedness
    /// test watches (registry gauge `server.handlers_live`).
    handlers_live: Arc<Gauge>,
    /// Complete request lines drained per readiness event — >1 means
    /// clients are pipelining (registry histogram
    /// `server.pipelined_depth`; always present, samples only from the
    /// reactor front end).
    pipelined_depth: Arc<SharedHistogram>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    /// The job closure both live submits and journal replays enqueue.
    /// The worker hands it the job id; it journals `start`, runs the
    /// pipeline under the cancel token, journals the terminal record
    /// *before* the scheduler exposes it, and feeds the admission
    /// gate's job-time estimate.
    fn job_fn(self: &Arc<Shared>, spec: JobSpec, token: Arc<CancelToken>) -> crate::scheduler::JobFn<JobOutput> {
        let shared = Arc::clone(self);
        Box::new(move |id| {
            let start_index = crate::chaos::job_started();
            if let Some(j) = &shared.journal {
                j.start(id);
            }
            // Deliberately panics *outside* any terminal-record write:
            // models a worker dying after `start` hit the WAL and before
            // any terminal record — the replay-and-rerun window.
            assert!(
                !crate::chaos::should_panic_now(start_index),
                "chaos: injected worker panic (job start #{start_index})"
            );
            let t0 = Instant::now();
            let par = Parallelism::new(shared.job_threads);
            let completion = run_job(&spec, &shared.cache, &shared.hists, par, Some(&token));
            shared.admission.record_job_us(t0.elapsed().as_micros() as u64);
            if let Some(j) = &shared.journal {
                match &completion {
                    JobCompletion::Done(out) => j.done(id, "done", &result_json(out)),
                    JobCompletion::TimedOut(out) => {
                        j.done(id, "timed_out", &result_json(out));
                    }
                    JobCompletion::Failed(e) => j.failed(id, &e.to_string(), e.code()),
                    JobCompletion::Panicked(msg) => j.failed(id, msg, "job_panicked"),
                    JobCompletion::Cancelled(e) => {
                        j.cancelled(id, &e.to_string(), e.code());
                    }
                }
            }
            lock(&shared.tokens).remove(&id);
            completion
        })
    }
}

/// A bound (but not yet serving) daemon.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    /// Acked-but-unfinished jobs re-enqueued from the journal at bind.
    replayed_pending: u64,
    /// Finished results restored from the journal at bind.
    restored_results: u64,
    /// Forced thread-per-connection front end.
    threaded: bool,
    /// Reactor slow-loris timeout.
    idle_timeout_ms: u64,
}

impl Server {
    /// The journal file's name inside the cache directory.
    pub const JOURNAL_FILE: &'static str = "preexecd.wal";

    /// Binds the listener, spawns the worker pool, and — with journaling
    /// on — replays the WAL: finished jobs' results are restored and
    /// served from memory, acked-but-unfinished jobs are re-enqueued
    /// under their original ids.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bad address, port in use, ...) and,
    /// when journaling is on, an unwritable journal file — refusing to
    /// run while silently unable to honor the durability contract.
    pub fn bind(config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let workers = if config.workers == 0 { cores } else { config.workers };
        let job_threads = if config.job_threads == 0 {
            (cores / workers).max(1)
        } else {
            config.job_threads
        };
        let journal_path = config.cache_dir.join(Server::JOURNAL_FILE);
        if config.journal && config.wal_compact {
            // Operator-requested startup compaction (a journal grown
            // across unclean shutdowns). Failure is not fatal: the
            // uncompacted journal still replays.
            match compact_wal(&journal_path) {
                Ok(stats) => preexec_obs::global().journal().note(
                    "wal_compacted",
                    &format!(
                        "startup compaction: {} -> {} bytes, {} record(s) kept",
                        stats.bytes_before, stats.bytes_after, stats.records_after
                    ),
                ),
                Err(e) => preexec_obs::global().journal().note(
                    "wal_compact_failed",
                    &format!("startup compaction of {}: {e}", journal_path.display()),
                ),
            }
        }
        let (journal, replay) = if config.journal {
            let replay = JournalReplay::read(&journal_path);
            if replay.corrupt_records > 0 {
                preexec_obs::global()
                    .counter("journal.corrupt_records")
                    .add(replay.corrupt_records);
                preexec_obs::global().journal().note(
                    "journal_corrupt",
                    &format!(
                        "{} corrupt record(s) skipped replaying {}",
                        replay.corrupt_records,
                        journal_path.display()
                    ),
                );
            }
            (Some(JobJournal::open(&journal_path, replay.next_seq)?), Some(replay))
        } else {
            (None, None)
        };
        let registry = preexec_obs::global();
        let local_cache = ArtifactCache::new(&config.cache_dir, config.cache_max_entries);
        let cache = if config.shard_peers.len() > 1 {
            ShardedCache::sharded(local_cache, config.shard_id, &config.shard_peers, registry)
        } else {
            ShardedCache::local_only(local_cache)
        };
        let shared = Arc::new(Shared {
            sched: Scheduler::new(workers, config.queue_cap),
            cache,
            hists: StageHists::new(),
            shutting_down: AtomicBool::new(false),
            local_addr,
            queue_cap: config.queue_cap,
            job_threads,
            journal,
            admission: AdmissionGate::new(config.high_water, config.queue_cap, workers, registry),
            tokens: Mutex::new(HashMap::new()),
            restored: Mutex::new(HashMap::new()),
            connections_total: registry.counter("server.connections"),
            handlers_live: registry.gauge("server.handlers_live"),
            // Interned at bind so the metrics surface always carries the
            // series, samples or not.
            pipelined_depth: registry.histogram("server.pipelined_depth"),
        });
        let (replayed_pending, restored_results) = match replay {
            Some(replay) => replay_journal(&shared, &replay),
            None => (0, 0),
        };
        Ok(Server {
            listener,
            shared,
            replayed_pending,
            restored_results,
            threaded: config.threaded,
            idle_timeout_ms: config.idle_timeout_ms,
        })
    }

    /// How many acked-but-unfinished jobs bind re-enqueued and how many
    /// finished results it restored from the journal.
    pub fn recovery_summary(&self) -> (u64, u64) {
        (self.replayed_pending, self.restored_results)
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Serves until a `shutdown` command arrives, then drains the
    /// scheduler, compacts the WAL, and returns. Blocks the calling
    /// thread for the daemon's whole life. On Linux this runs the epoll
    /// reactor unless `threaded` was set; elsewhere it always runs the
    /// thread-per-connection loop.
    ///
    /// # Errors
    ///
    /// Propagates listener/epoll errors (per-connection I/O errors only
    /// end that connection).
    pub fn run(self) -> std::io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            if !self.threaded {
                return self.run_reactor();
            }
        }
        self.run_threaded()
    }

    /// The epoll front end: one thread, every connection, pipelined.
    #[cfg(target_os = "linux")]
    fn run_reactor(self) -> std::io::Result<()> {
        let cfg = crate::reactor::ReactorConfig {
            idle_timeout: Duration::from_millis(self.idle_timeout_ms.max(1)),
            ..crate::reactor::ReactorConfig::default()
        };
        let mut handler = ReactorHandler { shared: Arc::clone(&self.shared), live: 0 };
        crate::reactor::run(self.listener, &mut handler, &cfg)?;
        // Graceful drain: finish queued + running jobs, then checkpoint
        // the WAL down to its minimal replay-equivalent form.
        self.shared.sched.shutdown();
        compact_journal_on_exit(&self.shared);
        Ok(())
    }

    /// The legacy thread-per-connection front end (non-Linux, and
    /// `--threaded` everywhere).
    fn run_threaded(self) -> std::io::Result<()> {
        let mut handlers = Vec::new();
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                // The poke connection (or a late client): stop accepting.
                break;
            }
            // Reap finished handlers before spawning the next one, so the
            // vector tracks live connections rather than growing (and
            // holding dead threads' stacks) for the daemon's whole life.
            handlers.retain(|h: &std::thread::JoinHandle<()>| !h.is_finished());
            self.shared.connections_total.inc();
            let shared = Arc::clone(&self.shared);
            handlers.push(std::thread::spawn(move || handle_connection(stream, &shared)));
            self.shared.handlers_live.set(handlers.len() as i64);
        }
        // Graceful drain: finish queued + running jobs, then collect the
        // handler threads (their read timeout notices the flag).
        self.shared.sched.shutdown();
        for h in handlers {
            let _ = h.join();
        }
        compact_journal_on_exit(&self.shared);
        Ok(())
    }
}

/// Checkpoint-and-truncate the WAL after a clean drain: every job is
/// terminal (or journaled pending via the shutdown record), so the
/// journal boils down to submit + terminal pairs. Runs strictly after
/// the scheduler drain — no appends race the rewrite. Failure degrades
/// to an uncompacted (still replayable) journal.
fn compact_journal_on_exit(shared: &Shared) {
    let Some(j) = &shared.journal else { return };
    match compact_wal(j.path()) {
        Ok(stats) => preexec_obs::global().journal().note(
            "wal_compacted",
            &format!(
                "shutdown compaction: {} -> {} bytes, {} record(s) kept",
                stats.bytes_before, stats.bytes_after, stats.records_after
            ),
        ),
        Err(e) => preexec_obs::global()
            .journal()
            .note("wal_compact_failed", &format!("{}: {e}", j.path().display())),
    }
}

/// The reactor-side half of the server: protocol dispatch plus the
/// connection-lifecycle accounting the threaded front end does inline.
#[cfg(target_os = "linux")]
struct ReactorHandler {
    shared: Arc<Shared>,
    /// Open connections (single-threaded: only the reactor touches it).
    live: i64,
}

#[cfg(target_os = "linux")]
impl crate::reactor::LineHandler for ReactorHandler {
    fn handle_line(&mut self, line: &str) -> String {
        dispatch(line, &self.shared).encode()
    }

    fn overlong_line_response(&mut self, limit: usize) -> String {
        Json::obj(vec![
            ("ok", Json::Bool(false)),
            ("protocol_version", Json::num_u64(PROTOCOL_VERSION)),
            (
                "error",
                Json::str(format!("request line exceeds {limit} bytes without a newline")),
            ),
            ("code", Json::str("line_too_long")),
        ])
        .encode()
    }

    fn record_pipelined_depth(&mut self, depth: u64) {
        // The histogram's unit is "request lines per readiness event",
        // not microseconds — the bucketing works the same.
        self.shared.pipelined_depth.record_us(depth);
    }

    fn on_accept(&mut self) {
        self.shared.connections_total.inc();
        self.live += 1;
        self.shared.handlers_live.set(self.live);
    }

    fn on_close(&mut self) {
        self.live = (self.live - 1).max(0);
        self.shared.handlers_live.set(self.live);
    }

    fn shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }
}

/// Applies a journal replay to a freshly-bound daemon: finished jobs'
/// terminal records go into the restored map (served by `status` /
/// `result` like live completions), acked-but-unfinished jobs are
/// re-enqueued under their original ids. Returns
/// `(replayed_pending, restored_results)`.
fn replay_journal(shared: &Arc<Shared>, replay: &JournalReplay) -> (u64, u64) {
    // Even if nothing is pending (so `submit_replayed` never bumps the
    // allocator), fresh submissions must not reuse ids that the restored
    // map still answers for.
    shared.sched.reserve_ids_through(replay.max_job_id);
    let mut restored = 0u64;
    for (id, job) in &replay.jobs {
        if let Some(term) = &job.terminal {
            lock(&shared.restored).insert(*id, term.clone());
            restored += 1;
        }
    }
    let mut replayed = 0u64;
    for (id, spec_json) in replay.pending() {
        match crate::proto::parse_submit(spec_json) {
            Ok(spec) => {
                let token = Arc::new(CancelToken::new(spec.policy.deadline_ms));
                lock(&shared.tokens).insert(id, Arc::clone(&token));
                if shared.sched.submit_replayed(id, shared.job_fn(spec, token)).is_ok() {
                    replayed += 1;
                } else {
                    lock(&shared.tokens).remove(&id);
                }
            }
            Err(e) => {
                // The journaled spec no longer parses (version skew, or a
                // damaged record that still checksummed): surface a failed
                // job rather than silently dropping an acked id.
                let msg = format!("journal replay: {e}");
                if let Some(j) = &shared.journal {
                    j.failed(id, &msg, "replay_unparseable");
                }
                lock(&shared.restored).insert(
                    id,
                    TerminalRecord {
                        state: "failed".to_string(),
                        result: None,
                        error: Some(msg),
                        code: Some("replay_unparseable".to_string()),
                    },
                );
                restored += 1;
            }
        }
    }
    if replayed > 0 || restored > 0 {
        preexec_obs::global().counter("journal.replayed_pending").add(replayed);
        preexec_obs::global().journal().note(
            "journal_replay",
            &format!("re-enqueued {replayed} pending job(s), restored {restored} result(s)"),
        );
    }
    (replayed, restored)
}

/// Serves one connection until EOF, error, or daemon shutdown.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    // A short read timeout keeps this thread responsive to shutdown; a
    // longer one would only delay the final join.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let response = dispatch(trimmed, shared);
                    let mut encoded = response.encode();
                    encoded.push('\n');
                    if writer.write_all(encoded.as_bytes()).is_err() || writer.flush().is_err() {
                        return;
                    }
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // `read_line` keeps any partial line it already buffered
                // in `line`; the next iteration finishes it.
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Builds the `status`/`result` payload for a journal-restored job
/// (one that finished in a previous daemon life).
fn restored_response(id: JobId, term: &TerminalRecord) -> Json {
    let mut fields = vec![
        ("job", Json::num_u64(id)),
        ("state", Json::str(term.state.clone())),
        ("restored", Json::Bool(true)),
    ];
    if let Some(r) = &term.result {
        fields.push(("result", r.clone()));
    }
    if let Some(e) = &term.error {
        fields.push(("error", Json::str(e.clone())));
    }
    if let Some(c) = &term.code {
        fields.push(("code", Json::str(c.clone())));
    }
    ok_response(fields)
}

/// Executes one request line and builds the response. The line is
/// decoded exactly once; a present, non-null request `id` is echoed
/// verbatim onto the response — the pipelining contract that lets a
/// client write N requests before reading any response and still match
/// responses to requests (order is also preserved per connection).
fn dispatch(line: &str, shared: &Arc<Shared>) -> Json {
    let json = match Json::parse(line) {
        Ok(json) => json,
        Err(e) => return error_response(&ProtoError::BadJson(e.to_string())),
    };
    let id = request_id(&json);
    let resp = match parse_request_json(&json) {
        Err(e) => error_response(&e),
        Ok(req) => dispatch_request(req, shared),
    };
    with_request_id(resp, id)
}

/// The `deprecated_fields` response note: the flat v5 policy spellings
/// a submit used, or `None` (no note) for v6-native submits.
fn deprecated_fields_json(fields: &[&'static str]) -> Option<Json> {
    if fields.is_empty() {
        return None;
    }
    Some(Json::Arr(fields.iter().map(|f| Json::str(*f)).collect()))
}

/// Executes one parsed request.
fn dispatch_request(req: Request, shared: &Arc<Shared>) -> Json {
    match req {
        Request::Submit(spec) => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return error_response(&ProtoError::from(SubmitError::ShuttingDown));
            }
            // Soft wall before the hard queue cap: shed with a typed
            // error and a retry hint while the daemon can still answer
            // quickly (DESIGN.md §14.3).
            let stats = shared.sched.stats();
            if let Err(over) = shared.admission.admit(stats.queued, stats.running) {
                return error_response(&ProtoError::Overloaded(over));
            }
            let journaled_spec = spec_json(&spec);
            let deprecated = deprecated_fields_json(&spec.deprecated_fields);
            let token = Arc::new(CancelToken::new(spec.policy.deadline_ms));
            match shared.sched.submit(shared.job_fn(*spec, Arc::clone(&token))) {
                Ok(id) => {
                    lock(&shared.tokens).insert(id, token);
                    // A fast worker may already have finished (its own
                    // removal ran before this insert): don't leak the
                    // token entry.
                    if shared.sched.state(id).is_some_and(JobState::is_terminal) {
                        lock(&shared.tokens).remove(&id);
                    }
                    // Journal the acked submission *before* the client
                    // hears the ack: once `ok` is on the wire the job
                    // must survive a crash. (A fast worker's `start` may
                    // already sit before this record; replay is
                    // order-insensitive.)
                    if let Some(j) = &shared.journal {
                        j.submit(id, &journaled_spec);
                    }
                    let mut fields = vec![("job", Json::num_u64(id))];
                    if let Some(note) = deprecated {
                        fields.push(("deprecated_fields", note));
                    }
                    ok_response(fields)
                }
                Err(e) => error_response(&ProtoError::from(e)),
            }
        }
        Request::Cancel(id) => {
            match shared.sched.cancel_queued(id, PipelineError::Cancelled { stage: "queued" }) {
                CancelOutcome::Dequeued => {
                    if let Some(j) = &shared.journal {
                        j.cancelled(id, "cancelled while queued", "pipeline.cancelled");
                    }
                    lock(&shared.tokens).remove(&id);
                    ok_response(vec![
                        ("job", Json::num_u64(id)),
                        ("state", Json::str("cancelled")),
                        ("cancelling", Json::Bool(false)),
                    ])
                }
                CancelOutcome::Running => {
                    // Can't yank it off the worker: trip the token and
                    // let the run stop at its next stage boundary.
                    if let Some(t) = lock(&shared.tokens).get(&id) {
                        t.cancel();
                    }
                    ok_response(vec![
                        ("job", Json::num_u64(id)),
                        ("state", Json::str("running")),
                        ("cancelling", Json::Bool(true)),
                    ])
                }
                CancelOutcome::Finished(state) => ok_response(vec![
                    ("job", Json::num_u64(id)),
                    ("state", Json::str(state.name())),
                    ("cancelling", Json::Bool(false)),
                ]),
                CancelOutcome::Unknown => match lock(&shared.restored).get(&id) {
                    Some(term) => ok_response(vec![
                        ("job", Json::num_u64(id)),
                        ("state", Json::str(term.state.clone())),
                        ("cancelling", Json::Bool(false)),
                        ("restored", Json::Bool(true)),
                    ]),
                    None => error_response(&ProtoError::UnknownJob(id)),
                },
            }
        }
        Request::Status(id) => match shared.sched.state(id) {
            None => match lock(&shared.restored).get(&id) {
                Some(term) => restored_response(id, term),
                None => error_response(&ProtoError::UnknownJob(id)),
            },
            Some(state) => {
                let mut fields = vec![
                    ("job", Json::num_u64(id)),
                    ("state", Json::str(state.name())),
                ];
                match shared.sched.completion(id) {
                    Some(JobCompletion::Failed(e) | JobCompletion::Cancelled(e)) => {
                        fields.push(("error", Json::str(e.to_string())));
                        fields.push(("code", Json::str(e.code())));
                    }
                    Some(JobCompletion::Panicked(msg)) => {
                        fields.push(("error", Json::str(msg)));
                        fields.push(("code", Json::str("job_panicked")));
                    }
                    _ => {}
                }
                ok_response(fields)
            }
        },
        Request::Result(id) => match shared.sched.completion(id) {
            None => match shared.sched.state(id) {
                None => match lock(&shared.restored).get(&id) {
                    Some(term) => restored_response(id, term),
                    None => error_response(&ProtoError::UnknownJob(id)),
                },
                Some(state) => {
                    error_response(&ProtoError::NotFinished { job: id, state: state.name() })
                }
            },
            Some(completion) => {
                let state = completion.state();
                match completion {
                    JobCompletion::Done(out) | JobCompletion::TimedOut(out) => {
                        ok_response(vec![
                            ("job", Json::num_u64(id)),
                            ("state", Json::str(state.name())),
                            ("result", result_json(&out)),
                        ])
                    }
                    // A failed/cancelled job is a served request
                    // (`ok: true`) whose payload is an error; `code`
                    // preserves the PipelineError taxonomy that a bare
                    // string used to flatten away.
                    JobCompletion::Failed(e) | JobCompletion::Cancelled(e) => {
                        ok_response(vec![
                            ("job", Json::num_u64(id)),
                            ("state", Json::str(state.name())),
                            ("error", Json::str(e.to_string())),
                            ("code", Json::str(e.code())),
                        ])
                    }
                    JobCompletion::Panicked(msg) => ok_response(vec![
                        ("job", Json::num_u64(id)),
                        ("state", Json::str(state.name())),
                        ("error", Json::str(msg)),
                        ("code", Json::str("job_panicked")),
                    ]),
                }
            }
        },
        Request::Stats => stats_response(shared),
        Request::Metrics => metrics_response(),
        Request::Shutdown => {
            // Journal what is still pending *before* acking, then count
            // it in the response: nothing queued is silently lost — the
            // drain finishes every job below, and should the process die
            // mid-drain the shutdown record plus per-job records let the
            // next life re-enqueue the remainder.
            let (queued, running) = shared.sched.pending_ids();
            if let Some(j) = &shared.journal {
                j.shutdown(&queued, &running);
            }
            shared.shutting_down.store(true, Ordering::SeqCst);
            // Unblock the accept loop so `run` can proceed to the drain.
            let _ = TcpStream::connect(shared.local_addr);
            ok_response(vec![
                ("shutting_down", Json::Bool(true)),
                ("queued_jobs", Json::num_u64(queued.len() as u64)),
                ("running_jobs", Json::num_u64(running.len() as u64)),
            ])
        }
        Request::SubmitBatch(specs) => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return error_response(&ProtoError::from(SubmitError::ShuttingDown));
            }
            // One admission decision for the whole batch: either every
            // job fits under the high-water mark or the lot sheds with a
            // single typed `overloaded` + `retry_after_ms` (DESIGN.md
            // §15.2) — a batch cannot jump the soft wall by splitting
            // its head under the line.
            let stats = shared.sched.stats();
            if let Err(over) = shared.admission.admit_batch(stats.queued, stats.running, specs.len())
            {
                return error_response(&ProtoError::Overloaded(over));
            }
            let journaled: Vec<Json> = specs.iter().map(spec_json).collect();
            // One deprecation note for the whole batch: the union of the
            // flat v5 spellings any of its jobs used, in first-use order.
            let mut used: Vec<&'static str> = Vec::new();
            for spec in &specs {
                for f in &spec.deprecated_fields {
                    if !used.contains(f) {
                        used.push(f);
                    }
                }
            }
            let deprecated = deprecated_fields_json(&used);
            let mut tokens = Vec::with_capacity(specs.len());
            let mut jobs = Vec::with_capacity(specs.len());
            for spec in specs {
                let token = Arc::new(CancelToken::new(spec.policy.deadline_ms));
                tokens.push(Arc::clone(&token));
                jobs.push(shared.job_fn(spec, token));
            }
            match shared.sched.submit_batch(jobs) {
                Ok(ids) => {
                    for ((&id, token), spec) in ids.iter().zip(tokens).zip(&journaled) {
                        lock(&shared.tokens).insert(id, token);
                        if shared.sched.state(id).is_some_and(JobState::is_terminal) {
                            lock(&shared.tokens).remove(&id);
                        }
                        // Journal before the ack reaches the wire — same
                        // durability contract as single submit.
                        if let Some(j) = &shared.journal {
                            j.submit(id, spec);
                        }
                    }
                    let mut fields = vec![(
                        "jobs",
                        Json::Arr(ids.iter().map(|&id| Json::num_u64(id)).collect()),
                    )];
                    if let Some(note) = deprecated {
                        fields.push(("deprecated_fields", note));
                    }
                    ok_response(fields)
                }
                Err(e) => error_response(&ProtoError::from(e)),
            }
        }
        Request::CacheGet(key) => {
            // Peer artifact fetch: answered strictly from the *local*
            // cache — never forwarded — so shard lookups cannot recurse.
            match shared.cache.local().load_raw(key) {
                Some((slices, stats)) => ok_response(vec![
                    ("hit", Json::Bool(true)),
                    ("slices", Json::str(slices)),
                    ("stats", Json::str(stats)),
                ]),
                None => ok_response(vec![("hit", Json::Bool(false))]),
            }
        }
        Request::CachePut { key, slices, stats } => {
            match shared.cache.local().store_raw(key, &slices, &stats) {
                Ok(()) => ok_response(vec![("stored", Json::Bool(true))]),
                // A malformed payload is the *sender's* bug: reject it
                // typed so the peer counts it and recomputes locally.
                Err(RawStoreError::Invalid(why)) => {
                    error_response(&ProtoError::ShardPayload(why))
                }
                // Local disk trouble is ours: the request was well-formed,
                // so answer ok but unstored — the peer keeps its copy.
                Err(RawStoreError::Io(e)) => {
                    preexec_obs::global()
                        .journal()
                        .note("shard_store_failed", &format!("key {key:016x}: {e}"));
                    ok_response(vec![("stored", Json::Bool(false))])
                }
            }
        }
    }
}

/// The `shard` section of the `stats` report: peer-traffic counters plus
/// (when sharded) this daemon's position in the ring.
fn shard_stats_json(shared: &Shared) -> Json {
    let peer = shared.cache.peer_stats();
    let mut fields = vec![
        ("peer_hits", Json::num_u64(peer.peer_hits)),
        ("peer_misses", Json::num_u64(peer.peer_misses)),
        ("peer_errors", Json::num_u64(peer.peer_errors)),
        ("peer_puts", Json::num_u64(peer.peer_puts)),
    ];
    match shared.cache.shard_info() {
        Some((self_index, shards)) => {
            fields.push(("self", Json::num_u64(self_index as u64)));
            fields.push(("shards", Json::num_u64(shards as u64)));
        }
        None => fields.push(("shards", Json::num_u64(1))),
    }
    Json::obj(fields)
}

/// Cumulative screening counters across every selection this daemon has
/// run (the global `screen.pruned` / `screen.survivors` counters the
/// selection stage maintains): how much exact-scoring work the static
/// ADVagg pre-pass is skipping in production.
fn screen_stats_json() -> Json {
    let obs = preexec_obs::global();
    let pruned = obs.counter("screen.pruned").get();
    let survivors = obs.counter("screen.survivors").get();
    Json::obj(vec![
        ("pruned", Json::num_u64(pruned)),
        ("survivors", Json::num_u64(survivors)),
        ("candidates", Json::num_u64(pruned + survivors)),
    ])
}

fn stats_response(shared: &Shared) -> Json {
    let sched = shared.sched.stats();
    let cache = shared.cache.local().stats();
    ok_response(vec![
        ("queue_depth", Json::num_u64(sched.queued as u64)),
        ("queue_cap", Json::num_u64(shared.queue_cap as u64)),
        ("workers", Json::num_u64(sched.workers as u64)),
        ("busy_workers", Json::num_u64(sched.running as u64)),
        ("utilization", Json::Num(sched.utilization())),
        (
            "jobs",
            Json::obj(vec![
                ("submitted", Json::num_u64(sched.submitted)),
                ("queued", Json::num_u64(sched.queued as u64)),
                ("running", Json::num_u64(sched.running as u64)),
                ("done", Json::num_u64(sched.done)),
                ("failed", Json::num_u64(sched.failed)),
                ("timed_out", Json::num_u64(sched.timed_out)),
                ("cancelled", Json::num_u64(sched.cancelled)),
            ]),
        ),
        (
            "admission",
            Json::obj(vec![
                ("high_water", Json::num_u64(shared.admission.high_water() as u64)),
                ("mean_job_ms", Json::num_u64(shared.admission.mean_job_ms())),
                ("shed", Json::num_u64(shared.admission.shed_total())),
            ]),
        ),
        (
            "journal",
            Json::obj(vec![
                ("enabled", Json::Bool(shared.journal.is_some())),
                ("restored", Json::num_u64(lock(&shared.restored).len() as u64)),
            ]),
        ),
        ("screen", screen_stats_json()),
        (
            "cache",
            Json::obj(vec![
                ("hits", Json::num_u64(cache.hits)),
                ("misses", Json::num_u64(cache.misses)),
                ("evictions", Json::num_u64(cache.evictions)),
                ("corrupt", Json::num_u64(cache.corrupt)),
                ("hit_rate", Json::Num(cache.hit_rate())),
            ]),
        ),
        ("shard", shard_stats_json(shared)),
        ("stage_latency_us", shared.hists.to_json()),
        ("job_threads", Json::num_u64(shared.job_threads as u64)),
        ("parallel", shared.hists.par.to_json()),
        (
            "connections",
            Json::obj(vec![
                ("total", Json::num_u64(shared.connections_total.get())),
                (
                    "live_handlers",
                    Json::num_u64(shared.handlers_live.get().max(0) as u64),
                ),
            ]),
        ),
    ])
}

/// The `metrics` payload: the full global registry as JSON plus a
/// Prometheus-style text rendering of the same snapshot.
fn metrics_response() -> Json {
    let snap = preexec_obs::global().snapshot();
    let counters = Json::Obj(
        snap.counters.iter().map(|(name, v)| (name.clone(), Json::num_u64(*v))).collect(),
    );
    let gauges = Json::Obj(
        snap.gauges.iter().map(|(name, v)| (name.clone(), Json::Num(*v as f64))).collect(),
    );
    let histograms = Json::Obj(
        snap.histograms.iter().map(|(name, h)| (name.clone(), histogram_json(h))).collect(),
    );
    let events = Json::Arr(
        snap.events
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("seq", Json::num_u64(e.seq)),
                    ("unix_ms", Json::num_u64(e.unix_ms)),
                    ("kind", Json::str(e.kind.clone())),
                    ("message", Json::str(e.message.clone())),
                ])
            })
            .collect(),
    );
    let prometheus = render_prometheus(&snap);
    ok_response(vec![
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
        ("events", events),
        ("prometheus", Json::str(prometheus)),
    ])
}
