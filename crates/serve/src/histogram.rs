//! Power-of-two latency histograms for the service's `stats` report.
//!
//! Each pipeline stage (trace, base sim, selection, assisted sim) gets
//! one histogram; workers record wall-clock stage durations and the wire
//! front end serializes the whole set. Buckets double in width so the
//! histogram spans microseconds to minutes in a fixed 40-slot array with
//! no allocation on the record path.

use crate::json::Json;
use std::time::Duration;

/// Number of power-of-two buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` microseconds (bucket 0 also absorbs sub-microsecond
/// samples, the last bucket absorbs everything beyond ~2^39 µs ≈ 6 days).
const BUCKETS: usize = 40;

/// A latency histogram with power-of-two microsecond buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { buckets: [0; BUCKETS], count: 0, sum_us: 0, max_us: 0 }
    }

    /// Records one sample of `us` microseconds.
    pub fn record_us(&mut self, us: u64) {
        let idx = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: Duration) {
        self.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample, in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// An upper bound below which at least `q` (0..=1) of the samples
    /// fall, from the bucket boundaries (0 when empty). With power-of-two
    /// buckets this is at most 2× the true quantile.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen >= target.max(1) {
                return 1u64 << (i + 1);
            }
        }
        self.max_us
    }

    /// Serializes the histogram: count, mean, p50/p99 bounds, max, and
    /// the non-empty buckets as `[lower-bound-µs, count]` pairs.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| Json::Arr(vec![Json::num_u64(1u64 << i), Json::num_u64(n)]))
            .collect();
        Json::obj(vec![
            ("count", Json::num_u64(self.count)),
            ("mean_us", Json::Num(self.mean_us())),
            ("p50_us", Json::num_u64(self.quantile_us(0.5))),
            ("p99_us", Json::num_u64(self.quantile_us(0.99))),
            ("max_us", Json::num_u64(self.max_us)),
            ("buckets_us", Json::Arr(buckets)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_power_of_two_buckets() {
        let mut h = Histogram::new();
        for us in [0, 1, 2, 3, 4, 1000, 1_000_000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 7);
        assert!(h.mean_us() > 0.0);
        let json = h.to_json();
        assert_eq!(json.get("count").and_then(Json::as_u64), Some(7));
        assert_eq!(json.get("max_us").and_then(Json::as_u64), Some(1_000_000));
        // 0 and 1 share bucket 0; 2 and 3 share bucket 1; 4 is bucket 2.
        let buckets = json.get("buckets_us").and_then(Json::as_arr).expect("buckets");
        assert_eq!(buckets.len(), 5);
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record_us(10);
        }
        h.record_us(100_000);
        assert!(h.quantile_us(0.5) >= 10);
        assert!(h.quantile_us(0.5) <= 32);
        assert!(h.quantile_us(1.0) >= 100_000);
        assert_eq!(Histogram::new().quantile_us(0.5), 0);
    }

    #[test]
    fn giant_samples_saturate() {
        let mut h = Histogram::new();
        h.record(Duration::from_secs(1_000_000));
        h.record_us(u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
