//! Latency-histogram serialization for the service's `stats` report.
//!
//! The histogram type itself lives in [`preexec_obs`] (it serves every
//! layer, not just the service) and is re-exported here; this module
//! keeps the wire-format concern — rendering one histogram as the JSON
//! shape the `stats`/`metrics` verbs report.

pub use preexec_obs::Histogram;

use crate::json::Json;

/// Serializes a histogram: count, mean, p50/p99 bounds, max, and the
/// non-empty buckets as `[lower-bound-µs, count]` pairs. Bucket 0's lower
/// bound is `0` (it absorbs sub-µs samples) and every quantile bound is
/// clamped to `max_us` — see [`Histogram::quantile_us`].
pub fn histogram_json(h: &Histogram) -> Json {
    let buckets: Vec<Json> = h
        .nonzero_buckets()
        .into_iter()
        .map(|(lower, n)| Json::Arr(vec![Json::num_u64(lower), Json::num_u64(n)]))
        .collect();
    Json::obj(vec![
        ("count", Json::num_u64(h.count())),
        ("mean_us", Json::Num(h.mean_us())),
        ("p50_us", Json::num_u64(h.quantile_us(0.5))),
        ("p99_us", Json::num_u64(h.quantile_us(0.99))),
        ("max_us", Json::num_u64(h.max_us())),
        ("buckets_us", Json::Arr(buckets)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_count_quantiles_and_buckets() {
        let mut h = Histogram::new();
        for us in [0, 1, 2, 3, 4, 1000, 1_000_000] {
            h.record_us(us);
        }
        let json = histogram_json(&h);
        assert_eq!(json.get("count").and_then(Json::as_u64), Some(7));
        assert_eq!(json.get("max_us").and_then(Json::as_u64), Some(1_000_000));
        // 0 and 1 share bucket 0; 2 and 3 share bucket 1; 4 is bucket 2.
        let buckets = json.get("buckets_us").and_then(Json::as_arr).expect("buckets");
        assert_eq!(buckets.len(), 5);
        // Bucket 0's lower bound is 0, not 1: it absorbs 0-µs samples.
        let first = buckets[0].as_arr().expect("pair");
        assert_eq!(first[0].as_u64(), Some(0));
        assert_eq!(first[1].as_u64(), Some(2));
    }

    #[test]
    fn serialized_quantiles_respect_the_max() {
        let mut h = Histogram::new();
        h.record_us(u64::MAX);
        let json = histogram_json(&h);
        // Pre-fix this reported 2^40; the bound must cover the sample.
        // (`as_f64`: values past 2^53 exceed `as_u64`'s precision guard.)
        assert_eq!(json.get("p99_us").and_then(Json::as_f64), Some(u64::MAX as f64));
        assert_eq!(json.get("max_us").and_then(Json::as_f64), Some(u64::MAX as f64));
    }
}
