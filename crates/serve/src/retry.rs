//! Client-side retry with jittered exponential backoff.
//!
//! The other half of the admission-control contract (DESIGN.md §14.3):
//! the daemon sheds with a `retry_after_ms` hint, and a well-behaved
//! client waits at least that long, backing off exponentially with
//! jitter so a herd of shed clients does not re-arrive in lockstep.
//! `toolflow --jobs N` uses this when its bounded local scheduler
//! reports a full queue.
//!
//! Everything is deterministic given the seed (a keyed xorshift, no
//! global RNG), which keeps tests exact and reruns reproducible.

/// Jittered exponential backoff schedule. Not a timer: callers ask for
/// the next delay and do their own sleeping, so the policy is testable
/// without waiting.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A schedule starting at `base_ms` and capping each delay at
    /// `cap_ms`, jittered by the deterministic stream seeded with
    /// `seed`.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Backoff {
        Backoff {
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(1),
            attempt: 0,
            // Zero is xorshift's absorbing state; displace it.
            rng: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// How many delays have been handed out so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64: plenty for jitter.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// The next delay: `base · 2^attempt`, capped, with ±25% jitter —
    /// never below the server's `hint_ms` when one was given (the
    /// `retry_after_ms` contract: the hint is a floor, not a suggestion).
    pub fn next_delay_ms(&mut self, hint_ms: Option<u64>) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64.checked_shl(self.attempt.min(32)).unwrap_or(u64::MAX))
            .min(self.cap_ms);
        self.attempt = self.attempt.saturating_add(1);
        // Jitter in [-25%, +25%] of the exponential term.
        let quarter = (exp / 4).max(1);
        let jitter = self.next_rand() % (2 * quarter + 1);
        let delayed = exp - quarter + jitter;
        delayed.max(hint_ms.unwrap_or(0)).min(self.cap_ms.max(hint_ms.unwrap_or(0)))
    }
}

/// Runs `op` until it succeeds or `max_attempts` is exhausted, sleeping
/// the backoff's delay (floored by the hint the failed attempt
/// returned) between tries. `op` reports `Err(Some(hint_ms))` for a
/// shed-with-hint failure, `Err(None)` for a plain retryable one.
///
/// # Errors
///
/// The last attempt's hint, when all attempts failed.
pub fn retry_with_backoff<T>(
    mut backoff: Backoff,
    max_attempts: u32,
    mut op: impl FnMut() -> Result<T, Option<u64>>,
) -> Result<T, Option<u64>> {
    let mut last_hint = None;
    for attempt in 0..max_attempts.max(1) {
        match op() {
            Ok(v) => return Ok(v),
            Err(hint) => {
                last_hint = hint;
                if attempt + 1 < max_attempts.max(1) {
                    let delay = backoff.next_delay_ms(hint);
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                }
            }
        }
    }
    Err(last_hint)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_within_the_jitter_band_and_cap() {
        let mut b = Backoff::new(100, 10_000, 42);
        let mut prev_nominal = 0u64;
        for attempt in 0..8u32 {
            let nominal = (100u64 << attempt).min(10_000);
            let d = b.next_delay_ms(None);
            let quarter = (nominal / 4).max(1);
            assert!(
                d >= nominal - quarter && d <= nominal + quarter,
                "attempt {attempt}: {d} outside [{}, {}]",
                nominal - quarter,
                nominal + quarter
            );
            assert!(nominal >= prev_nominal);
            prev_nominal = nominal;
        }
        // Deep attempts stay at the cap (±jitter), no overflow.
        let mut b = Backoff::new(100, 10_000, 7);
        for _ in 0..40 {
            let d = b.next_delay_ms(None);
            assert!(d <= 12_500);
        }
        assert_eq!(b.attempts(), 40);
    }

    #[test]
    fn the_server_hint_is_a_floor() {
        let mut b = Backoff::new(10, 50_000, 3);
        assert!(b.next_delay_ms(Some(4_000)) >= 4_000);
        // Even past the cap, the hint wins: the server knows its backlog.
        let mut b = Backoff::new(10, 100, 3);
        assert!(b.next_delay_ms(Some(4_000)) >= 4_000);
    }

    #[test]
    fn same_seed_same_schedule_different_seed_different_jitter() {
        let schedule = |seed: u64| {
            let mut b = Backoff::new(100, 10_000, seed);
            (0..6).map(|_| b.next_delay_ms(None)).collect::<Vec<_>>()
        };
        assert_eq!(schedule(1), schedule(1), "deterministic given the seed");
        assert_ne!(schedule(1), schedule(2), "seeds decorrelate the herd");
    }

    #[test]
    fn retry_with_backoff_stops_on_success_and_reports_the_last_hint() {
        let mut calls = 0;
        let out = retry_with_backoff(Backoff::new(1, 2, 9), 5, || {
            calls += 1;
            if calls < 3 {
                Err(Some(1))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out, Ok(3));

        let mut calls = 0;
        let out: Result<(), _> = retry_with_backoff(Backoff::new(1, 2, 9), 3, || {
            calls += 1;
            Err(Some(calls))
        });
        assert_eq!(out, Err(Some(3)));
        assert_eq!(calls, 3);
    }
}
