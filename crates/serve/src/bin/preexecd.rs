//! `preexecd` — the batch p-thread analysis daemon.
//!
//! Binds a TCP listener, prints `preexecd listening on ADDR` (so
//! scripts and tests binding port 0 can discover the port), and serves
//! the newline-delimited JSON protocol until a `shutdown` command
//! drains the job queue.

use preexec_serve::{Server, ServerConfig};
use std::io::Write;

const USAGE: &str = "\
usage: preexecd [options]

options:
  --addr HOST:PORT   listen address (default 127.0.0.1:7099; port 0 = ephemeral)
  --port N           shorthand for --addr 127.0.0.1:N
  --workers N        worker threads (default: one per core)
  --job-threads N    intra-job threads per worker for slice/score/select
                     (default: cores/workers; results are identical for any N)
  --queue-cap N      bounded job-queue capacity (default 256)
  --cache-dir PATH   artifact-cache directory (default preexec-cache)
  --cache-max N      max cache entries before eviction (default 256)
  --high-water N     admission high-water mark in outstanding jobs
                     (default 0: derive 3/4*queue-cap + workers)
  --no-journal       disable the durable job journal (WAL + crash recovery)
  --wal-compact      compact the journal at startup (checkpoint + truncate)
  --threaded         thread-per-connection front end instead of the epoll
                     reactor (the reactor is the default on Linux)
  --idle-timeout-ms N  close a connection stalled mid-request-line after
                     N ms (slow-loris guard; default 10000)
  --shard-id N       this daemon's index in the shard ring (default 0)
  --shard-peers LIST comma-separated HOST:PORT of *all* shards in ring
                     order, including this one; enables consistent-hash
                     cache sharding when more than one is given
  --help             print this help

protocol: one JSON object per line, e.g.
  {\"cmd\":\"submit\",\"workload\":\"vpr.r\",\"budget\":120000,\"deadline_ms\":60000}
  {\"cmd\":\"submit_batch\",\"jobs\":[{\"workload\":\"mcf\",\"budget\":120000}]}
  {\"cmd\":\"status\",\"job\":1}   {\"cmd\":\"result\",\"job\":1}
  {\"cmd\":\"cancel\",\"job\":1}   {\"cmd\":\"stats\"}
  {\"cmd\":\"metrics\"}           {\"cmd\":\"shutdown\"}
requests may carry an \"id\"; it is echoed on the response, so clients
may pipeline many requests per connection before reading any response.
";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig { addr: "127.0.0.1:7099".to_string(), ..ServerConfig::default() };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--port" => {
                let p = value("--port")?;
                p.parse::<u16>().map_err(|_| format!("bad port `{p}`"))?;
                cfg.addr = format!("127.0.0.1:{p}");
            }
            "--workers" => {
                let v = value("--workers")?;
                cfg.workers = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
            }
            "--job-threads" => {
                let v = value("--job-threads")?;
                cfg.job_threads =
                    v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
            }
            "--queue-cap" => {
                let v = value("--queue-cap")?;
                cfg.queue_cap = v.parse().map_err(|_| format!("bad queue cap `{v}`"))?;
            }
            "--cache-dir" => cfg.cache_dir = value("--cache-dir")?.into(),
            "--cache-max" => {
                let v = value("--cache-max")?;
                cfg.cache_max_entries =
                    v.parse().map_err(|_| format!("bad cache size `{v}`"))?;
            }
            "--high-water" => {
                let v = value("--high-water")?;
                cfg.high_water =
                    v.parse().map_err(|_| format!("bad high-water mark `{v}`"))?;
            }
            "--no-journal" => cfg.journal = false,
            "--wal-compact" => cfg.wal_compact = true,
            "--threaded" => cfg.threaded = true,
            "--idle-timeout-ms" => {
                let v = value("--idle-timeout-ms")?;
                cfg.idle_timeout_ms =
                    v.parse().map_err(|_| format!("bad idle timeout `{v}`"))?;
            }
            "--shard-id" => {
                let v = value("--shard-id")?;
                cfg.shard_id = v.parse().map_err(|_| format!("bad shard id `{v}`"))?;
            }
            "--shard-peers" => {
                let v = value("--shard-peers")?;
                cfg.shard_peers =
                    v.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect();
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if !cfg.shard_peers.is_empty() && cfg.shard_id >= cfg.shard_peers.len() {
        return Err(format!(
            "--shard-id {} is out of range for {} shard peer(s)",
            cfg.shard_id,
            cfg.shard_peers.len()
        ));
    }
    Ok(cfg)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("preexecd: {msg}");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    let server = match Server::bind(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("preexecd: binding {}: {e}", cfg.addr);
            std::process::exit(3);
        }
    };
    // Flush so a parent process polling our stdout sees the address
    // before the first connection.
    println!("preexecd listening on {}", server.local_addr());
    let (replayed, restored) = server.recovery_summary();
    if replayed > 0 || restored > 0 {
        println!(
            "preexecd recovered from journal: {replayed} pending job(s) re-enqueued, \
             {restored} finished result(s) restored"
        );
    }
    let _ = std::io::stdout().flush();
    if let Err(e) = server.run() {
        eprintln!("preexecd: serving: {e}");
        std::process::exit(4);
    }
}
