//! The paper's decoupled toolflow (§4.1): the functional cache simulator
//! writes slice trees to a file once; the p-thread selection tool then
//! reads the file and generates p-thread sets for several machine
//! configurations quickly, without re-tracing.
//!
//! Usage: `toolflow [--jobs N] [--threads N] [--stream] [--profile] [workload[,workload...]|all] [budget] [out.slices]`
//!        `toolflow [--threads N] [--profile] --read <file.slices>` (selection only, no re-tracing)
//!
//! With several workloads the runs are scheduled over `--jobs N` worker
//! threads (default 1). Output is buffered per workload and printed in
//! submission order, so it is byte-identical for every `N`; `--jobs 1`
//! additionally *executes* serially, matching the historical behaviour.
//!
//! `--threads N` (default 1) additionally parallelizes the slice-tree
//! construction and candidate scoring *inside* each workload run via
//! `preexec_core::par`. Results are bit-identical for every `N` — the
//! fan-outs merge in input order and cross-item accumulation stays
//! serial (DESIGN.md §11) — so the two knobs compose freely:
//! `--jobs` trades throughput across workloads, `--threads` latency
//! within one.
//!
//! `--stream` traces through the bounded-memory streaming path: the
//! functional simulator runs on a producer thread, feeding the slicer
//! fixed-size chunks through a bounded channel, so peak memory is
//! O(window + chunk) instead of O(trace). stdout (slice files and
//! selections) is byte-identical with and without the flag — the CI
//! determinism matrix diffs the two.
//!
//! `--profile` prints a per-stage wall-clock profile table (count, total,
//! mean, p50/p99 bounds, max — from the [`preexec_obs`] registry) to
//! *stderr* after the run. stdout is byte-identical with and without the
//! flag; the observability layer records but never feeds back into the
//! analysis.
//!
//! Exit codes:
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | success |
//! | 2 | usage error: unknown workload, unparsable budget, or bad flags |
//! | 3 | filesystem I/O error |
//! | 4 | corrupt slice file (recovered results, if any, are still printed) |
//! | 5 | pipeline fault (trace/slice/selection error) or a job panic |
//!
//! With several workloads every job's buffered output is printed (in
//! submission order) and the process exits with the first failing
//! workload's code; a job lost to a panic contributes code 5. One
//! failing job can never be masked by a later success.
//!
//! The local scheduler's queue is bounded (`2·jobs`, min 4); when it is
//! full, submission retries with the shared jittered-backoff policy
//! ([`preexec_serve::retry`]) — the same contract daemon clients use
//! when preexecd sheds with `retry_after_ms` (DESIGN.md §14.3).

use preexec_core::{select_pthreads_par, Parallelism, SelectionParams};
use preexec_experiments::Pipeline;
use preexec_serve::retry::{retry_with_backoff, Backoff};
use preexec_serve::scheduler::{JobCompletion, Scheduler};
use preexec_slice::{read_forest, read_forest_lenient, write_forest, SliceForest};
use preexec_workloads::{suite, InputSet, Workload};
use std::fmt::Write as _;
use std::process::ExitCode;

/// A CLI failure: the message for stderr plus the process exit code.
struct Failure {
    code: u8,
    message: String,
}

impl Failure {
    fn new(code: u8, message: impl Into<String>) -> Failure {
        Failure { code, message: message.into() }
    }
}

/// One workload's buffered run: everything it would have printed, plus
/// its exit code. Buffering is what makes `--jobs N` output
/// deterministic — lines never interleave across workloads.
#[derive(Clone, Default)]
struct JobReport {
    stdout: String,
    stderr: String,
    code: u8,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(f) => {
            eprintln!("toolflow: {}", f.message);
            ExitCode::from(f.code)
        }
    }
}

fn run(args: &[String]) -> Result<u8, Failure> {
    let mut jobs: usize = 1;
    let mut threads: usize = 1;
    let mut profile = false;
    let mut stream = false;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--profile" => profile = true,
            "--stream" => stream = true,
            "--jobs" => {
                let v = it
                    .next()
                    .ok_or_else(|| Failure::new(2, "--jobs needs a value"))?;
                jobs = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| Failure::new(2, format!("bad job count `{v}`")))?;
            }
            "--threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| Failure::new(2, "--threads needs a value"))?;
                threads = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| Failure::new(2, format!("bad thread count `{v}`")))?;
            }
            // Selection-only mode: the whole point of the decoupled
            // toolflow is that pass 2 can rerun without re-tracing.
            "--read" => {
                let path = it
                    .next()
                    .ok_or_else(|| Failure::new(2, "usage: toolflow --read <file.slices>"))?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| Failure::new(3, format!("reading {path}: {e}")))?;
                let mut report = JobReport::default();
                read_and_select(path, &text, Parallelism::new(threads), &mut report);
                print!("{}", report.stdout);
                eprint!("{}", report.stderr);
                if profile {
                    print_profile();
                }
                return Ok(report.code);
            }
            other if other.starts_with("--") => {
                return Err(Failure::new(2, format!("unknown option `{other}`")));
            }
            _ => positional.push(arg),
        }
    }

    let names = positional.first().map_or("vpr.r", |s| s.as_str());
    let budget: u64 = match positional.get(1) {
        None => 150_000,
        Some(s) => s
            .parse()
            .map_err(|_| Failure::new(2, format!("budget `{s}` is not a number")))?,
    };

    let workloads = suite();
    let selected: Vec<&Workload> = if names == "all" {
        workloads.iter().collect()
    } else {
        names
            .split(',')
            .map(|name| {
                workloads.iter().find(|w| w.name == name).ok_or_else(|| {
                    let avail: Vec<&str> = workloads.iter().map(|w| w.name).collect();
                    Failure::new(
                        2,
                        format!("unknown workload `{name}`; available: {}", avail.join(", ")),
                    )
                })
            })
            .collect::<Result<_, _>>()?
    };
    if selected.len() > 1 && positional.get(2).is_some() {
        return Err(Failure::new(
            2,
            "an explicit output path only works with a single workload",
        ));
    }

    // Schedule the workloads over a *bounded* queue; buffer each job's
    // output and print in submission order. A full queue is handled the
    // way a shed daemon submit is: back off with jitter and retry.
    let sched: Scheduler<JobReport> = Scheduler::new(jobs, (jobs * 2).max(4));
    let ids: Vec<_> = selected
        .iter()
        .enumerate()
        .map(|(idx, w)| {
            let make_job = || {
                let name = w.name.to_string();
                let program = w.build(InputSet::Train);
                let path = positional
                    .get(2)
                    .cloned()
                    .cloned()
                    .unwrap_or_else(|| format!("{name}.slices"));
                let par = Parallelism::new(threads);
                Box::new(move |_id| {
                    JobCompletion::Done(run_workload(&name, &program, budget, &path, par, stream))
                })
            };
            retry_with_backoff(Backoff::new(2, 200, idx as u64), 3_000, || {
                sched.submit(make_job()).map_err(|_| None)
            })
            .map_err(|_| Failure::new(5, format!("submitting {}: queue stayed full", w.name)))
        })
        .collect::<Result<_, _>>()?;
    sched.drain();

    let mut first_bad: u8 = 0;
    for id in ids {
        // Workers convert panics into Panicked; print what the job
        // buffered (or a synthesized report for a lost one) and keep
        // going — one bad job must not swallow its siblings' output.
        let report = match sched.completion(id) {
            Some(JobCompletion::Done(report)) => report,
            Some(JobCompletion::Panicked(msg)) => {
                let mut r = JobReport::default();
                let _ = writeln!(r.stderr, "toolflow: job {id} panicked: {msg}");
                r.code = 5;
                r
            }
            _ => {
                let mut r = JobReport::default();
                let _ = writeln!(r.stderr, "toolflow: job {id} died unexpectedly");
                r.code = 5;
                r
            }
        };
        print!("{}", report.stdout);
        eprint!("{}", report.stderr);
        if first_bad == 0 && report.code != 0 {
            first_bad = report.code;
        }
    }
    sched.shutdown();
    if profile {
        print_profile();
    }
    Ok(first_bad)
}

/// Prints the per-stage wall-clock profile from the global metrics
/// registry to stderr. Reading the registry here — after all analysis
/// work has finished — keeps the no-perturbation contract: stdout (the
/// results) is identical with or without `--profile`.
fn print_profile() {
    let snap = preexec_obs::global().snapshot();
    eprintln!("toolflow profile (wall clock per stage):");
    eprintln!(
        "  {:<20} {:>7} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "total_ms", "mean_ms", "p50_ms", "p99_ms", "max_ms"
    );
    let ms = |us: u64| us as f64 / 1000.0;
    for (name, h) in snap.histograms.iter().filter(|(n, _)| n.starts_with("stage.")) {
        eprintln!(
            "  {:<20} {:>7} {:>12.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            name,
            h.count(),
            ms(h.sum_us()),
            h.mean_us() / 1000.0,
            ms(h.quantile_us(0.5)),
            ms(h.quantile_us(0.99)),
            ms(h.max_us()),
        );
    }
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    eprintln!(
        "  par: calls={} items={} busy_us={} wall_us={}",
        counter("par.calls"),
        counter("par.items"),
        counter("par.busy_us"),
        counter("par.wall_us"),
    );
    eprintln!(
        "  select: candidates={} pthreads={}",
        counter("select.candidates"),
        counter("select.pthreads"),
    );
}

/// Runs one workload end to end (pass 1 trace+write, pass 2
/// read+select), entirely into the report's buffers.
fn run_workload(
    name: &str,
    program: &preexec_isa::Program,
    budget: u64,
    path: &str,
    par: Parallelism,
    stream: bool,
) -> JobReport {
    let mut report = JobReport::default();
    // Pass 1 (expensive, once): trace and slice, write the file. The
    // builder defaults match the paper toolflow (scope 1024, slice len
    // 32); `--stream` swaps in the bounded-memory transport with a
    // byte-identical forest.
    let arts = match Pipeline::new(program).budget(budget).parallelism(par).streaming(stream).trace()
    {
        Ok(x) => x,
        Err(e) => {
            let _ = writeln!(report.stderr, "toolflow: tracing {name}: {e}");
            report.code = 5;
            return report;
        }
    };
    let (forest, stats) = (arts.forest, arts.stats);
    if let Err(e) = std::fs::write(path, write_forest(&forest)) {
        let _ = writeln!(report.stderr, "toolflow: writing {path}: {e}");
        report.code = 3;
        return report;
    }
    let _ = writeln!(
        report.stdout,
        "{name}: traced {} insts, {} L2 misses -> {} slice trees written to {path}",
        stats.insts,
        stats.l2_misses,
        forest.num_trees()
    );

    // Pass 2 (cheap, many times): read the file back and select p-thread
    // sets for several configurations.
    match std::fs::read_to_string(path) {
        Ok(text) => read_and_select(path, &text, par, &mut report),
        Err(e) => {
            let _ = writeln!(report.stderr, "toolflow: reading {path}: {e}");
            report.code = 3;
        }
    }
    report
}

/// Pass 2: parse a slice file (strictly, with best-effort recovery on
/// corruption) and report p-thread selections.
fn read_and_select(path: &str, text: &str, par: Parallelism, report: &mut JobReport) {
    match read_forest(text) {
        Ok(forest) => select_and_report(&forest, par, report),
        Err(strict_err) => {
            // Corruption always exits nonzero, but salvage what we can
            // first: a partially recovered forest still yields a usable
            // (if under-covered) p-thread set.
            let _ = writeln!(report.stderr, "toolflow: {path}: {strict_err}");
            let recovered = read_forest_lenient(text);
            for d in &recovered.diagnostics {
                let _ = writeln!(report.stderr, "toolflow: {path}: {d}");
            }
            if recovered.forest.num_trees() > 0 {
                let _ = writeln!(
                    report.stderr,
                    "toolflow: {path}: recovered {} trees ({} skipped); results below are partial",
                    recovered.forest.num_trees(),
                    recovered.skipped_trees
                );
                select_and_report(&recovered.forest, par, report);
            }
            let _ = writeln!(
                report.stderr,
                "toolflow: {path}: corrupt slice file ({} trees recovered, {} skipped)",
                recovered.forest.num_trees(),
                recovered.skipped_trees
            );
            report.code = 4;
        }
    }
}

/// Selects and prints p-thread sets for several machine configurations.
fn select_and_report(forest: &SliceForest, par: Parallelism, report: &mut JobReport) {
    for (label, params) in [
        ("8-wide, 78-cycle misses", SelectionParams { bw_seq: 8.0, ipc: 0.5, miss_latency: 78.0, ..SelectionParams::default() }),
        ("8-wide, 148-cycle misses", SelectionParams { bw_seq: 8.0, ipc: 0.5, miss_latency: 148.0, ..SelectionParams::default() }),
        ("4-wide, 78-cycle misses", SelectionParams { bw_seq: 4.0, ipc: 0.5, miss_latency: 78.0, ..SelectionParams::default() }),
        ("no optimization", SelectionParams { ipc: 0.5, optimize: false, ..SelectionParams::default() }),
    ] {
        if let Err(e) = params.try_validate() {
            let _ = writeln!(
                report.stderr,
                "toolflow: selection parameters [{label}]: {e}"
            );
            report.code = 5;
            return;
        }
        let sel = select_pthreads_par(forest, &params, par);
        let _ = writeln!(
            report.stdout,
            "  [{label}] {} p-threads, predicted coverage {}/{} misses, avg len {:.1}",
            sel.pthreads.len(),
            sel.prediction.misses_covered,
            forest.total_misses(),
            sel.prediction.avg_pthread_len
        );
    }
}
