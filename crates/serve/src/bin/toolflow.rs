//! The paper's decoupled toolflow (§4.1): the functional cache simulator
//! writes slice trees to a file once; the p-thread selection tool then
//! reads the file and generates p-thread sets for several machine
//! configurations quickly, without re-tracing.
//!
//! Usage: `toolflow [--jobs N] [--threads N] [--stream] [--slice-mode windowed|ondemand[:N]] [--no-screen] [--policy k=v,...] [--profile] [workload[,workload...]|all] [budget] [out.slices]`
//!        `toolflow [--threads N] [--no-screen] [--profile] --read <file.slices>` (selection only, no re-tracing)
//!        `toolflow --daemon HOST:PORT [--slice-mode ...] [--policy k=v,...] [workload[,workload...]|all] [budget]` (run via preexecd)
//!
//! With several workloads the runs are scheduled over `--jobs N` worker
//! threads (default 1). Output is buffered per workload and printed in
//! submission order, so it is byte-identical for every `N`; `--jobs 1`
//! additionally *executes* serially, matching the historical behaviour.
//!
//! `--threads N` (default 1) additionally parallelizes the slice-tree
//! construction and candidate scoring *inside* each workload run via
//! `preexec_core::par`. Results are bit-identical for every `N` — the
//! fan-outs merge in input order and cross-item accumulation stays
//! serial (DESIGN.md §11) — so the two knobs compose freely:
//! `--jobs` trades throughput across workloads, `--threads` latency
//! within one.
//!
//! `--stream` traces through the bounded-memory streaming path: the
//! functional simulator runs on a producer thread, feeding the slicer
//! fixed-size chunks through a bounded channel, so peak memory is
//! O(window + chunk) instead of O(trace). stdout (slice files and
//! selections) is byte-identical with and without the flag — the CI
//! determinism matrix diffs the two.
//!
//! `--slice-mode ondemand[:N]` traces through the checkpoint-based
//! re-execution path: the trace pass records a checkpoint every N
//! emitted instructions (default 4096) and keeps no slicing window;
//! each slice is reconstructed later by replaying bounded intervals
//! from the nearest checkpoint, so peak slicing memory is
//! O(checkpoints + N) regardless of scope. stdout is byte-identical
//! with `--slice-mode windowed` (the default) — the CI determinism
//! matrix diffs the two. With `--daemon` the mode travels in the
//! submit batch as the protocol's `slice_mode`/`checkpoint_every`
//! fields.
//!
//! `--no-screen` disables the static ADVagg screening pre-pass of the
//! selection stage and scores every candidate exactly. The screen is
//! admissible — it only skips candidates that provably cannot score
//! positive — so stdout is byte-identical with and without the flag; the
//! CI screening leg diffs the two. The flag exists for benchmarking the
//! exact path and bisecting suspected screen regressions.
//!
//! `--policy key=val,...` sets any field of the unified
//! [`PolicySpec`] directly: `slice_mode=windowed|ondemand[:N]`,
//! `screening=BOOL`, `streaming=BOOL`, `adaptive=BOOL`,
//! `threshold_permille=N`, `confirm=N`, `min_phase_chunks=N`,
//! `deadline_ms=N`. The spelling composes with the dedicated flags
//! (`--stream`, `--no-screen`, `--slice-mode`): restating the same
//! value both ways is fine, but a flag and a `--policy` entry naming
//! *different* values for one key exit 2 with the typed
//! `config.conflicting_policy` error. `--policy adaptive=true` runs
//! phase-adaptive selection: the trace streams through the phase
//! detector, each detected phase gets its own policy choice, and the
//! report prints one deterministic line per phase plus a
//! static-vs-adaptive summary. `--policy adaptive=false` output is
//! byte-identical to not passing `--policy` at all — the CI adaptive
//! leg diffs the two. In `--daemon` mode the whole spec travels as the
//! protocol's nested v6 `policy` object.
//!
//! `--profile` prints a per-stage wall-clock profile table (count, total,
//! mean, p50/p99 bounds, max — from the [`preexec_obs`] registry) to
//! *stderr* after the run. stdout is byte-identical with and without the
//! flag; the observability layer records but never feeds back into the
//! analysis.
//!
//! Exit codes:
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | success |
//! | 2 | usage error: unknown workload, unparsable budget, or bad flags |
//! | 3 | filesystem I/O error |
//! | 4 | corrupt slice file (recovered results, if any, are still printed) |
//! | 5 | pipeline fault (trace/slice/selection error) or a job panic |
//!
//! With several workloads every job's buffered output is printed (in
//! submission order) and the process exits with the first failing
//! workload's code; a job lost to a panic contributes code 5. One
//! failing job can never be masked by a later success.
//!
//! The local scheduler's queue is bounded (`2·jobs`, min 4); when it is
//! full, submission retries with the shared jittered-backoff policy
//! ([`preexec_serve::retry`]) — the same contract daemon clients use
//! when preexecd sheds with `retry_after_ms` (DESIGN.md §14.3).
//!
//! `--daemon HOST:PORT` runs the workloads through a preexecd instead
//! of in-process: one pipelined `submit_batch` over a single connection
//! (retried with the backoff policy when the daemon sheds the batch as
//! `overloaded`), then per-job status polls and `result` fetches. The
//! daemon owns execution and the artifact cache (possibly sharded), so
//! `--jobs`/`--threads`/`--stream` do not apply. The exit-code contract
//! is unchanged: results print in submission order and the first
//! failing job's code (5 for pipeline faults and panics) wins.

use preexec_core::{try_select_pthreads_stats, Parallelism, SelectionParams};
use preexec_experiments::{
    Pipeline, PipelineError, PolicySpec, SlicingMode, DEFAULT_CHECKPOINT_EVERY,
};
use preexec_serve::json::Json;
use preexec_serve::retry::{retry_with_backoff, Backoff};
use preexec_serve::scheduler::{JobCompletion, Scheduler};
use preexec_slice::{read_forest, read_forest_lenient, write_forest, SliceForest};
use preexec_workloads::{suite, InputSet, Workload};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

/// A CLI failure: the message for stderr plus the process exit code.
struct Failure {
    code: u8,
    message: String,
}

impl Failure {
    fn new(code: u8, message: impl Into<String>) -> Failure {
        Failure { code, message: message.into() }
    }
}

/// One workload's buffered run: everything it would have printed, plus
/// its exit code. Buffering is what makes `--jobs N` output
/// deterministic — lines never interleave across workloads.
#[derive(Clone, Default)]
struct JobReport {
    stdout: String,
    stderr: String,
    code: u8,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(f) => {
            eprintln!("toolflow: {}", f.message);
            ExitCode::from(f.code)
        }
    }
}

fn run(args: &[String]) -> Result<u8, Failure> {
    let mut jobs: usize = 1;
    let mut threads: usize = 1;
    let mut profile = false;
    // Dedicated flags and `--policy` entries are tracked separately as
    // "given or not": a key named by both with different values is a
    // contradiction, not an override order.
    let mut stream_flag: Option<bool> = None;
    let mut screen_flag: Option<bool> = None;
    let mut slicing_flag: Option<SlicingMode> = None;
    let mut pol = PolicyOverrides::default();
    let mut daemon: Option<String> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--profile" => profile = true,
            "--stream" => stream_flag = Some(true),
            "--no-screen" => screen_flag = Some(false),
            "--slice-mode" => {
                let v = it.next().ok_or_else(|| {
                    Failure::new(2, "--slice-mode needs windowed or ondemand[:N]")
                })?;
                slicing_flag = Some(parse_slice_mode(v)?);
            }
            "--policy" => {
                let v = it
                    .next()
                    .ok_or_else(|| Failure::new(2, "--policy needs key=val[,key=val...]"))?;
                parse_policy_overrides(v, &mut pol)?;
            }
            "--daemon" => {
                let v = it
                    .next()
                    .ok_or_else(|| Failure::new(2, "--daemon needs HOST:PORT"))?;
                daemon = Some(v.clone());
            }
            "--jobs" => {
                let v = it
                    .next()
                    .ok_or_else(|| Failure::new(2, "--jobs needs a value"))?;
                jobs = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| Failure::new(2, format!("bad job count `{v}`")))?;
            }
            "--threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| Failure::new(2, "--threads needs a value"))?;
                threads = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| Failure::new(2, format!("bad thread count `{v}`")))?;
            }
            // Selection-only mode: the whole point of the decoupled
            // toolflow is that pass 2 can rerun without re-tracing.
            "--read" => {
                let path = it
                    .next()
                    .ok_or_else(|| Failure::new(2, "usage: toolflow --read <file.slices>"))?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| Failure::new(3, format!("reading {path}: {e}")))?;
                let screening =
                    merge_policy("screening", screen_flag, pol.screening)?.unwrap_or(true);
                let mut report = JobReport::default();
                read_and_select(path, &text, Parallelism::new(threads), screening, &mut report);
                print!("{}", report.stdout);
                eprint!("{}", report.stderr);
                if profile {
                    print_profile();
                }
                return Ok(report.code);
            }
            other if other.starts_with("--") => {
                return Err(Failure::new(2, format!("unknown option `{other}`")));
            }
            _ => positional.push(arg),
        }
    }

    let names = positional.first().map_or("vpr.r", |s| s.as_str());
    let budget: u64 = match positional.get(1) {
        None => 150_000,
        Some(s) => s
            .parse()
            .map_err(|_| Failure::new(2, format!("budget `{s}` is not a number")))?,
    };

    let workloads = suite();
    let selected: Vec<&Workload> = if names == "all" {
        workloads.iter().collect()
    } else {
        names
            .split(',')
            .map(|name| {
                workloads.iter().find(|w| w.name == name).ok_or_else(|| {
                    let avail: Vec<&str> = workloads.iter().map(|w| w.name).collect();
                    Failure::new(
                        2,
                        format!("unknown workload `{name}`; available: {}", avail.join(", ")),
                    )
                })
            })
            .collect::<Result<_, _>>()?
    };
    if selected.len() > 1 && positional.get(2).is_some() {
        return Err(Failure::new(
            2,
            "an explicit output path only works with a single workload",
        ));
    }

    // Resolve flags + `--policy` entries into the one PolicySpec every
    // execution path (local, daemon, adaptive) consumes.
    let mut spec = PolicySpec::paper_default(budget);
    if let Some(m) = merge_policy("slice_mode", slicing_flag, pol.slicing)? {
        spec.slicing = m;
    }
    spec.streaming = merge_policy("streaming", stream_flag, pol.streaming)?.unwrap_or(false);
    spec.screening = merge_policy("screening", screen_flag, pol.screening)?.unwrap_or(true);
    if let Some(on) = pol.adaptive {
        spec.adaptive.enabled = on;
    }
    if let Some(x) = pol.threshold_permille {
        spec.adaptive.threshold_permille = x;
    }
    if let Some(x) = pol.confirm {
        spec.adaptive.confirm = x;
    }
    if let Some(x) = pol.min_phase_chunks {
        spec.adaptive.min_phase_chunks = x;
    }
    spec.deadline_ms = pol.deadline_ms;
    if let Err(e) = spec.try_validate() {
        return Err(Failure::new(2, format!("{e} ({})", e.code())));
    }

    if let Some(addr) = daemon {
        if positional.get(2).is_some() {
            return Err(Failure::new(2, "an output path does not apply with --daemon"));
        }
        let code = run_daemon(&addr, &selected, budget, &spec)?;
        return Ok(code);
    }

    // Schedule the workloads over a *bounded* queue; buffer each job's
    // output and print in submission order. A full queue is handled the
    // way a shed daemon submit is: back off with jitter and retry.
    let sched: Scheduler<JobReport> = Scheduler::new(jobs, (jobs * 2).max(4));
    let ids: Vec<_> = selected
        .iter()
        .enumerate()
        .map(|(idx, w)| {
            let make_job = || {
                let name = w.name.to_string();
                let program = w.build(InputSet::Train);
                let path = positional
                    .get(2)
                    .cloned()
                    .cloned()
                    .unwrap_or_else(|| format!("{name}.slices"));
                let par = Parallelism::new(threads);
                Box::new(move |_id| {
                    JobCompletion::Done(run_workload(&name, &program, spec, &path, par))
                })
            };
            retry_with_backoff(Backoff::new(2, 200, idx as u64), 3_000, || {
                sched.submit(make_job()).map_err(|_| None)
            })
            .map_err(|_| Failure::new(5, format!("submitting {}: queue stayed full", w.name)))
        })
        .collect::<Result<_, _>>()?;
    sched.drain();

    let mut first_bad: u8 = 0;
    for id in ids {
        // Workers convert panics into Panicked; print what the job
        // buffered (or a synthesized report for a lost one) and keep
        // going — one bad job must not swallow its siblings' output.
        let report = match sched.completion(id) {
            Some(JobCompletion::Done(report)) => report,
            Some(JobCompletion::Panicked(msg)) => {
                let mut r = JobReport::default();
                let _ = writeln!(r.stderr, "toolflow: job {id} panicked: {msg}");
                r.code = 5;
                r
            }
            _ => {
                let mut r = JobReport::default();
                let _ = writeln!(r.stderr, "toolflow: job {id} died unexpectedly");
                r.code = 5;
                r
            }
        };
        print!("{}", report.stdout);
        eprint!("{}", report.stderr);
        if first_bad == 0 && report.code != 0 {
            first_bad = report.code;
        }
    }
    sched.shutdown();
    if profile {
        print_profile();
    }
    Ok(first_bad)
}

/// The policy fields `--policy key=val,...` may set. `None` means "not
/// given", so a dedicated flag can still supply the value — and so a
/// flag/`--policy` contradiction is detectable.
#[derive(Default)]
struct PolicyOverrides {
    slicing: Option<SlicingMode>,
    screening: Option<bool>,
    streaming: Option<bool>,
    adaptive: Option<bool>,
    threshold_permille: Option<u64>,
    confirm: Option<u64>,
    min_phase_chunks: Option<u64>,
    deadline_ms: Option<u64>,
}

/// Parses one `--policy key=val[,key=val...]` argument into `pol`.
/// Repeated keys (across entries or flags) keep the last value.
fn parse_policy_overrides(v: &str, pol: &mut PolicyOverrides) -> Result<(), Failure> {
    for kv in v.split(',') {
        let (key, val) = kv.split_once('=').ok_or_else(|| {
            Failure::new(2, format!("bad --policy entry `{kv}` (want key=value)"))
        })?;
        match key {
            "slice_mode" => pol.slicing = Some(parse_slice_mode(val)?),
            "screening" => pol.screening = Some(parse_policy_bool(key, val)?),
            "streaming" => pol.streaming = Some(parse_policy_bool(key, val)?),
            "adaptive" => pol.adaptive = Some(parse_policy_bool(key, val)?),
            "threshold_permille" => {
                pol.threshold_permille = Some(parse_policy_u64(key, val)?);
            }
            "confirm" => pol.confirm = Some(parse_policy_u64(key, val)?),
            "min_phase_chunks" => pol.min_phase_chunks = Some(parse_policy_u64(key, val)?),
            "deadline_ms" => pol.deadline_ms = Some(parse_policy_u64(key, val)?),
            _ => return Err(Failure::new(2, format!("unknown --policy key `{key}`"))),
        }
    }
    Ok(())
}

fn parse_policy_bool(key: &str, val: &str) -> Result<bool, Failure> {
    match val {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(Failure::new(2, format!("--policy {key} wants true or false, got `{val}`"))),
    }
}

fn parse_policy_u64(key: &str, val: &str) -> Result<u64, Failure> {
    val.parse()
        .map_err(|_| Failure::new(2, format!("--policy {key} wants a number, got `{val}`")))
}

/// Merges a dedicated flag's value with a `--policy` entry for the same
/// key. Both given with different values is the typed policy
/// contradiction (`config.conflicting_policy`, exit 2); otherwise
/// whichever was given wins.
fn merge_policy<T: PartialEq>(
    key: &'static str,
    flag: Option<T>,
    policy: Option<T>,
) -> Result<Option<T>, Failure> {
    match (flag, policy) {
        (Some(f), Some(p)) if f != p => {
            let e = PipelineError::ConflictingPolicy { key };
            Err(Failure::new(2, format!("{e} ({})", e.code())))
        }
        (f, p) => Ok(p.or(f)),
    }
}

/// Parses a `--slice-mode` value: `windowed`, `ondemand`, or
/// `ondemand:N` (checkpoint cadence; 0 means the default).
fn parse_slice_mode(v: &str) -> Result<SlicingMode, Failure> {
    if v == "windowed" {
        return Ok(SlicingMode::Windowed);
    }
    if v == "ondemand" {
        return Ok(SlicingMode::OnDemand { checkpoint_every: DEFAULT_CHECKPOINT_EVERY });
    }
    if let Some(n) = v.strip_prefix("ondemand:") {
        let every: u64 = n
            .parse()
            .map_err(|_| Failure::new(2, format!("bad checkpoint cadence `{n}`")))?;
        return Ok(SlicingMode::OnDemand {
            checkpoint_every: if every == 0 { DEFAULT_CHECKPOINT_EVERY } else { every },
        });
    }
    Err(Failure::new(2, format!("bad slice mode `{v}` (windowed or ondemand[:N])")))
}

/// The nested v6 `policy` submit object for daemon mode: the resolved
/// [`PolicySpec`], every field explicit (no flat v5 spellings).
fn policy_object(spec: &PolicySpec) -> Json {
    let mut fields = Vec::new();
    match spec.slicing {
        SlicingMode::Windowed => fields.push(("slice_mode", Json::str("windowed"))),
        SlicingMode::OnDemand { checkpoint_every } => {
            fields.push(("slice_mode", Json::str("ondemand")));
            fields.push(("checkpoint_every", Json::num_u64(checkpoint_every)));
        }
    }
    fields.push(("screening", Json::Bool(spec.screening)));
    fields.push(("streaming", Json::Bool(spec.streaming)));
    let a = spec.adaptive;
    fields.push((
        "adaptive",
        Json::obj(vec![
            ("enabled", Json::Bool(a.enabled)),
            ("threshold_permille", Json::num_u64(a.threshold_permille)),
            ("confirm", Json::num_u64(a.confirm)),
            ("min_phase_chunks", Json::num_u64(a.min_phase_chunks)),
        ]),
    ));
    if let Some(ms) = spec.deadline_ms {
        fields.push(("deadline_ms", Json::num_u64(ms)));
    }
    Json::obj(fields)
}

/// One connection to a preexecd, with the line-oriented request/response
/// helper daemon mode needs. Requests carry no `id`: this client reads
/// each response before writing the next request, so ordering alone
/// matches them up.
struct DaemonConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl DaemonConn {
    fn connect(addr: &str) -> Result<DaemonConn, Failure> {
        let writer = TcpStream::connect(addr)
            .map_err(|e| Failure::new(3, format!("connecting to daemon at {addr}: {e}")))?;
        let reader = writer
            .try_clone()
            .map_err(|e| Failure::new(3, format!("daemon socket at {addr}: {e}")))?;
        Ok(DaemonConn { reader: BufReader::new(reader), writer })
    }

    fn exchange(&mut self, req: &Json) -> Result<Json, Failure> {
        let mut line = req.encode();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| Failure::new(3, format!("writing to daemon: {e}")))?;
        let mut resp = String::new();
        let n = self
            .reader
            .read_line(&mut resp)
            .map_err(|e| Failure::new(3, format!("reading from daemon: {e}")))?;
        if n == 0 {
            return Err(Failure::new(3, "daemon closed the connection"));
        }
        Json::parse(resp.trim_end())
            .map_err(|e| Failure::new(3, format!("daemon sent unparsable JSON: {e}")))
    }
}

/// Daemon mode: one `submit_batch` for every selected workload (retried
/// with jittered backoff while the daemon sheds it as `overloaded`),
/// then status polls and `result` fetches, reported in submission order
/// under the local exit-code contract.
fn run_daemon(
    addr: &str,
    selected: &[&Workload],
    budget: u64,
    spec: &PolicySpec,
) -> Result<u8, Failure> {
    let mut conn = DaemonConn::connect(addr)?;
    let submit = Json::obj(vec![
        ("cmd", Json::str("submit_batch")),
        (
            "jobs",
            Json::Arr(
                selected
                    .iter()
                    .map(|w| {
                        Json::obj(vec![
                            ("workload", Json::str(w.name)),
                            ("budget", Json::num_u64(budget)),
                            ("policy", policy_object(spec)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let mut backoff = Backoff::new(50, 5_000, 0x700f);
    let ids: Vec<u64> = loop {
        let resp = conn.exchange(&submit)?;
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            let ids: Vec<u64> = resp
                .get("jobs")
                .and_then(Json::as_arr)
                .map(|arr| arr.iter().filter_map(Json::as_u64).collect())
                .unwrap_or_default();
            if ids.len() != selected.len() {
                return Err(Failure::new(
                    5,
                    format!("daemon acked {} of {} batch jobs", ids.len(), selected.len()),
                ));
            }
            break ids;
        }
        let code = resp.get("code").and_then(Json::as_str).unwrap_or("");
        // The whole batch sheds as one typed `overloaded`; honor its
        // retry_after_ms floor, give up after a bounded number of tries.
        if code == "overloaded" && backoff.attempts() < 8 {
            let hint = resp.get("retry_after_ms").and_then(Json::as_u64);
            let delay = backoff.next_delay_ms(hint);
            std::thread::sleep(Duration::from_millis(delay));
            continue;
        }
        let err = resp.get("error").and_then(Json::as_str).unwrap_or("unknown error");
        return Err(Failure::new(5, format!("daemon rejected the batch: {err}")));
    };

    let mut first_bad: u8 = 0;
    for (w, &id) in selected.iter().zip(&ids) {
        let report = fetch_daemon_report(&mut conn, w.name, id)?;
        print!("{}", report.stdout);
        eprint!("{}", report.stderr);
        if first_bad == 0 && report.code != 0 {
            first_bad = report.code;
        }
    }
    Ok(first_bad)
}

/// Waits for one daemon job to reach a terminal state and renders its
/// `result` as a buffered report: code 0 for `done`/`timed_out` (the
/// timing watchdog is a sampling mode, not a failure), 5 for a failed,
/// cancelled, or panicked job — mirroring what a local run of the same
/// fault would exit with.
fn fetch_daemon_report(conn: &mut DaemonConn, name: &str, job: u64) -> Result<JobReport, Failure> {
    let status = Json::obj(vec![("cmd", Json::str("status")), ("job", Json::num_u64(job))]);
    loop {
        let resp = conn.exchange(&status)?;
        if resp.get("ok").and_then(Json::as_bool) != Some(true) {
            let err = resp.get("error").and_then(Json::as_str).unwrap_or("unknown error");
            return Err(Failure::new(5, format!("status of job {job} ({name}): {err}")));
        }
        match resp.get("state").and_then(Json::as_str) {
            Some("queued" | "running") => std::thread::sleep(Duration::from_millis(20)),
            _ => break,
        }
    }
    let resp =
        conn.exchange(&Json::obj(vec![("cmd", Json::str("result")), ("job", Json::num_u64(job))]))?;
    let mut report = JobReport::default();
    if resp.get("ok").and_then(Json::as_bool) != Some(true) {
        let err = resp.get("error").and_then(Json::as_str).unwrap_or("unknown error");
        let _ = writeln!(report.stderr, "toolflow: result of job {job} ({name}): {err}");
        report.code = 5;
        return Ok(report);
    }
    match resp.get("state").and_then(Json::as_str) {
        Some("done" | "timed_out") => {
            let result = resp.get("result").cloned().unwrap_or(Json::Null);
            let trace = result.get("trace").cloned().unwrap_or(Json::Null);
            let num = |j: &Json, k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
            let fnum = |k: &str| result.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            let _ = writeln!(
                report.stdout,
                "{name}: daemon job {job}: {} insts, {} L2 misses, {} p-threads, \
                 speedup {:.3}, coverage {:.1}%{}",
                num(&trace, "insts"),
                num(&trace, "l2_misses"),
                num(&result, "num_pthreads"),
                fnum("speedup"),
                fnum("coverage_pct"),
                if result.get("cache_hit").and_then(Json::as_bool) == Some(true) {
                    " (cache hit)"
                } else {
                    ""
                },
            );
        }
        state => {
            let err = resp.get("error").and_then(Json::as_str).unwrap_or("unknown error");
            let code = resp.get("code").and_then(Json::as_str).unwrap_or("unknown");
            let _ = writeln!(
                report.stderr,
                "toolflow: {name}: daemon job {job} {}: {err} ({code})",
                state.unwrap_or("lost"),
            );
            report.code = 5;
        }
    }
    Ok(report)
}

/// Prints the per-stage wall-clock profile from the global metrics
/// registry to stderr. Reading the registry here — after all analysis
/// work has finished — keeps the no-perturbation contract: stdout (the
/// results) is identical with or without `--profile`.
fn print_profile() {
    let snap = preexec_obs::global().snapshot();
    eprintln!("toolflow profile (wall clock per stage):");
    eprintln!(
        "  {:<20} {:>7} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "total_ms", "mean_ms", "p50_ms", "p99_ms", "max_ms"
    );
    let ms = |us: u64| us as f64 / 1000.0;
    for (name, h) in snap.histograms.iter().filter(|(n, _)| n.starts_with("stage.")) {
        eprintln!(
            "  {:<20} {:>7} {:>12.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            name,
            h.count(),
            ms(h.sum_us()),
            h.mean_us() / 1000.0,
            ms(h.quantile_us(0.5)),
            ms(h.quantile_us(0.99)),
            ms(h.max_us()),
        );
    }
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    eprintln!(
        "  par: calls={} items={} busy_us={} wall_us={}",
        counter("par.calls"),
        counter("par.items"),
        counter("par.busy_us"),
        counter("par.wall_us"),
    );
    eprintln!(
        "  select: candidates={} pthreads={}",
        counter("select.candidates"),
        counter("select.pthreads"),
    );
}

/// Runs one workload end to end (pass 1 trace+write, pass 2
/// read+select), entirely into the report's buffers. An adaptive spec
/// runs the full phase-adaptive pipeline first and prints its
/// deterministic per-phase policy report; the global forest written to
/// disk (and therefore pass 2) is byte-identical either way.
fn run_workload(
    name: &str,
    program: &preexec_isa::Program,
    spec: PolicySpec,
    path: &str,
    par: Parallelism,
) -> JobReport {
    let mut report = JobReport::default();
    // Pass 1 (expensive, once): trace and slice, write the file. The
    // spec defaults match the paper toolflow (scope 1024, slice len
    // 32); `streaming` swaps in the bounded-memory transport and
    // `ondemand` slicing the checkpointed re-execution path, both with
    // byte-identical forests.
    let (forest, stats, adaptive) = if spec.adaptive.enabled {
        let out = match Pipeline::new(program).policy(spec).parallelism(par).run() {
            Ok(x) => x,
            Err(e) => {
                let _ = writeln!(report.stderr, "toolflow: running {name}: {e}");
                report.code = 5;
                return report;
            }
        };
        (out.forest, out.result.stats, out.adaptive)
    } else {
        let arts = match Pipeline::new(program).policy(spec).parallelism(par).trace() {
            Ok(x) => x,
            Err(e) => {
                let _ = writeln!(report.stderr, "toolflow: tracing {name}: {e}");
                report.code = 5;
                return report;
            }
        };
        (arts.forest, arts.stats, None)
    };
    if let Err(e) = std::fs::write(path, write_forest(&forest)) {
        let _ = writeln!(report.stderr, "toolflow: writing {path}: {e}");
        report.code = 3;
        return report;
    }
    let _ = writeln!(
        report.stdout,
        "{name}: traced {} insts, {} L2 misses -> {} slice trees written to {path}",
        stats.insts,
        stats.l2_misses,
        forest.num_trees()
    );
    if let Some(rep) = &adaptive {
        for ph in &rep.phases {
            let _ = writeln!(
                report.stdout,
                "  phase {}: {} insts, {} L2 misses -> {} ({} p-threads, \
                 payoff {:.3} vs static {:.3})",
                ph.index,
                ph.insts,
                ph.l2_misses,
                ph.policy,
                ph.pthreads,
                ph.payoff,
                ph.static_payoff,
            );
        }
        let _ = writeln!(
            report.stdout,
            "  adaptive: {}/{} phases diverge from static; {} p-threads \
             (static {}), payoff {:.3} vs {:.3}",
            rep.divergent_phases,
            rep.phases.len(),
            rep.adaptive_pthreads,
            rep.static_pthreads,
            rep.adaptive_payoff,
            rep.static_payoff,
        );
    }

    // Pass 2 (cheap, many times): read the file back and select p-thread
    // sets for several configurations.
    match std::fs::read_to_string(path) {
        Ok(text) => read_and_select(path, &text, par, spec.screening, &mut report),
        Err(e) => {
            let _ = writeln!(report.stderr, "toolflow: reading {path}: {e}");
            report.code = 3;
        }
    }
    report
}

/// Pass 2: parse a slice file (strictly, with best-effort recovery on
/// corruption) and report p-thread selections.
fn read_and_select(
    path: &str,
    text: &str,
    par: Parallelism,
    screening: bool,
    report: &mut JobReport,
) {
    match read_forest(text) {
        Ok(forest) => select_and_report(&forest, par, screening, report),
        Err(strict_err) => {
            // Corruption always exits nonzero, but salvage what we can
            // first: a partially recovered forest still yields a usable
            // (if under-covered) p-thread set.
            let _ = writeln!(report.stderr, "toolflow: {path}: {strict_err}");
            let recovered = read_forest_lenient(text);
            for d in &recovered.diagnostics {
                let _ = writeln!(report.stderr, "toolflow: {path}: {d}");
            }
            if recovered.forest.num_trees() > 0 {
                let _ = writeln!(
                    report.stderr,
                    "toolflow: {path}: recovered {} trees ({} skipped); results below are partial",
                    recovered.forest.num_trees(),
                    recovered.skipped_trees
                );
                select_and_report(&recovered.forest, par, screening, report);
            }
            let _ = writeln!(
                report.stderr,
                "toolflow: {path}: corrupt slice file ({} trees recovered, {} skipped)",
                recovered.forest.num_trees(),
                recovered.skipped_trees
            );
            report.code = 4;
        }
    }
}

/// Selects and prints p-thread sets for several machine configurations.
/// The selected sets — and therefore stdout — are byte-identical with
/// screening on or off; the flag only changes how much exact scoring
/// work the selection stage performs.
fn select_and_report(
    forest: &SliceForest,
    par: Parallelism,
    screening: bool,
    report: &mut JobReport,
) {
    for (label, params) in [
        ("8-wide, 78-cycle misses", SelectionParams { bw_seq: 8.0, ipc: 0.5, miss_latency: 78.0, ..SelectionParams::default() }),
        ("8-wide, 148-cycle misses", SelectionParams { bw_seq: 8.0, ipc: 0.5, miss_latency: 148.0, ..SelectionParams::default() }),
        ("4-wide, 78-cycle misses", SelectionParams { bw_seq: 4.0, ipc: 0.5, miss_latency: 78.0, ..SelectionParams::default() }),
        ("no optimization", SelectionParams { ipc: 0.5, optimize: false, ..SelectionParams::default() }),
    ] {
        if let Err(e) = params.try_validate() {
            let _ = writeln!(
                report.stderr,
                "toolflow: selection parameters [{label}]: {e}"
            );
            report.code = 5;
            return;
        }
        let sel = match try_select_pthreads_stats(forest, &params, par, screening) {
            Ok((sel, _, _)) => sel,
            Err(e) => {
                let _ = writeln!(report.stderr, "toolflow: selecting [{label}]: {e}");
                report.code = 5;
                return;
            }
        };
        let _ = writeln!(
            report.stdout,
            "  [{label}] {} p-threads, predicted coverage {}/{} misses, avg len {:.1}",
            sel.pthreads.len(),
            sel.prediction.misses_covered,
            forest.total_misses(),
            sel.prediction.avg_pthread_len
        );
    }
}
