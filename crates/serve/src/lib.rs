//! `preexec-serve` — a batch p-thread analysis service.
//!
//! The analysis pipeline (functional trace → slice forest → p-thread
//! selection → timing simulation) is deterministic and embarrassingly
//! parallel across (workload, machine, config) points, and its most
//! expensive stage — trace+slice — is machine-independent. This crate
//! packages that shape as a service:
//!
//! - [`scheduler`] — a bounded-queue, fixed-pool parallel job scheduler
//!   with per-job terminal states and graceful drain;
//! - [`cache`] — a content-addressed artifact cache that persists trace
//!   statistics and slice forests in the checksummed v2 slice-file
//!   format, keyed by an FNV-1a-64 digest of everything the trace stage
//!   depends on;
//! - [`service`] — job execution: the staged pipeline with cache reuse
//!   and per-stage latency accounting;
//! - [`proto`] + [`json`] — a newline-delimited JSON wire protocol over
//!   a hand-rolled, dependency-free JSON module;
//! - [`server`] — the `preexecd` TCP front end tying it all together;
//! - [`histogram`] — JSON serialization for the power-of-two-bucket
//!   latency histograms of [`preexec_obs`], backing the `stats` and
//!   `metrics` reports;
//! - [`journal`] — the durable job journal (append-only, checksummed
//!   WAL) behind crash recovery: acked work survives a daemon kill and
//!   re-runs byte-identically (DESIGN.md §14);
//! - [`admission`] + [`retry`] — overload protection: a high-water
//!   admission gate that sheds with `retry_after_ms` hints, and the
//!   client-side jittered-backoff helper honoring them;
//! - [`chaos`] — opt-in fault injection (`PREEXEC_CHAOS`) for the
//!   daemon-level chaos suite: worker panics, slow stages, cache write
//!   faults.
//!
//! Observability: every layer records into the process-wide
//! [`preexec_obs`] registry (stage latencies, cache hit/miss/eviction
//! counters, scheduler gauges, an event journal). The daemon exposes the
//! full registry through the `metrics` verb as JSON plus a
//! Prometheus-style text rendering.
//!
//! Two binaries ship with the crate: `preexecd` (the daemon) and
//! `toolflow` (the batch CLI, which runs its workloads through the same
//! scheduler via `--jobs N`).
//!
//! The serving tier (DESIGN.md §15) adds two subsystems on top:
//!
//! - [`reactor`] — a dependency-free epoll event loop (raw syscalls,
//!   no libc) that multiplexes every connection on one thread, with
//!   pipelined request handling: clients may write N request lines
//!   before reading responses, and responses echo each request's `id`;
//! - [`shard`] — consistent-hash sharding of the artifact cache across
//!   daemon processes: a [`shard::HashRing`] assigns each cache key an
//!   owning shard, peers exchange raw artifacts over the same wire
//!   protocol (`cache_get`/`cache_put`), and every peer failure
//!   degrades to local compute rather than a client-visible error.
//!
//! Everything here is `std`-only: no async runtime, no serde, no
//! registry dependencies. Jobs run on a fixed OS-thread pool; the
//! connection front end is the nonblocking [`reactor`] on Linux (a
//! thread-per-connection fallback remains for other platforms and
//! `--threaded`). Determinism of the *results* (bit-identical to a
//! direct pipeline run) is the contract that matters, sharded or not.

pub mod admission;
pub mod cache;
pub mod chaos;
pub mod histogram;
pub mod journal;
pub mod json;
pub mod proto;
pub mod reactor;
pub mod retry;
pub mod scheduler;
pub mod server;
pub mod service;
pub mod shard;

pub use admission::{AdmissionGate, Overloaded};
pub use cache::{ArtifactCache, CacheStats, RawStoreError, TraceKey};
pub use histogram::{histogram_json, Histogram};
pub use journal::{
    canonical_result, check_invariants, compact_wal, CompactionStats, JobJournal, JournalReplay,
};
pub use json::Json;
pub use proto::{parse_request, ProtoError, Request, PROTOCOL_VERSION};
pub use reactor::{LineHandler, ReactorConfig};
pub use shard::{HashRing, ShardStats, ShardedCache, DEFAULT_VNODES};
pub use retry::{retry_with_backoff, Backoff};
pub use scheduler::{
    CancelOutcome, JobCompletion, JobId, JobState, Scheduler, SchedulerStats, SubmitError,
};
pub use server::{Server, ServerConfig};
pub use service::{run_job, CancelToken, JobOutput, JobSpec, StageHists, StageMicros};
