//! Job execution: one batch-analysis job through the staged pipeline,
//! with artifact-cache reuse and per-stage latency accounting.
//!
//! A job is (workload, input, [`PipelineConfig`]). Execution goes
//! through the [`Pipeline`] builder, whose output separates the four
//! stages — so the expensive trace+slice stage can be served from the
//! [`ArtifactCache`] and each stage's wall-clock latency lands in its
//! own [`Histogram`]:
//!
//! 1. **trace+slice** (cacheable): keyed by everything it depends on;
//! 2. **base sim**: machine-dependent, always runs;
//! 3. **selection**: model-parameter-dependent, always runs (cheap);
//! 4. **assisted sim**: depends on the selection, always runs.
//!
//! A cache hit therefore re-runs only selection and the two timing sims,
//! which is the whole point of serving many `MachineParams` variations
//! against one trace.

use crate::cache::TraceKey;
use crate::shard::ShardedCache;
use crate::histogram::{histogram_json, Histogram};
use crate::scheduler::JobCompletion;
use preexec_core::par::{ParStats, Parallelism};
use preexec_experiments::{
    Pipeline, PipelineConfig, PipelineError, PipelineResult, PolicySpec,
};
use preexec_workloads::{by_name, InputSet, Workload};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A fully-resolved job: what to run (workload, input) and the unified
/// [`PolicySpec`] describing how to run it.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Suite name of the workload (resolved — guaranteed to exist).
    pub workload_name: String,
    /// The resolved workload builder.
    pub workload: Workload,
    /// Input set to build the workload with.
    pub input: InputSet,
    /// The complete run policy: configuration, slicing mode, screening,
    /// streaming, adaptive selection, and the wall-clock deadline — the
    /// single source of truth the pipeline, the journal, and the wire
    /// protocol all share. The slicing mode is not part of the
    /// artifact-cache key: every mode produces bit-identical forests, so
    /// a hit under one mode serves the others.
    pub policy: PolicySpec,
    /// Flat v5 submit fields this spec was built from (the protocol's
    /// compat shim); echoed back as the `deprecated_fields` note in the
    /// submit response. Empty for v6-native submits.
    pub deprecated_fields: Vec<&'static str>,
}

impl JobSpec {
    /// Resolves `workload_name` against the suite registry, with a
    /// default policy carrying `cfg`.
    ///
    /// # Errors
    ///
    /// Returns the sorted list of valid names when the workload is
    /// unknown.
    pub fn new(
        workload_name: &str,
        input: InputSet,
        cfg: PipelineConfig,
    ) -> Result<JobSpec, String> {
        match by_name(workload_name) {
            Some(workload) => Ok(JobSpec {
                workload_name: workload_name.to_string(),
                workload,
                input,
                policy: PolicySpec { cfg, ..PolicySpec::default() },
                deprecated_fields: Vec::new(),
            }),
            None => {
                let names: Vec<&str> =
                    preexec_workloads::suite().iter().map(|w| w.name).collect();
                Err(format!(
                    "unknown workload `{workload_name}`; available: {}",
                    names.join(", ")
                ))
            }
        }
    }

    /// The artifact-cache key of this job's trace stage.
    pub fn trace_key(&self) -> TraceKey {
        let cfg = &self.policy.cfg;
        TraceKey {
            workload: self.workload_name.clone(),
            input: self.input,
            scope: cfg.scope,
            max_slice_len: cfg.max_slice_len,
            budget: cfg.budget,
            warmup: cfg.warmup,
        }
    }
}

/// A per-job cancellation handle: a client `cancel` (or the daemon)
/// trips the flag, and an optional wall-clock deadline expires on its
/// own. [`run_job`] consults the token at every stage boundary through
/// the pipeline's [`StageGate`] hook — a running stage always finishes
/// (its own watchdog budgets bound it, DESIGN.md §9.3) and the *next*
/// boundary observes the cancellation.
///
/// Deadlines are relative to token creation, so a job replayed after a
/// crash gets a fresh allowance — a deliberate choice: the deadline
/// bounds *work*, and billing the pre-crash wall time against the re-run
/// would spuriously kill every job that was unlucky enough to be
/// in-flight at crash time.
///
/// [`StageGate`]: preexec_experiments::StageGate
#[derive(Debug)]
pub struct CancelToken {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with an optional deadline of `deadline_ms` milliseconds
    /// from now (`None` = no deadline).
    pub fn new(deadline_ms: Option<u64>) -> CancelToken {
        CancelToken {
            cancelled: AtomicBool::new(false),
            deadline: deadline_ms
                .map(|ms| Instant::now() + std::time::Duration::from_millis(ms)),
        }
    }

    /// Trips the token: the job stops at its next stage boundary.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](Self::cancel) was called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// The stage-boundary check: `Err` when cancelled or past deadline,
    /// naming the stage that was about to start.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Cancelled`] or [`PipelineError::DeadlineExceeded`].
    pub fn check(&self, stage: &'static str) -> Result<(), PipelineError> {
        if self.is_cancelled() {
            return Err(PipelineError::Cancelled { stage });
        }
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now > deadline {
                let over_ms = now.duration_since(deadline).as_millis() as u64;
                return Err(PipelineError::DeadlineExceeded { stage, over_ms });
            }
        }
        Ok(())
    }
}

/// Wall-clock microseconds spent in each stage of one job.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageMicros {
    /// Trace+slice (0 on a cache hit).
    pub trace: u64,
    /// Unassisted timing run.
    pub base_sim: u64,
    /// P-thread selection.
    pub select: u64,
    /// Assisted timing run.
    pub assisted_sim: u64,
}

/// Service-wide intra-job parallelism counters: cumulative busy/wall
/// time per parallelized stage, from which the `stats` command derives
/// the achieved per-stage speedup (`busy / wall` ≈ effective threads).
#[derive(Debug, Default)]
pub struct ParCounters {
    slice_wall_us: AtomicU64,
    slice_busy_us: AtomicU64,
    select_wall_us: AtomicU64,
    select_busy_us: AtomicU64,
}

impl ParCounters {
    /// Accumulates one job's slice-tree-build stage counters.
    pub fn record_slice(&self, s: &ParStats) {
        self.slice_wall_us.fetch_add(s.wall_us, Ordering::Relaxed);
        self.slice_busy_us.fetch_add(s.busy_us, Ordering::Relaxed);
    }

    /// Accumulates one job's selection-stage counters.
    pub fn record_select(&self, s: &ParStats) {
        self.select_wall_us.fetch_add(s.wall_us, Ordering::Relaxed);
        self.select_busy_us.fetch_add(s.busy_us, Ordering::Relaxed);
    }

    /// Serializes both stages as `{wall_us, busy_us, speedup}` objects.
    pub fn to_json(&self) -> crate::json::Json {
        fn stage(wall: &AtomicU64, busy: &AtomicU64) -> crate::json::Json {
            let wall = wall.load(Ordering::Relaxed);
            let busy = busy.load(Ordering::Relaxed);
            let speedup = if wall == 0 { 1.0 } else { busy as f64 / wall as f64 };
            crate::json::Json::obj(vec![
                ("wall_us", crate::json::Json::num_u64(wall)),
                ("busy_us", crate::json::Json::num_u64(busy)),
                ("speedup", crate::json::Json::Num(speedup)),
            ])
        }
        crate::json::Json::obj(vec![
            ("slice", stage(&self.slice_wall_us, &self.slice_busy_us)),
            ("select", stage(&self.select_wall_us, &self.select_busy_us)),
        ])
    }
}

/// The service-wide per-stage latency histograms. Workers record through
/// a mutex per stage; recording is a handful of integer ops, so
/// contention is negligible next to stage runtimes.
#[derive(Debug, Default)]
pub struct StageHists {
    trace: Mutex<Histogram>,
    base_sim: Mutex<Histogram>,
    select: Mutex<Histogram>,
    assisted_sim: Mutex<Histogram>,
    /// Intra-job parallel-stage utilization (fed by [`run_job`]).
    pub par: ParCounters,
}

/// Recovers from mutex poisoning: a histogram is always internally
/// consistent (plain counters), so the data stays usable.
fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl StageHists {
    /// Fresh, empty histograms.
    pub fn new() -> StageHists {
        StageHists::default()
    }

    /// Records one job's stage timings (a cache hit contributes no trace
    /// sample — it would drag the trace histogram toward zero and hide
    /// the real cost of tracing).
    pub fn record(&self, us: &StageMicros, cache_hit: bool) {
        if !cache_hit {
            locked(&self.trace).record_us(us.trace);
        }
        locked(&self.base_sim).record_us(us.base_sim);
        locked(&self.select).record_us(us.select);
        locked(&self.assisted_sim).record_us(us.assisted_sim);
    }

    /// Serializes all four histograms keyed by stage name.
    pub fn to_json(&self) -> crate::json::Json {
        crate::json::Json::obj(vec![
            ("trace", histogram_json(&locked(&self.trace))),
            ("base_sim", histogram_json(&locked(&self.base_sim))),
            ("select", histogram_json(&locked(&self.select))),
            ("assisted_sim", histogram_json(&locked(&self.assisted_sim))),
        ])
    }
}

/// Everything a finished job reports.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The workload that ran.
    pub workload: String,
    /// The input set it was built with.
    pub input: InputSet,
    /// The full pipeline result.
    pub result: PipelineResult,
    /// Whether the trace stage was served from the artifact cache.
    pub cache_hit: bool,
    /// Per-stage wall-clock times.
    pub stage_us: StageMicros,
}

/// Runs one job to completion: trace (or cache hit), base sim, select,
/// assisted sim. Never panics on pipeline faults — they become
/// [`JobCompletion::Failed`]; watchdog-truncated timing runs become
/// [`JobCompletion::TimedOut`] with the (valid) result attached.
///
/// `par` is the *intra-job* thread knob: the slice-tree build and the
/// selection fan-outs may use up to that many scoped threads while this
/// job runs (the daemon sizes it against the scheduler pool so
/// `workers × job_threads` stays bounded by the machine). The job's
/// result is byte-identical for every setting.
///
/// Note: a trace cut by its instruction budget (`RunStats::timed_out`) is
/// the *normal* sampling mode, not a job timeout — only the timing sims'
/// `max_cycles` watchdog marks a job `TimedOut`.
///
/// `token`, when given, is consulted at every stage boundary: a tripped
/// or deadline-expired token aborts the run as
/// [`JobCompletion::Cancelled`] before the next stage starts.
pub fn run_job(
    spec: &JobSpec,
    cache: &ShardedCache,
    hists: &StageHists,
    par: Parallelism,
    token: Option<&CancelToken>,
) -> JobCompletion<JobOutput> {
    // A job cancelled (or expired) while it sat in the queue never
    // starts: report the boundary as "queued".
    if let Some(t) = token {
        if let Err(e) = t.check("queued") {
            return JobCompletion::Cancelled(e);
        }
    }
    if let Err(e) = spec.policy.try_validate() {
        return JobCompletion::Failed(e);
    }
    let program = spec.workload.build(spec.input);
    let key = spec.trace_key();

    let mut pipe = Pipeline::new(&program).policy(spec.policy).parallelism(par);
    // One gate serves both masters: the chaos harness's slow-stage
    // injector (inert without a plan) and the cancellation token.
    let gate_fn = move |stage: &'static str| {
        crate::chaos::stage_delay();
        match token {
            Some(t) => t.check(stage),
            None => Ok(()),
        }
    };
    if token.is_some() || crate::chaos::plan().slow_job_ms.is_some() {
        pipe = pipe.gate(&gate_fn);
    }
    // Adaptive jobs bypass the artifact cache entirely: the trace key
    // carries no adaptive dimension (a cached forest has no per-phase
    // banks), and the adaptive pipeline rejects injected artifacts.
    let cacheable = !spec.policy.adaptive.enabled;
    let cache_hit = cacheable
        && match cache.load(&key) {
            Some((forest, stats)) => {
                pipe = pipe.artifacts(forest, stats);
                true
            }
            None => false,
        };
    let out = match pipe.run() {
        Ok(out) => out,
        Err(
            e @ (PipelineError::Cancelled { .. } | PipelineError::DeadlineExceeded { .. }),
        ) => return JobCompletion::Cancelled(e),
        Err(e) => return JobCompletion::Failed(e),
    };
    if !cache_hit {
        hists.par.record_slice(&out.par.slice);
        if cacheable {
            // A failed store only costs a future recompute.
            let _ = cache.store(&key, &out.forest, &out.result.stats);
        }
    }
    hists.par.record_select(&out.par.select);
    let stage_us = StageMicros {
        trace: out.stage_us.trace,
        base_sim: out.stage_us.base_sim,
        select: out.stage_us.select,
        assisted_sim: out.stage_us.assisted_sim,
    };
    let result = out.result;

    hists.record(&stage_us, cache_hit);
    let journal = preexec_obs::global().journal();
    if result.assisted.squashes > 0 {
        journal.note(
            "squash",
            &format!(
                "{} p-thread squashes during assisted sim of {}",
                result.assisted.squashes, spec.workload_name
            ),
        );
    }
    let timed_out = result.base.timed_out || result.assisted.timed_out;
    if timed_out {
        journal.note(
            "watchdog",
            &format!("timing watchdog truncated a sim of {}", spec.workload_name),
        );
    }
    let output = JobOutput {
        workload: spec.workload_name.clone(),
        input: spec.input,
        result,
        cache_hit,
        stage_us,
    };
    if timed_out {
        JobCompletion::TimedOut(output)
    } else {
        JobCompletion::Done(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ArtifactCache;
    use preexec_experiments::try_run_pipeline;
    use preexec_obs::Registry;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("preexec-serve-service-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A cache with a private registry: these tests assert exact counter
    /// values, which the shared global registry cannot guarantee under
    /// the parallel test runner.
    fn isolated_cache(dir: &PathBuf, max_entries: usize) -> (ShardedCache, Registry) {
        let registry = Registry::new();
        let cache = ShardedCache::local_only(ArtifactCache::with_registry(dir, max_entries, &registry));
        (cache, registry)
    }

    #[test]
    fn job_spec_rejects_unknown_workloads() {
        let cfg = PipelineConfig::paper_default(10_000);
        let e = JobSpec::new("no-such", InputSet::Train, cfg).unwrap_err();
        assert!(e.contains("no-such") && e.contains("vpr.r"), "{e}");
        assert!(JobSpec::new("mcf", InputSet::Test, cfg).is_ok());
    }

    #[test]
    fn second_run_hits_the_cache_and_matches_the_first_and_a_direct_run() {
        let dir = tmp_dir("hit");
        let (cache, _registry) = isolated_cache(&dir, 8);
        let hists = StageHists::new();
        let cfg = PipelineConfig::paper_default(60_000);
        let spec = JobSpec::new("vpr.r", InputSet::Train, cfg).expect("spec");

        let first = match run_job(&spec, &cache, &hists, Parallelism::new(2), None) {
            JobCompletion::Done(out) => out,
            other => panic!("first run: {:?}", other.state()),
        };
        assert!(!first.cache_hit);
        let second = match run_job(&spec, &cache, &hists, Parallelism::serial(), None) {
            JobCompletion::Done(out) => out,
            other => panic!("second run: {:?}", other.state()),
        };
        assert!(second.cache_hit, "identical resubmit must hit the cache");
        assert_eq!(second.stage_us.trace, 0, "hit performs no trace work");

        let direct =
            try_run_pipeline(&spec.workload.build(spec.input), &cfg).expect("direct run");
        for r in [&first.result, &second.result] {
            assert_eq!(r.base.cycles, direct.base.cycles);
            assert_eq!(r.base.insts, direct.base.insts);
            assert_eq!(r.assisted.cycles, direct.assisted.cycles);
            assert_eq!(r.selection.pthreads.len(), direct.selection.pthreads.len());
            assert_eq!(r.stats.insts, direct.stats.insts);
            assert_eq!(r.stats.l2_misses, direct.stats.l2_misses);
        }
        assert_eq!(cache.local().stats().hits, 1);
        // Trace histogram has exactly one sample: the hit recorded none.
        let hists_json = hists.to_json();
        let trace_count = hists_json
            .get("trace")
            .and_then(|h| h.get("count"))
            .and_then(crate::json::Json::as_u64);
        assert_eq!(trace_count, Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entry_recomputes_instead_of_failing() {
        let dir = tmp_dir("corrupt");
        let (cache, _registry) = isolated_cache(&dir, 8);
        let hists = StageHists::new();
        let cfg = PipelineConfig::paper_default(40_000);
        let spec = JobSpec::new("gap", InputSet::Train, cfg).expect("spec");
        let first = match run_job(&spec, &cache, &hists, Parallelism::serial(), None) {
            JobCompletion::Done(out) => out,
            other => panic!("first run: {:?}", other.state()),
        };
        // Mangle the cached forest.
        let slices = std::fs::read_dir(&dir)
            .expect("dir")
            .flatten()
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "slices"))
            .expect("cached slices file");
        std::fs::write(&slices, "preexec-slices version=2 checksum=0000000000000000\ngarbage\n")
            .expect("corrupt");
        let again = match run_job(&spec, &cache, &hists, Parallelism::new(2), None) {
            JobCompletion::Done(out) => out,
            other => panic!("rerun after corruption: {:?}", other.state()),
        };
        assert!(!again.cache_hit, "corrupt entry must recompute");
        assert_eq!(again.result.base.cycles, first.result.base.cycles);
        assert_eq!(cache.local().stats().corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn adaptive_jobs_bypass_the_artifact_cache_and_stay_deterministic() {
        let dir = tmp_dir("adaptive");
        let (cache, _registry) = isolated_cache(&dir, 8);
        let hists = StageHists::new();
        let cfg = PipelineConfig::paper_default(40_000);
        let mut spec = JobSpec::new("mcf", InputSet::Train, cfg).expect("spec");
        spec.policy.adaptive = preexec_experiments::AdaptiveConfig {
            enabled: true,
            ..preexec_experiments::AdaptiveConfig::default()
        };
        let first = match run_job(&spec, &cache, &hists, Parallelism::serial(), None) {
            JobCompletion::Done(out) => out,
            other => panic!("first adaptive run: {:?}", other.state()),
        };
        assert!(!first.cache_hit);
        let again = match run_job(&spec, &cache, &hists, Parallelism::new(2), None) {
            JobCompletion::Done(out) => out,
            other => panic!("second adaptive run: {:?}", other.state()),
        };
        assert!(!again.cache_hit, "adaptive jobs must not consult the cache");
        assert_eq!(cache.local().stats().hits, 0);
        assert_eq!(
            format!("{:?}", first.result),
            format!("{:?}", again.result),
            "adaptive runs must be bit-identical at any thread count"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_config_fails_with_the_typed_error() {
        let dir = tmp_dir("invalid");
        let cache = ShardedCache::local_only(ArtifactCache::new(&dir, 8));
        let hists = StageHists::new();
        let cfg = PipelineConfig { budget: 0, ..PipelineConfig::paper_default(1) };
        let spec = JobSpec::new("mcf", InputSet::Train, cfg).expect("spec");
        match run_job(&spec, &cache, &hists, Parallelism::serial(), None) {
            JobCompletion::Failed(e) => {
                assert_eq!(e, preexec_experiments::PipelineError::ZeroBudget);
            }
            other => panic!("unexpected {:?}", other.state()),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
