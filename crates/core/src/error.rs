//! Typed errors for the selection layer.

use std::error::Error;
use std::fmt;

/// A rejected [`SelectionParams`](crate::SelectionParams) field. Each
/// invalid field maps to a distinct variant carrying the offending value,
/// so callers (and tests) can tell *which* parameter was bad.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamsError {
    /// `bw_seq` was NaN, infinite, zero, or negative.
    BadBwSeq(f64),
    /// `ipc` was NaN, infinite, zero, or negative.
    BadIpc(f64),
    /// `ipc` exceeded `bw_seq` (a program cannot retire faster than the
    /// processor sequences).
    IpcExceedsWidth {
        /// The offending IPC.
        ipc: f64,
        /// The sequencing width it exceeded.
        bw_seq: f64,
    },
    /// `miss_latency` was NaN, infinite, zero, or negative.
    BadMissLatency(f64),
    /// `max_pthread_len` was zero.
    ZeroMaxPthreadLen,
    /// `slicing_scope` was zero.
    ZeroSlicingScope,
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::BadBwSeq(v) => {
                write!(f, "bw_seq must be positive and finite, got {v}")
            }
            ParamsError::BadIpc(v) => {
                write!(f, "ipc must be positive and finite, got {v}")
            }
            ParamsError::IpcExceedsWidth { ipc, bw_seq } => {
                write!(f, "ipc must be in (0, bw_seq]: ipc {ipc} exceeds bw_seq {bw_seq}")
            }
            ParamsError::BadMissLatency(v) => {
                write!(f, "miss_latency must be positive and finite, got {v}")
            }
            ParamsError::ZeroMaxPthreadLen => write!(f, "max_pthread_len must be positive"),
            ParamsError::ZeroSlicingScope => write!(f, "slicing_scope must be positive"),
        }
    }
}

impl Error for ParamsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        assert!(ParamsError::BadBwSeq(f64::NAN).to_string().contains("bw_seq"));
        assert!(ParamsError::BadIpc(-1.0).to_string().contains("ipc"));
        assert!(ParamsError::IpcExceedsWidth { ipc: 9.0, bw_seq: 8.0 }
            .to_string()
            .contains("exceeds"));
        assert!(ParamsError::BadMissLatency(0.0).to_string().contains("miss_latency"));
        assert!(ParamsError::ZeroMaxPthreadLen.to_string().contains("max_pthread_len"));
        assert!(ParamsError::ZeroSlicingScope.to_string().contains("slicing_scope"));
    }
}
