//! Typed errors for the selection layer.

use std::error::Error;
use std::fmt;

/// A rejected [`SelectionParams`](crate::SelectionParams) field. Each
/// invalid field maps to a distinct variant carrying the offending value,
/// so callers (and tests) can tell *which* parameter was bad.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamsError {
    /// `bw_seq` was NaN, infinite, zero, or negative.
    BadBwSeq(f64),
    /// `ipc` was NaN, infinite, zero, or negative.
    BadIpc(f64),
    /// `ipc` exceeded `bw_seq` (a program cannot retire faster than the
    /// processor sequences).
    IpcExceedsWidth {
        /// The offending IPC.
        ipc: f64,
        /// The sequencing width it exceeded.
        bw_seq: f64,
    },
    /// `miss_latency` was NaN, infinite, zero, or negative.
    BadMissLatency(f64),
    /// `max_pthread_len` was zero.
    ZeroMaxPthreadLen,
    /// `slicing_scope` was zero.
    ZeroSlicingScope,
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::BadBwSeq(v) => {
                write!(f, "bw_seq must be positive and finite, got {v}")
            }
            ParamsError::BadIpc(v) => {
                write!(f, "ipc must be positive and finite, got {v}")
            }
            ParamsError::IpcExceedsWidth { ipc, bw_seq } => {
                write!(f, "ipc must be in (0, bw_seq]: ipc {ipc} exceeds bw_seq {bw_seq}")
            }
            ParamsError::BadMissLatency(v) => {
                write!(f, "miss_latency must be positive and finite, got {v}")
            }
            ParamsError::ZeroMaxPthreadLen => write!(f, "max_pthread_len must be positive"),
            ParamsError::ZeroSlicingScope => write!(f, "slicing_scope must be positive"),
        }
    }
}

impl Error for ParamsError {}

/// A fault from the selection driver
/// ([`try_select_pthreads_stats`](crate::select::try_select_pthreads_stats)):
/// either the parameters were rejected up front or a candidate's score
/// came out non-finite mid-run.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectError {
    /// The selection parameters failed validation.
    Params(ParamsError),
    /// A candidate's aggregate advantage evaluated to NaN or ±∞ (see
    /// [`preexec_slice::SliceError::NonFiniteScore`]).
    Score(preexec_slice::SliceError),
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Delegate verbatim: the panicking wrappers surface these
            // messages and must match the historical `validate()` text.
            SelectError::Params(e) => e.fmt(f),
            SelectError::Score(e) => e.fmt(f),
        }
    }
}

impl Error for SelectError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SelectError::Params(e) => Some(e),
            SelectError::Score(e) => Some(e),
        }
    }
}

impl From<ParamsError> for SelectError {
    fn from(e: ParamsError) -> SelectError {
        SelectError::Params(e)
    }
}

impl From<preexec_slice::SliceError> for SelectError {
    fn from(e: preexec_slice::SliceError) -> SelectError {
        SelectError::Score(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_error_wraps_both_layers() {
        let e: SelectError = ParamsError::ZeroMaxPthreadLen.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("max_pthread_len"));
        let e: SelectError = preexec_slice::SliceError::NonFiniteScore { pc: 7, node: 3 }.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("non-finite"));
    }

    #[test]
    fn display_names_the_field() {
        assert!(ParamsError::BadBwSeq(f64::NAN).to_string().contains("bw_seq"));
        assert!(ParamsError::BadIpc(-1.0).to_string().contains("ipc"));
        assert!(ParamsError::IpcExceedsWidth { ipc: 9.0, bw_seq: 8.0 }
            .to_string()
            .contains("exceeds"));
        assert!(ParamsError::BadMissLatency(0.0).to_string().contains("miss_latency"));
        assert!(ParamsError::ZeroMaxPthreadLen.to_string().contains("max_pthread_len"));
        assert!(ParamsError::ZeroSlicingScope.to_string().contains("slicing_scope"));
    }
}
