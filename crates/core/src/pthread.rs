//! The selected static p-thread: the framework's output artifact.

use crate::Advantage;
use preexec_isa::{Inst, Pc};
use std::fmt;

/// A selected static p-thread: a trigger/body pair plus the framework's
/// diagnostic predictions for it.
///
/// Dynamic instances of this p-thread are launched every time the main
/// thread renames an instance of `trigger`; the body executes as a
/// control-less instruction sequence whose live-in registers are seeded
/// from main-thread state at launch, ending at the targeted problem
/// load(s).
#[derive(Debug, Clone, PartialEq)]
pub struct StaticPThread {
    /// PC of the trigger instruction in the main program.
    pub trigger: Pc,
    /// PCs of the problem load(s) this p-thread pre-executes. A single
    /// load unless merging combined p-threads for several.
    pub targets: Vec<Pc>,
    /// The body: instructions executed by the p-thread, in order.
    pub body: Vec<Inst>,
    /// `DC_trig`: expected dynamic launches over the sample.
    pub dc_trig: u64,
    /// `DC_pt-cm`: expected launches that pre-execute an actual miss
    /// (summed over targets for merged p-threads).
    pub dc_ptcm: u64,
    /// The advantage calculation this p-thread was selected under (for a
    /// merged p-thread, recomputed over the merged body).
    pub advantage: Advantage,
}

impl StaticPThread {
    /// Number of body instructions (`SIZE_pt`).
    pub fn size(&self) -> usize {
        self.body.len()
    }

    /// Expected useless launches: `DC_trig − DC_pt-cm`.
    pub fn useless_launches(&self) -> u64 {
        self.dc_trig.saturating_sub(self.dc_ptcm)
    }
}

impl fmt::Display for StaticPThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "p-thread @trigger #{:02} -> targets {:?} (ADVagg {:.1}, LT {:.0}, {} launches, {} useful)",
            self.trigger, self.targets, self.advantage.adv_agg, self.advantage.lt,
            self.dc_trig, self.dc_ptcm
        )?;
        for inst in &self.body {
            writeln!(f, "    {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_isa::{Op, Reg};

    fn sample() -> StaticPThread {
        StaticPThread {
            trigger: 11,
            targets: vec![9],
            body: vec![
                Inst::itype(Op::Addi, Reg::new(5), Reg::new(5), 16),
                Inst::load(Op::Lw, Reg::new(7), Reg::new(5), 4),
            ],
            dc_trig: 100,
            dc_ptcm: 30,
            advantage: Advantage {
                scdh_pt: 2.0,
                scdh_mt: 10.0,
                lt: 8.0,
                oh: 0.25,
                lt_agg: 240.0,
                oh_agg: 25.0,
                adv_agg: 215.0,
                full_coverage: true,
            },
        }
    }

    #[test]
    fn size_and_useless() {
        let p = sample();
        assert_eq!(p.size(), 2);
        assert_eq!(p.useless_launches(), 70);
    }

    #[test]
    fn display_contains_body() {
        let text = sample().to_string();
        assert!(text.contains("addi r5, r5, 16"));
        assert!(text.contains("trigger #11"));
    }
}
