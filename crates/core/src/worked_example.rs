//! Reproduction of the paper's §3.1/§3.2 working example (Figures 1–3).
//!
//! The pharmacy loop runs 100 iterations; the first branch is taken 20
//! times (so 80 iterations execute load #09), the second 60 times (60 of
//! those use the #04 computation, 20 the #06 computation); half of all #09
//! instances miss (40 misses: 30 via #04, 10 via #06). Unit latencies,
//! 8-cycle miss latency, 4-wide processor, unassisted IPC 1
//! (`BW_seq-mt = 2`).
//!
//! Expected results, from the paper's text:
//! - candidates 1–2 (triggers #08, #07): no fetch advantage, negative ADV;
//! - candidate 3 (trigger #04): LT 1 for 30 misses, OH 0.375 × 60 → +7.5;
//! - candidate 4 (trigger #11): LT 3 for 30 misses, OH 0.5 × 100 → +40;
//! - candidate 5 (trigger #11, 1 unrolling): LT 8 (capped), OH 62.5 → 177;
//! - candidate 6 (2 unrollings): LT 8, OH 75 → 165;
//! - the winner is candidate 5 with score 177 (printed floor of 177.5);
//! - the right-hand slice (#06) independently selects its unrolled
//!   p-thread and the two do not overlap (§3.2).

use crate::advantage::aggregate_advantage;
use crate::{candidate_body, solve_tree, SelectionParams};
use preexec_isa::{Inst, Op, Pc, Reg};
use preexec_slice::{SliceEntry, SliceTree};

fn r(n: u8) -> Reg {
    Reg::new(n)
}

fn entry(pc: Pc, inst: Inst, dist: u64, deps: Vec<u32>) -> SliceEntry {
    SliceEntry { pc, inst, dist, dep_positions: deps }
}

/// Instruction #09: `lw r8, 0(r7)` — the problem load.
fn root_inst() -> Inst {
    Inst::load(Op::Lw, r(8), r(7), 0)
}

/// One dynamic slice along the #04 path, with the paper's loop structure:
/// the #04-path iteration is 13 dynamic instructions long
/// (#00 #01 #02 #03 #04 #05 #07 #08 #09 #10 #11 #12 #13).
fn left_slice(unrollings: usize) -> Vec<SliceEntry> {
    let mut s = vec![
        entry(9, root_inst(), 0, vec![1]),
        entry(8, Inst::itype(Op::Addi, r(7), r(7), 4096), 1, vec![2]),
        entry(7, Inst::itype(Op::Sll, r(7), r(7), 2), 2, vec![3]),
        entry(4, Inst::load(Op::Lw, r(7), r(5), 4), 4, vec![4]),
    ];
    // Induction copies: #11 of iteration i-1 is 11 instructions before
    // #09 of iteration i; each further copy is 13 earlier.
    for u in 0..unrollings {
        let dist = 11 + 13 * u as u64;
        let dep = if u + 1 < unrollings { vec![5 + u as u32] } else { vec![] };
        s.push(entry(11, Inst::itype(Op::Addi, r(5), r(5), 16), dist, dep));
    }
    s
}

/// One dynamic slice along the #06 path (generic drug id, offset 8).
fn right_slice(unrollings: usize) -> Vec<SliceEntry> {
    let mut s = vec![
        entry(9, root_inst(), 0, vec![1]),
        entry(8, Inst::itype(Op::Addi, r(7), r(7), 4096), 1, vec![2]),
        entry(7, Inst::itype(Op::Sll, r(7), r(7), 2), 2, vec![3]),
        entry(6, Inst::load(Op::Lw, r(7), r(5), 8), 3, vec![4]),
    ];
    for u in 0..unrollings {
        let dist = 10 + 12 * u as u64;
        let dep = if u + 1 < unrollings { vec![5 + u as u32] } else { vec![] };
        s.push(entry(11, Inst::itype(Op::Addi, r(5), r(5), 16), dist, dep));
    }
    s
}

/// Builds the Figure-3 slice tree: 30 misses along the #04 path, 10 along
/// the #06 path, each with three levels of induction available.
fn figure3_tree() -> SliceTree {
    let mut t = SliceTree::new(9, root_inst());
    for _ in 0..30 {
        t.insert_slice(&left_slice(3));
    }
    for _ in 0..10 {
        t.insert_slice(&right_slice(3));
    }
    t
}

/// `DC_trig` per static PC, from the example's narrative: the loop runs
/// 100 iterations; #08/#07/#09 execute 80 times; #04 60; #06 20; #11 100.
fn dc_trig(pc: Pc) -> u64 {
    match pc {
        7 | 8 | 9 => 80,
        4 => 60,
        6 => 20,
        11 => 100,
        _ => 0,
    }
}

fn params() -> SelectionParams {
    SelectionParams::working_example()
}

/// Scores the candidate triggered at tree node `node` (left path nodes are
/// 1=#08, 2=#07, 3=#04, 4..6=#11 by insertion order).
fn score(t: &SliceTree, node: usize) -> crate::Advantage {
    let body = candidate_body(t, node);
    aggregate_advantage(&params(), &body, &body, dc_trig(t.node(node).pc), t.node(node).dc_ptcm)
}

#[test]
fn paper_worked_example_candidate_scores() {
    let t = figure3_tree();
    // Candidate 1: trigger #08, body [#09]. No fetch advantage; ADV = -10.
    let c1 = score(&t, 1);
    assert_eq!(c1.lt, 0.0);
    assert!((c1.oh_agg - 10.0).abs() < 1e-9);
    assert!((c1.adv_agg - -10.0).abs() < 1e-9);

    // Candidate 2: trigger #07, body [#08 #09]. ADV = -20.
    let c2 = score(&t, 2);
    assert_eq!(c2.lt, 0.0);
    assert!((c2.adv_agg - -20.0).abs() < 1e-9);

    // Candidate 3: trigger #04: LT 1 for 30 misses, OH 0.375 each for 60
    // launches -> ADV = 30 - 22.5 = 7.5.
    let c3 = score(&t, 3);
    assert_eq!(c3.lt, 1.0);
    assert!((c3.oh - 0.375).abs() < 1e-9);
    assert!((c3.adv_agg - 7.5).abs() < 1e-9);

    // Candidate 4: trigger #11 (previous iteration): LT 3, SIZE 4,
    // OH 0.5 for 100 launches -> ADV = 90 - 50 = 40.
    let c4 = score(&t, 4);
    assert_eq!(c4.lt, 3.0);
    assert!((c4.oh - 0.5).abs() < 1e-9);
    assert!((c4.adv_agg - 40.0).abs() < 1e-9);

    // Candidate 5: one unrolling: LT capped at 8, SIZE 5,
    // OHagg = 62.5 -> ADV = 240 - 62.5 = 177.5 (printed as 177).
    let c5 = score(&t, 5);
    assert_eq!(c5.lt, 8.0);
    assert!(c5.full_coverage);
    assert!((c5.oh_agg - 62.5).abs() < 1e-9);
    assert!((c5.adv_agg - 177.5).abs() < 1e-9);
    assert_eq!(c5.adv_agg.floor(), 177.0);

    // Candidate 6: two unrollings: LT still 8, SIZE 6 -> ADV = 240 - 75.
    let c6 = score(&t, 6);
    assert_eq!(c6.lt, 8.0);
    assert!((c6.adv_agg - 165.0).abs() < 1e-9);

    // The winner among the six is candidate 5.
    let best = [c1, c2, c3, c4, c5, c6]
        .iter()
        .map(|a| a.adv_agg)
        .fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(best, c5.adv_agg);
}

#[test]
fn paper_worked_example_highest_possible_score_is_320() {
    // "the highest possible ADVagg score in this case is 320: 8 cycles of
    // latency tolerance for each of the 40 #09 misses, with 0 overhead."
    let p = params();
    assert_eq!(40.0 * p.miss_latency, 320.0);
}

#[test]
fn paper_worked_example_tree_solution() {
    // §3.2: solving the whole tree selects the unrolled p-thread on each
    // side (F on the left, J on the right); they do not overlap, so no
    // reductions are needed.
    let t = figure3_tree();
    assert!(t.check_invariants());
    let picks = solve_tree(&t, &dc_trig, &params());
    assert_eq!(picks.len(), 2, "one p-thread per slice");
    let pcs: Vec<(Pc, usize)> = picks
        .iter()
        .map(|(n, sc, _)| (t.node(*n).pc, sc.exec_body.len()))
        .collect();
    // Both triggers are instances of #11.
    assert!(pcs.iter().all(|&(pc, _)| pc == 11));
    // Left body has 5 instructions ([#11 #04 #07 #08 #09]); the right
    // side covers only 10 misses, so its best p-thread may unroll less.
    assert!(pcs.iter().any(|&(_, len)| len == 5));
    // Net advantages equal raw advantages (no overlap).
    for (n, sc, net) in &picks {
        assert!((sc.advantage.adv_agg - net).abs() < 1e-9, "node {n} reduced");
    }
    // The left pick is exactly candidate 5.
    let left = picks
        .iter()
        .find(|(n, _, _)| t.is_ancestor(3, *n) || *n == 3)
        .expect("left-path selection");
    assert!((left.2 - 177.5).abs() < 1e-9);
}

#[test]
fn paper_worked_example_dc_invariants() {
    let t = figure3_tree();
    // Root covers all 40 misses; #04 node 30; #06 node 10.
    assert_eq!(t.root().dc_ptcm, 40);
    let shared = t.node(1); // #08
    assert_eq!(shared.dc_ptcm, 40);
    assert_eq!(t.node(3).dc_ptcm, 30); // #04
    // Children of #07 are #04 and #06.
    let seven = t.node(2);
    assert_eq!(seven.children.len(), 2);
    let total: u64 = seven.children.iter().map(|&c| t.node(c).dc_ptcm).sum();
    assert_eq!(total, 40);
}

#[test]
fn overlap_reduction_triggers_when_parent_and_child_selected() {
    // Force a tree where a short parent p-thread covers extra misses that
    // its long child does not, so both get selected, and verify the
    // parent's advantage is reduced by DC_pt-cm(child) * LT(parent).
    let mut t = SliceTree::new(9, root_inst());
    // 50 misses take a short, high-distance path through #05 (so even the
    // shallow candidate has fetch advantage), 50 extend deeper through #04.
    let short: Vec<SliceEntry> = vec![
        entry(9, root_inst(), 0, vec![1]),
        entry(5, Inst::itype(Op::Addi, r(7), r(7), 8), 20, vec![]),
    ];
    let long: Vec<SliceEntry> = vec![
        entry(9, root_inst(), 0, vec![1]),
        entry(5, Inst::itype(Op::Addi, r(7), r(7), 8), 20, vec![2]),
        entry(4, Inst::itype(Op::Addi, r(7), r(7), 8), 40, vec![]),
    ];
    for _ in 0..50 {
        t.insert_slice(&short);
        t.insert_slice(&long);
    }
    let dc = |pc: Pc| match pc {
        9 => 100,
        5 => 100,
        4 => 60,
        _ => 0,
    };
    let picks = solve_tree(&t, &dc, &params());
    // Whatever the final selection, no pick may retain a net advantage
    // exceeding its raw advantage, and parent-child double counting must
    // be subtracted when both are picked.
    for (n, sc, net) in &picks {
        assert!(*net <= sc.advantage.adv_agg + 1e-9, "node {n}");
    }
    if picks.len() == 2 {
        let (parent_pick, child_pick) = {
            let a = &picks[0];
            let b = &picks[1];
            if t.is_ancestor(a.0, b.0) {
                (a, b)
            } else {
                (b, a)
            }
        };
        let expected_reduction =
            t.node(child_pick.0).dc_ptcm as f64 * parent_pick.1.advantage.lt;
        assert!(
            (parent_pick.1.advantage.adv_agg - parent_pick.2 - expected_reduction).abs() < 1e-6
        );
    }
}
