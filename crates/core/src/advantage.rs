//! Aggregate advantage (§3.1): the single numeric score that balances
//! latency tolerance, overhead, miss coverage and useless p-threads.

use crate::{scdh, Body, SelectionParams};

/// The full advantage calculation for one candidate static p-thread.
///
/// Fields mirror the columns of the paper's Figure 2: per-instance latency
/// tolerance and overhead, their aggregates over the candidate's dynamic
/// instances, and the final score.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Advantage {
    /// `SCDH_pt`: estimated cycles for the p-thread to reach the miss.
    pub scdh_pt: f64,
    /// `SCDH_mt`: estimated cycles for the unassisted main thread to reach
    /// the same miss, from the trigger.
    pub scdh_mt: f64,
    /// `LT` per useful dynamic instance: `min(⌊SCDH_mt − SCDH_pt⌋, L_cm)`,
    /// clamped at zero.
    pub lt: f64,
    /// `OH` per dynamic instance: sequencing cycles stolen from the main
    /// thread, utilization-discounted.
    pub oh: f64,
    /// `LT_agg = DC_pt-cm · LT`.
    pub lt_agg: f64,
    /// `OH_agg = DC_trig · OH`.
    pub oh_agg: f64,
    /// `ADV_agg = LT_agg − OH_agg`.
    pub adv_agg: f64,
    /// Whether the candidate achieves *full* latency tolerance
    /// (`LT == L_cm`), i.e. its covered misses become full hits.
    pub full_coverage: bool,
}

/// Scores one candidate static p-thread.
///
/// `exec_body` is the (possibly optimized) instruction sequence the
/// p-thread will actually execute — it determines `SIZE_pt` and `SCDH_pt`.
/// `main_body` is the original, unoptimized computation as the main thread
/// executes it — it determines `SCDH_mt`. When optimization is off the two
/// are the same body (§3.3: "we fit p-thread optimization into our
/// framework by allowing the calculations for SCDH_pt and SIZE_pt to use
/// any sequence of instructions that is functionally equivalent").
///
/// `dc_trig` is the trigger's dynamic count; `dc_ptcm` the number of those
/// launches that pre-execute an actual miss.
///
/// # Panics
///
/// Panics if either body is empty (see [`scdh::scdh`]).
pub fn aggregate_advantage(
    params: &SelectionParams,
    exec_body: &Body,
    main_body: &Body,
    dc_trig: u64,
    dc_ptcm: u64,
) -> Advantage {
    let scdh_pt = scdh::scdh_pthread(exec_body);
    let scdh_mt = scdh::scdh_main(main_body, params.bw_seq_mt());
    // Latency tolerance: whole cycles of hoisting, at most the miss
    // latency ("it does not benefit the main thread to tolerate more
    // latency than the latency of the miss"), never negative.
    let diff = (scdh_mt - scdh_pt).floor();
    let lt = diff.clamp(0.0, params.miss_latency);
    let oh = exec_body.len() as f64 * params.oh_per_inst();
    let lt_agg = dc_ptcm as f64 * lt;
    let oh_agg = dc_trig as f64 * oh;
    Advantage {
        scdh_pt,
        scdh_mt,
        lt,
        oh,
        lt_agg,
        oh_agg,
        adv_agg: lt_agg - oh_agg,
        full_coverage: lt >= params.miss_latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BodyInst;
    use preexec_isa::{Inst, Op, Reg};

    /// A dependent chain body of `n` instructions whose main-thread
    /// distances are `stride` apart.
    fn chain(n: usize, stride: f64) -> Body {
        let mut v = Vec::new();
        for i in 0..n {
            let inst = if i + 1 == n {
                Inst::load(Op::Ld, Reg::new(2), Reg::new(1), 0)
            } else {
                Inst::itype(Op::Addi, Reg::new(1), Reg::new(1), 8)
            };
            let deps = if i == 0 { vec![] } else { vec![i - 1] };
            v.push(BodyInst { inst, deps, mt_dist: i as f64 * stride });
        }
        Body::new(v)
    }

    fn params() -> SelectionParams {
        SelectionParams::working_example() // BW 4, IPC 1, Lcm 8
    }

    #[test]
    fn lt_capped_at_miss_latency() {
        let b = chain(4, 40.0); // enormous main-thread distances
        let a = aggregate_advantage(&params(), &b, &b, 10, 10);
        assert_eq!(a.lt, 8.0);
        assert!(a.full_coverage);
    }

    #[test]
    fn lt_never_negative() {
        // Main thread distances 0: the p-thread has no fetch advantage.
        let b = chain(3, 0.0);
        let a = aggregate_advantage(&params(), &b, &b, 10, 10);
        assert_eq!(a.lt, 0.0);
        assert!(a.adv_agg < 0.0); // pure overhead
        assert!(!a.full_coverage);
    }

    #[test]
    fn overhead_linear_in_size_and_launches() {
        let b3 = chain(3, 2.0);
        let b6 = chain(6, 2.0);
        let a3 = aggregate_advantage(&params(), &b3, &b3, 100, 0);
        let a6 = aggregate_advantage(&params(), &b6, &b6, 100, 0);
        assert!((a3.oh - 3.0 * 0.125).abs() < 1e-12);
        assert!((a6.oh_agg - 2.0 * a3.oh_agg).abs() < 1e-9);
        let a3_more = aggregate_advantage(&params(), &b3, &b3, 200, 0);
        assert!((a3_more.oh_agg - 2.0 * a3.oh_agg).abs() < 1e-9);
    }

    #[test]
    fn useless_pthreads_hurt_score_only_via_overhead() {
        let b = chain(4, 12.0);
        let tight = aggregate_advantage(&params(), &b, &b, 10, 10);
        let loose = aggregate_advantage(&params(), &b, &b, 100, 10);
        assert_eq!(tight.lt_agg, loose.lt_agg);
        assert!(loose.adv_agg < tight.adv_agg);
    }

    #[test]
    fn optimized_exec_body_lowers_overhead_and_height() {
        let main = chain(6, 12.0);
        let opt = chain(4, 12.0); // pretend folding shrank the body
        let a_unopt = aggregate_advantage(&params(), &main, &main, 50, 25);
        let a_opt = aggregate_advantage(&params(), &opt, &main, 50, 25);
        assert!(a_opt.oh < a_unopt.oh);
        assert!(a_opt.scdh_pt < a_unopt.scdh_pt);
        assert_eq!(a_opt.scdh_mt, a_unopt.scdh_mt);
        assert!(a_opt.adv_agg >= a_unopt.adv_agg);
    }

    #[test]
    fn lt_floored_to_whole_cycles() {
        // Construct a fractional SCDH difference and check flooring.
        let b = chain(2, 3.0); // mt dists 0,3 -> SC 0,1.5 with BW 2
        let a = aggregate_advantage(&params(), &b, &b, 1, 1);
        // pt: h = 1, then max(1,1)+1 = 2. mt: h0 = 1, h1 = max(1.5,1)+1 = 2.5.
        assert_eq!(a.scdh_pt, 2.0);
        assert_eq!(a.scdh_mt, 2.5);
        assert_eq!(a.lt, 0.0); // floor(0.5) = 0
    }
}
