//! Dependency-free deterministic intra-job parallelism.
//!
//! The framework's hot path fans out over three independent axes — one
//! slice tree per static problem load, one advantage calculation per
//! slice-tree node, one overlap fixed-point per tree — and every unit of
//! work is a pure function of its inputs. This module provides the one
//! primitive all three need: [`map`], an ordered parallel map over a
//! slice, built on [`std::thread::scope`] so it needs no external
//! dependencies and no long-lived pool.
//!
//! # Determinism contract
//!
//! The output of [`map`] is **byte-identical for every thread count**:
//!
//! - items are partitioned into fixed-size contiguous chunks whose
//!   boundaries depend only on the item count and the thread count of
//!   *this call* — never on timing;
//! - workers claim chunks dynamically (for load balance under skewed
//!   per-item cost) but each chunk's results are kept together and the
//!   final merge is ordered by chunk index, i.e. by input index;
//! - each item's result is computed by exactly one invocation of a pure
//!   `f`, so the floating-point operation sequence per item is the same
//!   as a serial loop's.
//!
//! Callers supply the remaining half of the contract: `f` must depend
//! only on its item (no shared mutable state), and any cross-item
//! reduction must happen serially over the ordered output.

use std::panic::resume_unwind;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// How many threads a parallelizable stage may use.
///
/// `Parallelism` is a plain knob, not a pool: each [`map`] call spawns
/// scoped threads and joins them before returning, so a stage holds its
/// threads only while it runs. This is what lets the batch service bound
/// *total* threads as `workers × job_threads` without coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// One thread: every stage runs exactly the historical serial code
    /// path (no scoped threads are spawned at all).
    pub fn serial() -> Parallelism {
        Parallelism { threads: 1 }
    }

    /// Up to `threads` threads; zero is clamped to one.
    pub fn new(threads: usize) -> Parallelism {
        Parallelism { threads: threads.max(1) }
    }

    /// One thread per available core.
    pub fn auto() -> Parallelism {
        Parallelism::new(
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        )
    }

    /// The configured thread count (≥ 1).
    pub fn threads(self) -> usize {
        self.threads
    }

    /// Whether this knob disables intra-stage threading.
    pub fn is_serial(self) -> bool {
        self.threads == 1
    }
}

impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::serial()
    }
}

/// Utilization accounting for one or more [`map_stats`] calls.
///
/// `busy_us` sums the wall-clock time every worker spent inside the
/// call; `wall_us` is the call's elapsed time. Their ratio estimates the
/// achieved speedup (≈ 1 when serial or when one item dominates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Elapsed wall-clock time of the mapped stage, in microseconds.
    pub wall_us: u64,
    /// Summed per-worker busy time, in microseconds.
    pub busy_us: u64,
    /// Threads actually used (after clamping to the item count).
    pub threads: usize,
    /// Items processed.
    pub items: usize,
}

impl ParStats {
    /// Achieved speedup estimate: busy time over wall time, 1.0 when no
    /// time was measured.
    pub fn speedup(&self) -> f64 {
        if self.wall_us == 0 {
            1.0
        } else {
            self.busy_us as f64 / self.wall_us as f64
        }
    }

    /// Accumulates another stage's counters (stages run back to back, so
    /// wall times add).
    pub fn absorb(&mut self, other: &ParStats) {
        self.wall_us += other.wall_us;
        self.busy_us += other.busy_us;
        self.threads = self.threads.max(other.threads);
        self.items += other.items;
    }
}

fn elapsed_us(t: Instant) -> u64 {
    t.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// Below this many items a parallel map runs inline on the caller's
/// thread even when more threads are configured: for small fan-outs the
/// spawn/join round-trip costs more than the work itself (measured as
/// sub-1.0 "speedups" on the pipeline bench's small select and
/// trace_slice stages). Results are unaffected — the inline path is the
/// same ordered per-item loop the chunked merge reproduces.
pub const SERIAL_FALLBACK_ITEMS: usize = 128;

/// Mirrors one call's counters into the global metrics registry
/// (`par.calls`, `par.items`, `par.busy_us`, `par.wall_us`). Write-only:
/// nothing here feeds back into the mapped computation, preserving the
/// determinism contract.
fn record_stats(stats: &ParStats) {
    let reg = preexec_obs::global();
    reg.counter("par.calls").inc();
    reg.counter("par.items").add(stats.items as u64);
    reg.counter("par.busy_us").add(stats.busy_us);
    reg.counter("par.wall_us").add(stats.wall_us);
}

/// Ordered parallel map: applies `f` to every item and returns the
/// results **in input order**, regardless of thread count (see the
/// module-level determinism contract).
pub fn map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_stats(par, items, f).0
}

/// [`map`] plus utilization counters for the call.
pub fn map_stats<T, R, F>(par: Parallelism, items: &[T], f: F) -> (Vec<R>, ParStats)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let started = Instant::now();
    let threads = par.threads().min(items.len()).max(1);
    if threads == 1 || items.len() < SERIAL_FALLBACK_ITEMS {
        if threads > 1 {
            // Parallelism was requested and declined: surface how often.
            preexec_obs::global().counter("par.serial_fallbacks").inc();
        }
        let out: Vec<R> = items.iter().map(&f).collect();
        let wall = elapsed_us(started);
        let stats = ParStats { wall_us: wall, busy_us: wall, threads: 1, items: items.len() };
        record_stats(&stats);
        return (out, stats);
    }

    // Fixed chunk geometry (4 chunks per thread bounds claim overhead
    // while leaving room to balance skewed items); chunk boundaries are
    // a pure function of (len, threads).
    let chunk_len = items.len().div_ceil(threads * 4).max(1);
    let num_chunks = items.len().div_ceil(chunk_len);
    let next_chunk = AtomicUsize::new(0);
    let busy_us = AtomicU64::new(0);
    let f = &f;

    let mut chunks: Vec<(usize, Vec<R>)> = Vec::with_capacity(num_chunks);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next_chunk = &next_chunk;
                let busy_us = &busy_us;
                s.spawn(move || {
                    let t0 = Instant::now();
                    let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                        if c >= num_chunks {
                            break;
                        }
                        let lo = c * chunk_len;
                        let hi = (lo + chunk_len).min(items.len());
                        local.push((c, items[lo..hi].iter().map(f).collect()));
                    }
                    busy_us.fetch_add(elapsed_us(t0), Ordering::Relaxed);
                    local
                })
            })
            .collect();
        for h in handles {
            // A panic in `f` propagates to the caller, like a serial loop.
            chunks.extend(h.join().unwrap_or_else(|e| resume_unwind(e)));
        }
    });

    // Ordered merge: chunk indices are unique, so this sort is total and
    // the concatenation reproduces input order exactly.
    chunks.sort_unstable_by_key(|&(c, _)| c);
    let out: Vec<R> = chunks.into_iter().flat_map(|(_, v)| v).collect();
    debug_assert_eq!(out.len(), items.len());
    let stats = ParStats {
        wall_us: elapsed_us(started),
        busy_us: busy_us.load(Ordering::Relaxed),
        threads,
        items: items.len(),
    };
    record_stats(&stats);
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_order_matches_input_for_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 8, 64, 1000] {
            let got = map(Parallelism::new(threads), &items, |x| x * x + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_item_inputs_work() {
        let none: Vec<u32> = Vec::new();
        assert!(map(Parallelism::new(8), &none, |x| *x).is_empty());
        assert_eq!(map(Parallelism::new(8), &[7], |x| x + 1), vec![8]);
    }

    #[test]
    fn float_results_are_bit_identical_across_thread_counts() {
        // The per-item operation sequence is fixed, so f64 outputs must
        // match bit for bit — the property selection relies on.
        let items: Vec<f64> = (0..100).map(|i| i as f64 * 0.37).collect();
        let f = |x: &f64| (x.sin() * 1e6 + x / 3.0).sqrt();
        let serial: Vec<u64> = map(Parallelism::serial(), &items, f)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        for threads in [2, 5, 16] {
            let par: Vec<u64> = map(Parallelism::new(threads), &items, f)
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn stats_account_for_the_work() {
        let items: Vec<u32> = (0..64).collect();
        let (out, stats) = map_stats(Parallelism::new(4), &items, |x| x + 1);
        assert_eq!(out.len(), 64);
        assert_eq!(stats.items, 64);
        assert!(stats.threads >= 1 && stats.threads <= 4);
        assert!(stats.speedup() > 0.0);
        let mut total = ParStats::default();
        total.absorb(&stats);
        total.absorb(&stats);
        assert_eq!(total.items, 128);
    }

    #[test]
    fn knob_clamps_and_reports() {
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert!(Parallelism::new(1).is_serial());
        assert!(!Parallelism::new(2).is_serial());
        assert_eq!(Parallelism::default(), Parallelism::serial());
        assert!(Parallelism::auto().threads() >= 1);
    }

    #[test]
    fn small_inputs_fall_back_to_inline_execution() {
        let fallbacks = preexec_obs::global().counter("par.serial_fallbacks");
        let before = fallbacks.get();
        let small: Vec<u32> = (0..SERIAL_FALLBACK_ITEMS as u32 - 1).collect();
        let expect: Vec<u32> = small.iter().map(|x| x * 3).collect();
        let (out, stats) = map_stats(Parallelism::new(8), &small, |x| x * 3);
        assert_eq!(out, expect, "inline path must match");
        assert_eq!(stats.threads, 1, "small input must not spawn threads");
        assert!(fallbacks.get() > before, "declined parallelism must be counted");
    }

    #[test]
    fn threshold_sized_inputs_still_parallelize() {
        let items: Vec<u32> = (0..SERIAL_FALLBACK_ITEMS as u32).collect();
        let (_, stats) = map_stats(Parallelism::new(4), &items, |x| x + 1);
        assert_eq!(stats.threads, 4);
    }

    #[test]
    fn serial_knob_does_not_count_as_fallback() {
        let fallbacks = preexec_obs::global().counter("par.serial_fallbacks");
        let before = fallbacks.get();
        let items: Vec<u32> = (0..8).collect();
        let _ = map_stats(Parallelism::serial(), &items, |x| x + 1);
        assert_eq!(fallbacks.get(), before, "serial was requested, not declined");
    }

    #[test]
    fn panics_propagate_like_a_serial_loop() {
        let items: Vec<u32> = (0..32).collect();
        let r = std::panic::catch_unwind(|| {
            map(Parallelism::new(4), &items, |x| {
                assert!(*x != 17, "boom");
                *x
            })
        });
        assert!(r.is_err());
    }
}
