//! P-thread bodies as small dataflow graphs.

use preexec_isa::Inst;

/// One instruction of a p-thread body, with its intra-body dataflow.
#[derive(Debug, Clone, PartialEq)]
pub struct BodyInst {
    /// The instruction.
    pub inst: Inst,
    /// Indices (within the body, always smaller than this instruction's
    /// own index) of the producers of this instruction's in-body source
    /// values. Sources without an entry are *live-ins*: seed values copied
    /// from the main thread at launch, available immediately.
    pub deps: Vec<usize>,
    /// The instruction's dynamic distance from the trigger in the **main
    /// thread** (`DIST_trig`), used for the main-thread SCDH. Distances
    /// are averages and therefore fractional.
    pub mt_dist: f64,
}

/// A p-thread body: instructions in execution order (trigger-adjacent
/// first, the targeted problem load last), each with producer links.
///
/// The body is what the SCDH model evaluates, what the optimizer rewrites,
/// and what (stripped to bare instructions) the timing simulator injects.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Body {
    insts: Vec<BodyInst>,
}

impl Body {
    /// Creates a body from instructions with dataflow.
    ///
    /// # Panics
    ///
    /// Panics if any dependence points forward (producers must precede
    /// consumers) or out of range.
    pub fn new(insts: Vec<BodyInst>) -> Body {
        for (i, bi) in insts.iter().enumerate() {
            for &d in &bi.deps {
                assert!(d < i, "body dep {d} of instruction {i} not strictly earlier");
            }
        }
        Body { insts }
    }

    /// Number of instructions (`SIZE_pt`).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instructions with their dataflow.
    pub fn insts(&self) -> &[BodyInst] {
        &self.insts
    }

    /// The bare instruction sequence (for injection/execution).
    pub fn to_insts(&self) -> Vec<Inst> {
        self.insts.iter().map(|b| b.inst).collect()
    }

    /// Index of the final (targeted load) instruction.
    ///
    /// # Panics
    ///
    /// Panics if the body is empty.
    pub fn root(&self) -> usize {
        assert!(!self.insts.is_empty(), "empty body has no root");
        self.insts.len() - 1
    }

    /// The indices of instructions that consume instruction `i`'s result.
    pub fn consumers(&self, i: usize) -> Vec<usize> {
        self.insts
            .iter()
            .enumerate()
            .filter(|(_, b)| b.deps.contains(&i))
            .map(|(j, _)| j)
            .collect()
    }

    /// Mutable access for the optimizer (crate-internal).
    pub(crate) fn insts_mut(&mut self) -> &mut Vec<BodyInst> {
        &mut self.insts
    }
}

impl FromIterator<BodyInst> for Body {
    fn from_iter<T: IntoIterator<Item = BodyInst>>(iter: T) -> Body {
        Body::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_isa::{Op, Reg};

    fn bi(inst: Inst, deps: Vec<usize>, mt_dist: f64) -> BodyInst {
        BodyInst { inst, deps, mt_dist }
    }

    fn chain() -> Body {
        // addi r1,r1,8 ; addi r1,r1,8 ; ld r2,0(r1)
        let a = Inst::itype(Op::Addi, Reg::new(1), Reg::new(1), 8);
        let l = Inst::load(Op::Ld, Reg::new(2), Reg::new(1), 0);
        Body::new(vec![bi(a, vec![], 0.0), bi(a, vec![0], 12.0), bi(l, vec![1], 24.0)])
    }

    #[test]
    fn construction_and_accessors() {
        let b = chain();
        assert_eq!(b.len(), 3);
        assert_eq!(b.root(), 2);
        assert_eq!(b.to_insts().len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn consumers() {
        let b = chain();
        assert_eq!(b.consumers(0), vec![1]);
        assert_eq!(b.consumers(1), vec![2]);
        assert!(b.consumers(2).is_empty());
    }

    #[test]
    #[should_panic(expected = "not strictly earlier")]
    fn forward_dep_rejected() {
        let a = Inst::itype(Op::Addi, Reg::new(1), Reg::new(1), 8);
        let _ = Body::new(vec![bi(a, vec![0], 0.0)]);
    }

    #[test]
    #[should_panic(expected = "empty body")]
    fn empty_root_panics() {
        let _ = Body::default().root();
    }
}
