//! Sequencing-constrained dataflow height (SCDH), the paper's execution
//! time estimator (§3.1).
//!
//! SCDH is standard dataflow height except that each instruction's input
//! height also includes a *sequencing constraint* `SC = DIST_trig / BW` —
//! the cycle at which the instruction can be fetched given the sequencing
//! bandwidth available to its thread. Live-in values (seeds) are available
//! at time 0, when the trigger launches both "threads" of the comparison.

use crate::Body;

/// Computes the SCDH of a body's final instruction (the targeted load)
/// under the sequencing-constraint function `sc`, which maps a body index
/// to the cycle at which that instruction is sequenced.
///
/// The recursion is the paper's: for instruction `i`,
/// `SCDH(i) = max(SC(i), max over producers j of SCDH(j)) + latency(i)`,
/// with absent producers (live-ins) contributing 0.
///
/// # Panics
///
/// Panics if the body is empty.
pub fn scdh(body: &Body, sc: impl Fn(usize) -> f64) -> f64 {
    assert!(!body.is_empty(), "SCDH of an empty body");
    let mut h = vec![0.0f64; body.len()];
    for (i, bi) in body.insts().iter().enumerate() {
        let dep_height = bi
            .deps
            .iter()
            .map(|&d| h[d])
            .fold(0.0f64, f64::max);
        h[i] = sc(i).max(dep_height) + bi.inst.op.scdh_latency() as f64;
    }
    h[body.root()]
}

/// SCDH of the body as executed by the **p-thread**: sequencing bandwidth
/// `BW_seq-pt = 1` ("p-threads are single computations that execute
/// serially"), so instruction `i` is sequenced at cycle `i`.
pub fn scdh_pthread(body: &Body) -> f64 {
    scdh(body, |i| i as f64)
}

/// SCDH of the same computation as executed by the **main thread**:
/// instruction `i` is sequenced at `DIST_trig(i) / BW_seq-mt`, using the
/// per-instruction main-thread trigger distances carried by the body.
pub fn scdh_main(body: &Body, bw_seq_mt: f64) -> f64 {
    assert!(bw_seq_mt > 0.0, "bw_seq_mt must be positive");
    scdh(body, |i| body.insts()[i].mt_dist / bw_seq_mt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BodyInst;
    use preexec_isa::{Inst, Op, Reg};

    fn alu_chain(n: usize, stride: f64) -> Body {
        // n dependent addi's ending in a load, each mt_dist = i*stride.
        let mut v = Vec::new();
        for i in 0..n {
            let inst = if i + 1 == n {
                Inst::load(Op::Ld, Reg::new(2), Reg::new(1), 0)
            } else {
                Inst::itype(Op::Addi, Reg::new(1), Reg::new(1), 8)
            };
            let deps = if i == 0 { vec![] } else { vec![i - 1] };
            v.push(BodyInst { inst, deps, mt_dist: i as f64 * stride });
        }
        Body::new(v)
    }

    #[test]
    fn serial_chain_height() {
        // Dependent chain of 4 unit-latency ops with SC(i)=i:
        // h = 1, 2, 3, 4.
        let b = alu_chain(4, 1.0);
        assert_eq!(scdh_pthread(&b), 4.0);
    }

    #[test]
    fn sequencing_constraint_dominates_sparse_code() {
        // Main-thread distances large: heights driven by SC, not dataflow.
        let b = alu_chain(4, 12.0); // dists 0,12,24,36
        let mt = scdh_main(&b, 2.0); // SC = 0,6,12,18 -> h = ..,19
        assert_eq!(mt, 19.0);
        assert!(mt > scdh_pthread(&b));
    }

    #[test]
    fn independent_ops_limited_by_sequencing_only() {
        // Two independent ops then a load depending on the second.
        let a = Inst::itype(Op::Addi, Reg::new(1), Reg::new(1), 8);
        let l = Inst::load(Op::Ld, Reg::new(2), Reg::new(1), 0);
        let b = Body::new(vec![
            BodyInst { inst: a, deps: vec![], mt_dist: 0.0 },
            BodyInst { inst: a, deps: vec![], mt_dist: 1.0 },
            BodyInst { inst: l, deps: vec![1], mt_dist: 2.0 },
        ]);
        // pt: h0=1, h1=max(1,0)+1=2, h2=max(2,2)+1=3
        assert_eq!(scdh_pthread(&b), 3.0);
    }

    #[test]
    fn live_ins_available_at_zero() {
        let l = Inst::load(Op::Ld, Reg::new(2), Reg::new(1), 0);
        let b = Body::new(vec![BodyInst { inst: l, deps: vec![], mt_dist: 5.0 }]);
        assert_eq!(scdh_pthread(&b), 1.0); // max(0, -) + 1
        assert_eq!(scdh_main(&b, 2.0), 3.5); // max(2.5, -) + 1
    }

    #[test]
    fn multiply_latency_counts() {
        let m = Inst::rtype(Op::Mul, Reg::new(1), Reg::new(1), Reg::new(1));
        let l = Inst::load(Op::Ld, Reg::new(2), Reg::new(1), 0);
        let b = Body::new(vec![
            BodyInst { inst: m, deps: vec![], mt_dist: 0.0 },
            BodyInst { inst: l, deps: vec![0], mt_dist: 1.0 },
        ]);
        assert_eq!(scdh_pthread(&b), 4.0); // 3 (mul) + 1 (load issue)
    }

    #[test]
    fn pthread_never_slower_than_serial_main_with_same_deps() {
        // With identical dep structure and mt distances >= positions,
        // the p-thread (BW 1, dense positions) is at least as fast.
        for n in 1..10 {
            let b = alu_chain(n, 3.0);
            assert!(scdh_pthread(&b) <= scdh_main(&b, 2.0) + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "empty body")]
    fn empty_body_panics() {
        let _ = scdh_pthread(&Body::default());
    }
}
