//! The p-thread selection framework — the primary contribution of
//! Roth & Sohi, *A Quantitative Framework for Automated Pre-Execution
//! Thread Selection* (2002).
//!
//! Given a [`preexec_slice::SliceForest`] (one slice tree per static
//! problem load, with `DC_trig` / `DC_pt-cm` / `DIST_pl` annotations) and a
//! handful of machine parameters, this crate:
//!
//! 1. enumerates every candidate static p-thread (every slice-tree node),
//! 2. scores each with **aggregate advantage**
//!    (`ADVagg = DC_pt-cm·LT − DC_trig·OH`, with latency tolerance derived
//!    from the **sequencing-constrained dataflow height** of the p-thread
//!    vs. the main thread and capped at the miss latency),
//! 3. solves each tree for the set of p-threads whose overlap-corrected
//!    advantages sum to a maximum (the paper's iterative procedure),
//! 4. optionally **optimizes** bodies (store–load pair elimination,
//!    constant folding, register-move elimination) and **merges**
//!    p-threads with matching dataflow prefixes, and
//! 5. emits the selected [`StaticPThread`]s along with the diagnostic
//!    predictions (launches, lengths, coverage, speedup) that §4.3 of the
//!    paper validates against simulation.
//!
//! # Example
//!
//! ```
//! use preexec_core::{select_pthreads, SelectionParams};
//! use preexec_func::{run_trace, TraceConfig};
//! use preexec_isa::assemble;
//! use preexec_slice::SliceForestBuilder;
//!
//! let p = assemble("stream", "
//!     li r1, 0x100000
//!     li r2, 0
//!     li r3, 4096
//! top:
//!     bge r2, r3, done
//!     ld  r4, 0(r1)
//!     addi r1, r1, 64
//!     addi r2, r2, 1
//!     j top
//! done:
//!     halt").unwrap();
//! let mut b = SliceForestBuilder::new(1024, 32);
//! run_trace(&p, &TraceConfig::default(), |d| b.observe(d));
//! let forest = b.finish();
//!
//! let params = SelectionParams { ipc: 2.0, ..SelectionParams::default() };
//! let selection = select_pthreads(&forest, &params);
//! assert!(!selection.pthreads.is_empty());
//! ```

pub mod advantage;
pub mod body;
pub mod candidate;
pub mod error;
pub mod merge;
pub mod optimize;
pub mod par;
pub mod params;
pub mod policy;
pub mod predict;
pub mod pthread;
pub mod scdh;
pub mod screen;
pub mod select;

pub use advantage::{aggregate_advantage, Advantage};
pub use body::{Body, BodyInst};
pub use candidate::candidate_body;
pub use error::{ParamsError, SelectError};
pub use merge::merge_pthreads;
pub use optimize::optimize_body;
pub use par::{ParStats, Parallelism};
pub use params::SelectionParams;
pub use policy::{
    overhead_weight, phase_ipc_estimate, phase_payoff, try_choose_policy, variant_params,
    PhasePolicyChoice, PhaseStats, PolicyVariant, POLICY_SPACE,
};
pub use predict::SelectionPrediction;
pub use pthread::StaticPThread;
pub use scdh::scdh;
pub use screen::{advantage_upper_bounds, screen_tree, ScreenStats};
pub use select::{
    select_pthreads, select_pthreads_par, select_pthreads_stats, solve_tree,
    try_select_pthreads_stats, validate_candidate_score, Selection,
};

#[cfg(test)]
mod worked_example;
