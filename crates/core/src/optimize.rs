//! P-thread optimization (§3.3): localized rewriting of a body into a
//! shorter, functionally equivalent sequence.
//!
//! "Since p-threads are control-less, traditional control-flow and
//! iterative data-flow analyses are replaced by a simple linear scan...
//! We have found that store-load pair elimination and constant folding
//! capture most p-thread optimization opportunities." Register-move
//! elimination is included as the paper's third (low-impact) pass.
//!
//! All rewrites preserve architectural register semantics — the optimized
//! body is executed verbatim by the timing simulator — so every rewrite
//! checks that no intervening instruction redefines a register it extends
//! the live range of.

use crate::{Body, BodyInst};
use preexec_isa::{Inst, Op, Reg};

/// Optimizes a p-thread body, returning the rewritten (never longer) body.
///
/// Applies constant folding (collapsing `addi`/`li` chains, including into
/// load/store offsets — the paper's Figure-2 example folds two
/// `addi r5, r5, #16` into one `addi r5, r5, #32`), store–load pair
/// elimination (a doubleword load fed by an in-body doubleword store to
/// the same address becomes a register move), register-move elimination,
/// and dead-code elimination, iterated to a fixed point.
///
/// The targeted load (the body's last instruction) is always preserved.
pub fn optimize_body(body: &Body) -> Body {
    let mut b = body.clone();
    if b.is_empty() {
        return b;
    }
    // Each pass performs at most one rewrite per call; iterate to fixpoint
    // with a generous safety bound (every rewrite strictly reduces either
    // instruction count or chain length, so this terminates well inside).
    for _ in 0..(4 * body.len() + 8) {
        let changed = fold_constants(&mut b)
            || eliminate_store_load(&mut b)
            || eliminate_moves(&mut b)
            || dce(&mut b);
        if !changed {
            break;
        }
    }
    b
}

/// The register an instruction defines (including writes to `r0`, which
/// still "define" for liveness purposes — they cannot, since `def()`
/// filters them; use the raw `rd`).
fn defines(inst: &Inst) -> Option<Reg> {
    inst.def()
}

/// Whether any instruction strictly between positions `from` and `to`
/// (exclusive on both ends) defines `reg`.
fn redefined_between(insts: &[BodyInst], reg: Reg, from: usize, to: usize) -> bool {
    insts[from + 1..to]
        .iter()
        .any(|bi| defines(&bi.inst) == Some(reg))
}

/// Whether any instruction before position `to` (exclusive) defines `reg`.
fn redefined_before(insts: &[BodyInst], reg: Reg, to: usize) -> bool {
    insts[..to].iter().any(|bi| defines(&bi.inst) == Some(reg))
}

/// Positions that consume position `j`'s result through a dep edge.
fn consumers(insts: &[BodyInst], j: usize) -> Vec<usize> {
    insts
        .iter()
        .enumerate()
        .filter(|(_, bi)| bi.deps.contains(&j))
        .map(|(i, _)| i)
        .collect()
}

/// One step of constant folding. Returns whether a rewrite happened.
fn fold_constants(body: &mut Body) -> bool {
    let root = body.root();
    let insts = body.insts_mut();
    for i in 0..insts.len() {
        let (op_i, rs1_i, rs2_i) = {
            let inst = &insts[i].inst;
            (inst.op, inst.rs1, inst.rs2)
        };
        // The consumer must address through rs1: addi chains, or the base
        // register of a load/store.
        let folds_rs1 = matches!(op_i, Op::Addi) || op_i.is_load() || op_i.is_store();
        if !folds_rs1 {
            continue;
        }
        let Some(base) = rs1_i else { continue };
        // Find the in-body producer of rs1.
        let Some(&j) = insts[i]
            .deps
            .iter()
            .find(|&&d| defines(&insts[d].inst) == Some(base))
        else {
            continue;
        };
        let op_j = insts[j].inst.op;
        if !matches!(op_j, Op::Addi | Op::Li) {
            continue;
        }
        // For stores, the producer must feed the base, not the value.
        if op_i.is_store() && rs2_i == Some(base) {
            continue;
        }
        // j's result must be consumed only by i (otherwise folding would
        // leave other consumers without their producer).
        if consumers(insts, j) != vec![i] || j == root {
            continue;
        }
        // After folding, i reads j's source at i's position: nothing may
        // redefine it in between.
        if op_j == Op::Addi {
            let src = insts[j].inst.rs1.expect("addi has rs1");
            if redefined_between(insts, src, j, i) {
                continue;
            }
            let add = insts[j].inst.imm;
            let j_deps = insts[j].deps.clone();
            let bi = &mut insts[i];
            bi.inst.rs1 = Some(src);
            bi.inst.imm = bi.inst.imm.wrapping_add(add);
            bi.deps.retain(|&d| d != j);
            bi.deps.extend(j_deps);
            bi.deps.sort_unstable();
            bi.deps.dedup();
        } else {
            // Li: the base becomes an absolute constant -> base r0.
            let add = insts[j].inst.imm;
            let bi = &mut insts[i];
            if bi.inst.op == Op::Addi {
                bi.inst = Inst::li(bi.inst.rd.expect("addi has rd"), add.wrapping_add(bi.inst.imm));
                bi.deps.retain(|&d| d != j);
            } else {
                bi.inst.rs1 = Some(Reg::ZERO);
                bi.inst.imm = bi.inst.imm.wrapping_add(add);
                bi.deps.retain(|&d| d != j);
            }
        }
        return true;
    }
    false
}

/// One step of store–load pair elimination. Returns whether a rewrite
/// happened.
///
/// Only doubleword pairs (`sd`/`ld`) are eliminated: narrower pairs would
/// require modeling sub-register extraction, which the ISA's `mov` cannot
/// express.
fn eliminate_store_load(body: &mut Body) -> bool {
    let root = body.root();
    let insts = body.insts_mut();
    for i in 0..insts.len() {
        if i == root || insts[i].inst.op != Op::Ld {
            continue;
        }
        // Find a store among i's deps (the slicer records the feeding
        // store as a dependence of in-body loads).
        let Some(&s) = insts[i]
            .deps
            .iter()
            .find(|&&d| insts[d].inst.op == Op::Sd)
        else {
            continue;
        };
        let (load_inst, store_inst) = (insts[i].inst, insts[s].inst);
        if load_inst.imm != store_inst.imm {
            continue;
        }
        let load_base = load_inst.rs1.expect("load has base");
        let store_base = store_inst.rs1.expect("store has base");
        // Same-address check, statically: identical base producer (or the
        // same never-redefined live-in base register) and identical offset.
        let load_base_dep = insts[i]
            .deps
            .iter()
            .copied()
            .find(|&d| defines(&insts[d].inst) == Some(load_base));
        let store_base_dep = insts[s]
            .deps
            .iter()
            .copied()
            .find(|&d| defines(&insts[d].inst) == Some(store_base));
        let same_base = match (load_base_dep, store_base_dep) {
            (Some(a), Some(b)) => a == b,
            (None, None) => {
                load_base == store_base && !redefined_before(insts, load_base, i)
            }
            _ => false,
        };
        if !same_base {
            continue;
        }
        // The stored value register must still hold its value at i.
        let value = store_inst.rs2.expect("store has value");
        let value_dep = insts[s]
            .deps
            .iter()
            .copied()
            .find(|&d| defines(&insts[d].inst) == Some(value));
        let value_ok = match value_dep {
            Some(v) => !redefined_between(insts, value, v, i),
            None => !redefined_before(insts, value, i),
        };
        if !value_ok {
            continue;
        }
        let rd = load_inst.rd.expect("load has rd");
        let bi = &mut insts[i];
        bi.inst = Inst::mov(rd, value);
        bi.deps = value_dep.into_iter().collect();
        return true;
    }
    false
}

/// One step of register-move elimination. Returns whether a rewrite
/// happened.
fn eliminate_moves(body: &mut Body) -> bool {
    let root = body.root();
    let insts = body.insts_mut();
    for m in 0..insts.len() {
        if m == root || insts[m].inst.op != Op::Mov {
            continue;
        }
        let src = insts[m].inst.rs1.expect("mov has rs");
        let dst = insts[m].inst.rd.expect("mov has rd");
        let src_dep = insts[m].deps.first().copied();
        let users = consumers(insts, m);
        if users.is_empty() {
            continue; // DCE will take it
        }
        // Every consumer must be rewritable: src must not be redefined
        // between the mov (or its producer) and the consumer.
        let all_ok = users.iter().all(|&c| !redefined_between(insts, src, m, c));
        if !all_ok || redefined_between_is_self(dst, src) {
            continue;
        }
        for &c in &users {
            let bi = &mut insts[c];
            if bi.inst.rs1 == Some(dst) {
                bi.inst.rs1 = Some(src);
            }
            if bi.inst.rs2 == Some(dst) {
                bi.inst.rs2 = Some(src);
            }
            bi.deps.retain(|&d| d != m);
            bi.deps.extend(src_dep);
            bi.deps.sort_unstable();
            bi.deps.dedup();
        }
        return true;
    }
    false
}

/// A `mov r, r` needs no liveness checks but is also not worth special
/// casing; this helper exists to keep `eliminate_moves` readable.
fn redefined_between_is_self(_dst: Reg, _src: Reg) -> bool {
    false
}

/// Dead-code elimination: drops instructions whose results the targeted
/// load does not transitively depend on. Returns whether anything was
/// removed.
fn dce(body: &mut Body) -> bool {
    let root = body.root();
    let insts = body.insts_mut();
    let mut live = vec![false; insts.len()];
    let mut work = vec![root];
    live[root] = true;
    while let Some(i) = work.pop() {
        for &d in &insts[i].deps {
            if !live[d] {
                live[d] = true;
                work.push(d);
            }
        }
    }
    if live.iter().all(|&l| l) {
        return false;
    }
    // Compact, remapping dep indices.
    let mut remap = vec![usize::MAX; insts.len()];
    let mut next = 0;
    for (i, &l) in live.iter().enumerate() {
        if l {
            remap[i] = next;
            next += 1;
        }
    }
    let old = std::mem::take(insts);
    for (i, mut bi) in old.into_iter().enumerate() {
        if live[i] {
            for d in &mut bi.deps {
                *d = remap[*d];
            }
            insts.push(bi);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(inst: Inst, deps: Vec<usize>) -> BodyInst {
        BodyInst { inst, deps, mt_dist: 0.0 }
    }

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    #[test]
    fn paper_example_addi_folding() {
        // addi r5,r5,16 ; addi r5,r5,16 ; lw-chain -> addi r5,r5,32.
        let b = Body::new(vec![
            bi(Inst::itype(Op::Addi, r(5), r(5), 16), vec![]),
            bi(Inst::itype(Op::Addi, r(5), r(5), 16), vec![0]),
            bi(Inst::load(Op::Lw, r(7), r(5), 4), vec![1]),
            bi(Inst::itype(Op::Sll, r(7), r(7), 2), vec![2]),
            bi(Inst::itype(Op::Addi, r(7), r(7), 4096), vec![3]),
            bi(Inst::load(Op::Lw, r(8), r(7), 0), vec![4]),
        ]);
        let o = optimize_body(&b);
        // The two addi r5 fold; addi r7,+4096 folds into the root's offset;
        // and (addi r5,+32) then folds into the lw r7 offset.
        let text: Vec<String> = o.to_insts().iter().map(|i| i.to_string()).collect();
        assert!(o.len() < b.len(), "{text:?}");
        assert!(
            text.iter().any(|t| t.contains("36(r5)")),
            "folded offset expected: {text:?}"
        );
        assert!(
            text.last().unwrap().contains("4096(r7)"),
            "root offset folding expected: {text:?}"
        );
    }

    #[test]
    fn folding_blocked_by_intervening_redefinition() {
        // addi r5,r1,16 ; (redefine r1, live) ; addi r6,r5,4: folding the
        // first addi into the second would read the *new* r1 — illegal.
        // The redefinition is kept live by feeding the address computation.
        let b = Body::new(vec![
            bi(Inst::itype(Op::Addi, r(5), r(1), 16), vec![]),
            bi(Inst::itype(Op::Addi, r(1), r(1), 1), vec![]),
            bi(Inst::itype(Op::Addi, r(6), r(5), 4), vec![0]),
            bi(Inst::rtype(Op::Add, r(8), r(6), r(1)), vec![1, 2]),
            bi(Inst::load(Op::Ld, r(7), r(8), 0), vec![3]),
        ]);
        let o = optimize_body(&b);
        let text: Vec<String> = o.to_insts().iter().map(|i| i.to_string()).collect();
        assert!(
            text.iter().any(|t| t.starts_with("addi r5, r1, 16")),
            "the r1-based addi must survive: {text:?}"
        );
        assert!(
            text.iter().any(|t| t.starts_with("addi r6, r5, 4")),
            "folding across the r1 redefinition must be blocked: {text:?}"
        );
    }

    #[test]
    fn folding_blocked_by_multiple_consumers() {
        // addi r5,r5,16 feeds two loads: cannot fold into either.
        let b = Body::new(vec![
            bi(Inst::itype(Op::Addi, r(5), r(5), 16), vec![]),
            bi(Inst::load(Op::Ld, r(6), r(5), 0), vec![0]),
            bi(Inst::rtype(Op::Add, r(7), r(6), r(5)), vec![0, 1]),
            bi(Inst::load(Op::Ld, r(8), r(7), 0), vec![2]),
        ]);
        let o = optimize_body(&b);
        assert_eq!(o.len(), 4);
    }

    #[test]
    fn li_fold_into_absolute_load() {
        let b = Body::new(vec![
            bi(Inst::li(r(1), 0x1000), vec![]),
            bi(Inst::load(Op::Ld, r(2), r(1), 8), vec![0]),
        ]);
        let o = optimize_body(&b);
        assert_eq!(o.len(), 1);
        assert_eq!(o.to_insts()[0].to_string(), "ld r2, 4104(r0)");
    }

    #[test]
    fn store_load_pair_eliminated() {
        // sd r2, 0(r1) ; ld r3, 0(r1) ; ld r4, 0(r3): the middle load
        // becomes mov r3, r2 and the store goes dead.
        let b = Body::new(vec![
            bi(Inst::li(r(2), 0x8000), vec![]),
            bi(Inst::store(Op::Sd, r(2), r(1), 0), vec![0]),
            bi(Inst::load(Op::Ld, r(3), r(1), 0), vec![1]),
            bi(Inst::load(Op::Ld, r(4), r(3), 0), vec![2]),
        ]);
        let o = optimize_body(&b);
        let text: Vec<String> = o.to_insts().iter().map(|i| i.to_string()).collect();
        assert!(!text.iter().any(|t| t.starts_with("sd")), "store dead: {text:?}");
        assert!(!text.iter().any(|t| t.starts_with("ld r3")), "load gone: {text:?}");
        // After mov-elimination + li folding the whole thing can collapse
        // to a single absolute load.
        assert_eq!(text.last().unwrap(), "ld r4, 32768(r0)");
    }

    #[test]
    fn store_load_different_offsets_kept() {
        let b = Body::new(vec![
            bi(Inst::store(Op::Sd, r(2), r(1), 0), vec![]),
            bi(Inst::load(Op::Ld, r(3), r(1), 8), vec![0]),
            bi(Inst::load(Op::Ld, r(4), r(3), 0), vec![1]),
        ]);
        let o = optimize_body(&b);
        assert!(o.to_insts().iter().any(|i| i.op == Op::Sd));
    }

    #[test]
    fn narrow_store_load_pairs_not_eliminated() {
        let b = Body::new(vec![
            bi(Inst::store(Op::Sw, r(2), r(1), 0), vec![]),
            bi(Inst::load(Op::Lw, r(3), r(1), 0), vec![0]),
            bi(Inst::load(Op::Ld, r(4), r(3), 0), vec![1]),
        ]);
        let o = optimize_body(&b);
        assert_eq!(o.len(), 3);
    }

    #[test]
    fn mov_elimination() {
        let b = Body::new(vec![
            bi(Inst::itype(Op::Addi, r(1), r(1), 8), vec![]),
            bi(Inst::mov(r(2), r(1)), vec![0]),
            bi(Inst::load(Op::Ld, r(3), r(2), 0), vec![1]),
        ]);
        let o = optimize_body(&b);
        let text: Vec<String> = o.to_insts().iter().map(|i| i.to_string()).collect();
        assert!(!text.iter().any(|t| t.starts_with("mov")), "{text:?}");
        // And then the addi folds into the load.
        assert_eq!(text.last().unwrap(), "ld r3, 8(r1)");
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn mov_blocked_by_source_redefinition() {
        // The addi is live (feeds the add), so it cannot be DCE'd away,
        // and it redefines the mov's source between mov and consumer.
        let b = Body::new(vec![
            bi(Inst::mov(r(2), r(1)), vec![]),
            bi(Inst::itype(Op::Addi, r(1), r(1), 1), vec![]),
            bi(Inst::rtype(Op::Add, r(5), r(2), r(1)), vec![0, 1]),
            bi(Inst::load(Op::Ld, r(3), r(5), 0), vec![2]),
        ]);
        let o = optimize_body(&b);
        assert!(o.to_insts().iter().any(|i| i.op == Op::Mov));
    }

    #[test]
    fn dce_removes_unreachable() {
        let b = Body::new(vec![
            bi(Inst::itype(Op::Addi, r(9), r(9), 1), vec![]), // dead
            bi(Inst::itype(Op::Addi, r(1), r(1), 8), vec![]),
            bi(Inst::load(Op::Ld, r(3), r(1), 0), vec![1]),
        ]);
        let o = optimize_body(&b);
        assert!(o.len() <= 2);
        assert!(o.to_insts().iter().all(|i| i.rd != Some(r(9))));
    }

    #[test]
    fn root_always_survives() {
        let b = Body::new(vec![bi(Inst::load(Op::Ld, r(3), r(1), 0), vec![])]);
        let o = optimize_body(&b);
        assert_eq!(o.len(), 1);
        assert!(o.to_insts()[0].op.is_load());
    }

    #[test]
    fn optimization_never_grows_body() {
        let b = Body::new(vec![
            bi(Inst::itype(Op::Addi, r(5), r(5), 16), vec![]),
            bi(Inst::itype(Op::Addi, r(5), r(5), 16), vec![0]),
            bi(Inst::itype(Op::Addi, r(5), r(5), 16), vec![1]),
            bi(Inst::load(Op::Ld, r(8), r(5), 0), vec![2]),
        ]);
        let o = optimize_body(&b);
        assert!(o.len() <= b.len());
        assert_eq!(o.len(), 1); // everything folds into the load offset
        assert_eq!(o.to_insts()[0].to_string(), "ld r8, 48(r5)");
    }

    #[test]
    fn empty_body_is_noop() {
        assert_eq!(optimize_body(&Body::default()).len(), 0);
    }
}
