//! Candidate construction: from a slice-tree node to a p-thread body.

use crate::{Body, BodyInst};
use preexec_slice::{NodeId, SliceTree};

/// Builds the body of the candidate static p-thread whose trigger is
/// `trigger` (a slice-tree node at depth ≥ 1).
///
/// The body consists of the instructions on the path *strictly between*
/// the trigger and the root, plus the root load itself, in execution order
/// (trigger-adjacent instruction first, problem load last) — the paper's
/// "walk from the node to the root". The trigger instruction itself is not
/// part of the body: it is executed by the main thread, and the p-thread's
/// live-ins are seeded from main-thread state when the trigger launches it
/// (working example, §3.1: the candidate triggered by `#04` has the
/// three-instruction body `#07 #08 #09`).
///
/// Dataflow: a producer deeper than the trigger is a live-in (dropped);
/// producers within the body become dependence edges. Main-thread trigger
/// distances come from the `DIST_pl` annotations
/// (`DIST_trig = DIST_pl(trigger) − DIST_pl(node)`), floored at the
/// physical minimum implied by the slice itself.
///
/// # Panics
///
/// Panics if `trigger` is the root (depth 0): the root is not a candidate.
pub fn candidate_body(tree: &SliceTree, trigger: NodeId) -> Body {
    let path = tree.path_from_root(trigger);
    let k = path.len() - 1; // trigger depth
    assert!(k >= 1, "the root node is not a p-thread candidate");
    let trigger_dist = tree.node(trigger).dist_pl();

    let mut insts = Vec::with_capacity(k);
    // Body position i corresponds to depth d = k-1-i.
    for i in 0..k {
        let d = k - 1 - i;
        let node = tree.node(path[d]);
        let deps: Vec<usize> = node
            .dep_depths
            .iter()
            .filter(|&&dd| (dd as usize) < k) // within body; deeper = live-in
            .map(|&dd| k - 1 - dd as usize)
            .filter(|&p| p < i) // guard against inconsistent annotations
            .collect();
        // Average distances can be slightly inconsistent across slices;
        // the main thread must sequence at least the k-d slice instructions
        // between the trigger and this node.
        let mt_dist = (trigger_dist - node.dist_pl()).max((k - d) as f64);
        insts.push(BodyInst { inst: node.inst, deps, mt_dist });
    }
    Body::new(insts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_isa::{Inst, Op, Pc, Reg};
    use preexec_slice::SliceEntry;

    /// Builds the single-path tree for the paper's left-hand slice:
    /// #09 <- #08 <- #07 <- #04 <- #11 <- #11 <- #11 with the paper's
    /// dynamic distances (iteration length 13 on the #04 path).
    fn paper_tree() -> SliceTree {
        let root = SliceEntry {
            pc: 9,
            inst: Inst::load(Op::Lw, Reg::new(8), Reg::new(7), 0),
            dist: 0,
            dep_positions: vec![1],
        };
        let mk = |pc: Pc, inst: Inst, dist: u64, deps: Vec<u32>| SliceEntry {
            pc,
            inst,
            dist,
            dep_positions: deps,
        };
        let slice = vec![
            root.clone(),
            mk(8, Inst::itype(Op::Addi, Reg::new(7), Reg::new(7), 4096), 1, vec![2]),
            mk(7, Inst::itype(Op::Sll, Reg::new(7), Reg::new(7), 2), 2, vec![3]),
            mk(4, Inst::load(Op::Lw, Reg::new(7), Reg::new(5), 4), 4, vec![4]),
            mk(11, Inst::itype(Op::Addi, Reg::new(5), Reg::new(5), 16), 11, vec![5]),
            mk(11, Inst::itype(Op::Addi, Reg::new(5), Reg::new(5), 16), 24, vec![6]),
            mk(11, Inst::itype(Op::Addi, Reg::new(5), Reg::new(5), 16), 37, vec![]),
        ];
        let mut t = SliceTree::new(9, root.inst);
        t.insert_slice(&slice);
        t
    }

    #[test]
    fn candidate_shapes_match_figure_2() {
        let t = paper_tree();
        // Node ids along the path: 0=#09, 1=#08, 2=#07, 3=#04, 4..6=#11.
        // Candidate 1 (trigger #08): body = [#09], size 1.
        let b1 = candidate_body(&t, 1);
        assert_eq!(b1.len(), 1);
        assert_eq!(b1.insts()[0].inst.op, Op::Lw);
        // Candidate 3 (trigger #04): body = [#07, #08, #09], size 3.
        let b3 = candidate_body(&t, 3);
        assert_eq!(b3.len(), 3);
        assert_eq!(b3.to_insts()[0].to_string(), "sll r7, r7, 2");
        assert_eq!(b3.to_insts()[2].to_string(), "lw r8, 0(r7)");
        // Candidate 5 (trigger second #11): body includes one #11 copy.
        let b5 = candidate_body(&t, 5);
        assert_eq!(b5.len(), 5);
        assert_eq!(b5.to_insts()[0].to_string(), "addi r5, r5, 16");
        assert_eq!(b5.to_insts()[1].to_string(), "lw r7, 4(r5)");
    }

    #[test]
    fn body_dataflow_is_a_chain_here() {
        let t = paper_tree();
        let b = candidate_body(&t, 4); // trigger first #11: [#04,#07,#08,#09]
        assert_eq!(b.len(), 4);
        for (i, bi) in b.insts().iter().enumerate() {
            if i == 0 {
                assert!(bi.deps.is_empty()); // #04 reads live-in r5
            } else {
                assert_eq!(bi.deps, vec![i - 1]);
            }
        }
    }

    #[test]
    fn main_thread_distances_subtract_dist_pl() {
        let t = paper_tree();
        let b = candidate_body(&t, 4); // trigger dist 11
        let dists: Vec<f64> = b.insts().iter().map(|bi| bi.mt_dist).collect();
        // #04 at 11-4=7, #07 at 9, #08 at 10, #09 at 11.
        assert_eq!(dists, vec![7.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn physical_floor_applies() {
        // Distances that would go negative are floored at slice spacing.
        let root = SliceEntry {
            pc: 1,
            inst: Inst::load(Op::Ld, Reg::new(2), Reg::new(1), 0),
            dist: 0,
            dep_positions: vec![1],
        };
        let near = SliceEntry {
            pc: 0,
            inst: Inst::itype(Op::Addi, Reg::new(1), Reg::new(1), 8),
            dist: 1,
            dep_positions: vec![],
        };
        let mut t = SliceTree::new(1, root.inst);
        t.insert_slice(&[root, near]);
        let b = candidate_body(&t, 1);
        assert!(b.insts()[0].mt_dist >= 1.0);
    }

    #[test]
    #[should_panic(expected = "not a p-thread candidate")]
    fn root_is_not_a_candidate() {
        let t = paper_tree();
        let _ = candidate_body(&t, 0);
    }
}
