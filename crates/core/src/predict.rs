//! Framework predictions — the "Predict" rows of the paper's Table 2.
//!
//! In performing its selections the framework implicitly predicts p-thread
//! behavior: how many p-threads launch, how long they are, how many misses
//! they cover (and fully cover), and what the performance impact will be.
//! §4.3 of the paper validates these against simulation; our experiment
//! harness does the same.

/// Aggregate predictions for a selected p-thread set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SelectionPrediction {
    /// Number of static p-threads selected.
    pub num_static: usize,
    /// Predicted dynamic p-thread launches (Σ `DC_trig`).
    pub launches: u64,
    /// Predicted average dynamic p-thread length (launch-weighted).
    pub avg_pthread_len: f64,
    /// Predicted L2 misses covered (union over selected p-threads).
    pub misses_covered: u64,
    /// Predicted L2 misses fully covered (latency fully hidden).
    pub misses_fully_covered: u64,
    /// Total aggregate latency tolerance, after overlap reductions.
    pub lt_agg: f64,
    /// Total aggregate overhead.
    pub oh_agg: f64,
    /// Net aggregate advantage (`lt_agg − oh_agg`): predicted cycles saved
    /// over the sample.
    pub adv_agg: f64,
    /// The sequencing width the selection assumed — an upper bound on any
    /// predicted IPC (the machine cannot retire faster than it fetches).
    pub bw_seq: f64,
}

impl SelectionPrediction {
    /// Predicted speedup over the unassisted run of a sample with
    /// `sample_insts` instructions at `ipc`: saved cycles translate one
    /// for one into execution time (the paper's acknowledged serialization
    /// assumption — the main source of its speedup over-prediction).
    pub fn predicted_speedup(&self, sample_insts: u64, ipc: f64) -> f64 {
        let base_cycles = sample_insts as f64 / ipc;
        if base_cycles <= 0.0 {
            return 1.0;
        }
        // The assisted machine cannot retire faster than it sequences:
        // bound the predicted time by the width-limited minimum.
        let floor = if self.bw_seq > 0.0 {
            sample_insts as f64 / self.bw_seq
        } else {
            base_cycles * 0.05
        };
        let new_cycles = (base_cycles - self.adv_agg).max(floor);
        base_cycles / new_cycles
    }

    /// Predicted IPC with p-threads running.
    pub fn predicted_ipc(&self, sample_insts: u64, ipc: f64) -> f64 {
        ipc * self.predicted_speedup(sample_insts, ipc)
    }

    /// Predicted IPC of an overhead-only run (p-threads steal bandwidth
    /// but prefetch nothing), for the Table-2 overhead validation.
    pub fn predicted_overhead_ipc(&self, sample_insts: u64, ipc: f64) -> f64 {
        let base_cycles = sample_insts as f64 / ipc;
        sample_insts as f64 / (base_cycles + self.oh_agg)
    }

    /// Predicted IPC of a latency-tolerance-only run (p-threads cost no
    /// bandwidth), for the Table-2 latency-tolerance validation.
    pub fn predicted_lt_ipc(&self, sample_insts: u64, ipc: f64) -> f64 {
        let base_cycles = sample_insts as f64 / ipc;
        let floor = if self.bw_seq > 0.0 {
            sample_insts as f64 / self.bw_seq
        } else {
            base_cycles * 0.05
        };
        let new_cycles = (base_cycles - self.lt_agg).max(floor);
        sample_insts as f64 / new_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SelectionPrediction {
        SelectionPrediction {
            num_static: 2,
            launches: 200,
            avg_pthread_len: 5.0,
            misses_covered: 40,
            misses_fully_covered: 30,
            lt_agg: 300.0,
            oh_agg: 100.0,
            adv_agg: 200.0,
            bw_seq: 8.0,
        }
    }

    #[test]
    fn speedup_translates_saved_cycles() {
        let p = sample();
        // 1000 insts at IPC 1 -> 1000 cycles; saving 200 -> 1.25x.
        assert!((p.predicted_speedup(1000, 1.0) - 1.25).abs() < 1e-12);
        assert!((p.predicted_ipc(1000, 1.0) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn overhead_only_slows_down() {
        let p = sample();
        let ipc = p.predicted_overhead_ipc(1000, 1.0);
        assert!(ipc < 1.0);
        assert!((ipc - 1000.0 / 1100.0).abs() < 1e-12);
    }

    #[test]
    fn lt_only_exceeds_combined() {
        let p = sample();
        assert!(p.predicted_lt_ipc(1000, 1.0) > p.predicted_ipc(1000, 1.0));
    }

    #[test]
    fn speedup_clamped_at_sequencing_width() {
        let p = SelectionPrediction { adv_agg: 10_000.0, ..sample() };
        let s = p.predicted_speedup(1000, 1.0);
        // At IPC 1 on an 8-wide machine, no more than 8x is predictable.
        assert!((s - 8.0).abs() < 1e-9);
        assert!(p.predicted_ipc(1000, 1.0) <= 8.0 + 1e-9);
    }

    #[test]
    fn empty_prediction_is_neutral() {
        let p = SelectionPrediction::default();
        assert_eq!(p.predicted_speedup(1000, 2.0), 1.0);
    }
}
