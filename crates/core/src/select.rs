//! P-thread selection: per-slice (§3.1) and whole-tree with overlap
//! correction (§3.2), plus the forest-level driver.

use crate::advantage::aggregate_advantage;
use crate::error::SelectError;
use crate::par::{self, ParStats, Parallelism};
use crate::screen::{self, ScreenStats};
use crate::{
    candidate_body, merge_pthreads, optimize_body, Advantage, Body, SelectionParams,
    SelectionPrediction, StaticPThread,
};
use preexec_isa::Pc;
use preexec_slice::{NodeId, SliceError, SliceForest, SliceTree};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A scored candidate: its advantage calculation and the body the p-thread
/// will execute (optimized if optimization is enabled).
#[derive(Debug, Clone)]
pub struct ScoredCandidate {
    /// The advantage calculation (before any overlap reduction).
    pub advantage: Advantage,
    /// The executable body.
    pub exec_body: Body,
}

/// The result of selection over a whole slice forest.
#[derive(Debug, Clone)]
pub struct Selection {
    /// The selected (and possibly merged) static p-threads.
    pub pthreads: Vec<StaticPThread>,
    /// The framework's diagnostic predictions for this set.
    pub prediction: SelectionPrediction,
}

/// Scores the candidate p-thread triggered at `node`, or returns `None`
/// when the candidate is illegal (too long after optimization) or scores
/// zero/negative structurally (empty body).
fn score_node(
    tree: &SliceTree,
    node: NodeId,
    dc_trig: u64,
    params: &SelectionParams,
) -> Option<ScoredCandidate> {
    let main_body = candidate_body(tree, node);
    if main_body.is_empty() {
        return None;
    }
    let exec_body = if params.optimize {
        optimize_body(&main_body)
    } else {
        main_body.clone()
    };
    if exec_body.is_empty() || exec_body.len() > params.max_pthread_len {
        return None;
    }
    let advantage = aggregate_advantage(
        params,
        &exec_body,
        &main_body,
        dc_trig,
        tree.node(node).dc_ptcm,
    );
    Some(ScoredCandidate { advantage, exec_body })
}

/// Rejects a candidate whose aggregate advantage evaluated to NaN or ±∞:
/// a non-finite score fed into the net-advantage folds and the
/// `(adv_agg, node id)` tie-break would silently poison the ordering, so
/// the driver refuses it up front with a typed error naming the trigger.
///
/// # Errors
///
/// [`SliceError::NonFiniteScore`] when `adv_agg` is not finite.
pub fn validate_candidate_score(
    sc: &ScoredCandidate,
    pc: Pc,
    node: NodeId,
) -> Result<(), SliceError> {
    if sc.advantage.adv_agg.is_finite() {
        Ok(())
    } else {
        Err(SliceError::NonFiniteScore { pc, node })
    }
}

/// Scores every candidate node of `tree` into a dense table indexed by
/// [`NodeId`] (`table[0]`, the root, is always `None` — the root is the
/// problem load itself, not a trigger).
///
/// Every non-root node lies on some root-to-leaf path, so the fixed point
/// in [`solve_tree_scored`] consults every entry; precomputing the whole
/// table does the same work as on-demand memoization and is what lets
/// scoring fan out in parallel (see [`select_pthreads_par`]).
pub fn score_tree_nodes(
    tree: &SliceTree,
    dc_trig_of: &dyn Fn(Pc) -> u64,
    params: &SelectionParams,
) -> Vec<Option<ScoredCandidate>> {
    let mut table: Vec<Option<ScoredCandidate>> = vec![None; tree.len()];
    for (node, slot) in table.iter_mut().enumerate().skip(1) {
        *slot = score_node(tree, node, dc_trig_of(tree.node(node).pc), params);
    }
    table
}

/// [`score_tree_nodes`] behind the static screen: candidates whose
/// advantage upper bound cannot beat the null candidate (or that are
/// statically illegal) are pruned without ever building a body or
/// running SCDH; only survivors get the exact score. The table is
/// interchangeable with the unscreened one for selection — pruned slots
/// hold `None`, and a `None` (or `ADV_agg ≤ 0`) candidate is never
/// selected (see [`crate::screen`] and DESIGN.md §16).
pub fn score_tree_nodes_screened(
    tree: &SliceTree,
    dc_trig_of: &dyn Fn(Pc) -> u64,
    params: &SelectionParams,
) -> (Vec<Option<ScoredCandidate>>, ScreenStats) {
    let (keep, stats) = screen::screen_tree(tree, dc_trig_of, params);
    let mut table: Vec<Option<ScoredCandidate>> = vec![None; tree.len()];
    for (node, slot) in table.iter_mut().enumerate().skip(1) {
        if keep[node] {
            *slot = score_node(tree, node, dc_trig_of(tree.node(node).pc), params);
        }
    }
    (table, stats)
}

/// Solves one slice tree: selects the set of p-threads whose
/// overlap-corrected aggregate advantages sum to a maximum, using the
/// paper's iterative procedure — select the best candidate per leaf
/// independently, reduce the advantage of any selected p-thread that is an
/// ancestor of another selected p-thread (the double-tolerated latency,
/// `DC_pt-cm(child) · LT(parent)`), and reselect until stable.
///
/// Returns `(node, scored, net_advantage)` triples.
pub fn solve_tree(
    tree: &SliceTree,
    dc_trig_of: &dyn Fn(Pc) -> u64,
    params: &SelectionParams,
) -> Vec<(NodeId, ScoredCandidate, f64)> {
    solve_tree_scored(tree, &score_tree_nodes(tree, dc_trig_of, params))
}

/// The overlap-correction fixed point of [`solve_tree`], reading candidate
/// scores from a precomputed table (as built by [`score_tree_nodes`]).
///
/// Winner picking is deterministic by construction: every comparison
/// orders candidates by `(net advantage, node id)`, so equal-advantage
/// ties always go to the larger node id. Node ids strictly increase with
/// depth along any root-to-leaf path (children are created after their
/// parents), so on a path this is exactly the "deeper candidate wins"
/// rule — but stated as a total order that no iteration schedule or
/// thread count can perturb.
pub fn solve_tree_scored(
    tree: &SliceTree,
    scores: &[Option<ScoredCandidate>],
) -> Vec<(NodeId, ScoredCandidate, f64)> {
    let leaves = tree.leaves();
    let mut reductions: HashMap<NodeId, f64> = HashMap::new();
    let mut selected: BTreeSet<NodeId> = BTreeSet::new();

    for _round in 0..32 {
        let mut next: BTreeSet<NodeId> = BTreeSet::new();
        for &leaf in &leaves {
            let path = tree.path_from_root(leaf);
            let mut best: Option<(NodeId, f64)> = None;
            for &node in path.iter().skip(1) {
                if let Some(sc) = scores.get(node).and_then(Option::as_ref) {
                    let net = sc.advantage.adv_agg - reductions.get(&node).copied().unwrap_or(0.0);
                    // Ties go to the deeper candidate — the larger node id
                    // (see the doc comment): with optimization, unrolled
                    // bodies often fold to the same size and both saturate
                    // LT at L_cm, and the deeper trigger buys lookahead
                    // slack at no modeled cost (cf. the paper's observation
                    // that over-specifying latency compensates for
                    // unmodeled bus contention). `total_cmp` keeps the
                    // order total even if a caller-supplied score table
                    // smuggles in a NaN: a poisoned comparison can then
                    // never un-pick an already-chosen winner.
                    if net > 0.0
                        && best.is_none_or(|(bn, b)| {
                            net.total_cmp(&b).then_with(|| node.cmp(&bn)).is_ge()
                        })
                    {
                        best = Some((node, net));
                    }
                }
            }
            if let Some((node, _)) = best {
                next.insert(node);
            }
        }
        // Recompute reductions for the new set: each selected node with a
        // selected proper ancestor double-tolerates its misses at the
        // ancestor's (lower) per-miss latency tolerance. Using the closest
        // selected ancestor chains the corrections up the tree.
        let mut new_reductions: HashMap<NodeId, f64> = HashMap::new();
        for &c in &next {
            if let Some(p) = closest_selected_ancestor(tree, c, &next) {
                if let Some(psc) = scores.get(p).and_then(Option::as_ref) {
                    *new_reductions.entry(p).or_insert(0.0) +=
                        tree.node(c).dc_ptcm as f64 * psc.advantage.lt;
                }
            }
        }
        let stable = next == selected && !reductions_differ(&reductions, &new_reductions);
        selected = next;
        reductions = new_reductions;
        if stable {
            break;
        }
    }

    selected
        .into_iter()
        .filter_map(|node| {
            let sc = scores.get(node).and_then(Option::as_ref)?.clone();
            let net = sc.advantage.adv_agg - reductions.get(&node).copied().unwrap_or(0.0);
            if net > 0.0 {
                Some((node, sc, net))
            } else {
                None
            }
        })
        .collect()
}

fn closest_selected_ancestor(
    tree: &SliceTree,
    node: NodeId,
    selected: &BTreeSet<NodeId>,
) -> Option<NodeId> {
    let mut cur = tree.node(node).parent;
    while let Some(p) = cur {
        if selected.contains(&p) {
            return Some(p);
        }
        cur = tree.node(p).parent;
    }
    None
}

fn reductions_differ(a: &HashMap<NodeId, f64>, b: &HashMap<NodeId, f64>) -> bool {
    if a.len() != b.len() {
        return true;
    }
    a.iter()
        .any(|(k, v)| b.get(k).is_none_or(|w| (v - w).abs() > 1e-9))
}

/// Runs selection over every slice tree in the forest and returns the
/// selected p-threads with the framework's aggregate predictions.
///
/// Per the paper (§3.2), the program-level problem is divided into one
/// sub-problem per static problem load (trees never overlap by
/// construction); each tree is solved with [`solve_tree`]; and if
/// merging is enabled, selected p-threads sharing a trigger are merged.
///
/// # Panics
///
/// Panics if `params` fail validation (see
/// [`SelectionParams::validate`]).
pub fn select_pthreads(forest: &SliceForest, params: &SelectionParams) -> Selection {
    select_pthreads_par(forest, params, Parallelism::serial())
}

/// [`select_pthreads`] with intra-call parallelism: candidate scoring fans
/// out over every `(tree, node)` pair and the overlap fixed points fan out
/// over trees, then the forest-level accumulation runs serially in tree
/// (problem-load PC) order.
///
/// The result is **byte-identical** to [`select_pthreads`] for every
/// thread count: scoring each candidate is a pure function of its node,
/// the per-tree fixed point consumes an identical score table, and the
/// cross-tree floating-point accumulation never changes order (see
/// [`crate::par`] for the chunking/merge contract and
/// [`solve_tree_scored`] for the `(adv_agg, node id)` tie-break).
///
/// # Panics
///
/// Panics if `params` fail validation.
pub fn select_pthreads_par(
    forest: &SliceForest,
    params: &SelectionParams,
    par: Parallelism,
) -> Selection {
    select_pthreads_stats(forest, params, par).0
}

/// [`select_pthreads_par`] plus utilization counters for the two parallel
/// stages (scoring + per-tree solving), for the service's speedup gauges.
///
/// Scoring runs behind the static screen (see [`crate::screen`]); use
/// [`try_select_pthreads_stats`] to disable screening or to handle
/// faults as typed errors.
///
/// # Panics
///
/// Panics if `params` fail validation or a candidate scores non-finite.
pub fn select_pthreads_stats(
    forest: &SliceForest,
    params: &SelectionParams,
    par: Parallelism,
) -> (Selection, ParStats) {
    match try_select_pthreads_stats(forest, params, par, true) {
        Ok((selection, pstats, _)) => (selection, pstats),
        Err(e) => panic!("{e}"),
    }
}

/// The fallible, fully-knobbed selection driver: everything
/// [`select_pthreads_stats`] does, with screening switchable and faults
/// surfaced as typed errors instead of panics.
///
/// With `screening` on (the production default), a cheap per-tree pass
/// bounds every candidate's `ADV_agg` from block-level aggregates and
/// only survivors reach the exact ADVagg/SCDH scorer; the returned
/// [`ScreenStats`] counts both buckets, and the selection is
/// **byte-identical** to the unscreened run at any thread count — the
/// exactness contract of DESIGN.md §16, pinned by the screening property
/// tests. With `screening` off the stats are zero.
///
/// # Errors
///
/// [`SelectError::Params`] if `params` fail validation;
/// [`SelectError::Score`] (wrapping
/// [`SliceError::NonFiniteScore`]) if a surviving candidate's aggregate
/// advantage evaluates to NaN or ±∞ — degenerate slice statistics that
/// would otherwise silently poison the selection ordering.
pub fn try_select_pthreads_stats(
    forest: &SliceForest,
    params: &SelectionParams,
    par: Parallelism,
    screening: bool,
) -> Result<(Selection, ParStats, ScreenStats), SelectError> {
    params.try_validate()?;
    let obs = preexec_obs::global();
    let trees: Vec<(Pc, &SliceTree)> = forest.trees().collect();

    // Stage 0 — static screening (optional): one O(tree) fold per tree
    // bounds every candidate from block-level aggregates; the keep-mask
    // thins the exact-scoring fan-out below without changing its output.
    let mut screen_stats = ScreenStats::default();
    let mut pstats = ParStats::default();
    let keep: Option<Vec<Vec<bool>>> = if screening {
        let tree_indices: Vec<usize> = (0..trees.len()).collect();
        let screen_span = obs.span("stage.screen");
        let (masks, screen_par) = par::map_stats(par, &tree_indices, |&ti| {
            screen::screen_tree(trees[ti].1, &|pc| forest.dc_trig(pc), params)
        });
        screen_span.finish();
        pstats.absorb(&screen_par);
        let mut keep = Vec::with_capacity(masks.len());
        for (mask, stats) in masks {
            screen_stats.absorb(&stats);
            keep.push(mask);
        }
        obs.counter("screen.pruned").add(screen_stats.pruned);
        obs.counter("screen.survivors").add(screen_stats.survivors);
        Some(keep)
    } else {
        None
    };

    // Stage 1 — exactly score the surviving candidates. The fan-out is
    // flat over (tree, node) pairs rather than over trees so one huge
    // tree cannot serialize the stage. `select.candidates` counts every
    // enumerated candidate whether or not the screen admitted it.
    let total_candidates: u64 = trees.iter().map(|(_, tree)| tree.len() as u64 - 1).sum();
    obs.counter("select.candidates").add(total_candidates);
    let score_items: Vec<(usize, NodeId)> = trees
        .iter()
        .enumerate()
        .flat_map(|(ti, (_, tree))| (1..tree.len()).map(move |node| (ti, node)))
        .filter(|&(ti, node)| keep.as_ref().is_none_or(|k| k[ti][node]))
        .collect();
    let score_span = obs.span("stage.score");
    let (flat_scores, score_par) = par::map_stats(par, &score_items, |&(ti, node)| {
        let (_, tree) = trees[ti];
        score_node(tree, node, forest.dc_trig(tree.node(node).pc), params)
    });
    score_span.finish();
    pstats.absorb(&score_par);
    for (&(ti, node), sc) in score_items.iter().zip(&flat_scores) {
        if let Some(sc) = sc {
            validate_candidate_score(sc, trees[ti].1.node(node).pc, node)?;
        }
    }
    let mut scores: Vec<Vec<Option<ScoredCandidate>>> =
        trees.iter().map(|(_, tree)| vec![None; tree.len()]).collect();
    for ((ti, node), sc) in score_items.into_iter().zip(flat_scores) {
        scores[ti][node] = sc;
    }

    // Stage 2 — per-tree overlap fixed points (independent sub-problems
    // per the paper's §3.2 decomposition).
    let tree_indices: Vec<usize> = (0..trees.len()).collect();
    let solve_span = obs.span("stage.solve");
    let (all_picks, solve_stats) = par::map_stats(par, &tree_indices, |&ti| {
        solve_tree_scored(trees[ti].1, &scores[ti])
    });
    solve_span.finish();
    pstats.absorb(&solve_stats);

    // Stage 3 — serial fold in tree order: the floating-point
    // accumulation sequence is fixed, so aggregates match the serial
    // driver bit for bit.
    let mut pthreads: Vec<StaticPThread> = Vec::new();
    let mut misses_covered: u64 = 0;
    let mut misses_fully_covered: u64 = 0;
    let mut lt_agg = 0.0;
    let mut oh_agg = 0.0;
    let mut adv_agg = 0.0;

    for ((target_pc, tree), picks) in trees.into_iter().zip(all_picks) {
        let selected: BTreeSet<NodeId> = picks.iter().map(|(n, _, _)| *n).collect();
        let full: BTreeMap<NodeId, bool> = picks
            .iter()
            .map(|(n, sc, _)| (*n, sc.advantage.full_coverage))
            .collect();
        for (node, sc, net) in picks {
            let n = tree.node(node);
            // Coverage union: count a node's misses unless a selected
            // ancestor already counts them.
            let has_sel_anc = closest_selected_ancestor(tree, node, &selected).is_some();
            if !has_sel_anc {
                misses_covered += n.dc_ptcm;
            }
            if sc.advantage.full_coverage {
                // Count fully covered misses not already fully covered by
                // a selected full-coverage ancestor.
                let anc_full = {
                    let mut cur = tree.node(node).parent;
                    let mut found = false;
                    while let Some(p) = cur {
                        if selected.contains(&p) && full.get(&p).copied().unwrap_or(false) {
                            found = true;
                            break;
                        }
                        cur = tree.node(p).parent;
                    }
                    found
                };
                if !anc_full {
                    misses_fully_covered += n.dc_ptcm;
                }
            }
            lt_agg += sc.advantage.lt_agg - (sc.advantage.adv_agg - net);
            oh_agg += sc.advantage.oh_agg;
            adv_agg += net;
            pthreads.push(StaticPThread {
                trigger: n.pc,
                targets: vec![target_pc],
                body: sc.exec_body.to_insts(),
                dc_trig: forest.dc_trig(n.pc),
                dc_ptcm: n.dc_ptcm,
                advantage: Advantage { adv_agg: net, ..sc.advantage },
            });
        }
    }

    if params.merge {
        let merge_span = obs.span("stage.merge");
        let before_oh: f64 = pthreads.iter().map(|p| p.advantage.oh_agg).sum();
        pthreads = merge_pthreads(pthreads, params);
        let after_oh: f64 = pthreads.iter().map(|p| p.advantage.oh_agg).sum();
        adv_agg += before_oh - after_oh;
        oh_agg = after_oh;
        merge_span.finish();
    }
    obs.counter("select.pthreads").add(pthreads.len() as u64);

    let launches: u64 = pthreads.iter().map(|p| p.dc_trig).sum();
    let weighted_len: f64 = pthreads
        .iter()
        .map(|p| p.dc_trig as f64 * p.size() as f64)
        .sum();
    let prediction = SelectionPrediction {
        num_static: pthreads.len(),
        launches,
        avg_pthread_len: if launches == 0 { 0.0 } else { weighted_len / launches as f64 },
        misses_covered,
        misses_fully_covered,
        lt_agg,
        oh_agg,
        adv_agg,
        bw_seq: params.bw_seq,
    };
    Ok((Selection { pthreads, prediction }, pstats, screen_stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_func::{run_trace, TraceConfig};
    use preexec_isa::assemble;
    use preexec_slice::SliceForestBuilder;

    fn forest_for(src: &str) -> SliceForest {
        let p = assemble("t", src).unwrap();
        let mut b = SliceForestBuilder::new(1024, 32);
        run_trace(&p, &TraceConfig::default(), |d| b.observe(d));
        b.finish()
    }

    /// A streaming loop: every iteration's load misses (64 B stride).
    const STREAM: &str = "
        li r1, 0x100000
        li r2, 0
        li r3, 4096
    top:
        bge r2, r3, done
        ld  r4, 0(r1)
        addi r1, r1, 64
        addi r2, r2, 1
        j top
    done:
        halt";

    #[test]
    fn selects_induction_unrolled_pthread_for_stream() {
        let forest = forest_for(STREAM);
        let params = SelectionParams {
            ipc: 2.0,
            miss_latency: 70.0,
            optimize: false,
            merge: false,
            ..SelectionParams::default()
        };
        let sel = select_pthreads(&forest, &params);
        assert!(!sel.pthreads.is_empty());
        // The dominant p-thread (covering the steady-state misses) is
        // triggered by the induction addi (pc 5) and unrolls it.
        let p = sel
            .pthreads
            .iter()
            .max_by_key(|p| p.dc_ptcm)
            .expect("nonempty");
        assert_eq!(p.trigger, 5);
        assert!(p.body.iter().filter(|i| i.op == preexec_isa::Op::Addi).count() >= 2);
        assert!(p.body.last().unwrap().op.is_load());
        assert!(sel.prediction.misses_covered > 0);
        assert!(sel.prediction.adv_agg > 0.0);
    }

    #[test]
    fn optimization_shortens_selected_bodies() {
        let forest = forest_for(STREAM);
        let base = SelectionParams {
            ipc: 2.0,
            merge: false,
            optimize: false,
            ..SelectionParams::default()
        };
        let opt = SelectionParams { optimize: true, ..base };
        let s0 = select_pthreads(&forest, &base);
        let s1 = select_pthreads(&forest, &opt);
        let len0 = s0.prediction.avg_pthread_len;
        let len1 = s1.prediction.avg_pthread_len;
        assert!(
            len1 < len0,
            "optimized bodies should be shorter: {len1} vs {len0}"
        );
        // Same or better predicted advantage.
        assert!(s1.prediction.adv_agg >= s0.prediction.adv_agg - 1e-6);
    }

    #[test]
    fn tight_length_constraint_reduces_coverage() {
        let forest = forest_for(STREAM);
        let loose = SelectionParams { ipc: 2.0, optimize: false, merge: false, ..SelectionParams::default() };
        let tight = SelectionParams { max_pthread_len: 2, ..loose };
        let sl = select_pthreads(&forest, &loose);
        let st = select_pthreads(&forest, &tight);
        // Short p-threads tolerate less latency per miss.
        let lt_loose = sl.pthreads.iter().map(|p| p.advantage.lt).fold(0.0, f64::max);
        let lt_tight = st.pthreads.iter().map(|p| p.advantage.lt).fold(0.0, f64::max);
        assert!(lt_tight <= lt_loose);
    }

    #[test]
    fn higher_latency_selects_longer_pthreads() {
        let forest = forest_for(STREAM);
        let base = SelectionParams { ipc: 2.0, optimize: false, merge: false, ..SelectionParams::default() };
        let lo = SelectionParams { miss_latency: 20.0, ..base };
        let hi = SelectionParams { miss_latency: 140.0, ..base };
        let s_lo = select_pthreads(&forest, &lo);
        let s_hi = select_pthreads(&forest, &hi);
        assert!(
            s_hi.prediction.avg_pthread_len >= s_lo.prediction.avg_pthread_len,
            "longer latency should need longer p-threads: {} vs {}",
            s_hi.prediction.avg_pthread_len,
            s_lo.prediction.avg_pthread_len
        );
    }

    #[test]
    fn cache_resident_loop_covers_at_most_the_cold_miss() {
        // Cache-resident loop: one cold miss only. The model may select a
        // cheap one-shot p-thread for it (its trigger executes once, so
        // overhead is negligible), but nothing that launches per-iteration
        // can be profitable.
        let forest = forest_for(
            "li r1, 0x4000\n li r2, 0\n li r3, 100\n\
             top: bge r2, r3, done\n ld r4, 0(r1)\n addi r2, r2, 1\n j top\n done: halt",
        );
        let params = SelectionParams { ipc: 2.0, ..SelectionParams::default() };
        let sel = select_pthreads(&forest, &params);
        assert!(sel.prediction.misses_covered <= 1);
        assert!(sel.prediction.launches <= 1);
    }

    /// Builds a pure-chain slice tree (single leaf) by hand:
    /// root = the problem load, then `depth` copies of the induction addi,
    /// each feeding the one above.
    fn chain_tree(depth: usize) -> SliceTree {
        use preexec_slice::SliceEntry;
        let p = assemble("chain", "ld r4, 0(r1)\n addi r1, r1, 64\n halt").unwrap();
        let mut slice = vec![SliceEntry {
            pc: 0,
            inst: *p.inst(0),
            dist: 0,
            dep_positions: vec![1],
        }];
        for d in 1..=depth {
            slice.push(SliceEntry {
                pc: 1,
                inst: *p.inst(1),
                dist: d as u64,
                dep_positions: if d < depth { vec![d as u32 + 1] } else { vec![] },
            });
        }
        let mut tree = SliceTree::new(0, *p.inst(0));
        tree.insert_slice(&slice);
        tree
    }

    fn candidate_with_advantage(tree: &SliceTree, node: NodeId, adv_agg: f64) -> ScoredCandidate {
        ScoredCandidate {
            advantage: Advantage {
                scdh_pt: 1.0,
                scdh_mt: 10.0,
                lt: 10.0,
                oh: 0.0,
                lt_agg: adv_agg,
                oh_agg: 0.0,
                adv_agg,
                full_coverage: false,
            },
            exec_body: candidate_body(tree, node),
        }
    }

    #[test]
    fn equal_advantage_tie_goes_to_the_larger_node_id() {
        // Two candidates on one root-to-leaf path with *exactly* equal
        // ADVagg: the winner must be the larger node id (the deeper
        // trigger), for every arrangement — this is the explicit
        // (adv_agg, node id) order the parallel == serial guarantee
        // rests on.
        let tree = chain_tree(2);
        let mut scores: Vec<Option<ScoredCandidate>> = vec![None; tree.len()];
        scores[1] = Some(candidate_with_advantage(&tree, 1, 100.0));
        scores[2] = Some(candidate_with_advantage(&tree, 2, 100.0));
        let picks = solve_tree_scored(&tree, &scores);
        assert_eq!(picks.len(), 1, "one winner per leaf path");
        assert_eq!(picks[0].0, 2, "equal ADVagg must resolve to the deeper node");

        // Sanity: the order is on advantage first — a strictly better
        // shallow candidate still beats the deeper one.
        let mut scores2: Vec<Option<ScoredCandidate>> = vec![None; tree.len()];
        scores2[1] = Some(candidate_with_advantage(&tree, 1, 101.0));
        scores2[2] = Some(candidate_with_advantage(&tree, 2, 100.0));
        let picks2 = solve_tree_scored(&tree, &scores2);
        assert_eq!(picks2.len(), 1);
        assert_eq!(picks2[0].0, 1);
    }

    #[test]
    fn parallel_selection_is_bit_identical_to_serial() {
        let forest = forest_for(STREAM);
        for params in [
            SelectionParams { ipc: 2.0, ..SelectionParams::default() },
            SelectionParams { ipc: 2.0, optimize: false, merge: false, ..SelectionParams::default() },
        ] {
            let serial = select_pthreads(&forest, &params);
            for threads in [2, 3, 8] {
                let par = select_pthreads_par(&forest, &params, Parallelism::new(threads));
                // Debug formatting round-trips every f64 exactly, so this
                // is a bitwise comparison of the whole selection.
                assert_eq!(
                    format!("{par:?}"),
                    format!("{serial:?}"),
                    "threads={threads}"
                );
                assert_eq!(
                    par.prediction.adv_agg.to_bits(),
                    serial.prediction.adv_agg.to_bits()
                );
            }
        }
    }

    #[test]
    fn screened_selection_is_byte_identical_to_unscreened() {
        let forest = forest_for(STREAM);
        let total: u64 = forest.trees().map(|(_, t)| t.len() as u64 - 1).sum();
        for params in [
            SelectionParams { ipc: 2.0, ..SelectionParams::default() },
            SelectionParams { ipc: 2.0, optimize: false, merge: false, ..SelectionParams::default() },
            SelectionParams { ipc: 0.5, miss_latency: 78.0, ..SelectionParams::default() },
        ] {
            for threads in [1, 4] {
                let par = Parallelism::new(threads);
                let (screened, _, stats) =
                    try_select_pthreads_stats(&forest, &params, par, true).unwrap();
                let (exact, _, off) =
                    try_select_pthreads_stats(&forest, &params, par, false).unwrap();
                assert_eq!(
                    format!("{screened:?}"),
                    format!("{exact:?}"),
                    "threads={threads}"
                );
                assert_eq!(stats.candidates(), total);
                assert_eq!(off, ScreenStats::default());
            }
        }
    }

    #[test]
    fn screened_score_table_solves_identically() {
        let forest = forest_for(STREAM);
        let params = SelectionParams { ipc: 2.0, ..SelectionParams::default() };
        for (_, tree) in forest.trees() {
            let dc = |pc| forest.dc_trig(pc);
            let exact = score_tree_nodes(tree, &dc, &params);
            let (screened, stats) = score_tree_nodes_screened(tree, &dc, &params);
            assert_eq!(stats.candidates() as usize, tree.len() - 1);
            let a = solve_tree_scored(tree, &exact);
            let b = solve_tree_scored(tree, &screened);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn nan_scores_never_win_the_tie_break() {
        // A NaN net advantage fails the `net > 0` gate, and total_cmp
        // keeps the order total even against a poisoned incumbent, so
        // the finite candidate always wins deterministically.
        let tree = chain_tree(2);
        let mut scores: Vec<Option<ScoredCandidate>> = vec![None; tree.len()];
        scores[1] = Some(candidate_with_advantage(&tree, 1, 100.0));
        scores[2] = Some(candidate_with_advantage(&tree, 2, f64::NAN));
        let picks = solve_tree_scored(&tree, &scores);
        assert_eq!(picks.len(), 1);
        assert_eq!(picks[0].0, 1, "the finite candidate must win");
    }

    #[test]
    fn non_finite_scores_are_rejected_with_a_typed_error() {
        let tree = chain_tree(1);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let sc = candidate_with_advantage(&tree, 1, bad);
            assert_eq!(
                validate_candidate_score(&sc, tree.node(1).pc, 1),
                Err(SliceError::NonFiniteScore { pc: tree.node(1).pc, node: 1 })
            );
        }
        let ok = candidate_with_advantage(&tree, 1, 3.5);
        assert_eq!(validate_candidate_score(&ok, 0, 1), Ok(()));
    }

    #[test]
    fn invalid_params_surface_as_a_typed_error() {
        let forest = forest_for(STREAM);
        let bad = SelectionParams { ipc: 0.0, ..SelectionParams::default() };
        let err = try_select_pthreads_stats(&forest, &bad, Parallelism::serial(), true)
            .unwrap_err();
        assert!(matches!(err, crate::SelectError::Params(_)), "{err:?}");
    }

    #[test]
    fn prediction_consistency() {
        let forest = forest_for(STREAM);
        let params = SelectionParams { ipc: 2.0, ..SelectionParams::default() };
        let sel = select_pthreads(&forest, &params);
        let p = &sel.prediction;
        assert_eq!(p.num_static, sel.pthreads.len());
        assert!((p.adv_agg - (p.lt_agg - p.oh_agg)).abs() < 1e-6);
        assert!(p.misses_fully_covered <= p.misses_covered);
        assert!(p.misses_covered <= forest.total_misses());
        assert!(p.avg_pthread_len <= params.max_pthread_len as f64);
    }
}
