//! P-thread selection: per-slice (§3.1) and whole-tree with overlap
//! correction (§3.2), plus the forest-level driver.

use crate::advantage::aggregate_advantage;
use crate::{
    candidate_body, merge_pthreads, optimize_body, Advantage, Body, SelectionParams,
    SelectionPrediction, StaticPThread,
};
use preexec_isa::Pc;
use preexec_slice::{NodeId, SliceForest, SliceTree};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A scored candidate: its advantage calculation and the body the p-thread
/// will execute (optimized if optimization is enabled).
#[derive(Debug, Clone)]
pub struct ScoredCandidate {
    /// The advantage calculation (before any overlap reduction).
    pub advantage: Advantage,
    /// The executable body.
    pub exec_body: Body,
}

/// The result of selection over a whole slice forest.
#[derive(Debug, Clone)]
pub struct Selection {
    /// The selected (and possibly merged) static p-threads.
    pub pthreads: Vec<StaticPThread>,
    /// The framework's diagnostic predictions for this set.
    pub prediction: SelectionPrediction,
}

/// Scores the candidate p-thread triggered at `node`, or returns `None`
/// when the candidate is illegal (too long after optimization) or scores
/// zero/negative structurally (empty body).
fn score_node(
    tree: &SliceTree,
    node: NodeId,
    dc_trig: u64,
    params: &SelectionParams,
) -> Option<ScoredCandidate> {
    let main_body = candidate_body(tree, node);
    if main_body.is_empty() {
        return None;
    }
    let exec_body = if params.optimize {
        optimize_body(&main_body)
    } else {
        main_body.clone()
    };
    if exec_body.is_empty() || exec_body.len() > params.max_pthread_len {
        return None;
    }
    let advantage = aggregate_advantage(
        params,
        &exec_body,
        &main_body,
        dc_trig,
        tree.node(node).dc_ptcm,
    );
    Some(ScoredCandidate { advantage, exec_body })
}

/// Solves one slice tree: selects the set of p-threads whose
/// overlap-corrected aggregate advantages sum to a maximum, using the
/// paper's iterative procedure — select the best candidate per leaf
/// independently, reduce the advantage of any selected p-thread that is an
/// ancestor of another selected p-thread (the double-tolerated latency,
/// `DC_pt-cm(child) · LT(parent)`), and reselect until stable.
///
/// Returns `(node, scored, net_advantage)` triples.
pub fn solve_tree(
    tree: &SliceTree,
    dc_trig_of: &dyn Fn(Pc) -> u64,
    params: &SelectionParams,
) -> Vec<(NodeId, ScoredCandidate, f64)> {
    // Memoized candidate scores.
    let mut scores: HashMap<NodeId, Option<ScoredCandidate>> = HashMap::new();
    let score = |node: NodeId, scores: &mut HashMap<NodeId, Option<ScoredCandidate>>| {
        scores
            .entry(node)
            .or_insert_with(|| score_node(tree, node, dc_trig_of(tree.node(node).pc), params))
            .clone()
    };

    let leaves = tree.leaves();
    let mut reductions: HashMap<NodeId, f64> = HashMap::new();
    let mut selected: BTreeSet<NodeId> = BTreeSet::new();

    for _round in 0..32 {
        let mut next: BTreeSet<NodeId> = BTreeSet::new();
        for &leaf in &leaves {
            let path = tree.path_from_root(leaf);
            let mut best: Option<(NodeId, f64)> = None;
            for &node in path.iter().skip(1) {
                if let Some(sc) = score(node, &mut scores) {
                    let net = sc.advantage.adv_agg - reductions.get(&node).copied().unwrap_or(0.0);
                    // Ties go to the deeper candidate: with optimization,
                    // unrolled bodies often fold to the same size and both
                    // saturate LT at L_cm, and the deeper trigger buys
                    // lookahead slack at no modeled cost (cf. the paper's
                    // observation that over-specifying latency compensates
                    // for unmodeled bus contention).
                    if net > 0.0 && best.is_none_or(|(_, b)| net >= b) {
                        best = Some((node, net));
                    }
                }
            }
            if let Some((node, _)) = best {
                next.insert(node);
            }
        }
        // Recompute reductions for the new set: each selected node with a
        // selected proper ancestor double-tolerates its misses at the
        // ancestor's (lower) per-miss latency tolerance. Using the closest
        // selected ancestor chains the corrections up the tree.
        let mut new_reductions: HashMap<NodeId, f64> = HashMap::new();
        for &c in &next {
            if let Some(p) = closest_selected_ancestor(tree, c, &next) {
                if let Some(psc) = score(p, &mut scores) {
                    *new_reductions.entry(p).or_insert(0.0) +=
                        tree.node(c).dc_ptcm as f64 * psc.advantage.lt;
                }
            }
        }
        let stable = next == selected && !reductions_differ(&reductions, &new_reductions);
        selected = next;
        reductions = new_reductions;
        if stable {
            break;
        }
    }

    selected
        .into_iter()
        .filter_map(|node| {
            let sc = score(node, &mut scores)?;
            let net = sc.advantage.adv_agg - reductions.get(&node).copied().unwrap_or(0.0);
            if net > 0.0 {
                Some((node, sc, net))
            } else {
                None
            }
        })
        .collect()
}

fn closest_selected_ancestor(
    tree: &SliceTree,
    node: NodeId,
    selected: &BTreeSet<NodeId>,
) -> Option<NodeId> {
    let mut cur = tree.node(node).parent;
    while let Some(p) = cur {
        if selected.contains(&p) {
            return Some(p);
        }
        cur = tree.node(p).parent;
    }
    None
}

fn reductions_differ(a: &HashMap<NodeId, f64>, b: &HashMap<NodeId, f64>) -> bool {
    if a.len() != b.len() {
        return true;
    }
    a.iter()
        .any(|(k, v)| b.get(k).is_none_or(|w| (v - w).abs() > 1e-9))
}

/// Runs selection over every slice tree in the forest and returns the
/// selected p-threads with the framework's aggregate predictions.
///
/// Per the paper (§3.2), the program-level problem is divided into one
/// sub-problem per static problem load (trees never overlap by
/// construction); each tree is solved with [`solve_tree`]; and if
/// merging is enabled, selected p-threads sharing a trigger are merged.
///
/// # Panics
///
/// Panics if `params` fail validation (see
/// [`SelectionParams::validate`]).
pub fn select_pthreads(forest: &SliceForest, params: &SelectionParams) -> Selection {
    params.validate();
    let mut pthreads: Vec<StaticPThread> = Vec::new();
    let mut misses_covered: u64 = 0;
    let mut misses_fully_covered: u64 = 0;
    let mut lt_agg = 0.0;
    let mut oh_agg = 0.0;
    let mut adv_agg = 0.0;

    for (target_pc, tree) in forest.trees() {
        let picks = solve_tree(tree, &|pc| forest.dc_trig(pc), params);
        let selected: BTreeSet<NodeId> = picks.iter().map(|(n, _, _)| *n).collect();
        let full: BTreeMap<NodeId, bool> = picks
            .iter()
            .map(|(n, sc, _)| (*n, sc.advantage.full_coverage))
            .collect();
        for (node, sc, net) in picks {
            let n = tree.node(node);
            // Coverage union: count a node's misses unless a selected
            // ancestor already counts them.
            let has_sel_anc = closest_selected_ancestor(tree, node, &selected).is_some();
            if !has_sel_anc {
                misses_covered += n.dc_ptcm;
            }
            if sc.advantage.full_coverage {
                // Count fully covered misses not already fully covered by
                // a selected full-coverage ancestor.
                let anc_full = {
                    let mut cur = tree.node(node).parent;
                    let mut found = false;
                    while let Some(p) = cur {
                        if selected.contains(&p) && full.get(&p).copied().unwrap_or(false) {
                            found = true;
                            break;
                        }
                        cur = tree.node(p).parent;
                    }
                    found
                };
                if !anc_full {
                    misses_fully_covered += n.dc_ptcm;
                }
            }
            lt_agg += sc.advantage.lt_agg - (sc.advantage.adv_agg - net);
            oh_agg += sc.advantage.oh_agg;
            adv_agg += net;
            pthreads.push(StaticPThread {
                trigger: n.pc,
                targets: vec![target_pc],
                body: sc.exec_body.to_insts(),
                dc_trig: forest.dc_trig(n.pc),
                dc_ptcm: n.dc_ptcm,
                advantage: Advantage { adv_agg: net, ..sc.advantage },
            });
        }
    }

    if params.merge {
        let before_oh: f64 = pthreads.iter().map(|p| p.advantage.oh_agg).sum();
        pthreads = merge_pthreads(pthreads, params);
        let after_oh: f64 = pthreads.iter().map(|p| p.advantage.oh_agg).sum();
        adv_agg += before_oh - after_oh;
        oh_agg = after_oh;
    }

    let launches: u64 = pthreads.iter().map(|p| p.dc_trig).sum();
    let weighted_len: f64 = pthreads
        .iter()
        .map(|p| p.dc_trig as f64 * p.size() as f64)
        .sum();
    let prediction = SelectionPrediction {
        num_static: pthreads.len(),
        launches,
        avg_pthread_len: if launches == 0 { 0.0 } else { weighted_len / launches as f64 },
        misses_covered,
        misses_fully_covered,
        lt_agg,
        oh_agg,
        adv_agg,
        bw_seq: params.bw_seq,
    };
    Selection { pthreads, prediction }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_func::{run_trace, TraceConfig};
    use preexec_isa::assemble;
    use preexec_slice::SliceForestBuilder;

    fn forest_for(src: &str) -> SliceForest {
        let p = assemble("t", src).unwrap();
        let mut b = SliceForestBuilder::new(1024, 32);
        run_trace(&p, &TraceConfig::default(), |d| b.observe(d));
        b.finish()
    }

    /// A streaming loop: every iteration's load misses (64 B stride).
    const STREAM: &str = "
        li r1, 0x100000
        li r2, 0
        li r3, 4096
    top:
        bge r2, r3, done
        ld  r4, 0(r1)
        addi r1, r1, 64
        addi r2, r2, 1
        j top
    done:
        halt";

    #[test]
    fn selects_induction_unrolled_pthread_for_stream() {
        let forest = forest_for(STREAM);
        let params = SelectionParams {
            ipc: 2.0,
            miss_latency: 70.0,
            optimize: false,
            merge: false,
            ..SelectionParams::default()
        };
        let sel = select_pthreads(&forest, &params);
        assert!(!sel.pthreads.is_empty());
        // The dominant p-thread (covering the steady-state misses) is
        // triggered by the induction addi (pc 5) and unrolls it.
        let p = sel
            .pthreads
            .iter()
            .max_by_key(|p| p.dc_ptcm)
            .expect("nonempty");
        assert_eq!(p.trigger, 5);
        assert!(p.body.iter().filter(|i| i.op == preexec_isa::Op::Addi).count() >= 2);
        assert!(p.body.last().unwrap().op.is_load());
        assert!(sel.prediction.misses_covered > 0);
        assert!(sel.prediction.adv_agg > 0.0);
    }

    #[test]
    fn optimization_shortens_selected_bodies() {
        let forest = forest_for(STREAM);
        let base = SelectionParams {
            ipc: 2.0,
            merge: false,
            optimize: false,
            ..SelectionParams::default()
        };
        let opt = SelectionParams { optimize: true, ..base };
        let s0 = select_pthreads(&forest, &base);
        let s1 = select_pthreads(&forest, &opt);
        let len0 = s0.prediction.avg_pthread_len;
        let len1 = s1.prediction.avg_pthread_len;
        assert!(
            len1 < len0,
            "optimized bodies should be shorter: {len1} vs {len0}"
        );
        // Same or better predicted advantage.
        assert!(s1.prediction.adv_agg >= s0.prediction.adv_agg - 1e-6);
    }

    #[test]
    fn tight_length_constraint_reduces_coverage() {
        let forest = forest_for(STREAM);
        let loose = SelectionParams { ipc: 2.0, optimize: false, merge: false, ..SelectionParams::default() };
        let tight = SelectionParams { max_pthread_len: 2, ..loose };
        let sl = select_pthreads(&forest, &loose);
        let st = select_pthreads(&forest, &tight);
        // Short p-threads tolerate less latency per miss.
        let lt_loose = sl.pthreads.iter().map(|p| p.advantage.lt).fold(0.0, f64::max);
        let lt_tight = st.pthreads.iter().map(|p| p.advantage.lt).fold(0.0, f64::max);
        assert!(lt_tight <= lt_loose);
    }

    #[test]
    fn higher_latency_selects_longer_pthreads() {
        let forest = forest_for(STREAM);
        let base = SelectionParams { ipc: 2.0, optimize: false, merge: false, ..SelectionParams::default() };
        let lo = SelectionParams { miss_latency: 20.0, ..base };
        let hi = SelectionParams { miss_latency: 140.0, ..base };
        let s_lo = select_pthreads(&forest, &lo);
        let s_hi = select_pthreads(&forest, &hi);
        assert!(
            s_hi.prediction.avg_pthread_len >= s_lo.prediction.avg_pthread_len,
            "longer latency should need longer p-threads: {} vs {}",
            s_hi.prediction.avg_pthread_len,
            s_lo.prediction.avg_pthread_len
        );
    }

    #[test]
    fn cache_resident_loop_covers_at_most_the_cold_miss() {
        // Cache-resident loop: one cold miss only. The model may select a
        // cheap one-shot p-thread for it (its trigger executes once, so
        // overhead is negligible), but nothing that launches per-iteration
        // can be profitable.
        let forest = forest_for(
            "li r1, 0x4000\n li r2, 0\n li r3, 100\n\
             top: bge r2, r3, done\n ld r4, 0(r1)\n addi r2, r2, 1\n j top\n done: halt",
        );
        let params = SelectionParams { ipc: 2.0, ..SelectionParams::default() };
        let sel = select_pthreads(&forest, &params);
        assert!(sel.prediction.misses_covered <= 1);
        assert!(sel.prediction.launches <= 1);
    }

    #[test]
    fn prediction_consistency() {
        let forest = forest_for(STREAM);
        let params = SelectionParams { ipc: 2.0, ..SelectionParams::default() };
        let sel = select_pthreads(&forest, &params);
        let p = &sel.prediction;
        assert_eq!(p.num_static, sel.pthreads.len());
        assert!((p.adv_agg - (p.lt_agg - p.oh_agg)).abs() < 1e-6);
        assert!(p.misses_fully_covered <= p.misses_covered);
        assert!(p.misses_covered <= forest.total_misses());
        assert!(p.avg_pthread_len <= params.max_pthread_len as f64);
    }
}
