//! P-thread merging (§3.3): combine partially redundant p-threads that
//! share a trigger, so the shared dataflow prefix executes once.

use crate::{SelectionParams, StaticPThread};
use preexec_isa::{Inst, Reg};
use std::collections::HashMap;

/// Merges p-threads that share a trigger PC.
///
/// Two p-threads launched by the same trigger execute redundantly: their
/// common dataflow prefix (typically the induction chain) runs twice. A
/// merged p-thread keeps one copy of the matching prefix and replicates
/// the divergent parts, renaming the replica's destinations into merge
/// temporaries so the computations cannot clobber one another — the
/// paper's "register renaming and code duplication performed as needed to
/// preserve the computational semantics of each of the original component
/// p-threads".
///
/// A merged p-thread achieves the same latency tolerance as the separate
/// originals (`LT_agg` adds) while paying overhead for one body, so its
/// `ADV_agg` is recomputed here from the merged size. Merging is skipped
/// when the rename pool (32 temporaries) would be exhausted.
pub fn merge_pthreads(
    pthreads: Vec<StaticPThread>,
    params: &SelectionParams,
) -> Vec<StaticPThread> {
    let mut by_trigger: HashMap<u32, Vec<StaticPThread>> = HashMap::new();
    let mut order: Vec<u32> = Vec::new();
    for p in pthreads {
        if !by_trigger.contains_key(&p.trigger) {
            order.push(p.trigger);
        }
        by_trigger.entry(p.trigger).or_default().push(p);
    }
    let mut out = Vec::new();
    for trigger in order {
        let group = by_trigger.remove(&trigger).expect("group exists");
        out.extend(merge_group(group, params));
    }
    out
}

fn merge_group(group: Vec<StaticPThread>, params: &SelectionParams) -> Vec<StaticPThread> {
    let mut merged: Vec<StaticPThread> = Vec::new();
    for p in group {
        let mut absorbed = false;
        for m in &mut merged {
            if let Some(new) = merge_two(m, &p, params) {
                *m = new;
                absorbed = true;
                break;
            }
        }
        if !absorbed {
            merged.push(p);
        }
    }
    merged
}

/// Attempts to merge `b` into `a`; returns the merged p-thread or `None`
/// if merging is not possible (rename pool exhausted).
fn merge_two(
    a: &StaticPThread,
    b: &StaticPThread,
    params: &SelectionParams,
) -> Option<StaticPThread> {
    debug_assert_eq!(a.trigger, b.trigger);
    // Matching dataflow prefix: the longest positional run of identical
    // instructions (bodies are in execution order, so the shared
    // trigger-side chain lines up positionally).
    let prefix = a
        .body
        .iter()
        .zip(&b.body)
        .take_while(|(x, y)| x == y)
        .count();

    let mut body = a.body.clone();
    // Replicate b's divergent tail with destination renaming.
    let mut rename: HashMap<Reg, Reg> = HashMap::new();
    let mut next_temp: u8 = next_free_temp(&a.body);
    for inst in &b.body[prefix..] {
        let mut inst = *inst;
        if let Some(r) = inst.rs1 {
            if let Some(&t) = rename.get(&r) {
                inst.rs1 = Some(t);
            }
        }
        if let Some(r) = inst.rs2 {
            if let Some(&t) = rename.get(&r) {
                inst.rs2 = Some(t);
            }
        }
        if let Some(rd) = inst.rd {
            if next_temp >= 32 {
                return None; // rename pool exhausted; keep them separate
            }
            let t = Reg::temp(next_temp);
            next_temp += 1;
            rename.insert(rd, t);
            inst.rd = Some(t);
        }
        body.push(inst);
    }

    let dc_ptcm = a.dc_ptcm + b.dc_ptcm;
    let mut targets = a.targets.clone();
    for &t in &b.targets {
        if !targets.contains(&t) {
            targets.push(t);
        }
    }
    // Recompute the aggregate score: latency tolerances add (disjoint miss
    // sets), overhead is paid once for the merged body.
    let oh = body.len() as f64 * params.oh_per_inst();
    let oh_agg = a.dc_trig as f64 * oh;
    let lt_agg = a.advantage.lt_agg + b.advantage.lt_agg;
    let mut advantage = a.advantage;
    advantage.oh = oh;
    advantage.oh_agg = oh_agg;
    advantage.lt_agg = lt_agg;
    advantage.adv_agg = lt_agg - oh_agg;
    advantage.lt = a.advantage.lt.max(b.advantage.lt);
    advantage.full_coverage = a.advantage.full_coverage && b.advantage.full_coverage;

    Some(StaticPThread {
        trigger: a.trigger,
        targets,
        body,
        dc_trig: a.dc_trig,
        dc_ptcm,
        advantage,
    })
}

/// The first temporary index not used by `body` (bodies produced by a
/// previous merge already use some temporaries).
fn next_free_temp(body: &[Inst]) -> u8 {
    let mut max: i16 = -1;
    for inst in body {
        for r in [inst.rd, inst.rs1, inst.rs2].into_iter().flatten() {
            if r.is_temp() {
                max = max.max((r.index() - 32) as i16);
            }
        }
    }
    (max + 1) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Advantage;
    use preexec_isa::{Op, Pc};

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    fn adv(lt_agg: f64, oh_agg: f64) -> Advantage {
        Advantage {
            scdh_pt: 0.0,
            scdh_mt: 0.0,
            lt: 8.0,
            oh: 0.0,
            lt_agg,
            oh_agg,
            adv_agg: lt_agg - oh_agg,
            full_coverage: true,
        }
    }

    /// The paper's two example p-threads: left (#04 path) and right (#06
    /// path), both triggered by #11.
    fn paper_pair() -> (StaticPThread, StaticPThread) {
        let induct = Inst::itype(Op::Addi, r(5), r(5), 16);
        let left = StaticPThread {
            trigger: 11,
            targets: vec![9],
            body: vec![
                induct,
                Inst::load(Op::Lw, r(7), r(5), 4),
                Inst::itype(Op::Sll, r(7), r(7), 2),
                Inst::itype(Op::Addi, r(7), r(7), 4096),
                Inst::load(Op::Lw, r(8), r(7), 0),
            ],
            dc_trig: 100,
            dc_ptcm: 30,
            advantage: adv(240.0, 62.5),
        };
        let right = StaticPThread {
            trigger: 11,
            targets: vec![9],
            body: vec![
                induct,
                Inst::load(Op::Lw, r(7), r(5), 8),
                Inst::itype(Op::Sll, r(7), r(7), 2),
                Inst::itype(Op::Addi, r(7), r(7), 4096),
                Inst::load(Op::Lw, r(8), r(7), 0),
            ],
            dc_trig: 100,
            dc_ptcm: 10,
            advantage: adv(80.0, 62.5),
        };
        (left, right)
    }

    #[test]
    fn paper_merge_shape() {
        let (l, rgt) = paper_pair();
        let params = SelectionParams::working_example();
        let merged = merge_pthreads(vec![l, rgt], &params);
        assert_eq!(merged.len(), 1);
        let m = &merged[0];
        // Shared prefix: one induction instruction. Replicated: 4 from
        // the right path (#06 analogue, #07, #08, #09): 5 + 4 = 9,
        // matching the paper's replication of #07/#08/#09.
        assert_eq!(m.size(), 9);
        assert_eq!(m.dc_ptcm, 40);
        assert_eq!(m.targets, vec![9]);
        // Replica destinations are renamed to temporaries.
        assert!(m.body[5..].iter().all(|i| i.rd.map_or(true, Reg::is_temp)));
        // Replica uses of renamed values follow the renaming.
        let last = m.body.last().unwrap();
        assert!(last.rs1.unwrap().is_temp());
    }

    #[test]
    fn merged_score_adds_lt_and_pays_one_overhead() {
        let (l, rgt) = paper_pair();
        let params = SelectionParams::working_example();
        let m = &merge_pthreads(vec![l, rgt], &params)[0];
        assert_eq!(m.advantage.lt_agg, 320.0);
        // 9 instructions * 0.125 per-inst * 100 launches = 112.5,
        // cheaper than the two separate bodies (62.5 + 62.5 = 125).
        assert!((m.advantage.oh_agg - 112.5).abs() < 1e-9);
        assert!((m.advantage.adv_agg - 207.5).abs() < 1e-9);
    }

    #[test]
    fn different_triggers_not_merged() {
        let (l, mut rgt) = paper_pair();
        rgt.trigger = 12;
        let params = SelectionParams::working_example();
        let merged = merge_pthreads(vec![l, rgt], &params);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn merged_targets_deduplicate() {
        let (l, mut rgt) = paper_pair();
        rgt.targets = vec![9, 20];
        let params = SelectionParams::working_example();
        let merged = merge_pthreads(vec![l, rgt], &params);
        assert_eq!(merged[0].targets, vec![9 as Pc, 20 as Pc]);
    }

    #[test]
    fn three_way_merge() {
        let (l, rgt) = paper_pair();
        let mut third = rgt.clone();
        third.body[1] = Inst::load(Op::Lw, r(7), r(5), 12);
        third.targets = vec![21];
        let params = SelectionParams::working_example();
        let merged = merge_pthreads(vec![l, rgt, third], &params);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].size(), 13); // 5 + 4 + 4
        assert_eq!(merged[0].dc_ptcm, 50);
    }

    #[test]
    fn rename_pool_exhaustion_keeps_separate() {
        // Bodies long enough that renaming the tail would need > 32 temps.
        let mk = |imm: i64| {
            let mut body = vec![Inst::itype(Op::Addi, r(1), r(1), imm)];
            for i in 0..33 {
                body.push(Inst::itype(Op::Addi, r((2 + (i % 20)) as u8), r(1), i as i64));
            }
            body.push(Inst::load(Op::Ld, r(30), r(2), 0));
            StaticPThread {
                trigger: 5,
                targets: vec![40],
                body,
                dc_trig: 10,
                dc_ptcm: 5,
                advantage: adv(40.0, 10.0),
            }
        };
        let a = mk(8);
        let mut b = mk(8);
        b.body[1] = Inst::itype(Op::Addi, r(2), r(1), 999); // diverge early
        let params = SelectionParams::default();
        let merged = merge_pthreads(vec![a, b], &params);
        assert_eq!(merged.len(), 2);
    }
}
