//! Per-phase policy choice for adaptive selection.
//!
//! The paper scores candidates under one *static* policy — one slicing
//! scope, merging on or off, one ADVagg parameterization — for the whole
//! sample. "Beyond Static Policies" (PAPERS.md) argues a single static
//! policy loses to per-phase choices. This module supplies the dynamic
//! half: a small fixed space of policy *variants* and a deterministic
//! chooser that re-runs selection under each variant on one phase's
//! slice forest and keeps the variant with the best phase payoff.
//!
//! # The payoff model
//!
//! The static selector maximizes `ADVagg = LTagg − OHagg`, which weighs
//! a cycle of sequencing overhead exactly as much as a cycle of hidden
//! latency. That equivalence only holds when the main thread leaves
//! fetch bandwidth idle — i.e. in miss-heavy phases. In a phase that
//! rarely misses, the main thread uses the front end well and every
//! p-thread instruction steals real issue slots. The chooser therefore
//! evaluates each variant's *outcome* under a phase-weighted payoff
//!
//! ```text
//! J_phase = LTagg − κ(phase) · OHagg,   κ = 1 + 4 / (1 + misses-per-kilo-inst)
//! ```
//!
//! κ → 1 in miss-heavy phases (overhead is nearly free, the static
//! objective is already right) and grows toward 5 in miss-light phases
//! (overhead is expensive, leaner selections win). The static variant is
//! first in the space and ties break toward the lowest index, so the
//! chosen payoff is by construction ≥ the static variant's payoff and a
//! phase only diverges from the static policy when a variant is
//! *strictly* better under its own phase's κ.
//!
//! # The variant space
//!
//! Three axes, per the framework's knobs:
//!
//! - **scope** — the slicing window cannot be re-cut after the trace,
//!   so the scope axis is expressed through its selection-time proxy:
//!   halving `max_pthread_len` bounds how far back into the scope a
//!   candidate body may reach (`SelectionParams::slicing_scope` itself
//!   is advisory and recorded for reporting only);
//! - **merge** — trigger-prefix merging on/off;
//! - **ADVagg variant** — the model parameterization: either the global
//!   sample IPC (as in the paper) or a phase-local IPC estimate
//!   self-calibrated against the sample (see [`phase_ipc_estimate`]),
//!   and optimized vs. raw bodies.
//!
//! Everything here is deterministic: the variants are a fixed table,
//! each selection run is bit-identical at any thread count, and the
//! argmax breaks ties by table order.

use crate::par::{ParStats, Parallelism};
use crate::{ScreenStats, SelectError, Selection, SelectionParams};
use preexec_slice::SliceForest;

/// One phase's trace summary, as the chooser needs it.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseStats {
    /// Measured instructions attributed to the phase.
    pub insts: u64,
    /// L2-miss loads among them.
    pub l2_misses: u64,
}

impl PhaseStats {
    /// Misses per thousand instructions (0 for an empty phase).
    pub fn misses_per_kinst(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            1000.0 * self.l2_misses as f64 / self.insts as f64
        }
    }
}

/// One point in the policy space: a named delta over the static
/// selection parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyVariant {
    /// Stable name, used in reports and results tables.
    pub name: &'static str,
    /// Scope axis: halve `max_pthread_len` (and the advisory
    /// `slicing_scope`), bounding candidate reach.
    pub halve_scope: bool,
    /// Merge axis: override `merge` (None keeps the static setting).
    pub merge: Option<bool>,
    /// ADVagg axis: override `optimize` (None keeps the static setting).
    pub optimize: Option<bool>,
    /// ADVagg axis: replace the global sample IPC with the phase-local
    /// estimate from [`phase_ipc_estimate`].
    pub phase_ipc: bool,
}

/// The fixed policy space. `POLICY_SPACE[0]` is the static policy (no
/// deltas); the chooser's tie-break toward index 0 makes it the default.
pub const POLICY_SPACE: &[PolicyVariant] = &[
    PolicyVariant { name: "static", halve_scope: false, merge: None, optimize: None, phase_ipc: false },
    PolicyVariant { name: "phase-ipc", halve_scope: false, merge: None, optimize: None, phase_ipc: true },
    PolicyVariant { name: "half-scope", halve_scope: true, merge: None, optimize: None, phase_ipc: false },
    PolicyVariant { name: "half-scope+phase-ipc", halve_scope: true, merge: None, optimize: None, phase_ipc: true },
    PolicyVariant { name: "no-merge", halve_scope: false, merge: Some(false), optimize: None, phase_ipc: false },
    PolicyVariant { name: "raw-bodies", halve_scope: false, merge: None, optimize: Some(false), phase_ipc: false },
];

/// Phase-local IPC estimate, self-calibrated against the whole sample.
///
/// A simple stall-accounting model `IPC = IPC₀ / (1 + rate · L_cm)` —
/// every miss serializes `L_cm` cycles against otherwise-steady issue —
/// inverted at the *sample* level to recover the workload's implied
/// no-miss rate `IPC₀` from the measured `base.ipc`, then re-applied at
/// the phase's own miss rate. Clamped to the selector's valid range
/// `(0.05, bw_seq]`.
///
/// Anchoring on the measurement (rather than an absolute `BW_seq`
/// ceiling) makes the estimate exact when the phase *is* the sample:
/// equal miss rates return `base.ipc` bit-for-bit, so a single-phase
/// trace ties the `phase-ipc` variant against `static` and the
/// tie-break keeps the static policy. Only a genuine rate contrast
/// between phases can move the estimate.
pub fn phase_ipc_estimate(base: &SelectionParams, sample: PhaseStats, phase: PhaseStats) -> f64 {
    if phase.insts == 0 || sample.insts == 0 {
        return base.ipc;
    }
    // Equal rates (exact integer cross-product) short-circuit to the
    // measured IPC so the round-trip is bitwise, not merely close.
    if phase.l2_misses as u128 * sample.insts as u128
        == sample.l2_misses as u128 * phase.insts as u128
    {
        return base.ipc;
    }
    let rate_s = sample.l2_misses as f64 / sample.insts as f64;
    let rate_p = phase.l2_misses as f64 / phase.insts as f64;
    let ipc0 = base.ipc * (1.0 + rate_s * base.miss_latency);
    (ipc0 / (1.0 + rate_p * base.miss_latency)).clamp(0.05, base.bw_seq)
}

/// The phase's overhead weight κ (see the module docs).
pub fn overhead_weight(phase: PhaseStats) -> f64 {
    1.0 + 4.0 / (1.0 + phase.misses_per_kinst())
}

/// The phase payoff of a selection outcome under overhead weight κ.
pub fn phase_payoff(selection: &Selection, kappa: f64) -> f64 {
    selection.prediction.lt_agg - kappa * selection.prediction.oh_agg
}

/// Materializes a variant's selection parameters over the static base.
/// `sample` is the whole trace's summary — the calibration anchor for
/// the phase-local IPC estimate.
pub fn variant_params(
    variant: &PolicyVariant,
    base: &SelectionParams,
    sample: PhaseStats,
    phase: PhaseStats,
) -> SelectionParams {
    let mut p = *base;
    if variant.halve_scope {
        p.max_pthread_len = (p.max_pthread_len / 2).max(1);
        p.slicing_scope = (p.slicing_scope / 2).max(1);
    }
    if let Some(m) = variant.merge {
        p.merge = m;
    }
    if let Some(o) = variant.optimize {
        p.optimize = o;
    }
    if variant.phase_ipc {
        p.ipc = phase_ipc_estimate(base, sample, phase);
    }
    p
}

/// The chooser's verdict for one phase.
#[derive(Debug, Clone)]
pub struct PhasePolicyChoice {
    /// Index of the winning variant in [`POLICY_SPACE`].
    pub index: usize,
    /// Its name.
    pub name: &'static str,
    /// The winning selection (what the phase should run).
    pub selection: Selection,
    /// Its payoff `J_phase`.
    pub payoff: f64,
    /// The static variant's payoff on the same phase (index 0) — the
    /// baseline the results table compares against.
    pub static_payoff: f64,
    /// The overhead weight κ the phase was judged under.
    pub kappa: f64,
}

/// Runs every variant of [`POLICY_SPACE`] on one phase's forest and
/// returns the best under the phase payoff (ties keep the lowest index,
/// i.e. the static policy). Bit-identical at any `par` because each
/// underlying selection run is.
///
/// # Errors
///
/// Returns the first [`SelectError`] any variant's selection run hits
/// (variant parameters are derived from validated static parameters and
/// stay valid by construction, so in practice this mirrors the static
/// selector's error surface).
pub fn try_choose_policy(
    forest: &SliceForest,
    base: &SelectionParams,
    sample: PhaseStats,
    phase: PhaseStats,
    par: Parallelism,
    screening: bool,
) -> Result<(PhasePolicyChoice, ParStats, ScreenStats), SelectError> {
    let kappa = overhead_weight(phase);
    let mut pstats = ParStats::default();
    let mut sstats = ScreenStats::default();
    let mut best: Option<PhasePolicyChoice> = None;
    let mut static_payoff = 0.0;
    for (index, variant) in POLICY_SPACE.iter().enumerate() {
        let params = variant_params(variant, base, sample, phase);
        let (selection, ps, ss) =
            crate::try_select_pthreads_stats(forest, &params, par, screening)?;
        pstats.absorb(&ps);
        sstats.absorb(&ss);
        let payoff = phase_payoff(&selection, kappa);
        if index == 0 {
            static_payoff = payoff;
        }
        let wins = match &best {
            None => true,
            // Strictly-greater via total order: NaN never dethrones.
            Some(b) => payoff.total_cmp(&b.payoff) == std::cmp::Ordering::Greater,
        };
        if wins {
            best = Some(PhasePolicyChoice {
                index,
                name: variant.name,
                selection,
                payoff,
                static_payoff,
                kappa,
            });
        }
    }
    let mut choice = match best {
        Some(c) => c,
        // POLICY_SPACE is non-empty; unreachable in practice.
        None => {
            return Err(SelectError::Params(crate::ParamsError::ZeroMaxPthreadLen));
        }
    };
    choice.static_payoff = static_payoff;
    Ok((choice, pstats, sstats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use preexec_func::{run_trace, TraceConfig};
    use preexec_isa::assemble;
    use preexec_slice::SliceForestBuilder;

    fn miss_forest() -> SliceForest {
        let p = assemble(
            "t",
            "li r1, 0x100000\n li r2, 0\n li r3, 256\n\
             top: bge r2, r3, done\n ld r4, 0(r1)\n addi r1, r1, 64\n addi r2, r2, 1\n j top\n\
             done: halt",
        )
        .unwrap();
        let mut b = SliceForestBuilder::new(1024, 32);
        run_trace(&p, &TraceConfig::default(), |d| b.observe(d));
        b.finish()
    }

    #[test]
    fn static_variant_is_first_and_identity() {
        let base = SelectionParams { ipc: 0.5, ..SelectionParams::default() };
        let sample = PhaseStats { insts: 40_000, l2_misses: 1600 };
        let phase = PhaseStats { insts: 10_000, l2_misses: 400 };
        assert_eq!(POLICY_SPACE[0].name, "static");
        assert_eq!(variant_params(&POLICY_SPACE[0], &base, sample, phase), base);
    }

    #[test]
    fn variant_params_stay_valid() {
        let base = SelectionParams { ipc: 0.5, max_pthread_len: 1, ..SelectionParams::default() };
        let sample = PhaseStats { insts: 1_001_000, l2_misses: 1000 };
        for v in POLICY_SPACE {
            for phase in [
                PhaseStats::default(),
                PhaseStats { insts: 1_000_000, l2_misses: 0 },
                PhaseStats { insts: 1000, l2_misses: 1000 },
            ] {
                let p = variant_params(v, &base, sample, phase);
                assert!(p.try_validate().is_ok(), "variant {} invalid: {p:?}", v.name);
            }
        }
    }

    #[test]
    fn overhead_weight_tracks_miss_intensity() {
        let light = overhead_weight(PhaseStats { insts: 100_000, l2_misses: 0 });
        let heavy = overhead_weight(PhaseStats { insts: 100_000, l2_misses: 10_000 });
        assert!((light - 5.0).abs() < 1e-12);
        assert!(heavy < 1.05 && heavy > 1.0);
    }

    #[test]
    fn phase_ipc_estimate_is_monotone_in_miss_rate() {
        let base = SelectionParams { ipc: 0.5, ..SelectionParams::default() };
        let sample = PhaseStats { insts: 20_000, l2_misses: 1_000 };
        let lo = phase_ipc_estimate(&base, sample, PhaseStats { insts: 10_000, l2_misses: 10 });
        let hi =
            phase_ipc_estimate(&base, sample, PhaseStats { insts: 10_000, l2_misses: 2_000 });
        assert!(lo > hi);
        assert!(hi >= 0.05 && lo <= base.bw_seq);
        // Lighter-than-sample phases sit above the measured IPC,
        // heavier ones below: the sample anchors the scale.
        assert!(lo > base.ipc && hi < base.ipc);
    }

    #[test]
    fn phase_ipc_estimate_is_exact_on_the_sample_itself() {
        // Equal miss rates — including the whole-trace-as-one-phase
        // case — return the measured IPC bit-for-bit, so the phase-ipc
        // variant ties static instead of drifting on float rounding.
        let base = SelectionParams { ipc: 0.731, ..SelectionParams::default() };
        let sample = PhaseStats { insts: 120_000, l2_misses: 16_804 };
        assert_eq!(phase_ipc_estimate(&base, sample, sample).to_bits(), base.ipc.to_bits());
        // Same rate at different magnitude counts as equal too.
        let scaled = PhaseStats { insts: 30_000, l2_misses: 4_201 };
        assert_eq!(phase_ipc_estimate(&base, sample, scaled).to_bits(), base.ipc.to_bits());
    }

    #[test]
    fn chosen_payoff_never_loses_to_static() {
        let forest = miss_forest();
        let base = SelectionParams { ipc: 0.5, ..SelectionParams::default() };
        let sample = PhaseStats { insts: 4000, l2_misses: 260 };
        for phase in [
            PhaseStats { insts: 2000, l2_misses: 256 },
            PhaseStats { insts: 2000, l2_misses: 4 },
        ] {
            let (choice, _, _) =
                try_choose_policy(&forest, &base, sample, phase, Parallelism::serial(), true)
                    .unwrap();
            assert!(
                choice.payoff >= choice.static_payoff,
                "{}: {} < {}",
                choice.name,
                choice.payoff,
                choice.static_payoff
            );
        }
    }

    #[test]
    fn choice_is_thread_count_invariant() {
        let forest = miss_forest();
        let base = SelectionParams { ipc: 0.5, ..SelectionParams::default() };
        let sample = PhaseStats { insts: 6000, l2_misses: 300 };
        let phase = PhaseStats { insts: 2000, l2_misses: 64 };
        let (a, _, _) =
            try_choose_policy(&forest, &base, sample, phase, Parallelism::serial(), true)
                .unwrap();
        let (b, _, _) =
            try_choose_policy(&forest, &base, sample, phase, Parallelism::new(4), false)
                .unwrap();
        assert_eq!(a.index, b.index);
        assert_eq!(format!("{:?}", a.selection), format!("{:?}", b.selection));
        assert_eq!(a.payoff.to_bits(), b.payoff.to_bits());
    }

    #[test]
    fn empty_phase_forest_chooses_static() {
        let forest = SliceForest::from_parts(Vec::new(), Vec::new(), 0);
        let base = SelectionParams { ipc: 0.5, ..SelectionParams::default() };
        let (choice, _, _) = try_choose_policy(
            &forest,
            &base,
            PhaseStats { insts: 1000, l2_misses: 10 },
            PhaseStats::default(),
            Parallelism::serial(),
            true,
        )
        .unwrap();
        assert_eq!(choice.index, 0, "no misses -> every payoff 0 -> tie keeps static");
        assert!(choice.selection.pthreads.is_empty());
    }
}
