//! Selection parameters: the paper's "few intuitive high level parameters".

use crate::ParamsError;

/// Parameters of the aggregate-advantage model and the selection process.
///
/// These are exactly the inputs the paper's p-thread selection tool takes
/// (§4.1): processor sequencing width and memory latency, the unassisted
/// program IPC, and the p-thread construction constraints (maximum length,
/// optimization/merging switches). The slicing scope constrains the slicer
/// upstream ([`preexec_slice::SliceForestBuilder`]) and is recorded here
/// for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionParams {
    /// Sequencing (fetch) width of the processor, `BW_seq`. Paper: 8.
    pub bw_seq: f64,
    /// Unassisted main-thread IPC of the sample, used to estimate the main
    /// thread's effective sequencing rate.
    pub ipc: f64,
    /// `L_cm`: the miss latency a p-thread can usefully tolerate, in
    /// cycles. Paper: 70-cycle memory (plus L2 access seen by the core).
    pub miss_latency: f64,
    /// Maximum p-thread body length, applied *after* optimization.
    /// Paper default: 32.
    pub max_pthread_len: usize,
    /// Slicing scope used upstream (recorded for reports). Paper: 1024.
    pub slicing_scope: usize,
    /// Apply p-thread optimization (store–load elimination, constant
    /// folding, move elimination) before scoring.
    pub optimize: bool,
    /// Merge selected p-threads with matching dataflow prefixes.
    pub merge: bool,
}

impl SelectionParams {
    /// `BW_seq-mt`: the main thread's expected sequencing rate — "the
    /// average of the unassisted main thread IPC and the sequencing width
    /// of the processor, weighted 2-to-1 in favor of the IPC" (§3.1).
    ///
    /// ```
    /// use preexec_core::SelectionParams;
    /// let p = SelectionParams { bw_seq: 4.0, ipc: 1.0, ..SelectionParams::default() };
    /// assert_eq!(p.bw_seq_mt(), 2.0); // the paper's working example
    /// ```
    pub fn bw_seq_mt(&self) -> f64 {
        (2.0 * self.ipc + self.bw_seq) / 3.0
    }

    /// Overhead per p-thread instruction: sequencing cost `1 / BW_seq`
    /// discounted by expected main-thread utilization `BW_seq-mt / BW_seq`
    /// (§3.1, Equation 4).
    ///
    /// ```
    /// use preexec_core::SelectionParams;
    /// let p = SelectionParams { bw_seq: 4.0, ipc: 1.0, ..SelectionParams::default() };
    /// assert_eq!(p.oh_per_inst(), 0.125); // the paper's working example
    /// ```
    pub fn oh_per_inst(&self) -> f64 {
        (1.0 / self.bw_seq) * (self.bw_seq_mt() / self.bw_seq)
    }

    /// The paper's working-example configuration (§3.1): 4-wide processor,
    /// IPC 1, 8-cycle miss latency, p-threads shorter than 8 instructions.
    pub fn working_example() -> SelectionParams {
        SelectionParams {
            bw_seq: 4.0,
            ipc: 1.0,
            miss_latency: 8.0,
            max_pthread_len: 7,
            slicing_scope: 40,
            optimize: false,
            merge: false,
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if any quantity is non-positive, non-finite, or if the IPC
    /// exceeds the sequencing width.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Fallible [`validate`](Self::validate): every invalid field maps to
    /// a distinct [`ParamsError`] variant (the first offending field, in
    /// declaration order, is reported).
    ///
    /// # Errors
    ///
    /// Returns the variant naming the invalid field.
    pub fn try_validate(&self) -> Result<(), ParamsError> {
        if !(self.bw_seq.is_finite() && self.bw_seq > 0.0) {
            return Err(ParamsError::BadBwSeq(self.bw_seq));
        }
        if !(self.ipc.is_finite() && self.ipc > 0.0) {
            return Err(ParamsError::BadIpc(self.ipc));
        }
        if self.ipc > self.bw_seq {
            return Err(ParamsError::IpcExceedsWidth { ipc: self.ipc, bw_seq: self.bw_seq });
        }
        if !(self.miss_latency.is_finite() && self.miss_latency > 0.0) {
            return Err(ParamsError::BadMissLatency(self.miss_latency));
        }
        if self.max_pthread_len == 0 {
            return Err(ParamsError::ZeroMaxPthreadLen);
        }
        if self.slicing_scope == 0 {
            return Err(ParamsError::ZeroSlicingScope);
        }
        Ok(())
    }
}

impl Default for SelectionParams {
    /// The paper's default evaluation configuration: 8-wide, 70-cycle
    /// memory, 32-instruction p-threads from 1024-instruction scopes, with
    /// optimization and merging on. `ipc` defaults to 1.0 and should be
    /// set from an unassisted timing run of the sample.
    fn default() -> SelectionParams {
        SelectionParams {
            bw_seq: 8.0,
            ipc: 1.0,
            miss_latency: 70.0,
            max_pthread_len: 32,
            slicing_scope: 1024,
            optimize: true,
            merge: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_example_rates() {
        let p = SelectionParams::working_example();
        assert_eq!(p.bw_seq_mt(), 2.0);
        assert_eq!(p.oh_per_inst(), 0.125);
    }

    #[test]
    fn default_rates() {
        let p = SelectionParams::default();
        // (2*1 + 8)/3 = 10/3
        assert!((p.bw_seq_mt() - 10.0 / 3.0).abs() < 1e-12);
        assert!(p.oh_per_inst() > 0.0);
    }

    #[test]
    fn higher_ipc_means_higher_overhead() {
        let lo = SelectionParams { ipc: 1.0, ..SelectionParams::default() };
        let hi = SelectionParams { ipc: 4.0, ..SelectionParams::default() };
        assert!(hi.oh_per_inst() > lo.oh_per_inst());
    }

    #[test]
    fn validate_accepts_defaults() {
        SelectionParams::default().validate();
        SelectionParams::working_example().validate();
    }

    #[test]
    #[should_panic(expected = "ipc")]
    fn validate_rejects_zero_ipc() {
        SelectionParams { ipc: 0.0, ..SelectionParams::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "ipc")]
    fn validate_rejects_ipc_above_width() {
        SelectionParams { ipc: 9.0, ..SelectionParams::default() }.validate();
    }

    #[test]
    fn try_validate_maps_each_field_to_a_distinct_variant() {
        use crate::ParamsError;
        let base = SelectionParams::default;
        assert!(matches!(
            SelectionParams { bw_seq: f64::NAN, ..base() }.try_validate(),
            Err(ParamsError::BadBwSeq(_))
        ));
        assert!(matches!(
            SelectionParams { bw_seq: -8.0, ..base() }.try_validate(),
            Err(ParamsError::BadBwSeq(_))
        ));
        assert!(matches!(
            SelectionParams { bw_seq: 0.0, ..base() }.try_validate(),
            Err(ParamsError::BadBwSeq(_))
        ));
        assert!(matches!(
            SelectionParams { ipc: f64::NAN, ..base() }.try_validate(),
            Err(ParamsError::BadIpc(_))
        ));
        assert!(matches!(
            SelectionParams { ipc: -1.0, ..base() }.try_validate(),
            Err(ParamsError::BadIpc(_))
        ));
        assert!(matches!(
            SelectionParams { ipc: 0.0, ..base() }.try_validate(),
            Err(ParamsError::BadIpc(_))
        ));
        assert!(matches!(
            SelectionParams { ipc: 9.0, ..base() }.try_validate(),
            Err(ParamsError::IpcExceedsWidth { .. })
        ));
        assert!(matches!(
            SelectionParams { miss_latency: f64::INFINITY, ..base() }.try_validate(),
            Err(ParamsError::BadMissLatency(_))
        ));
        assert!(matches!(
            SelectionParams { miss_latency: 0.0, ..base() }.try_validate(),
            Err(ParamsError::BadMissLatency(_))
        ));
        assert!(matches!(
            SelectionParams { max_pthread_len: 0, ..base() }.try_validate(),
            Err(ParamsError::ZeroMaxPthreadLen)
        ));
        assert!(matches!(
            SelectionParams { slicing_scope: 0, ..base() }.try_validate(),
            Err(ParamsError::ZeroSlicingScope)
        ));
        assert_eq!(base().try_validate(), Ok(()));
    }
}
