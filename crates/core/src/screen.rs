//! Tier-one candidate screening: a static, admissible upper bound on
//! `ADV_agg` per slice-tree node, computed from per-node aggregates in
//! `O(1)` after one `O(tree)` latency fold — no per-instruction body
//! construction and no SCDH recursion.
//!
//! The exact scorer ([`crate::select::score_tree_nodes`]) walks every
//! candidate's body twice (p-thread and main-thread SCDH) after building
//! the body from the root path. Screening replaces that walk with four
//! block-level quantities every node already carries (`depth`,
//! `DC_pt-cm`, `DIST_pl`, and a latency prefix sum folded once per
//! tree), and prunes a candidate only when its *upper bound* cannot beat
//! the null candidate — selecting nothing, the bar every candidate must
//! clear (`net > 0`) to enter the overlap fixed point. Because a
//! candidate with `ADV_agg ≤ 0` can never be selected (reductions only
//! lower nets, and unselected candidates contribute none), replacing its
//! score slot with `None` leaves the selected set — and therefore every
//! downstream byte — identical. DESIGN.md §16 carries the derivation and
//! the exactness proof.
//!
//! The bound (for a trigger at depth `k`, miss latency `L_cm`):
//!
//! ```text
//! ub_SCDH_mt = max(DIST_pl(trigger), k) / BW_seq-mt + Σ lat(path 0..k-1)
//! lb_SCDH_pt = optimize ? 1 : (k-1) + lat(root load)
//! ub_LT      = clamp(⌊ub_SCDH_mt − lb_SCDH_pt⌋, 0, L_cm)
//! lb_OH      = oh_per_inst · (optimize ? 1 : k)
//! ub_ADV     = DC_pt-cm·ub_LT − DC_trig·lb_OH
//! ```
//!
//! Admissibility (`ub_ADV ≥ ADV_agg` exactly scored): the main-thread
//! sequencing constraint is maximal at the root (`DIST_pl` of deeper
//! nodes only subtracts; the physical floor `k−d` is largest at `d=0`),
//! each SCDH step adds at most its instruction latency, the p-thread
//! height is at least its last instruction's sequencing slot plus
//! latency, and `⌊·⌋`/`clamp` are monotone. Optimization can only
//! shrink the executed body, so under `optimize` the p-thread bound
//! falls back to the universal minimum (one instruction, latency ≥ 1).

use crate::SelectionParams;
use preexec_isa::Pc;
use preexec_slice::SliceTree;

/// What screening did to one tree (or, summed, to a whole forest):
/// every non-root node is counted exactly once as pruned or surviving.
///
/// Mirrored into the metrics registry as the `screen.pruned` /
/// `screen.survivors` counters by the screened selection driver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScreenStats {
    /// Candidates whose bound proved they cannot be selected (plus the
    /// statically illegal: unoptimized bodies over `max_pthread_len`).
    pub pruned: u64,
    /// Candidates passed to the exact ADVagg/SCDH scorer.
    pub survivors: u64,
}

impl ScreenStats {
    /// Accumulates another tree's counts.
    pub fn absorb(&mut self, other: &ScreenStats) {
        self.pruned += other.pruned;
        self.survivors += other.survivors;
    }

    /// Total candidates screened.
    pub fn candidates(&self) -> u64 {
        self.pruned + self.survivors
    }
}

/// Per-node upper bounds on `ADV_agg` for every candidate of `tree`,
/// indexed by node id. The root (node 0) is not a candidate; its slot is
/// `+∞` so it never reads as prunable.
///
/// One forward pass suffices for the latency fold because parent ids are
/// always smaller than child ids (children are appended after their
/// parents, see [`SliceTree`]).
pub fn advantage_upper_bounds(
    tree: &SliceTree,
    dc_trig_of: &dyn Fn(Pc) -> u64,
    params: &SelectionParams,
) -> Vec<f64> {
    let n = tree.len();
    // lat_to_root[id]: summed scdh latency of the path root..=id. For a
    // trigger at depth k, lat_to_root[parent] is exactly the latency sum
    // of its k-instruction main body (path depths 0..k-1).
    let mut lat_to_root = vec![0.0f64; n];
    for (id, node) in tree.iter() {
        let lat = node.inst.op.scdh_latency() as f64;
        lat_to_root[id] = match node.parent {
            Some(p) => lat_to_root[p] + lat,
            None => lat,
        };
    }

    let bw_mt = params.bw_seq_mt();
    let root_lat = tree.root().inst.op.scdh_latency() as f64;
    let oh_inst = params.oh_per_inst();
    let mut bounds = vec![f64::INFINITY; n];
    for (id, node) in tree.iter().skip(1) {
        let k = node.depth as f64;
        let parent = match node.parent {
            Some(p) => p,
            None => continue, // unreachable: only the root has no parent
        };
        let ub_mt = node.dist_pl().max(k) / bw_mt + lat_to_root[parent];
        let lb_pt = if params.optimize { 1.0 } else { (k - 1.0) + root_lat };
        let ub_lt = (ub_mt - lb_pt).floor().clamp(0.0, params.miss_latency);
        let lb_oh = oh_inst * if params.optimize { 1.0 } else { k };
        bounds[id] = node.dc_ptcm as f64 * ub_lt - dc_trig_of(node.pc) as f64 * lb_oh;
    }
    bounds
}

/// Screens every candidate of `tree`: returns a keep-mask indexed by
/// node id (`keep[0]`, the root, is always `false` — it is not a
/// candidate and is counted in neither bucket) plus the pruned/survivor
/// counts.
///
/// A node is pruned when it is statically illegal (optimization off and
/// the body, whose length equals the depth, exceeds `max_pthread_len` —
/// the exact scorer returns `None`) or when its advantage upper bound
/// cannot clear the null candidate. The bound comparison carries a
/// magnitude-scaled epsilon so floating-point drift between the bound
/// and the exact score can never prune a candidate whose exact
/// `ADV_agg` is positive.
pub fn screen_tree(
    tree: &SliceTree,
    dc_trig_of: &dyn Fn(Pc) -> u64,
    params: &SelectionParams,
) -> (Vec<bool>, ScreenStats) {
    let bounds = advantage_upper_bounds(tree, dc_trig_of, params);
    let mut keep = vec![false; tree.len()];
    let mut stats = ScreenStats::default();
    for (id, node) in tree.iter().skip(1) {
        let legal = params.optimize || (node.depth as usize) <= params.max_pthread_len;
        // Margin ~ 1e-9 of the terms entering the bound: both scores are
        // within machine epsilon of their real values, so a bound this
        // far below zero proves the exact score is negative too.
        let scale = 1.0
            + node.dc_ptcm as f64 * params.miss_latency
            + dc_trig_of(node.pc) as f64 * params.oh_per_inst();
        if legal && bounds[id] > -1e-9 * scale {
            keep[id] = true;
            stats.survivors += 1;
        } else {
            stats.pruned += 1;
        }
    }
    (keep, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::score_tree_nodes;
    use preexec_func::{run_trace, TraceConfig};
    use preexec_isa::assemble;
    use preexec_slice::{SliceForest, SliceForestBuilder};

    fn forest_for(src: &str) -> SliceForest {
        let p = assemble("t", src).unwrap();
        let mut b = SliceForestBuilder::new(1024, 32);
        run_trace(&p, &TraceConfig::default(), |d| b.observe(d));
        b.finish()
    }

    const STREAM: &str = "
        li r1, 0x100000
        li r2, 0
        li r3, 4096
    top:
        bge r2, r3, done
        ld  r4, 0(r1)
        addi r1, r1, 64
        addi r2, r2, 1
        j top
    done:
        halt";

    fn param_grid() -> Vec<SelectionParams> {
        let mut out = Vec::new();
        for optimize in [false, true] {
            for (ipc, lcm) in [(0.5, 78.0), (2.0, 70.0), (1.0, 8.0)] {
                out.push(SelectionParams {
                    ipc,
                    miss_latency: lcm,
                    optimize,
                    ..SelectionParams::default()
                });
            }
        }
        out.push(SelectionParams { optimize: false, ..SelectionParams::working_example() });
        out
    }

    /// The contract everything else rests on: for every node of every
    /// tree, the static bound dominates the exactly computed advantage.
    #[test]
    fn bound_is_admissible_on_real_trees() {
        let forest = forest_for(STREAM);
        for params in param_grid() {
            for (_, tree) in forest.trees() {
                let dc = |pc| forest.dc_trig(pc);
                let bounds = advantage_upper_bounds(tree, &dc, &params);
                let exact = score_tree_nodes(tree, &dc, &params);
                for (id, sc) in exact.iter().enumerate() {
                    if let Some(sc) = sc {
                        assert!(
                            bounds[id] >= sc.advantage.adv_agg - 1e-9,
                            "node {id}: bound {} < exact {} (optimize={})",
                            bounds[id],
                            sc.advantage.adv_agg,
                            params.optimize
                        );
                    }
                }
            }
        }
    }

    /// Pruned candidates are exactly those the selector can never pick:
    /// either the exact scorer rejects them outright or their exact
    /// advantage cannot clear the null candidate.
    #[test]
    fn pruned_candidates_never_score_positive() {
        let forest = forest_for(STREAM);
        for params in param_grid() {
            for (_, tree) in forest.trees() {
                let dc = |pc| forest.dc_trig(pc);
                let (keep, stats) = screen_tree(tree, &dc, &params);
                let exact = score_tree_nodes(tree, &dc, &params);
                assert_eq!(stats.candidates() as usize, tree.len() - 1);
                assert!(!keep[0], "the root is never a candidate");
                for (id, kept) in keep.iter().enumerate().skip(1) {
                    if !kept {
                        match &exact[id] {
                            None => {}
                            Some(sc) => assert!(
                                sc.advantage.adv_agg <= 0.0,
                                "pruned node {id} scores {}",
                                sc.advantage.adv_agg
                            ),
                        }
                    }
                }
            }
        }
    }

    /// Unoptimized bodies longer than `max_pthread_len` are statically
    /// illegal and must be pruned without consulting the bound.
    #[test]
    fn length_illegal_candidates_are_pruned() {
        let forest = forest_for(STREAM);
        let params = SelectionParams {
            ipc: 2.0,
            optimize: false,
            max_pthread_len: 2,
            ..SelectionParams::default()
        };
        for (_, tree) in forest.trees() {
            let dc = |pc| forest.dc_trig(pc);
            let (keep, _) = screen_tree(tree, &dc, &params);
            for (id, node) in tree.iter().skip(1) {
                if node.depth as usize > params.max_pthread_len {
                    assert!(!keep[id], "over-length node {id} kept");
                }
            }
        }
    }

    /// A pure-chain tree (single leaf): root load plus `depth` dependent
    /// induction addis, one slice, `DC_pt-cm = 1` everywhere.
    fn chain_tree(depth: usize) -> SliceTree {
        use preexec_slice::SliceEntry;
        let p = assemble("chain", "ld r4, 0(r1)\n addi r1, r1, 64\n halt").unwrap();
        let mut slice = vec![SliceEntry {
            pc: 0,
            inst: *p.inst(0),
            dist: 0,
            dep_positions: vec![1],
        }];
        for d in 1..=depth {
            slice.push(SliceEntry {
                pc: 1,
                inst: *p.inst(1),
                dist: d as u64,
                dep_positions: if d < depth { vec![d as u32 + 1] } else { vec![] },
            });
        }
        let mut tree = SliceTree::new(0, *p.inst(0));
        tree.insert_slice(&slice);
        tree
    }

    /// Candidates whose trigger launches far more often than it covers
    /// misses are exactly the ones the bound rejects: one covered miss
    /// buys at most `L_cm` cycles, which a hot enough trigger's summed
    /// overhead always exceeds.
    #[test]
    fn high_launch_cost_candidates_are_pruned() {
        let tree = chain_tree(3);
        let params = SelectionParams { ipc: 2.0, ..SelectionParams::default() };
        // Cheap triggers survive…
        let (keep, stats) = screen_tree(&tree, &|_| 1, &params);
        assert!(keep.iter().skip(1).any(|&k| k), "no survivors: {stats:?}");
        assert_eq!(stats.candidates(), 3);
        // …hot triggers covering a single miss cannot pay for themselves.
        let (keep, stats) = screen_tree(&tree, &|_| 1_000_000, &params);
        assert!(keep.iter().skip(1).all(|&k| !k), "hot trigger kept: {stats:?}");
        assert_eq!(stats.survivors, 0);
        assert_eq!(stats.pruned, 3);
    }
}
