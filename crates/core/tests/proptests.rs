//! Property tests on the model's mathematical structure: SCDH and
//! aggregate-advantage monotonicities the paper's arguments rely on.

use preexec_core::advantage::aggregate_advantage;
use preexec_core::{scdh, Body, BodyInst, SelectionParams};
use preexec_isa::{Inst, Op, Reg};
use proptest::prelude::*;

/// A random dependence-chain body ending in a load, with non-decreasing
/// main-thread distances that respect physical spacing.
fn body_strategy() -> impl Strategy<Value = Body> {
    prop::collection::vec((0u8..3, 1u64..16), 0..20).prop_map(|chain| {
        let mut insts = Vec::new();
        let mut dist = 0u64;
        let n = chain.len();
        for (i, (kind, gap)) in chain.into_iter().enumerate() {
            dist += gap;
            let inst = match kind {
                0 => Inst::itype(Op::Addi, Reg::new(1), Reg::new(1), 8),
                1 => Inst::rtype(Op::Mul, Reg::new(1), Reg::new(1), Reg::new(1)),
                _ => Inst::itype(Op::Sll, Reg::new(1), Reg::new(1), 1),
            };
            let deps = if i == 0 { vec![] } else { vec![i - 1] };
            insts.push(BodyInst { inst, deps, mt_dist: dist as f64 });
        }
        dist += 1;
        let deps = if n == 0 { vec![] } else { vec![n - 1] };
        insts.push(BodyInst {
            inst: Inst::load(Op::Ld, Reg::new(2), Reg::new(1), 0),
            deps,
            mt_dist: dist as f64,
        });
        Body::new(insts)
    })
}

fn params() -> SelectionParams {
    SelectionParams { ipc: 2.0, ..SelectionParams::default() }
}

proptest! {
    /// SCDH is at least the dataflow height (every instruction ≥ 1 cycle
    /// on the chain) and at least the sequencing bound of the last
    /// instruction.
    #[test]
    fn scdh_lower_bounds(body in body_strategy()) {
        let h = scdh::scdh_pthread(&body);
        // The chain is fully dependent: height ≥ number of instructions.
        prop_assert!(h >= body.len() as f64);
        let mt = scdh::scdh_main(&body, 2.0);
        let last_sc = body.insts().last().unwrap().mt_dist / 2.0;
        prop_assert!(mt >= last_sc);
    }

    /// The p-thread never loses to the main thread on the same dense
    /// chain: SCDH_pt ≤ SCDH_mt whenever main-thread distances are at
    /// least the body positions (true of every real slice).
    #[test]
    fn pthread_at_least_as_fast(body in body_strategy()) {
        prop_assume!(body
            .insts()
            .iter()
            .enumerate()
            .all(|(i, bi)| bi.mt_dist >= i as f64));
        let pt = scdh::scdh_pthread(&body);
        let mt = scdh::scdh_main(&body, params().bw_seq_mt());
        prop_assert!(pt <= mt + 1e-9, "pt {pt} > mt {mt}");
    }

    /// Aggregate advantage decomposes: ADV = LTagg − OHagg, LT is capped
    /// and non-negative, overhead is linear in launches.
    #[test]
    fn advantage_structure(
        body in body_strategy(),
        dc_trig in 1u64..10_000,
        dc_ptcm in 0u64..10_000,
    ) {
        let p = params();
        let a = aggregate_advantage(&p, &body, &body, dc_trig, dc_ptcm);
        prop_assert!(a.lt >= 0.0 && a.lt <= p.miss_latency);
        prop_assert!((a.adv_agg - (a.lt_agg - a.oh_agg)).abs() < 1e-9);
        prop_assert!((a.lt_agg - a.lt * dc_ptcm as f64).abs() < 1e-9);
        let double = aggregate_advantage(&p, &body, &body, dc_trig * 2, dc_ptcm);
        prop_assert!((double.oh_agg - 2.0 * a.oh_agg).abs() < 1e-6);
    }

    /// More useful instances never decrease the score; more useless
    /// launches never increase it.
    #[test]
    fn advantage_monotonicity(body in body_strategy(), dc in 1u64..5_000) {
        let p = params();
        let lo = aggregate_advantage(&p, &body, &body, dc, dc / 2);
        let hi = aggregate_advantage(&p, &body, &body, dc, dc);
        prop_assert!(hi.adv_agg >= lo.adv_agg - 1e-9);
        let more_launches = aggregate_advantage(&p, &body, &body, dc * 3, dc / 2);
        prop_assert!(more_launches.adv_agg <= lo.adv_agg + 1e-9);
    }

    /// Full coverage is claimed exactly when LT reaches the miss latency.
    #[test]
    fn full_coverage_definition(body in body_strategy()) {
        let p = params();
        let a = aggregate_advantage(&p, &body, &body, 10, 10);
        prop_assert_eq!(a.full_coverage, a.lt >= p.miss_latency);
    }
}
