//! Property tests on the model's mathematical structure: SCDH and
//! aggregate-advantage monotonicities the paper's arguments rely on, plus
//! the exactness contract of the static screening pass (screened and
//! unscreened selection must agree bit-for-bit on arbitrary forests).

use preexec_core::advantage::aggregate_advantage;
use preexec_core::select::{score_tree_nodes, ScoredCandidate};
use preexec_core::{
    advantage_upper_bounds, scdh, try_select_pthreads_stats, validate_candidate_score, Body,
    BodyInst, Parallelism, SelectionParams,
};
use preexec_isa::{Inst, Op, Pc, Reg};
use preexec_slice::{SliceEntry, SliceForest, SliceTree};
use proptest::prelude::*;

/// A random dependence-chain body ending in a load, with non-decreasing
/// main-thread distances that respect physical spacing.
fn body_strategy() -> impl Strategy<Value = Body> {
    prop::collection::vec((0u8..3, 1u64..16), 0..20).prop_map(|chain| {
        let mut insts = Vec::new();
        let mut dist = 0u64;
        let n = chain.len();
        for (i, (kind, gap)) in chain.into_iter().enumerate() {
            dist += gap;
            let inst = match kind {
                0 => Inst::itype(Op::Addi, Reg::new(1), Reg::new(1), 8),
                1 => Inst::rtype(Op::Mul, Reg::new(1), Reg::new(1), Reg::new(1)),
                _ => Inst::itype(Op::Sll, Reg::new(1), Reg::new(1), 1),
            };
            let deps = if i == 0 { vec![] } else { vec![i - 1] };
            insts.push(BodyInst { inst, deps, mt_dist: dist as f64 });
        }
        dist += 1;
        let deps = if n == 0 { vec![] } else { vec![n - 1] };
        insts.push(BodyInst {
            inst: Inst::load(Op::Ld, Reg::new(2), Reg::new(1), 0),
            deps,
            mt_dist: dist as f64,
        });
        Body::new(insts)
    })
}

fn params() -> SelectionParams {
    SelectionParams { ipc: 2.0, ..SelectionParams::default() }
}

proptest! {
    /// SCDH is at least the dataflow height (every instruction ≥ 1 cycle
    /// on the chain) and at least the sequencing bound of the last
    /// instruction.
    #[test]
    fn scdh_lower_bounds(body in body_strategy()) {
        let h = scdh::scdh_pthread(&body);
        // The chain is fully dependent: height ≥ number of instructions.
        prop_assert!(h >= body.len() as f64);
        let mt = scdh::scdh_main(&body, 2.0);
        let last_sc = body.insts().last().unwrap().mt_dist / 2.0;
        prop_assert!(mt >= last_sc);
    }

    /// The p-thread never loses to the main thread on the same dense
    /// chain: SCDH_pt ≤ SCDH_mt whenever main-thread distances are at
    /// least the body positions (true of every real slice).
    #[test]
    fn pthread_at_least_as_fast(body in body_strategy()) {
        prop_assume!(body
            .insts()
            .iter()
            .enumerate()
            .all(|(i, bi)| bi.mt_dist >= i as f64));
        let pt = scdh::scdh_pthread(&body);
        let mt = scdh::scdh_main(&body, params().bw_seq_mt());
        prop_assert!(pt <= mt + 1e-9, "pt {pt} > mt {mt}");
    }

    /// Aggregate advantage decomposes: ADV = LTagg − OHagg, LT is capped
    /// and non-negative, overhead is linear in launches.
    #[test]
    fn advantage_structure(
        body in body_strategy(),
        dc_trig in 1u64..10_000,
        dc_ptcm in 0u64..10_000,
    ) {
        let p = params();
        let a = aggregate_advantage(&p, &body, &body, dc_trig, dc_ptcm);
        prop_assert!(a.lt >= 0.0 && a.lt <= p.miss_latency);
        prop_assert!((a.adv_agg - (a.lt_agg - a.oh_agg)).abs() < 1e-9);
        prop_assert!((a.lt_agg - a.lt * dc_ptcm as f64).abs() < 1e-9);
        let double = aggregate_advantage(&p, &body, &body, dc_trig * 2, dc_ptcm);
        prop_assert!((double.oh_agg - 2.0 * a.oh_agg).abs() < 1e-6);
    }

    /// More useful instances never decrease the score; more useless
    /// launches never increase it.
    #[test]
    fn advantage_monotonicity(body in body_strategy(), dc in 1u64..5_000) {
        let p = params();
        let lo = aggregate_advantage(&p, &body, &body, dc, dc / 2);
        let hi = aggregate_advantage(&p, &body, &body, dc, dc);
        prop_assert!(hi.adv_agg >= lo.adv_agg - 1e-9);
        let more_launches = aggregate_advantage(&p, &body, &body, dc * 3, dc / 2);
        prop_assert!(more_launches.adv_agg <= lo.adv_agg + 1e-9);
    }

    /// Full coverage is claimed exactly when LT reaches the miss latency.
    #[test]
    fn full_coverage_definition(body in body_strategy()) {
        let p = params();
        let a = aggregate_advantage(&p, &body, &body, 10, 10);
        prop_assert_eq!(a.full_coverage, a.lt >= p.miss_latency);
    }
}

/// An instruction for a random slice entry: chain ops plus a load, so
/// trees mix unit and multi-cycle SCDH latencies.
fn inst_of(kind: u8) -> Inst {
    match kind % 4 {
        0 => Inst::itype(Op::Addi, Reg::new(1), Reg::new(1), 8),
        1 => Inst::rtype(Op::Mul, Reg::new(1), Reg::new(1), Reg::new(1)),
        2 => Inst::itype(Op::Sll, Reg::new(1), Reg::new(1), 1),
        _ => Inst::load(Op::Ld, Reg::new(3), Reg::new(1), 0),
    }
}

/// One random backward slice rooted at `root_pc`: a chain of random PCs
/// drawn from a small pool (so repeated slices share tree paths) with
/// strictly increasing dynamic distances.
fn slice_strategy(root_pc: Pc) -> impl Strategy<Value = Vec<SliceEntry>> {
    prop::collection::vec((1u32..12, 0u8..4, 1u64..16), 0..8).prop_map(move |chain| {
        let n = chain.len();
        let mut slice = vec![SliceEntry {
            pc: root_pc,
            inst: Inst::load(Op::Ld, Reg::new(2), Reg::new(1), 0),
            dist: 0,
            dep_positions: if n == 0 { vec![] } else { vec![1] },
        }];
        let mut dist = 0u64;
        for (i, (pc_off, kind, gap)) in chain.into_iter().enumerate() {
            dist += gap;
            slice.push(SliceEntry {
                pc: root_pc + pc_off,
                inst: inst_of(kind),
                dist,
                dep_positions: if i + 1 < n { vec![i as u32 + 2] } else { vec![] },
            });
        }
        slice
    })
}

/// A random slice forest assembled without tracing: each tree folds a
/// handful of random slices (shared prefixes merge, so `DC_pt-cm` and
/// `DIST_pl` vary per node) and the execution-count table randomizes
/// `DC_trig` from cold to hot, exercising both pruning and survival.
/// Slices are generated against a placeholder root PC and retagged per
/// tree (forests key trees by distinct root PCs).
fn forest_strategy() -> impl Strategy<Value = SliceForest> {
    let slices = prop::collection::vec(slice_strategy(0), 1..6);
    (
        prop::collection::vec(slices, 1..3),
        prop::collection::vec(1u64..5_000, 256..257),
    )
        .prop_map(|(per_tree, counts)| {
            let trees = per_tree
                .into_iter()
                .enumerate()
                .map(|(i, mut slices)| {
                    let root_pc = 100 + 50 * i as Pc;
                    let mut t =
                        SliceTree::new(root_pc, Inst::load(Op::Ld, Reg::new(2), Reg::new(1), 0));
                    for s in &mut slices {
                        s[0].pc = root_pc;
                        t.insert_slice(s);
                    }
                    t
                })
                .collect();
            let exec_counts =
                counts.iter().enumerate().map(|(pc, &c)| (pc as Pc, c)).collect();
            SliceForest::from_parts(trees, exec_counts, 1_000_000)
        })
}

fn params_strategy() -> impl Strategy<Value = SelectionParams> {
    (
        prop::sample::select(vec![4.0f64, 8.0]),
        1u64..40,
        8u64..150,
        1usize..16,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(bw_seq, ipc_tenths, miss_latency, max_pthread_len, optimize, merge)| {
            SelectionParams {
                bw_seq,
                ipc: (ipc_tenths as f64 / 10.0).min(bw_seq),
                miss_latency: miss_latency as f64,
                max_pthread_len,
                optimize,
                merge,
                ..SelectionParams::default()
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The screening contract: for arbitrary forests and parameters the
    /// screened driver returns bit-identical selections (Debug equality
    /// is bitwise f64 equality) at every thread count, and the static
    /// bound is admissible — no pruned candidate scores positive.
    #[test]
    fn screening_is_exact_on_random_forests(
        forest in forest_strategy(),
        p in params_strategy(),
    ) {
        let (exact, _, off_stats) =
            try_select_pthreads_stats(&forest, &p, Parallelism::serial(), false)
                .expect("unscreened selection");
        prop_assert_eq!(off_stats.candidates(), 0);
        let reference = format!("{exact:?}");
        for threads in [1usize, 2, 8] {
            let (screened, _, stats) =
                try_select_pthreads_stats(&forest, &p, Parallelism::new(threads), true)
                    .expect("screened selection");
            prop_assert_eq!(
                format!("{screened:?}"),
                reference.clone(),
                "screened selection diverged at {} threads",
                threads
            );
            let total: u64 = forest.trees().map(|(_, t)| t.len() as u64 - 1).sum();
            prop_assert_eq!(stats.candidates(), total);
        }
        // Admissibility, node by node: bound ≥ exact score, and every
        // pruned candidate is illegal or non-positive.
        for (_, tree) in forest.trees() {
            let dc = |pc: Pc| forest.dc_trig(pc);
            let bounds = advantage_upper_bounds(tree, &dc, &p);
            let table = score_tree_nodes(tree, &dc, &p);
            for (node, slot) in table.iter().enumerate().skip(1) {
                if let Some(sc) = slot {
                    let adv = sc.advantage.adv_agg;
                    prop_assert!(
                        bounds[node] >= adv - 1e-9 * (1.0 + adv.abs()),
                        "bound {} < exact {} at node {}",
                        bounds[node],
                        adv,
                        node
                    );
                }
            }
        }
    }

    /// Degenerate main-thread weights (NaN/±∞ distances) must never be
    /// silently ordered: the driver-level validation accepts a candidate
    /// exactly when its aggregate advantage is finite, and rejects with
    /// the typed error otherwise. (With validated params the advantage
    /// model itself absorbs most poison — `max` drops NaN and `clamp`
    /// caps +∞ at the miss latency — so this also documents that the
    /// rejection path is defense in depth, not a live code path.)
    #[test]
    fn degenerate_weights_are_rejected_not_ordered(
        body in body_strategy(),
        poison in prop::sample::select(vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY]),
        idx in 0usize..32,
        dc_trig in 1u64..10_000,
        dc_ptcm in 1u64..10_000,
    ) {
        let mut insts = body.insts().to_vec();
        let at = idx % insts.len();
        insts[at].mt_dist = poison;
        let poisoned = Body::new(insts);
        let adv = aggregate_advantage(&params(), &poisoned, &poisoned, dc_trig, dc_ptcm);
        let sc = ScoredCandidate { advantage: adv, exec_body: poisoned };
        let checked = validate_candidate_score(&sc, 7, 3);
        prop_assert_eq!(adv.adv_agg.is_finite(), checked.is_ok());
        if let Err(e) = checked {
            prop_assert_eq!(
                e,
                preexec_slice::SliceError::NonFiniteScore { pc: 7, node: 3 }
            );
        }
        // Force the non-finite branch too: the validator must reject any
        // hand-poisoned score regardless of how the model behaves.
        let mut forced = adv;
        forced.adv_agg = poison;
        let forced = ScoredCandidate { advantage: forced, exec_body: body };
        prop_assert_eq!(
            validate_candidate_score(&forced, 11, 5),
            Err(preexec_slice::SliceError::NonFiniteScore { pc: 11, node: 5 })
        );
    }
}
