//! Property tests for the histogram's quantile contract: for any set of
//! recorded samples and any q, `quantile_us(q)` must be an upper bound of
//! the true q-quantile — including samples in the saturating top bucket,
//! which is exactly where the pre-fix implementation violated it.

use preexec_obs::Histogram;
use proptest::prelude::*;

/// The true q-quantile: the smallest sample `v` such that at least
/// `ceil(q * n)` samples are `<= v`.
fn true_quantile(samples: &[u64], q: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[target - 1]
}

/// Samples spanning every regime: sub-µs, ordinary latencies, the
/// saturating top bucket, and the extremes.
fn sample_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(u64::MAX),
        0u64..4096,
        1u64..1_000_000_000,
        (1u64 << 38)..(1u64 << 42),
        (u64::MAX - 1_000_000)..u64::MAX,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn quantile_bounds_the_true_quantile(
        samples in prop::collection::vec(sample_strategy(), 1..64),
        q_pct in 0u32..101,
    ) {
        let q = f64::from(q_pct) / 100.0;
        let mut h = Histogram::new();
        for &s in &samples {
            h.record_us(s);
        }
        let bound = h.quantile_us(q);
        let truth = true_quantile(&samples, q);
        prop_assert!(
            bound >= truth,
            "quantile_us({q}) = {bound} < true quantile {truth} for {samples:?}"
        );
        // And the bound never exceeds the data (the other half of the fix).
        let max = samples.iter().copied().max().unwrap_or(0);
        prop_assert!(
            bound <= max,
            "quantile_us({q}) = {bound} exceeds max sample {max} for {samples:?}"
        );
    }

    #[test]
    fn full_quantile_always_covers_the_max_sample(
        samples in prop::collection::vec(sample_strategy(), 1..64),
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record_us(s);
        }
        prop_assert_eq!(h.quantile_us(1.0), h.max_us());
    }
}
