//! Power-of-two latency histograms.
//!
//! Buckets double in width so the histogram spans microseconds to days in
//! a fixed 40-slot array with no allocation on the record path. This type
//! started life as the service's per-stage latency histogram
//! (`preexec-serve`) and moved here so every layer of the system can
//! record into the shared metrics [`Registry`](crate::Registry).

use std::time::Duration;

/// Number of power-of-two buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` microseconds (bucket 0 also absorbs sub-microsecond
/// samples, the last bucket absorbs everything beyond ~2^39 µs ≈ 6 days).
pub(crate) const BUCKETS: usize = 40;

/// A latency histogram with power-of-two microsecond buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { buckets: [0; BUCKETS], count: 0, sum_us: 0, max_us: 0 }
    }

    /// Records one sample of `us` microseconds.
    pub fn record_us(&mut self, us: u64) {
        let idx = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: Duration) {
        self.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Merges another histogram into this one (bucket-wise sum).
    pub fn absorb(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, in microseconds (saturating).
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// The largest recorded sample, in microseconds (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean sample, in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// The inclusive upper bound reported for bucket `i`.
    ///
    /// A raw power-of-two boundary `2^(i+1)` over-reports two ways: for
    /// the saturating top bucket it *under*-reports (samples up to
    /// `u64::MAX` land there, so only `max_us` bounds them), and for any
    /// bucket it may exceed the largest sample ever recorded. Clamping
    /// every bound to `max_us` fixes both: `max_us` dominates every
    /// sample by definition, so the clamped value is still an upper
    /// bound of buckets `0..=i`, and no reported bound can exceed the
    /// data.
    fn bucket_upper(&self, i: usize) -> u64 {
        if i >= BUCKETS - 1 {
            self.max_us
        } else {
            (1u64 << (i + 1)).min(self.max_us)
        }
    }

    /// An upper bound below which at least `q` (0..=1) of the samples
    /// fall, from the bucket boundaries (0 when empty). With power-of-two
    /// buckets this is at most 2× the true quantile, and it never exceeds
    /// [`max_us`](Self::max_us) — in particular `quantile_us(1.0)` always
    /// bounds every recorded sample, even ones in the saturating top
    /// bucket.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen >= target.max(1) {
                return self.bucket_upper(i);
            }
        }
        self.max_us
    }

    /// The non-empty buckets as `(lower-bound-µs, count)` pairs, in
    /// ascending bucket order. Bucket 0's lower bound is reported as `0`:
    /// it absorbs sub-microsecond samples (`record_us` clamps to 1 for
    /// bucket *indexing* only), so labeling it `1` would undercount
    /// sub-µs work for any consumer summing `lower × count`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << i }, n))
            .collect()
    }

    /// The non-empty buckets as cumulative `(upper-bound-µs, count ≤ bound)`
    /// pairs — the shape a Prometheus `_bucket{le=...}` series wants.
    /// Upper bounds are clamped to `max_us` (see `quantile_us`), so the
    /// final pair is always `(max_us, count)`.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut seen = 0u64;
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                seen += n;
                (self.bucket_upper(i), seen)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_power_of_two_buckets() {
        let mut h = Histogram::new();
        for us in [0, 1, 2, 3, 4, 1000, 1_000_000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 7);
        assert!(h.mean_us() > 0.0);
        assert_eq!(h.max_us(), 1_000_000);
        // 0 and 1 share bucket 0; 2 and 3 share bucket 1; 4 is bucket 2.
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 5);
        assert_eq!(buckets[0], (0, 2), "bucket 0 lower bound must be 0");
        assert_eq!(buckets[1], (2, 2));
        let cum = h.cumulative_buckets();
        assert_eq!(cum.last().copied(), Some((1_000_000, 7)));
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record_us(10);
        }
        h.record_us(100_000);
        assert!(h.quantile_us(0.5) >= 10);
        assert!(h.quantile_us(0.5) <= 32);
        assert!(h.quantile_us(1.0) >= 100_000);
        assert_eq!(h.quantile_us(1.0), h.max_us());
        assert_eq!(Histogram::new().quantile_us(0.5), 0);
    }

    #[test]
    fn quantile_bounds_never_exceed_the_max_sample() {
        // A single 3-µs sample lands in bucket [2, 4); the raw bucket
        // bound 4 exceeds the data, the clamped bound must not.
        let mut h = Histogram::new();
        h.record_us(3);
        assert_eq!(h.quantile_us(0.5), 3);
        assert_eq!(h.quantile_us(1.0), 3);
    }

    #[test]
    fn giant_samples_saturate() {
        let mut h = Histogram::new();
        h.record(Duration::from_secs(1_000_000));
        h.record_us(u64::MAX);
        assert_eq!(h.count(), 2);
        // Both samples sit in the saturating top bucket; the quantile
        // bound must still dominate them (the raw bucket boundary 2^40
        // would not).
        assert!(h.quantile_us(1.0) >= u64::MAX);
        assert_eq!(h.quantile_us(1.0), h.max_us());
        assert!(h.quantile_us(0.5) >= 1_000_000 * 1_000_000);
    }

    #[test]
    fn absorb_merges_counts_and_bounds() {
        let mut a = Histogram::new();
        a.record_us(5);
        let mut b = Histogram::new();
        b.record_us(1_000);
        a.absorb(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_us(), 1_000);
        assert_eq!(a.sum_us(), 1_005);
    }
}
