//! The process-wide metrics registry: named counters, gauges, and
//! histograms, plus the wall-clock [`Span`] guard that feeds them.
//!
//! Handles ([`Counter`], [`Gauge`], [`SharedHistogram`]) are interned by
//! name on first use and shared via [`Arc`], so instrumentation sites pay
//! one map lookup per call site invocation and one atomic op per record.
//! Every handle carries the registry's recording flag: flipping
//! [`Registry::set_recording`] to `false` turns all of them into no-ops,
//! which is how the no-perturbation test produces an "uninstrumented"
//! run without a second code path.

use crate::histogram::Histogram;
use crate::journal::Journal;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Recovers the guard from a poisoned mutex: registry state is plain
/// counters and maps that stay internally consistent, and metrics must
/// never take the process down.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
    enabled: Arc<AtomicBool>,
}

impl Counter {
    fn new(enabled: Arc<AtomicBool>) -> Counter {
        Counter { value: AtomicU64::new(0), enabled }
    }

    /// Adds `n` to the counter (no-op while recording is off).
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, live threads).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
    enabled: Arc<AtomicBool>,
}

impl Gauge {
    fn new(enabled: Arc<AtomicBool>) -> Gauge {
        Gauge { value: AtomicI64::new(0), enabled }
    }

    /// Sets the gauge (no-op while recording is off).
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A thread-safe [`Histogram`]: recording is a handful of integer ops
/// behind a mutex, negligible next to the stage runtimes it measures.
#[derive(Debug)]
pub struct SharedHistogram {
    inner: Mutex<Histogram>,
    enabled: Arc<AtomicBool>,
}

impl SharedHistogram {
    fn new(enabled: Arc<AtomicBool>) -> SharedHistogram {
        SharedHistogram { inner: Mutex::new(Histogram::new()), enabled }
    }

    /// Records one sample of `us` microseconds (no-op while recording is
    /// off).
    pub fn record_us(&self, us: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            lock(&self.inner).record_us(us);
        }
    }

    /// Records one duration sample.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> Histogram {
        lock(&self.inner).clone()
    }
}

/// A wall-clock span: records its elapsed time into a histogram when
/// dropped (or explicitly [`finish`](Span::finish)ed). Spans measure; they
/// never feed back into the computation they wrap — that is the registry's
/// no-perturbation guarantee.
#[derive(Debug)]
pub struct Span {
    hist: Arc<SharedHistogram>,
    started: Instant,
}

impl Span {
    /// Starts a span recording into `hist`.
    pub fn enter(hist: Arc<SharedHistogram>) -> Span {
        Span { hist, started: Instant::now() }
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record(self.started.elapsed());
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<SharedHistogram>),
}

/// One registry's full state at a point in time, with names sorted so
/// every rendering of it is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram copies by name.
    pub histograms: Vec<(String, Histogram)>,
    /// The journal's recent events, oldest first.
    pub events: Vec<crate::journal::Event>,
}

/// A named-metric registry plus an event [`Journal`].
///
/// The process-wide instance is [`crate::global`]; tests that assert
/// exact counts construct their own with [`Registry::new`] so parallel
/// tests cannot pollute each other.
#[derive(Debug)]
pub struct Registry {
    enabled: Arc<AtomicBool>,
    metrics: Mutex<BTreeMap<String, Metric>>,
    journal: Arc<Journal>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry with recording enabled and a 256-event journal.
    pub fn new() -> Registry {
        let enabled = Arc::new(AtomicBool::new(true));
        Registry {
            journal: Arc::new(Journal::new(256, Arc::clone(&enabled))),
            metrics: Mutex::new(BTreeMap::new()),
            enabled,
        }
    }

    /// Whether record operations currently take effect.
    pub fn recording(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off for every handle this registry issued
    /// (existing and future). Reads ([`Snapshot`]) are unaffected.
    pub fn set_recording(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The registry's event journal.
    pub fn journal(&self) -> Arc<Journal> {
        Arc::clone(&self.journal)
    }

    /// The counter named `name`, interned on first use. If the name is
    /// already taken by a different metric kind, a detached (unlisted)
    /// handle is returned rather than corrupting the registered one.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = lock(&self.metrics);
        match m.get(name) {
            Some(Metric::Counter(c)) => Arc::clone(c),
            Some(_) => Arc::new(Counter::new(Arc::clone(&self.enabled))),
            None => {
                let c = Arc::new(Counter::new(Arc::clone(&self.enabled)));
                m.insert(name.to_string(), Metric::Counter(Arc::clone(&c)));
                c
            }
        }
    }

    /// The gauge named `name`, interned on first use (same collision rule
    /// as [`counter`](Self::counter)).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = lock(&self.metrics);
        match m.get(name) {
            Some(Metric::Gauge(g)) => Arc::clone(g),
            Some(_) => Arc::new(Gauge::new(Arc::clone(&self.enabled))),
            None => {
                let g = Arc::new(Gauge::new(Arc::clone(&self.enabled)));
                m.insert(name.to_string(), Metric::Gauge(Arc::clone(&g)));
                g
            }
        }
    }

    /// The histogram named `name`, interned on first use (same collision
    /// rule as [`counter`](Self::counter)).
    pub fn histogram(&self, name: &str) -> Arc<SharedHistogram> {
        let mut m = lock(&self.metrics);
        match m.get(name) {
            Some(Metric::Histogram(h)) => Arc::clone(h),
            Some(_) => Arc::new(SharedHistogram::new(Arc::clone(&self.enabled))),
            None => {
                let h = Arc::new(SharedHistogram::new(Arc::clone(&self.enabled)));
                m.insert(name.to_string(), Metric::Histogram(Arc::clone(&h)));
                h
            }
        }
    }

    /// Starts a wall-clock span recording into the histogram `name`.
    pub fn span(&self, name: &str) -> Span {
        Span::enter(self.histogram(name))
    }

    /// A sorted point-in-time snapshot of every metric and the journal.
    pub fn snapshot(&self) -> Snapshot {
        let m = lock(&self.metrics);
        let mut snap = Snapshot::default();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => {
                    snap.histograms.push((name.clone(), h.snapshot()));
                }
            }
        }
        drop(m);
        snap.events = self.journal.recent();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_intern_by_name() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").inc();
        assert_eq!(r.counter("a").get(), 3);
        r.gauge("depth").set(7);
        r.gauge("depth").add(-2);
        assert_eq!(r.gauge("depth").get(), 5);
        r.histogram("lat").record_us(10);
        assert_eq!(r.histogram("lat").snapshot().count(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("a".to_string(), 3)]);
        assert_eq!(snap.gauges, vec![("depth".to_string(), 5)]);
        assert_eq!(snap.histograms.len(), 1);
    }

    #[test]
    fn disabling_recording_makes_every_handle_a_noop() {
        let r = Registry::new();
        let c = r.counter("n");
        let g = r.gauge("g");
        let h = r.histogram("h");
        r.set_recording(false);
        assert!(!r.recording());
        c.add(5);
        g.set(9);
        h.record_us(100);
        r.journal().note("kind", "dropped");
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.snapshot().count(), 0);
        assert!(r.journal().recent().is_empty());
        r.set_recording(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn spans_record_wall_clock_on_drop() {
        let r = Registry::new();
        {
            let _span = r.span("stage.x");
            std::thread::sleep(Duration::from_millis(2));
        }
        let h = r.histogram("stage.x").snapshot();
        assert_eq!(h.count(), 1);
        assert!(h.max_us() >= 1_000, "span recorded {} µs", h.max_us());
        r.span("stage.x").finish();
        assert_eq!(r.histogram("stage.x").snapshot().count(), 2);
    }

    #[test]
    fn kind_collisions_return_detached_handles() {
        let r = Registry::new();
        r.counter("name").inc();
        // Same name as a gauge: detached, does not clobber the counter.
        r.gauge("name").set(9);
        r.histogram("name").record_us(5);
        assert_eq!(r.counter("name").get(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }
}
