//! Prometheus-style text exposition of a registry [`Snapshot`].
//!
//! The format follows the Prometheus text conventions closely enough for
//! `promtool`-style scrapers and plain `grep`: every series is prefixed
//! `preexec_`, counters get a `_total` suffix, and histograms expand into
//! cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
//! Histograms only emit their non-empty buckets (40 power-of-two buckets
//! would otherwise produce mostly-zero noise); the `le` bounds come from
//! [`Histogram::cumulative_buckets`](crate::Histogram::cumulative_buckets)
//! so they are clamped to the observed max and stay monotone.

use crate::registry::Snapshot;
use std::fmt::Write as _;

/// Maps a metric name to a Prometheus-legal series name: prefix
/// `preexec_` and replace every character outside `[a-zA-Z0-9_]`
/// (the dots in `stage.trace`, mostly) with `_`.
fn series_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("preexec_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a snapshot as Prometheus text exposition.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let series = series_name(name);
        let _ = writeln!(out, "# TYPE {series}_total counter");
        let _ = writeln!(out, "{series}_total {value}");
    }
    for (name, value) in &snap.gauges {
        let series = series_name(name);
        let _ = writeln!(out, "# TYPE {series} gauge");
        let _ = writeln!(out, "{series} {value}");
    }
    for (name, hist) in &snap.histograms {
        let series = format!("{}_us", series_name(name));
        let _ = writeln!(out, "# TYPE {series} histogram");
        for (le, cumulative) in hist.cumulative_buckets() {
            let _ = writeln!(out, "{series}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{series}_bucket{{le=\"+Inf\"}} {}", hist.count());
        let _ = writeln!(out, "{series}_sum {}", hist.sum_us());
        let _ = writeln!(out, "{series}_count {}", hist.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let r = Registry::new();
        r.counter("cache.hits").add(7);
        r.gauge("sched.queue_depth").set(3);
        let h = r.histogram("stage.trace");
        h.record_us(5);
        h.record_us(900);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE preexec_cache_hits_total counter"));
        assert!(text.contains("preexec_cache_hits_total 7"));
        assert!(text.contains("preexec_sched_queue_depth 3"));
        assert!(text.contains("# TYPE preexec_stage_trace_us histogram"));
        assert!(text.contains("preexec_stage_trace_us_count 2"));
        assert!(text.contains("preexec_stage_trace_us_sum 905"));
        assert!(text.contains("preexec_stage_trace_us_bucket{le=\"+Inf\"} 2"));
        // Bucket bounds are clamped to the observed max (900), so no le
        // label exceeds the data.
        assert!(text.contains("le=\"900\"} 2"));
        assert!(!text.contains("le=\"1024\""));
    }

    #[test]
    fn le_bounds_are_monotone_nondecreasing() {
        let r = Registry::new();
        let h = r.histogram("lat");
        for us in [1, 3, 900, 70_000, u64::MAX] {
            h.record_us(us);
        }
        let snap = r.snapshot();
        let (_, hist) = &snap.histograms[0];
        let bounds: Vec<u64> = hist.cumulative_buckets().iter().map(|&(le, _)| le).collect();
        let mut sorted = bounds.clone();
        sorted.sort_unstable();
        assert_eq!(bounds, sorted, "le bounds must be monotone: {bounds:?}");
        assert_eq!(bounds.last().copied(), Some(u64::MAX));
    }

    #[test]
    fn names_are_sanitized_for_prometheus() {
        assert_eq!(series_name("stage.slice-build"), "preexec_stage_slice_build");
        assert_eq!(series_name("ok_name9"), "preexec_ok_name9");
    }
}
