//! `preexec-obs`: the dependency-free observability layer.
//!
//! Everything in the pipeline and service records into one process-wide
//! [`Registry`] of named metrics:
//!
//! - [`Counter`] / [`Gauge`] — lock-free atomics for event counts and
//!   levels (cache hits, queue depth, live handler threads).
//! - [`Histogram`] / [`SharedHistogram`] — 40 power-of-two microsecond
//!   buckets for latency distributions; quantile bounds are clamped to
//!   the observed max so they never exceed the data.
//! - [`Span`] — a drop guard that records a stage's wall clock into a
//!   named histogram (`stage.trace`, `stage.score`, ...).
//! - [`Journal`] — a bounded ring buffer of noteworthy [`Event`]s (job
//!   failures, cache corruption, watchdog trips, squashes).
//!
//! The design contract is **no perturbation**: metrics are written, never
//! read, by the code they instrument, so the pipeline's output is
//! byte-identical with recording on or off ([`Registry::set_recording`]).
//! A test in `preexec-experiments` pins this at 1 and 8 threads.
//!
//! Snapshots ([`Registry::snapshot`]) are sorted by name and render to
//! Prometheus-style text via [`render_prometheus`] for the `preexecd`
//! `metrics` verb, the `toolflow --profile` table, and the
//! `pipeline-bench` JSON report.

mod histogram;
mod journal;
mod prom;
mod registry;

pub use histogram::Histogram;
pub use journal::{Event, Journal};
pub use prom::render_prometheus;
pub use registry::{Counter, Gauge, Registry, SharedHistogram, Snapshot, Span};

use std::sync::OnceLock;

/// The process-wide registry every instrumentation site records into.
///
/// Binaries and services read it back out (`preexecd metrics`,
/// `toolflow --profile`); unit tests that assert exact counts should
/// build a private [`Registry`] instead so concurrently running tests
/// cannot pollute each other's numbers.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_a_singleton() {
        let c = global().counter("obs.selftest");
        let before = c.get();
        global().counter("obs.selftest").inc();
        assert_eq!(c.get(), before + 1);
    }
}
