//! A bounded ring-buffer journal of noteworthy events.
//!
//! The journal answers "what went wrong recently" without log scraping:
//! job failures, cache corruption, watchdog trips, and pipeline squashes
//! are noted here with a sequence number and wall-clock timestamp, and
//! the last `cap` of them ride along in every registry snapshot.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (counts events since process start,
    /// including ones that have since been evicted from the ring).
    pub seq: u64,
    /// Wall-clock time the event was noted, in milliseconds since the
    /// Unix epoch (0 if the system clock is before the epoch).
    pub unix_ms: u64,
    /// A short machine-matchable kind, e.g. `job_failed`.
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<Event>,
    next_seq: u64,
}

/// A bounded ring buffer of [`Event`]s; oldest entries are dropped once
/// the cap is reached.
#[derive(Debug)]
pub struct Journal {
    ring: Mutex<Ring>,
    cap: usize,
    enabled: Arc<AtomicBool>,
}

impl Journal {
    /// A journal keeping at most `cap` events, gated on the registry's
    /// shared recording flag.
    pub(crate) fn new(cap: usize, enabled: Arc<AtomicBool>) -> Journal {
        Journal { ring: Mutex::new(Ring::default()), cap: cap.max(1), enabled }
    }

    /// Appends an event (no-op while recording is off).
    pub fn note(&self, kind: &str, message: &str) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == self.cap {
            ring.events.pop_front();
        }
        ring.events.push_back(Event {
            seq,
            unix_ms,
            kind: kind.to_string(),
            message: message.to_string(),
        });
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        let ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        ring.events.iter().cloned().collect()
    }

    /// Total events ever noted (retained or evicted).
    pub fn total(&self) -> u64 {
        let ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        ring.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal(cap: usize) -> Journal {
        Journal::new(cap, Arc::new(AtomicBool::new(true)))
    }

    #[test]
    fn keeps_the_most_recent_events_up_to_cap() {
        let j = journal(3);
        for i in 0..5 {
            j.note("k", &format!("event {i}"));
        }
        let recent = j.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].seq, 2);
        assert_eq!(recent[2].seq, 4);
        assert_eq!(recent[2].message, "event 4");
        assert_eq!(j.total(), 5);
    }

    #[test]
    fn events_carry_kind_and_timestamp() {
        let j = journal(8);
        j.note("cache_corrupt", "digest 1234 failed checksum");
        let recent = j.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].kind, "cache_corrupt");
        assert!(recent[0].unix_ms > 0);
    }
}
